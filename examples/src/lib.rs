//! Example binaries for the in-database connected-components library.
//!
//! Run with `cargo run -p incc-examples --release --bin <name>`:
//!
//! * `quickstart` — the five-minute tour: load edges, run Randomised
//!   Contraction, inspect the result, see the worst case that motivates
//!   randomisation.
//! * `bitcoin_clustering` — the paper's flagship application: entity
//!   clustering of a (synthetic) Bitcoin address graph.
//! * `image_segmentation` — connected components as image segmentation,
//!   with an ASCII rendering of the segments.
//! * `sql_shell` — an interactive SQL prompt on the MPP engine, with
//!   the paper's `axplusb` UDF preloaded (try `explain analyze …`).
//! * `snap_import` — import a SNAP edge-list file, analyse it
//!   in-database, export the component labelling as CSV.

#![forbid(unsafe_code)]
