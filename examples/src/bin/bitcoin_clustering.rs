//! Bitcoin address clustering — the paper's flagship application.
//!
//! "If a transaction uses inputs with multiple addresses then these
//! addresses are assumed to be controlled by the same entity"
//! (Meiklejohn et al.). Linking addresses to the transactions spending
//! them gives a bipartite graph whose connected components are presumed
//! entities. The blockchain itself is 250 GB, so this example uses the
//! synthetic generator that reproduces its scale-free component
//! structure (see DESIGN.md for the substitution rationale).

use incc_core::{run_on_graph, RandomisedContraction};
use incc_graph::census::{census, log2_size_histogram, loglog_slope};
use incc_graph::generators::{bitcoin_address_graph, BitcoinParams, TXN_ID_OFFSET};
use incc_mppdb::{Cluster, ClusterConfig};
use std::collections::HashMap;

fn main() {
    let params = BitcoinParams { transactions: 50_000, seed: 2019, ..Default::default() };
    println!("simulating {} transactions…", params.transactions);
    let graph = bitcoin_address_graph(params);
    let c = census(&graph);
    println!(
        "address graph: |V| = {} ({} addresses), |E| = {}, {} components\n",
        c.vertices,
        graph.vertices().iter().filter(|&&v| v < TXN_ID_OFFSET).count(),
        c.edges,
        c.components
    );

    // Cluster the addresses in-database.
    let db = Cluster::new(ClusterConfig::default());
    let report = run_on_graph(&RandomisedContraction::paper(), &db, &graph, 9).expect("rc");
    report.verify_against(&graph).expect("exact clustering");
    println!(
        "Randomised Contraction: {} rounds, {:.3}s, {} bytes written",
        report.rounds,
        report.elapsed.as_secs_f64(),
        report.stats.bytes_written
    );

    // Entity sizes: addresses per component (transactions excluded).
    let mut entity_addresses: HashMap<u64, usize> = HashMap::new();
    for (&v, &label) in &report.labels {
        if v < TXN_ID_OFFSET {
            *entity_addresses.entry(label).or_insert(0) += 1;
        }
    }
    let mut sizes: Vec<usize> = entity_addresses.values().copied().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("\nlargest presumed entities (addresses controlled):");
    for (i, s) in sizes.iter().take(10).enumerate() {
        println!("  #{:<2} {s} addresses", i + 1);
    }
    let singles = sizes.iter().filter(|&&s| s == 1).count();
    println!("  … and {singles} single-address entities");

    // The Fig. 5 property: scale-free component-size census.
    let hist = log2_size_histogram(&graph);
    println!("\ncomponent-size census (log2 buckets):");
    for (bucket, count) in &hist {
        println!(
            "  size 2^{bucket:<2} {:>8} components  {}",
            count,
            "#".repeat(((*count as f64).log2().max(0.0) as usize).min(50))
        );
    }
    if let Some(slope) = loglog_slope(&hist) {
        println!("fitted log-log slope: {slope:.2} (linear decay = scale-free, cf. paper Fig. 5)");
    }
}
