//! End-to-end with files: import a SNAP-format edge list, analyse it
//! in-database, export the labelling as CSV.
//!
//! Pass a path to a real SNAP download (e.g. com-friendster.ungraph.txt)
//! to analyse it; with no argument, a synthetic social graph is written
//! first so the example is self-contained.

use incc_core::{run_on_graph, RandomisedContraction};
use incc_graph::generators::chung_lu_graph;
use incc_graph::io::{read_edge_list, write_edge_list};
use incc_mppdb::{Cluster, ClusterConfig};
use std::path::PathBuf;

fn main() {
    let path: PathBuf = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        None => {
            let p = std::env::temp_dir().join("incc_snap_demo.txt");
            println!("no input given; writing a synthetic social graph to {}", p.display());
            let g = chung_lu_graph(20_000, 120_000, 0.6, 7);
            write_edge_list(&g, &p).expect("write demo graph");
            p
        }
    };

    let graph = read_edge_list(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        std::process::exit(1);
    });
    println!(
        "loaded {} edge rows, {} vertices from {}",
        graph.edge_count(),
        graph.vertex_count(),
        path.display()
    );

    let db = Cluster::new(ClusterConfig::default());
    let report = run_on_graph(&RandomisedContraction::paper(), &db, &graph, 7).expect("rc");
    report.verify_against(&graph).expect("verified");
    println!(
        "Randomised Contraction: {} rounds in {:.3}s; per-round edge counts: {:?}",
        report.rounds,
        report.elapsed.as_secs_f64(),
        report.round_sizes
    );
    let components: std::collections::HashSet<u64> =
        report.labels.values().copied().collect();
    println!("{} connected components", components.len());

    // Export: rebuild the labelling as a table and copy it out as CSV.
    let pairs: Vec<(i64, i64)> =
        report.labels.iter().map(|(&v, &r)| (v as i64, r as i64)).collect();
    db.load_pairs("labels", "v", "component", &pairs).expect("labels table");
    let out = path.with_extension("components.csv");
    db.copy_to_csv("labels", &out).expect("csv export");
    println!("labelling exported to {}", out.display());
}
