//! Connected components as image segmentation (the paper's Andromeda
//! construction): adjacent pixels with similar colours become edges;
//! components are segments. This example segments a small synthetic
//! image and renders the segments as ASCII.

use incc_core::{run_on_graph, RandomisedContraction};
use incc_graph::generators::{image_graph_2d, GridParams};
use incc_mppdb::{Cluster, ClusterConfig};
use std::collections::HashMap;

const W: usize = 72;
const H: usize = 24;

fn main() {
    // Pixel IDs must stay row-major for rendering, so keep the
    // geometry (the paper randomises IDs only to avoid giving the
    // algorithms accidental structure — the benchmark datasets do).
    let params = GridParams { seed: 8, randomize_ids: false, ..Default::default() };
    let graph = image_graph_2d(W, H, params);
    println!(
        "{}x{} image -> graph: {} edge rows (4-connectivity, colour threshold {})",
        W,
        H,
        graph.edge_count(),
        params.threshold
    );

    let db = Cluster::new(ClusterConfig::default());
    let report = run_on_graph(&RandomisedContraction::paper(), &db, &graph, 1).expect("rc");
    report.verify_against(&graph).expect("exact segmentation");
    println!(
        "segmented in {} rounds / {} SQL statements\n",
        report.rounds, report.stats.queries
    );

    // Give each segment a stable glyph, biggest segments first.
    let mut sizes: HashMap<u64, usize> = HashMap::new();
    for label in report.labels.values() {
        *sizes.entry(*label).or_insert(0) += 1;
    }
    let mut by_size: Vec<(u64, usize)> = sizes.into_iter().collect();
    by_size.sort_by_key(|&(label, size)| (std::cmp::Reverse(size), label));
    const GLYPHS: &[u8] = b"#@%*+=~-:.ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    let glyph_of: HashMap<u64, char> = by_size
        .iter()
        .enumerate()
        .map(|(i, &(label, _))| (label, GLYPHS[i.min(GLYPHS.len() - 1)] as char))
        .collect();

    for y in 0..H {
        let mut line = String::with_capacity(W);
        for x in 0..W {
            let v = (y * W + x) as u64;
            line.push(report.labels.get(&v).map_or(' ', |l| glyph_of[l]));
        }
        println!("{line}");
    }
    println!(
        "\n{} segments; largest covers {} of {} pixels",
        by_size.len(),
        by_size.first().map_or(0, |&(_, s)| s),
        W * H
    );
}
