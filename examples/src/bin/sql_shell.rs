//! An interactive SQL shell on the MPP engine — poke at the substrate
//! directly. The paper's `axplusb` GF(2^64) UDF and its GF(p) sibling
//! are preloaded, and a demo edge table `g` is created on startup, so
//! the contraction round from Appendix A can be typed in verbatim:
//!
//! ```sql
//! create table reps as
//!   select v1 v, least(axplusb(3, v1, 5), min(axplusb(3, v2, 5))) rep
//!   from g group by v1 distributed by (v);
//! select * -- (column list required; try: select v, rep from reps)
//! ```

use incc_core::udf::{AxPlusB, AxbP};
use incc_mppdb::{Cluster, ClusterConfig, QueryOutput};
use std::io::{BufRead, Write};
use std::sync::Arc;

fn main() {
    let db = Cluster::new(ClusterConfig::default());
    db.register_udf("axplusb", Arc::new(AxPlusB));
    db.register_udf("axb_p", Arc::new(AxbP));
    db.load_pairs(
        "g",
        "v1",
        "v2",
        &[(1, 5), (1, 10), (2, 4), (2, 9), (3, 8), (3, 10), (4, 9), (5, 6), (5, 7), (6, 10)],
    )
    .expect("demo table");
    println!(
        "incc-mppdb SQL shell — {} segments, demo edge table `g` loaded \
         (the paper's Fig. 1 graph).",
        db.config().segments
    );
    println!("UDFs: axplusb(a,x,b) over GF(2^64), axb_p(a,x,b) over GF(2^61-1).");
    println!("Statements end with ';'. Commands: \\d (tables), \\stats, \\q.\n");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("incc> ");
        } else {
            print!("  ... ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let trimmed = line.trim();
        match trimmed {
            "\\q" | "exit" | "quit" => break,
            "\\d" => {
                for t in db.table_names() {
                    println!(
                        "  {t} ({} rows, {} schema)",
                        db.row_count(&t).unwrap_or(0),
                        db.table(&t).map(|t| t.schema.to_string()).unwrap_or_default()
                    );
                }
                continue;
            }
            "\\stats" => {
                let s = db.stats();
                println!(
                    "  live {} B, peak {} B, written {} B, network {} B, {} statements",
                    s.live_bytes, s.max_live_bytes, s.bytes_written, s.network_bytes, s.queries
                );
                continue;
            }
            _ => {}
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        match db.run(sql.trim()) {
            Ok(QueryOutput::Rows(rows)) => {
                for row in rows.iter().take(50) {
                    let cells: Vec<String> = row.iter().map(|d| d.to_string()).collect();
                    println!("  {}", cells.join(" | "));
                }
                if rows.len() > 50 {
                    println!("  … {} more rows", rows.len() - 50);
                }
                println!("  ({} rows)", rows.len());
            }
            Ok(QueryOutput::Created { table, rows }) => {
                println!("  created {table} ({rows} rows)");
            }
            Ok(QueryOutput::Explain(plan)) => print!("{plan}"),
            Ok(QueryOutput::Inserted { table, rows }) => {
                println!("  inserted {rows} row(s) into {table}");
            }
            Ok(QueryOutput::Dropped) => println!("  dropped"),
            Ok(QueryOutput::Renamed) => println!("  renamed"),
            Err(e) => println!("  error: {e}"),
        }
    }
}
