//! Quickstart: connected components of a graph stored in a relational
//! database, in a dozen lines — then a look under the hood.

use incc_core::bfs::BfsStrategy;
use incc_core::{run_on_graph, CcAlgorithm, RandomisedContraction};
use incc_graph::generators::{gnm_random_graph, path_graph, PathNumbering};
use incc_graph::EdgeList;
use incc_mppdb::{Cluster, ClusterConfig};

fn main() {
    // 1. A database cluster: 8 hash-partitioned segments, in-process.
    let db = Cluster::new(ClusterConfig::default());

    // 2. A graph as an edge table — two columns of 64-bit vertex IDs,
    //    exactly the storage layout the paper assumes. Loop edges mark
    //    isolated vertices.
    let graph = EdgeList::from_pairs(vec![
        (1, 5),
        (1, 10),
        (2, 2), // isolated vertex as a loop edge
        (3, 8),
        (3, 10),
        (5, 6),
        (5, 7),
        (6, 10),
        (4, 9),
    ]);

    // 3. Randomised Contraction: the paper's algorithm, as SQL queries.
    let rc = RandomisedContraction::paper();
    let report = run_on_graph(&rc, &db, &graph, 42).expect("run");
    report.verify_against(&graph).expect("labelling is exact");

    println!("Randomised Contraction finished in {} rounds", report.rounds);
    println!("({} SQL statements, {} bytes written)\n", report.stats.queries, report.stats.bytes_written);
    let mut labels: Vec<_> = report.labels.iter().collect();
    labels.sort();
    println!("vertex -> component label");
    for (v, r) in labels {
        println!("  {v:>3}  ->  {r}");
    }

    // 4. Why randomisation? The sequentially numbered path is the
    //    worst case for the naive min-propagation strategy (Section IV
    //    of the paper): its round count is the graph diameter.
    let path = path_graph(400, PathNumbering::Sequential, 0);
    let bfs = BfsStrategy::default();
    let bfs_report = run_on_graph(&bfs, &db, &path, 0).expect("bfs");
    let rc_report = run_on_graph(&rc, &db, &path, 0).expect("rc");
    println!(
        "\n400-vertex sequential path: BFS strategy {} rounds, Randomised Contraction {} rounds",
        bfs_report.rounds, rc_report.rounds
    );

    // 5. And it scales: rounds grow logarithmically, not linearly.
    for n in [1_000usize, 4_000, 16_000] {
        let g = gnm_random_graph(n, 2 * n, 7);
        let r = run_on_graph(&rc, &db, &g, 1).expect("rc");
        println!("G({n}, {}): {} rounds ({})", 2 * n, r.rounds, rc.name());
    }
}
