//! Minimal offline stand-in for `criterion`: runs each benchmark body
//! a handful of times so bench targets type-check and smoke-run.

use std::time::Instant;

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }

    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(&mut self, name: S, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: 3 };
        f(&mut b);
        let _ = name.into();
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(&mut self, name: S, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: 3 };
        f(&mut b);
        let _ = (&self.name, name.into());
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        let _ = start.elapsed();
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            std::hint::black_box(routine(input));
        }
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
