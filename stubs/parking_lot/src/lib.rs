//! Minimal offline stand-in for `parking_lot`, wrapping std::sync
//! primitives with the poison-free API shape.

use std::sync;

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct Condvar(sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}
