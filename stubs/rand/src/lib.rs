//! Minimal offline stand-in for the `rand` crate: enough API surface
//! (StdRng, SeedableRng, Rng::gen / gen_range) for type-checking and
//! deterministic test runs. SplitMix64-based; NOT the real rand.

pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed ^ 0x5DEECE66D }
    }
}

pub trait Distribution<T> {
    fn sample<R: RngCore>(rng: &mut R) -> T;
}

pub trait FromRng: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl FromRng for i128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::from_rng(rng) as i128
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::from_rng(rng) as f32
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub trait UniformSample: Sized + Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128);
                lo + (u128::from_rng(rng) % span) as $t
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (u128::from_rng(rng) % span) as i128) as $t
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

pub trait Rng: RngCore {
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub fn random<T: FromRng>() -> T {
    let mut r = <rngs::StdRng as SeedableRng>::seed_from_u64(0xDEAD_BEEF);
    T::from_rng(&mut r)
}
