//! Minimal, self-contained stand-in for the `proptest` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! patches `proptest` to this crate (see `stubs/README.md`). It
//! implements exactly the API subset the workspace's property tests
//! use: the `proptest!` macro (both `name in strategy` and
//! `name: Type` parameter forms, with an optional
//! `#![proptest_config(...)]` header), `prop_assert*!`, `prop_oneof!`,
//! `Just`, integer-range and `&str` strategies, tuple strategies,
//! `prop_map`, `proptest::collection::{vec, hash_set}`, and
//! `any::<T>()` for primitives.
//!
//! Differences from the real crate: no shrinking and no failure-seed
//! persistence. Cases come from a deterministic per-test SplitMix64
//! stream (seeded from the test's name), so every run generates the
//! same cases and failures reproduce exactly.

/// Deterministic pseudo-random case generation.
pub mod rng {
    /// SplitMix64 — tiny, fast, and plenty for test-case generation.
    pub struct TestRng(u64);

    impl TestRng {
        /// An independent stream for one (test, case) pair.
        pub fn for_case(seed: u64, case: u64) -> TestRng {
            TestRng(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// The next 128 uniformly random bits.
        pub fn next_u128(&mut self) -> u128 {
            ((self.next_u64() as u128) << 64) | self.next_u64() as u128
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u128) -> u128 {
            self.next_u128() % bound
        }
    }

    /// FNV-1a over a test name: the per-test base seed.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in s.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        h
    }
}

/// Runner configuration (`cases` is the only knob the tests use).
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

/// The `Strategy` trait and the combinators the workspace uses.
pub mod strategy {
    use crate::rng::TestRng;

    /// A generator of values of one type. Object-safe: only
    /// `new_value` is required; combinators are `Self: Sized`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    /// Boxing helper used by `prop_oneof!` (keeps type inference
    /// simple at the macro call site).
    pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// `strategy.prop_map(f)`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among strategies (backs `prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    /// Build a [`OneOf`] from boxed alternatives.
    pub fn one_of<T>(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        OneOf { options }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u128) as usize;
            self.options[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeFrom<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let width = (<$t>::MAX as i128 - self.start as i128) as u128 + 1;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let width = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    (*self.start() as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// String-pattern strategy. The real crate interprets the pattern
    /// as a regex; the workspace only uses `".*"`, for which arbitrary
    /// strings are the correct semantics, so that is what we generate:
    /// character soup across ASCII, control characters, and wide
    /// unicode.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            const PALETTE: &[char] = &[
                'a', 'b', 'z', 'A', 'Z', '0', '1', '9', ' ', '\t', '\n', '\r', '\0', '(', ')', ',',
                ';', '*', '=', '<', '>', '\'', '"', '%', '_', '-', '.', 'é', 'λ', '☃', '𝕊',
                '\u{7f}', '\u{1b}',
            ];
            let len = rng.below(49) as usize;
            (0..len)
                .map(|_| PALETTE[rng.below(PALETTE.len() as u128) as usize])
                .collect()
        }
    }
}

/// `any::<T>()` for the primitive types the tests draw whole values of.
pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draw one uniformly random value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u128() as $t
                }
            }
        )*};
    }
    arbitrary_ints!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The whole-domain strategy for `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — used by the macro's `name: Type` parameter form.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// `proptest::collection::{vec, hash_set}`.
pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// A `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.new_value(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A `HashSet` of values from `element`, cardinality drawn from
    /// `size` (best-effort when the element domain is small).
    pub fn hash_set<S>(element: S, size: core::ops::Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.new_value(rng);
            let mut set = HashSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(100) + 100 {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` path alias the real prelude exposes.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Property assertion — plain `assert!` here (no shrinking to drive).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Case precondition: a failing assumption skips the current case and
/// moves on to the next one. (The expansion relies on being inside the
/// per-case loop `proptest!` generates, which is the only place the
/// real crate allows it either.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($arg:tt)+)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// The `proptest!` block macro: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions
/// whose parameters are `name in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; ) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident ( $($params:tt)* ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::rng::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::rng::TestRng::for_case(__seed, __case as u64);
                $crate::__proptest_bind! { __rng; ($($params)*); $body }
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; (); $body:block) => { $body };
    ($rng:ident; ($pname:ident in $pstrat:expr, $($rest:tt)*); $body:block) => {
        let $pname = $crate::strategy::Strategy::new_value(&($pstrat), &mut $rng);
        $crate::__proptest_bind! { $rng; ($($rest)*); $body }
    };
    ($rng:ident; ($pname:ident in $pstrat:expr); $body:block) => {
        let $pname = $crate::strategy::Strategy::new_value(&($pstrat), &mut $rng);
        $crate::__proptest_bind! { $rng; (); $body }
    };
    ($rng:ident; ($pname:ident : $pty:ty, $($rest:tt)*); $body:block) => {
        let $pname = <$pty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng; ($($rest)*); $body }
    };
    ($rng:ident; ($pname:ident : $pty:ty); $body:block) => {
        let $pname = <$pty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng; (); $body }
    };
}
