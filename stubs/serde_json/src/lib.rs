//! Offline stub: accepts any value, emits a placeholder document.
pub type Error = std::fmt::Error;

pub fn to_string_pretty<T: ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("{}".to_string())
}

pub fn to_string<T: ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("{}".to_string())
}
