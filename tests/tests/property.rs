//! Property-based tests spanning the whole stack: random graphs in,
//! exact component partitions out — for every algorithm, both
//! execution profiles, and the randomisation-method invariants.

use incc_core::driver::{run_on_graph, CcAlgorithm};
use incc_core::{
    cracker::Cracker, hash_to_min::HashToMin, two_phase::TwoPhase, RandomisedContraction,
    SpaceVariant,
};
use incc_ffield::Method;
use incc_graph::union_find::{connected_components, labellings_equivalent};
use incc_graph::EdgeList;
use incc_mppdb::{Cluster, ClusterConfig, ExecutionProfile};
use proptest::prelude::*;

/// A random small multigraph: arbitrary pairs over a small ID space,
/// loops allowed (isolated-vertex markers), duplicates allowed.
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    proptest::collection::vec((0u64..60, 0u64..60), 1..120)
        .prop_map(EdgeList::from_pairs)
}

/// A sparse random graph over scattered 61-bit IDs (exercises the
/// finite-field domain handling).
fn arb_sparse_wide_graph() -> impl Strategy<Value = EdgeList> {
    proptest::collection::vec(
        (0u64..(1 << 61) - 1, 0u64..(1 << 61) - 1),
        1..40,
    )
    .prop_map(EdgeList::from_pairs)
}

fn check(algo: &dyn CcAlgorithm, g: &EdgeList, seed: u64, profile: ExecutionProfile) {
    let db = Cluster::new(ClusterConfig { segments: 4, profile, ..Default::default() });
    let report = run_on_graph(algo, &db, g, seed).expect("algorithm run");
    let truth = connected_components(&g.edges);
    prop_assert_with_panic(labellings_equivalent(&report.labels, &truth), algo, g);
}

fn prop_assert_with_panic(ok: bool, algo: &dyn CcAlgorithm, g: &EdgeList) {
    assert!(ok, "{} produced a wrong partition for {:?}", algo.name(), g.edges);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rc_gf64_matches_union_find(g in arb_graph(), seed: u64) {
        check(&RandomisedContraction::paper(), &g, seed, ExecutionProfile::Colocated);
    }

    #[test]
    fn rc_gfp_matches_union_find(g in arb_graph(), seed: u64) {
        check(
            &RandomisedContraction::with(Method::Gfp, SpaceVariant::Fast),
            &g,
            seed,
            ExecutionProfile::Colocated,
        );
    }

    #[test]
    fn rc_deterministic_matches_union_find(g in arb_graph(), seed: u64) {
        check(
            &RandomisedContraction::with(Method::Gf64, SpaceVariant::Deterministic),
            &g,
            seed,
            ExecutionProfile::Colocated,
        );
    }

    #[test]
    fn rc_random_reals_matches_union_find(g in arb_graph(), seed: u64) {
        check(
            &RandomisedContraction::with(Method::RandomReals, SpaceVariant::Fast),
            &g,
            seed,
            ExecutionProfile::Colocated,
        );
    }

    #[test]
    fn rc_wide_ids_match_union_find(g in arb_sparse_wide_graph(), seed: u64) {
        check(&RandomisedContraction::paper(), &g, seed, ExecutionProfile::Colocated);
        check(
            &RandomisedContraction::with(Method::Gfp, SpaceVariant::Fast),
            &g,
            seed,
            ExecutionProfile::Colocated,
        );
    }

    #[test]
    fn rc_external_profile_matches_union_find(g in arb_graph(), seed: u64) {
        // Forcing every exchange (the Spark-SQL-like profile) must not
        // change any result, only the work done.
        check(&RandomisedContraction::paper(), &g, seed, ExecutionProfile::External);
    }

    #[test]
    fn comparators_match_union_find(g in arb_graph()) {
        check(&HashToMin::default(), &g, 1, ExecutionProfile::Colocated);
        check(&TwoPhase::default(), &g, 1, ExecutionProfile::Colocated);
        check(&Cracker::default(), &g, 1, ExecutionProfile::Colocated);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The contraction invariant behind Theorem 1: a contraction step
    /// never splits or merges components (checked structurally).
    #[test]
    fn contraction_step_preserves_connectivity(g in arb_graph(), seed: u64) {
        use incc_core::gamma::contract_once;
        let edges: Vec<(u64, u64)> = g.edges.iter().filter(|(a, b)| a != b).copied().collect();
        prop_assume!(!edges.is_empty());
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let h = Method::Gf64.sample_round(&mut rng);
        let step = contract_once(&edges, |v| h.hash(v));
        // Multi-vertex components before == components after contraction
        // (each contracted component keeps at least one representative,
        // isolated reps drop out of the edge list only when their whole
        // component contracted to a point).
        let before = connected_components(&edges);
        let after = connected_components(&step.edges);
        let comp_count = |labels: &std::collections::HashMap<u64, u64>| {
            labels.values().collect::<std::collections::HashSet<_>>().len()
        };
        prop_assert!(comp_count(&after) <= comp_count(&before));
        prop_assert!(step.representatives <= before.len());
        prop_assert!(!step.edges.iter().any(|(a, b)| a == b));
    }

    /// Round hashes are injective on sampled domains for every
    /// bijective method — the property that makes SQL relabelling safe.
    #[test]
    fn round_hashes_injective(seed: u64, xs in proptest::collection::hash_set(0u64..(1<<61)-1, 2..50)) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        for m in [Method::Gf64, Method::Gfp, Method::Blowfish] {
            let h = m.sample_round(&mut rng);
            let hashed: std::collections::HashSet<u64> = xs.iter().map(|&x| h.hash(x)).collect();
            prop_assert_eq!(hashed.len(), xs.len(), "{:?} collided", m);
        }
    }
}

#[test]
fn rc_handles_adversarial_equal_ids_graph() {
    // All edges share one vertex ID — a degenerate star of loops.
    let g = EdgeList::from_pairs(vec![(5, 5), (5, 5), (5, 5)]);
    let db = Cluster::new(ClusterConfig::default());
    let report = run_on_graph(&RandomisedContraction::paper(), &db, &g, 0).unwrap();
    assert_eq!(report.labels.len(), 1);
}

/// Everything `t1 join t2 on k`, `group by k`, and `distinct v` should
/// produce on small random inputs, computed in memory.
fn expected_counts(t1: &[(i64, i64)], t2: &[(i64, i64)]) -> (usize, usize, usize) {
    use std::collections::{HashMap, HashSet};
    let mut c1: HashMap<i64, usize> = HashMap::new();
    for &(k, _) in t1 {
        *c1.entry(k).or_default() += 1;
    }
    let mut c2: HashMap<i64, usize> = HashMap::new();
    for &(k, _) in t2 {
        *c2.entry(k).or_default() += 1;
    }
    let join: usize = c1
        .iter()
        .map(|(k, n)| n * c2.get(k).copied().unwrap_or(0))
        .sum();
    let groups = c1.len();
    let distinct = t1.iter().map(|&(_, v)| v).collect::<HashSet<_>>().len();
    (join, groups, distinct)
}

/// One cancellation trial: raise the session's cancel flag from
/// another thread after `delay_us`, run one statement, and check the
/// all-or-nothing property — either the statement completed with
/// exactly the full result, or it failed with `ErrorClass::Cancelled`
/// and left nothing behind.
fn cancel_trial(vectorized: bool, t1: &[(i64, i64)], t2: &[(i64, i64)], delay_us: u64) {
    use incc_mppdb::{ErrorClass, QueryOutput};
    let db = std::sync::Arc::new(Cluster::new(ClusterConfig {
        segments: 4,
        vectorized,
        ..Default::default()
    }));
    let s = db.session();
    s.load_pairs("t1", "k", "v", t1).unwrap();
    s.load_pairs("t2", "k", "v", t2).unwrap();
    let (join_rows, group_rows, distinct_rows) = expected_counts(t1, t2);
    let cases: [(&str, usize, bool); 3] = [
        (
            "create table j as select a.k as k, b.v as v from t1 a, t2 b where a.k = b.k",
            join_rows,
            true,
        ),
        ("select k, count(*) as n from t1 group by k", group_rows, false),
        ("select distinct v from t1", distinct_rows, false),
    ];
    for (sql, expected, is_ctas) in cases {
        let flag = s.cancel_flag();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_micros(delay_us));
            flag.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        let res = s.run(sql);
        canceller.join().unwrap();
        s.clear_interrupt();
        match res {
            Ok(QueryOutput::Rows(rows)) => assert_eq!(rows.len(), expected, "partial {sql}"),
            Ok(QueryOutput::Created { rows, .. }) => {
                assert_eq!(rows, expected, "partial {sql}");
                assert_eq!(s.row_count("j").unwrap(), expected);
            }
            Ok(other) => panic!("unexpected output {other:?} for {sql}"),
            Err(e) => {
                assert_eq!(e.class(), ErrorClass::Cancelled, "{sql}: {e}");
                if is_ctas {
                    // A cancelled CTAS is atomic: no partial table.
                    assert!(
                        !db.table_names().contains(&s.temp_table_name("j")),
                        "cancelled CTAS left a partial table"
                    );
                }
            }
        }
        if is_ctas {
            let _ = s.drop_table("j");
        }
    }
    // Cancel raised *before* the statement must always interrupt.
    s.cancel();
    let err = s.run("select distinct v from t1").unwrap_err();
    assert_eq!(err.class(), incc_mppdb::ErrorClass::Cancelled);
    s.clear_interrupt();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cancellation observed mid-`run_parts` is all-or-nothing for
    /// join, group-by, and distinct, on both the vectorized and the
    /// generic operator paths.
    #[test]
    fn cancel_mid_run_parts_is_all_or_nothing(
        t1 in proptest::collection::vec((0i64..40, 0i64..40), 1..200),
        t2 in proptest::collection::vec((0i64..40, 0i64..40), 1..200),
        delay_us in 0u64..400,
    ) {
        cancel_trial(true, &t1, &t2, delay_us);
        cancel_trial(false, &t1, &t2, delay_us);
    }
}
