//! Runs the paper's Appendix A SQL, statement by statement, against the
//! Fig. 1 example graph — checking the engine executes the published
//! queries as written and that every intermediate table has the shape
//! the paper's walk-through describes.

use incc_core::udf::AxPlusB;
use incc_ffield::gf64::axplusb;
use incc_mppdb::{Cluster, ClusterConfig, Datum};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The paper's Fig. 1 graph: 10 vertices, 10 edges, one component —
/// plus vertex 2's second component via (2,4), (2,9), (4,9).
fn fig1_edges() -> Vec<(i64, i64)> {
    vec![
        (1, 5),
        (1, 10),
        (2, 4),
        (2, 9),
        (3, 8),
        (3, 10),
        (4, 9),
        (5, 6),
        (5, 7),
        (6, 10),
    ]
}

fn setup() -> Cluster {
    let db = Cluster::new(ClusterConfig { segments: 4, ..Default::default() });
    db.register_udf("axplusb", Arc::new(AxPlusB));
    db.load_pairs("edges", "v1", "v2", &fig1_edges()).unwrap();
    db
}

#[test]
fn setup_query_doubles_the_edge_table() {
    let db = setup();
    let out = db
        .run(
            "create table ccgraph as \
             select v1, v2 from edges union all select v2, v1 from edges \
             distributed by (v1)",
        )
        .unwrap();
    assert_eq!(out.row_count(), 20);
    // Every vertex appears on the v1 side.
    let verts = db.query("select distinct v1 from ccgraph").unwrap();
    assert_eq!(verts.len(), 10);
}

#[test]
fn ccreps_query_computes_min_hash_representatives() {
    let db = setup();
    db.run(
        "create table ccgraph as \
         select v1, v2 from edges union all select v2, v1 from edges \
         distributed by (v1)",
    )
    .unwrap();
    // A fixed round key; the paper's query verbatim.
    let (a, b) = (1234_5678_9012i64, 42i64);
    db.run(&format!(
        "create table ccreps1 as \
         select v1 v, least(axplusb({a}, v1, {b}), min(axplusb({a}, v2, {b}))) rep \
         from ccgraph group by v1 \
         distributed by (v)"
    ))
    .unwrap();
    let rows = db.query("select v, rep from ccreps1").unwrap();
    assert_eq!(rows.len(), 10);
    // Cross-check each representative against direct field arithmetic.
    let edges = fig1_edges();
    for row in rows {
        let (Datum::Int(v), Datum::Int(rep)) = (row[0], row[1]) else { panic!() };
        let mut expect = axplusb(a as u64, v as u64, b as u64);
        for &(x, y) in &edges {
            if x == v {
                expect = expect.min(axplusb(a as u64, y as u64, b as u64));
            }
            if y == v {
                expect = expect.min(axplusb(a as u64, x as u64, b as u64));
            }
        }
        assert_eq!(rep as u64, expect, "vertex {v}");
    }
}

#[test]
fn contraction_queries_shrink_the_graph() {
    let db = setup();
    db.run(
        "create table ccgraph as \
         select v1, v2 from edges union all select v2, v1 from edges \
         distributed by (v1)",
    )
    .unwrap();
    db.run(
        "create table ccreps1 as \
         select v1 v, least(axplusb(7, v1, 3), min(axplusb(7, v2, 3))) rep \
         from ccgraph group by v1 \
         distributed by (v)",
    )
    .unwrap();
    db.run(
        "create table ccgraph2 as \
         select r1.rep as v1, v2 from ccgraph, ccreps1 as r1 \
         where ccgraph.v1 = r1.v distributed by (v2)",
    )
    .unwrap();
    assert_eq!(db.row_count("ccgraph2").unwrap(), 20, "relabel preserves rows");
    let out = db
        .run(
            "create table ccgraph3 as \
             select distinct v1, r2.rep as v2 from ccgraph2, ccreps1 as r2 \
             where ccgraph2.v2 = r2.v and v1 != r2.rep \
             distributed by (v1)",
        )
        .unwrap();
    // The contracted graph must be strictly smaller than the doubled
    // input (duplicates and loops eliminated, Fig. 1(e)).
    assert!(out.row_count() < 20, "contraction did not shrink: {}", out.row_count());
    // And it must not contain loop edges.
    let loops = db
        .query_scalar_i64("select count(*) as n from ccgraph3 where v1 = v2")
        .unwrap();
    assert_eq!(loops, 0);
}

#[test]
fn composition_left_outer_join_applies_relabelling() {
    // Miniature of the back-substitution step: vertices missing from
    // the later representative table get the folded affine map.
    let db = setup();
    db.load_pairs("r1", "v", "rep", &[(1, 100), (2, 200), (3, 300)]).unwrap();
    db.load_pairs("r2", "v", "rep", &[(100, 77)]).unwrap();
    let (acc_a, acc_b) = (9i64, 5i64);
    db.run(&format!(
        "create table tmp as \
         select r1.v as v, coalesce(r2.rep, axplusb({acc_a}, r1.rep, {acc_b})) as rep \
         from r1 left outer join r2 on (r1.rep = r2.v) \
         distributed by (v)"
    ))
    .unwrap();
    let rows: HashMap<i64, i64> = db.scan_pairs("tmp").unwrap().into_iter().collect();
    assert_eq!(rows[&1], 77, "matched row takes the later representative");
    assert_eq!(rows[&2], axplusb(9, 200, 5) as i64, "missing row is relabelled");
    assert_eq!(rows[&3], axplusb(9, 300, 5) as i64);
}

#[test]
fn full_appendix_a_loop_produces_correct_components() {
    // Drive the complete Appendix A control flow from this test (the
    // Python role), with a fixed key per round.
    let db = setup();
    db.run(
        "create table ccgraph as \
         select v1, v2 from edges union all select v2, v1 from edges \
         distributed by (v1)",
    )
    .unwrap();
    let keys: Vec<(i64, i64)> = vec![(3, 11), (5, 2), (7, 13), (11, 1), (13, 17), (101, 3)];
    let mut roundno = 0usize;
    let mut stack: Vec<(i64, i64)> = Vec::new();
    loop {
        let (a, b) = keys[roundno];
        roundno += 1;
        stack.push((a, b));
        db.run(&format!(
            "create table ccreps{roundno} as \
             select v1 v, least(axplusb({a}, v1, {b}), min(axplusb({a}, v2, {b}))) rep \
             from ccgraph group by v1 distributed by (v)"
        ))
        .unwrap();
        db.run(&format!(
            "create table ccgraph2 as select r1.rep as v1, v2 \
             from ccgraph, ccreps{roundno} as r1 where ccgraph.v1 = r1.v \
             distributed by (v2)"
        ))
        .unwrap();
        db.drop_table("ccgraph").unwrap();
        let size = db
            .run(&format!(
                "create table ccgraph3 as select distinct v1, r2.rep as v2 \
                 from ccgraph2, ccreps{roundno} as r2 \
                 where ccgraph2.v2 = r2.v and v1 != r2.rep distributed by (v1)"
            ))
            .unwrap()
            .row_count();
        db.drop_table("ccgraph2").unwrap();
        db.rename_table("ccgraph3", "ccgraph").unwrap();
        if size == 0 {
            break;
        }
        assert!(roundno < keys.len(), "too many rounds for the fixed key list");
    }
    // Back-to-front composition with key folding (A,B) <- (A·α, A·β+B).
    let (mut acc_a, mut acc_b) = (1u64, 0u64);
    while roundno >= 1 {
        let (alpha, beta) = stack.pop().unwrap();
        let na = incc_ffield::gf64::gf64_mul(acc_a, alpha as u64);
        let nb = incc_ffield::gf64::gf64_mul(acc_a, beta as u64) ^ acc_b;
        acc_a = na;
        acc_b = nb;
        roundno -= 1;
        if roundno == 0 {
            break;
        }
        db.run(&format!(
            "create table tmp as \
             select r1.v as v, coalesce(r2.rep, axplusb({}, r1.rep, {})) as rep \
             from ccreps{} as r1 left outer join ccreps{} as r2 on (r1.rep = r2.v) \
             distributed by (v)",
            acc_a as i64,
            acc_b as i64,
            roundno,
            roundno + 1
        ))
        .unwrap();
        db.drop_table(&format!("ccreps{roundno}")).unwrap();
        db.drop_table(&format!("ccreps{}", roundno + 1)).unwrap();
        db.rename_table("tmp", &format!("ccreps{roundno}")).unwrap();
    }
    db.rename_table("ccreps1", "ccresult").unwrap();

    let labels: HashMap<u64, u64> = db
        .scan_pairs("ccresult")
        .unwrap()
        .into_iter()
        .map(|(v, r)| (v as u64, r as u64))
        .collect();
    assert_eq!(labels.len(), 10);
    // Fig. 1's components: {1,3,5,6,7,8,10} and {2,4,9}.
    let big: HashSet<u64> = [1, 3, 5, 6, 7, 8, 10].into();
    let small: HashSet<u64> = [2, 4, 9].into();
    let big_labels: HashSet<u64> = big.iter().map(|v| labels[v]).collect();
    let small_labels: HashSet<u64> = small.iter().map(|v| labels[v]).collect();
    assert_eq!(big_labels.len(), 1, "{labels:?}");
    assert_eq!(small_labels.len(), 1, "{labels:?}");
    assert_ne!(big_labels, small_labels);
}
