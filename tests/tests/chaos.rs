//! Chaos harness: every CC algorithm must complete — with labels
//! byte-identical to a fault-free run — while the cluster injects
//! deterministic operator faults (panics, transient errors, stalls)
//! that the service's retry layer has to absorb. This includes the
//! engine-native Liu–Tarjan rounds (faults fire inside the native
//! partition closures) and the adaptive driver (whose census probe
//! and decision must be deterministic under fault-induced retries).
//!
//! The fault plans are seeded and budgeted ([`FaultPlan::max_faults`]),
//! so every schedule is reproducible and every run terminates: each
//! retry re-keys the statement's fault sites under a fresh query
//! ordinal, and once the budget is spent the plan goes quiet. The
//! retry policy's `max_retries` is set above the fault budget so no
//! single statement can exhaust its retries before the plan runs dry.

use incc_graph::generators::gnm_random_graph;
use incc_graph::union_find::{connected_components, labellings_equivalent};
use incc_mppdb::{Cluster, ClusterConfig, FaultPlan, RetryPolicy};
use incc_service::{AlgoKind, JobSpec, JobStatus, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

const ALGOS: [AlgoKind; 7] = [
    AlgoKind::Rc,
    AlgoKind::HashToMin,
    AlgoKind::TwoPhase,
    AlgoKind::Cracker,
    AlgoKind::Bfs,
    AlgoKind::LiuTarjan,
    AlgoKind::Adaptive,
];

/// Runs every algorithm as a service job on a cluster with the given
/// fault plan; returns each sorted labelling plus the cluster's retry
/// count. Panics if any job fails — under a budgeted plan plus
/// retries, all must complete. `pipelined` selects the push-based
/// executor (the default, where faults fire inside `poll_push` /
/// `poll_finalize`) or the materializing oracle.
fn run_all_on(faults: Option<FaultPlan>, pipelined: bool) -> (Vec<Vec<(i64, i64)>>, u64) {
    let cluster = Arc::new(Cluster::new(ClusterConfig {
        faults,
        pipelined,
        ..Default::default()
    }));
    let service = Service::new(
        cluster,
        ServiceConfig {
            // max_retries exceeds any plan's fault budget, so retry
            // exhaustion is impossible; tight backoff keeps runs fast.
            retry: RetryPolicy {
                max_retries: 64,
                base: Duration::from_micros(100),
                cap: Duration::from_millis(2),
            },
            ..Default::default()
        },
    );
    let graph = gnm_random_graph(120, 130, 1234);
    service
        .cluster()
        .load_pairs("edges", "v1", "v2", &graph.to_i64_pairs())
        .unwrap();
    let mut out = Vec::new();
    for algo in ALGOS {
        let job = service
            .submit(JobSpec {
                algo,
                input: "edges".into(),
                seed: 42,
                profile: false,
            })
            .unwrap();
        assert_eq!(job.wait(), JobStatus::Done, "{algo:?} failed under faults");
        let mut labels = job.result().unwrap().labels.clone();
        labels.sort_unstable();
        // Sanity: the labelling is a correct CC labelling, not just a
        // stable wrong answer.
        let got: std::collections::HashMap<u64, u64> = labels
            .iter()
            .map(|&(v, r)| (v as u64, r as u64))
            .collect();
        let truth = connected_components(&graph.edges);
        assert!(labellings_equivalent(&got, &truth), "{algo:?} wrong labels");
        out.push(labels);
    }
    let retries = service.cluster().stats().retries;
    service.shutdown();
    (out, retries)
}

fn run_all(faults: Option<FaultPlan>) -> (Vec<Vec<(i64, i64)>>, u64) {
    run_all_on(faults, true)
}

fn assert_identical_under(plan: FaultPlan, expect_retries: bool) {
    let (baseline, clean_retries) = run_all(None);
    assert_eq!(clean_retries, 0, "fault-free run should never retry");
    let (faulted, retries) = run_all(Some(plan));
    assert_eq!(
        baseline, faulted,
        "labels diverged under fault plan {plan:?}"
    );
    if expect_retries {
        assert!(
            retries > 0,
            "plan {plan:?} injected no retryable faults — not a chaos run"
        );
    }
}

#[test]
fn labels_survive_a_panic_heavy_plan() {
    assert_identical_under(FaultPlan::panics(1, 80, 20), true);
}

#[test]
fn labels_survive_an_error_heavy_plan() {
    assert_identical_under(FaultPlan::errors(2, 120, 25), true);
}

#[test]
fn labels_survive_a_stall_plan() {
    // Stalls delay operators without failing them: no retries expected,
    // but the schedule perturbation must not change any labelling.
    assert_identical_under(FaultPlan::stalls(3, 200, 1, 40), false);
}

#[test]
fn labels_survive_a_mixed_plan_parsed_from_spec() {
    // The spec-string form `incc-serve` reads from INCC_FAULT_PLAN.
    let plan = FaultPlan::parse("seed=7,panic=30,error=40,stall=30,stall_ms=1,max=30").unwrap();
    assert_identical_under(plan, true);
}

/// The cross-executor chaos claim: panics, errors, and stalls fired
/// from inside the pipelined executor's `poll_push` / `poll_finalize`
/// sites must still produce labels byte-identical to a fault-free run
/// on the materializing oracle. Any divergence in retry replay, morsel
/// ordering, or partial-state cleanup between the two executors shows
/// up here as a label mismatch.
#[test]
fn pipelined_faults_match_fault_free_materializing_oracle() {
    let (oracle, oracle_retries) = run_all_on(None, false);
    assert_eq!(oracle_retries, 0, "fault-free oracle run should never retry");
    let plan = FaultPlan::parse("seed=11,panic=25,error=35,stall=25,stall_ms=1,max=25").unwrap();
    let (faulted, retries) = run_all_on(Some(plan), true);
    assert_eq!(
        oracle, faulted,
        "pipelined labels under faults diverged from the materializing oracle"
    );
    assert!(retries > 0, "plan injected no retryable faults into poll_push");
}

/// Span hygiene under chaos: with tracing on, every job traced through
/// a panic/error/stall-injecting plan still seals its trace with zero
/// leaked spans — the drop-based guards must record themselves even
/// when an operator panics mid-span and the retry layer replays the
/// statement. The injected retries themselves must be visible as
/// `retry_backoff` spans.
#[test]
fn spans_close_cleanly_under_injected_faults() {
    let plan = FaultPlan::parse("seed=5,panic=30,error=40,stall=20,stall_ms=1,max=30").unwrap();
    let cluster = Arc::new(Cluster::new(ClusterConfig {
        faults: Some(plan),
        ..Default::default()
    }));
    let service = Service::new(
        cluster,
        ServiceConfig {
            retry: RetryPolicy {
                max_retries: 64,
                base: Duration::from_micros(100),
                cap: Duration::from_millis(2),
            },
            trace_sample: 1,
            ..Default::default()
        },
    );
    let graph = gnm_random_graph(120, 130, 1234);
    service
        .cluster()
        .load_pairs("edges", "v1", "v2", &graph.to_i64_pairs())
        .unwrap();
    let mut saw_backoff = false;
    for algo in ALGOS {
        let job = service
            .submit(JobSpec {
                algo,
                input: "edges".into(),
                seed: 42,
                profile: false,
            })
            .unwrap();
        assert_eq!(job.wait(), JobStatus::Done, "{algo:?} failed under faults");
        let trace = service.last_trace().expect("job trace sealed");
        assert_eq!(trace.leaked, 0, "{algo:?} leaked open spans:\n{}", trace.render_waterfall());
        saw_backoff |= trace
            .spans
            .iter()
            .any(|s| s.kind == incc_mppdb::SpanKind::RetryBackoff);
    }
    assert!(service.cluster().stats().retries > 0, "plan injected no retries");
    assert!(saw_backoff, "retries happened but no retry_backoff span was recorded");
    service.shutdown();
}

/// Span hygiene under cancellation: a traced job cancelled mid-run
/// still seals its trace — pool-queue wait recorded, no span guard
/// leaked by the aborted pipeline slices.
#[test]
fn spans_close_cleanly_under_mid_run_cancellation() {
    let cluster = Arc::new(Cluster::new(ClusterConfig::default()));
    let service = Service::new(
        cluster,
        ServiceConfig {
            trace_sample: 1,
            ..Default::default()
        },
    );
    let pairs: Vec<(i64, i64)> = (0..2048).map(|i| (i, i + 1)).collect();
    service.cluster().load_pairs("hmpath", "v1", "v2", &pairs).unwrap();
    let job = service
        .submit(JobSpec {
            algo: AlgoKind::HashToMin,
            input: "hmpath".into(),
            seed: 0,
            profile: false,
        })
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        match job.status() {
            JobStatus::Running { round } if round >= 1 => break,
            s if s.is_terminal() => panic!("job finished before it could be cancelled: {s:?}"),
            _ => {
                assert!(std::time::Instant::now() < deadline, "job never reached round 1");
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
    job.cancel();
    match job.wait() {
        JobStatus::Failed(m) => assert!(m.contains("cancelled"), "unexpected failure: {m}"),
        other => panic!("expected cancellation, got {other:?}"),
    }
    let trace = service.last_trace().expect("cancelled job still seals its trace");
    assert_eq!(
        trace.leaked,
        0,
        "cancellation leaked open spans:\n{}",
        trace.render_waterfall()
    );
    assert!(
        trace
            .spans
            .iter()
            .any(|s| s.kind == incc_mppdb::SpanKind::PoolQueueWait),
        "queue wait span missing from job trace"
    );
    service.shutdown();
}

/// Cancellation mid-pipeline: a long Hash-to-Min run (path graph, so
/// working tables grow every round) is cancelled once it is inside
/// round 1. The `QueryGuard` check at the top of every pipeline slice
/// must abort the run cleanly — job reports cancelled, no orphan
/// working tables, live bytes back to the input table alone.
#[test]
fn cancellation_mid_pipeline_aborts_cleanly() {
    let cluster = Arc::new(Cluster::new(ClusterConfig::default()));
    let service = Service::new(cluster, ServiceConfig::default());
    let pairs: Vec<(i64, i64)> = (0..2048).map(|i| (i, i + 1)).collect();
    service.cluster().load_pairs("hmpath", "v1", "v2", &pairs).unwrap();
    let baseline = service.cluster().stats().live_bytes;

    let job = service
        .submit(JobSpec {
            algo: AlgoKind::HashToMin,
            input: "hmpath".into(),
            seed: 0,
            profile: false,
        })
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        match job.status() {
            JobStatus::Running { round } if round >= 1 => break,
            s if s.is_terminal() => panic!("job finished before it could be cancelled: {s:?}"),
            _ => {
                assert!(std::time::Instant::now() < deadline, "job never reached round 1");
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
    job.cancel();
    match job.wait() {
        JobStatus::Failed(m) => assert!(m.contains("cancelled"), "unexpected failure: {m}"),
        other => panic!("expected cancellation, got {other:?}"),
    }
    assert!(job.result().is_none());
    assert_eq!(service.cluster().table_names(), vec!["hmpath".to_string()]);
    assert_eq!(service.cluster().stats().live_bytes, baseline);
    service.shutdown();
}
