//! Observability acceptance tests: query profiles must reconcile with
//! the engine's operator statistics, and every algorithm must emit
//! per-round telemetry with the paper's O(log |V|) round bound
//! visible in it.

use incc_core::bfs::BfsStrategy;
use incc_core::cracker::Cracker;
use incc_core::hash_to_min::HashToMin;
use incc_core::two_phase::TwoPhase;
use incc_core::{run_on_graph, CcAlgorithm, RandomisedContraction};
use incc_graph::generators::{gnm_random_graph, path_graph, PathNumbering};
use incc_mppdb::{ActiveTrace, Cluster, ClusterConfig, OpKind, PartClock, SpanKind};
use incc_service::{Service, ServiceConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// Per-kind operator totals summed out of profile trees, indexed by
/// `OpKind as usize` (the same cell index `Stats::charge_op` uses).
type OpTotals = [[u64; 6]; OpKind::COUNT];

/// The acceptance criterion for the profiling layer: the per-operator
/// sums of every captured `QueryProfile` tree equal what
/// `Stats::op_stats()` accumulated, and the statement-level resource
/// deltas sum to the run's `StatsSnapshot` counters. On the
/// materializing path `OpTimer::finish` charges both sides from one
/// `OpMetrics` value; on the pipelined path each stage's `OpAccum` is
/// snapshotted once into both sinks. Any drift here means an operator
/// bypassed a sink (as the CTAS store exchange once did).
fn reconcile_profiles_on(pipelined: bool) {
    let db = Cluster::new(ClusterConfig { pipelined, ..Default::default() });
    db.set_profiling(true);
    let graph = gnm_random_graph(60, 80, 5);
    let report = run_on_graph(&RandomisedContraction::paper(), &db, &graph, 7).unwrap();
    report.verify_against(&graph).unwrap();

    // `run_on_graph` resets the run counters after loading the input,
    // so op_stats reflect exactly the algorithm's statements — which
    // are also exactly the statements whose profiles were captured.
    let profiles = db.profiles();
    assert!(!profiles.is_empty());
    assert!(profiles.len() <= 256, "profile ring must stay bounded");

    let mut totals: OpTotals = [[0; 6]; OpKind::COUNT];
    let (mut bytes, mut rows, mut network) = (0u64, 0u64, 0u64);
    for p in &profiles {
        p.root.fold_ops(&mut |op| {
            let t = &mut totals[op.kind as usize];
            t[0] += 1;
            t[1] += op.vectorized_parts;
            t[2] += op.generic_parts;
            t[3] += op.rows_in;
            t[4] += op.rows_out;
            t[5] += op.nanos;
        });
        bytes += p.bytes_written;
        rows += p.rows_written;
        network += p.network_bytes;
    }

    let ops = db.op_stats();
    assert!(!ops.is_empty());
    for o in &ops {
        let t = totals[o.kind as usize];
        let name = o.kind.name();
        assert_eq!(t[0], o.calls, "{name} calls");
        assert_eq!(t[1], o.vectorized_parts, "{name} vectorized parts");
        assert_eq!(t[2], o.generic_parts, "{name} generic parts");
        assert_eq!(t[3], o.rows_in, "{name} rows in");
        assert_eq!(t[4], o.rows_out, "{name} rows out");
        assert_eq!(t[5], o.nanos, "{name} nanos");
    }
    // No profiled operator family is missing from op_stats either.
    for (i, t) in totals.iter().enumerate() {
        if t[0] > 0 {
            assert!(
                ops.iter().any(|o| o.kind as usize == i),
                "profiled op family {i} absent from op_stats"
            );
        }
    }

    // Statement-level deltas (bytes/rows written, exchange volume)
    // tile the whole run: nothing outside a captured statement wrote.
    let stats = db.stats();
    assert_eq!(bytes, stats.bytes_written);
    assert_eq!(rows, stats.rows_written);
    assert_eq!(network, stats.network_bytes);
}

#[test]
fn query_profiles_reconcile_with_op_stats() {
    reconcile_profiles_on(true);
}

#[test]
fn query_profiles_reconcile_on_materializing_oracle() {
    reconcile_profiles_on(false);
}

/// EXPLAIN ANALYZE on the pipelined executor renders fused pipeline
/// stages (one node per pipeline, operators listed in push order) with
/// per-stage measurements that reconcile against `op_stats`, so an
/// operator's cost is attributable even after fusion.
#[test]
fn explain_analyze_shows_pipeline_stages() {
    let db = Cluster::new(ClusterConfig::default());
    let graph = gnm_random_graph(60, 80, 5);
    db.load_pairs("e", "v1", "v2", &graph.to_i64_pairs()).unwrap();
    let out = match db
        .run("explain analyze select v1, min(v2) as m from e where v2 > 3 group by v1")
        .unwrap()
    {
        incc_mppdb::QueryOutput::Explain(text) => text,
        other => panic!("expected explain output, got {other:?}"),
    };
    assert!(out.contains("Pipeline:"), "fused stages visible: {out}");
    assert!(out.contains("Scan: e"), "source named in its pipeline: {out}");
    // The filter streams inside the scan pipeline — same fused node.
    let scan_line = out
        .lines()
        .find(|l| l.contains("Scan: e"))
        .expect("scan pipeline line");
    assert!(
        scan_line.contains("Filter") && scan_line.contains("Aggregate"),
        "filter and aggregate fused with the scan: {scan_line}"
    );
    // Per-operator measurements are attributed under the fused nodes.
    assert!(out.contains("filter: rows_in="), "{out}");
    assert!(out.contains("aggregate: rows_in="), "{out}");
    assert!(out.contains("time="), "{out}");
}

/// Theorem 1 made observable: RC's round trajectory is logarithmic in
/// |V|, and the telemetry carries one report per algorithm round with
/// the same working-set sizes the algorithm itself tracked.
#[test]
fn rc_round_telemetry_is_logarithmic() {
    let db = Cluster::new(ClusterConfig::default());
    let n = 512usize;
    let graph = path_graph(n, PathNumbering::Sequential, 0);
    let report = run_on_graph(&RandomisedContraction::paper(), &db, &graph, 42).unwrap();
    report.verify_against(&graph).unwrap();

    assert_eq!(report.round_reports.len(), report.rounds);
    for (i, r) in report.round_reports.iter().enumerate() {
        assert_eq!(r.round, i + 1);
        assert!(r.statements > 0, "round {} ran no statements", r.round);
        assert!(r.nanos > 0);
    }
    let sizes: Vec<usize> = report.round_reports.iter().map(|r| r.working_rows).collect();
    assert_eq!(sizes, report.round_sizes);

    // γ ≤ 3/4 per round gives E[rounds] ≈ log_{4/3} |V| ≈ 2.41·log2;
    // allow generous slack for an unlucky seed.
    let bound = 5.0 * (n as f64).log2();
    assert!(
        (report.rounds as f64) <= bound,
        "RC took {} rounds on n={n} (bound {bound:.1})",
        report.rounds
    );
}

/// Span-tree reconciliation: every `stage` span mirrors the exact
/// `OpMetrics::nanos` value its operator charged into `op_stats`, so
/// the sum of stage span durations equals the operator-stats nanos
/// total *to the nanosecond* — on both executors. Any drift means an
/// operator charged one sink but not the other.
fn span_stage_totals_reconcile_on(pipelined: bool) {
    let db = Cluster::new(ClusterConfig { pipelined, ..Default::default() });
    let graph = gnm_random_graph(60, 80, 5);
    db.load_pairs("e", "v1", "v2", &graph.to_i64_pairs()).unwrap();
    // Measure only traced statements: the bulk load above charged no
    // operator stats of interest, reset flushes whatever it did.
    db.reset_run_counters();
    let trace = Arc::new(ActiveTrace::new(1, "reconcile"));
    db.install_trace(trace.clone());
    db.run("create table t as select v1, min(v2) as m from e where v2 > 1 group by v1")
        .unwrap();
    db.run("select count(*) as n from t").unwrap();
    db.take_trace();
    assert_eq!(trace.open_spans(), 0, "all span guards closed");
    let finished = trace.finish("two statements", trace.now_ns());
    assert_eq!(finished.leaked, 0);
    assert_eq!(finished.dropped, 0);

    let stage_total: u64 = finished
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Stage)
        .map(|s| s.dur_ns)
        .sum();
    let ops_total: u64 = db.op_stats().iter().map(|o| o.nanos).sum();
    assert!(ops_total > 0, "statements charged operator stats");
    assert_eq!(
        stage_total, ops_total,
        "stage spans must mirror charge_op to the nanosecond"
    );
    // The statement lifecycle is present as top-level structure too.
    for kind in [SpanKind::Parse, SpanKind::Plan, SpanKind::Exec] {
        assert!(
            finished.spans.iter().any(|s| s.kind == kind),
            "missing {kind:?} span"
        );
    }
}

#[test]
fn span_stage_totals_reconcile_with_op_stats_pipelined() {
    span_stage_totals_reconcile_on(true);
}

#[test]
fn span_stage_totals_reconcile_with_op_stats_materializing() {
    span_stage_totals_reconcile_on(false);
}

/// End-to-end attribution through the service: with 1-in-1 sampling, a
/// non-trivial statement's trace attributes at least 95% of its wall
/// time to the top-level kinds (parse, plan, admission_wait, exec, …)
/// and its stage spans again reconcile exactly with operator stats.
#[test]
fn service_trace_attributes_wall_time() {
    let service = Service::start(ServiceConfig {
        trace_sample: 1,
        ..Default::default()
    });
    let graph = gnm_random_graph(400, 900, 11);
    service
        .cluster()
        .load_pairs("e", "v1", "v2", &graph.to_i64_pairs())
        .unwrap();
    service.cluster().reset_run_counters();
    let session = service.session();
    service
        .run_sql(
            &session,
            "create table t as select v1, min(v2) as m from e where v2 > 1 group by v1",
        )
        .unwrap();
    let trace = service.last_trace().expect("sampled trace");
    assert_eq!(trace.leaked, 0);
    assert!(
        trace.attribution_fraction() >= 0.95,
        "only {:.1}% of wall attributed:\n{}",
        trace.attribution_fraction() * 100.0,
        trace.render_waterfall()
    );
    let stage_total: u64 = trace
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Stage)
        .map(|s| s.dur_ns)
        .sum();
    let ops_total: u64 = service.cluster().op_stats().iter().map(|o| o.nanos).sum();
    assert_eq!(stage_total, ops_total);
    service.shutdown();
}

/// A plan-cache hit pays zero parse/plan: its trace opens no Parse or
/// Plan span at all — only the cache consult (normalize + revalidate +
/// bind) and execution.
#[test]
fn cache_hit_traces_carry_no_parse_or_plan_spans() {
    let service = Service::start(ServiceConfig {
        trace_sample: 1,
        ..Default::default()
    });
    service
        .cluster()
        .load_pairs("e", "v1", "v2", &[(1, 2), (2, 3)])
        .unwrap();
    let session = service.session();
    let q = "select count(*) as n from e where v1 > 0";
    service.run_sql(&session, q).unwrap();
    let miss = service.last_trace().expect("sampled miss trace");
    assert!(miss.spans.iter().any(|s| s.kind == SpanKind::Parse));
    assert!(miss.spans.iter().any(|s| s.kind == SpanKind::Plan));

    service.run_sql(&session, q).unwrap();
    let hit = service.last_trace().expect("sampled hit trace");
    assert!(
        hit.spans
            .iter()
            .all(|s| s.kind != SpanKind::Parse && s.kind != SpanKind::Plan),
        "cache hit must skip parse and plan entirely:\n{}",
        hit.render_waterfall()
    );
    assert!(hit
        .spans
        .iter()
        .any(|s| s.kind == SpanKind::PlanCacheLookup));
    assert!(hit.spans.iter().any(|s| s.kind == SpanKind::Exec));
    service.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The telescoping invariant of the per-partition clock: for any
    /// monotone stamp sequence, running + parked equals last_exit −
    /// first_enter *exactly* — wall time inside a partition is fully
    /// split between the two states, never double-counted or dropped.
    #[test]
    fn part_clock_running_plus_parked_equals_wall(
        deltas in proptest::collection::vec((0u64..1_000_000, 0u64..1_000_000), 1..64),
        start in 0u64..1_000_000_000,
    ) {
        let mut clock = PartClock::new();
        let mut now = start;
        let mut first_enter = None;
        let mut last_exit = now;
        for (gap, run) in deltas {
            now += gap; // parked stretch before the slice
            let entered = now;
            first_enter.get_or_insert(entered);
            clock.enter(entered);
            now += run; // time inside the slice
            clock.exit(entered, now);
            last_exit = now;
        }
        let wall = last_exit - first_enter.unwrap();
        prop_assert_eq!(clock.running_ns() + clock.parked_ns(), wall);
        prop_assert_eq!(clock.wall_ns(), wall);
    }
}

/// All five algorithms emit round telemetry through the same
/// `RunControl::report_round` they already used for progress.
#[test]
fn every_algorithm_emits_round_reports() {
    let algos: Vec<Box<dyn CcAlgorithm>> = vec![
        Box::new(RandomisedContraction::paper()),
        Box::new(HashToMin::default()),
        Box::new(TwoPhase::default()),
        Box::new(Cracker::default()),
        Box::new(BfsStrategy::default()),
    ];
    let graph = gnm_random_graph(40, 50, 9);
    for algo in &algos {
        let db = Cluster::new(ClusterConfig::default());
        let report = run_on_graph(algo.as_ref(), &db, &graph, 3).unwrap();
        report.verify_against(&graph).unwrap();
        assert!(
            !report.round_reports.is_empty(),
            "{} emitted no round reports",
            report.algorithm
        );
        let mut last_round = 0;
        for r in &report.round_reports {
            assert!(r.round > last_round, "{} rounds not increasing", report.algorithm);
            last_round = r.round;
            assert!(r.statements > 0, "{} round {} ran no statements", report.algorithm, r.round);
        }
    }
}

/// Regression: a native round boundary must pin `statements` to 0 *and*
/// consume any SQL delta accrued before it — `close_round` used to
/// leave `last` untouched on the native path, so the next SQL round
/// inherited stale statement counts.
#[test]
fn native_round_boundaries_pin_statements_and_consume_stale_deltas() {
    let db = Cluster::new(ClusterConfig::default());
    db.load_pairs("t", "k", "v", &[(1i64, 2i64), (2, 3)]).unwrap();
    let stats_fn = || db.stats();
    let recorder = incc_core::driver::RoundRecorder::new(&stats_fn);
    // SQL runs before the native boundary: the native round must not
    // report it, and the follow-up SQL round must not re-report it.
    db.run("select count(*) as n from t").unwrap();
    recorder.note_native(1, 10);
    db.run("select count(*) as n from t").unwrap();
    recorder.note(2, 5);
    let reports = recorder.take();
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].statements, 0, "native round must report zero statements");
    assert_eq!(
        reports[1].statements, 1,
        "SQL round after a native boundary inherited a stale statement delta"
    );
}

/// End-to-end form of the same regression: engine-native Liu–Tarjan
/// emits a report per round through `RunControl::report_round_native`,
/// and every one of them shows zero SQL statements.
#[test]
fn native_liu_tarjan_rounds_report_zero_statements() {
    let db = Cluster::new(ClusterConfig::default());
    let graph = gnm_random_graph(40, 50, 9);
    let report = run_on_graph(&incc_core::LiuTarjan::default(), &db, &graph, 3).unwrap();
    report.verify_against(&graph).unwrap();
    assert!(!report.round_reports.is_empty(), "LT emitted no round reports");
    for r in &report.round_reports {
        assert_eq!(
            r.statements, 0,
            "native LT round {} charged {} SQL statements",
            r.round, r.statements
        );
    }
    assert_eq!(report.stats.queries, 0, "native LT ran SQL statements");
}
