//! Cross-checks between the SQL algorithms and their in-memory
//! mirrors: identical partitions on shared inputs, and the round-count
//! trends the mirrors exist to measure.

use incc_core::driver::run_on_graph;
use incc_core::mirror::{cracker_mirror, hash_to_min_mirror, rc_mirror, two_phase_mirror};
use incc_core::{cracker::Cracker, hash_to_min::HashToMin, two_phase::TwoPhase};
use incc_ffield::Method;
use incc_graph::generators::{gnm_random_graph, path_graph, PathNumbering};
use incc_graph::union_find::labellings_equivalent;
use incc_mppdb::{Cluster, ClusterConfig};

#[test]
fn mirrors_agree_with_sql_twins() {
    let g = gnm_random_graph(150, 240, 17);
    let db = Cluster::new(ClusterConfig::default());

    let sql_hm = run_on_graph(&HashToMin::default(), &db, &g, 1).unwrap();
    let mem_hm = hash_to_min_mirror(&g.edges, 0).unwrap();
    assert!(labellings_equivalent(&sql_hm.labels, &mem_hm.labels), "HM");

    let sql_tp = run_on_graph(&TwoPhase::default(), &db, &g, 1).unwrap();
    let mem_tp = two_phase_mirror(&g.edges);
    assert!(labellings_equivalent(&sql_tp.labels, &mem_tp.labels), "TP");

    let sql_cr = run_on_graph(&Cracker::default(), &db, &g, 1).unwrap();
    let mem_cr = cracker_mirror(&g.edges);
    assert!(labellings_equivalent(&sql_cr.labels, &mem_cr.labels), "CR");
    // Cracker's pruning rounds are deterministic: counts must match.
    assert_eq!(sql_cr.rounds, mem_cr.rounds, "CR round counts");

    let mem_rc = rc_mirror(&g.edges, Method::Gf64, 1);
    assert!(labellings_equivalent(&mem_rc.labels, &mem_tp.labels), "RC");
}

#[test]
fn large_scale_round_trends() {
    // RC rounds grow ~logarithmically on paths from 2^12 to 2^16
    // vertices — an increase of at most a handful of rounds per 4x.
    let mut prev = 0usize;
    for shift in [12u32, 14, 16] {
        let g = path_graph(1 << shift, PathNumbering::Sequential, 0);
        let run = rc_mirror(&g.edges, Method::Gf64, 5);
        assert!(
            run.rounds <= prev + 14,
            "rounds jumped {prev} -> {} at 2^{shift}",
            run.rounds
        );
        assert!(run.rounds >= 8, "implausibly few rounds at 2^{shift}");
        prev = run.rounds;
    }
    // Cracker's vertex pruning stays single-digit across the sweep.
    for shift in [12u32, 14, 16] {
        let g = gnm_random_graph(1 << shift, 2 << shift, 3);
        let cr = cracker_mirror(&g.edges);
        assert!(cr.rounds <= 8, "CR took {} rounds at 2^{shift}", cr.rounds);
    }
}
