//! Micro-benchmarks of the randomisation primitives — the per-row cost
//! behind the paper's Section V-C efficiency argument (finite fields
//! are cheaper than encryption; both beat shipping random reals).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use incc_ffield::blowfish::Blowfish;
use incc_ffield::gf64::{axplusb, gf64_inv};
use incc_ffield::gfp::Gfp;
use incc_ffield::strategy::mix64;

fn bench_round_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("round_hash");
    g.throughput(Throughput::Elements(1));
    let (a, b) = (0x9e37_79b9_7f4a_7c15u64, 0x2545_f491_4f6c_dd1du64);
    g.bench_function("gf64_axplusb", |bench| {
        let mut x = 1u64;
        bench.iter(|| {
            x = axplusb(black_box(a), black_box(x), black_box(b));
            x
        })
    });
    g.bench_function("gfp_axb", |bench| {
        let mut x = 1u64;
        bench.iter(|| {
            x = Gfp.axb(black_box(a % incc_ffield::gfp::P), black_box(x), black_box(123));
            x
        })
    });
    let bf = Blowfish::from_u128(0xDEAD_BEEF_0123_4567_89AB_CDEF_0011_2233);
    g.bench_function("blowfish_encrypt", |bench| {
        let mut x = 1u64;
        bench.iter(|| {
            x = bf.encrypt(black_box(x));
            x
        })
    });
    g.bench_function("mix64_random_reals", |bench| {
        let mut x = 1u64;
        bench.iter(|| {
            x = mix64(black_box(x));
            x
        })
    });
    g.finish();
}

fn bench_key_schedule(c: &mut Criterion) {
    // Blowfish's key schedule is the per-round fixed cost of the
    // encryption method (one schedule per contraction round).
    c.bench_function("blowfish_key_schedule", |bench| {
        let mut k = 0u128;
        bench.iter(|| {
            k = k.wrapping_add(1);
            Blowfish::from_u128(black_box(k))
        })
    });
    c.bench_function("gf64_inverse", |bench| {
        let mut a = 3u64;
        bench.iter(|| {
            a = a.wrapping_add(2) | 1;
            gf64_inv(black_box(a))
        })
    });
}

criterion_group!(benches, bench_round_hashes, bench_key_schedule);
criterion_main!(benches);
