//! Service-layer throughput and latency under concurrency.
//!
//! Runs a fixed interactive statement mix through the query service at
//! 1, 4 and 16 concurrent sessions and reports queries/second plus
//! p50/p95 per-statement latency — the scaling curve a multi-tenant
//! deployment of the paper's workload cares about. Alongside the
//! console table it appends a machine-readable record to
//! `results/service.json`, next to the repro harness's outputs.
//!
//! Run with `cargo bench -p incc-bench --bench service`.

use incc_graph::generators::gnm_random_graph;
use incc_service::{Service, ServiceConfig};
use std::sync::Mutex;
use std::time::Instant;

const SESSION_COUNTS: &[usize] = &[1, 4, 16];
const MIX_ITERS_PER_SESSION: usize = 40;
/// Statements per mix iteration (see `run_mix_iteration`).
const STATEMENTS_PER_ITER: usize = 4;

struct Level {
    sessions: usize,
    statements: usize,
    wall_secs: f64,
    qps: f64,
    p50_us: u128,
    p95_us: u128,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One iteration of the interactive mix: an aggregate scan, a CTAS, a
/// query over the created table, and its drop — the building blocks
/// every CC algorithm round is made of.
fn run_mix_iteration(service: &Service, session: &incc_mppdb::Session, latencies: &mut Vec<u128>) {
    let statements = [
        "select count(*) as n from edges",
        "create table scratch as select v1 as v, count(*) as d from edges \
         group by v1 distributed by (v)",
        "select min(d) as m from scratch",
        "drop table scratch",
    ];
    for sql in statements {
        let start = Instant::now();
        service.run_sql(session, sql).unwrap();
        latencies.push(start.elapsed().as_micros());
    }
}

fn run_level(sessions: usize) -> Level {
    let service = Service::start(ServiceConfig {
        max_concurrent: sessions,
        queue_depth: 64,
        ..Default::default()
    });
    let graph = gnm_random_graph(2_000, 4_000, 1_234);
    service
        .cluster()
        .load_pairs("edges", "v1", "v2", &graph.to_i64_pairs())
        .unwrap();

    let all_latencies: Mutex<Vec<u128>> = Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..sessions {
            let service = &service;
            let all_latencies = &all_latencies;
            scope.spawn(move || {
                let session = service.session();
                let mut latencies = Vec::with_capacity(MIX_ITERS_PER_SESSION * STATEMENTS_PER_ITER);
                for _ in 0..MIX_ITERS_PER_SESSION {
                    run_mix_iteration(service, &session, &mut latencies);
                }
                all_latencies.lock().unwrap().extend(latencies);
                session.close();
            });
        }
    });
    let wall_secs = start.elapsed().as_secs_f64();
    let cache = service.plan_cache_stats();
    service.shutdown();

    let mut latencies = all_latencies.into_inner().unwrap();
    latencies.sort_unstable();
    let statements = latencies.len();
    Level {
        sessions,
        statements,
        wall_secs,
        qps: statements as f64 / wall_secs,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        plan_cache_hits: cache.hits,
        plan_cache_misses: cache.misses,
    }
}

/// p95 at the highest concurrency level over p95 single-session — the
/// tail-fairness number the CI gate holds below its threshold.
fn tail_ratio_p95(levels: &[Level]) -> f64 {
    let single = levels.iter().find(|l| l.sessions == 1);
    let peak = levels.iter().max_by_key(|l| l.sessions);
    match (single, peak) {
        (Some(s), Some(p)) if s.p95_us > 0 => p.p95_us as f64 / s.p95_us as f64,
        _ => 0.0,
    }
}

fn write_json(levels: &[Level]) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/service.json");
    let series: Vec<String> = levels
        .iter()
        .map(|l| {
            format!(
                "    {{\"sessions\": {}, \"statements\": {}, \"wall_secs\": {:.4}, \
                 \"qps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \
                 \"plan_cache_hits\": {}, \"plan_cache_misses\": {}}}",
                l.sessions,
                l.statements,
                l.wall_secs,
                l.qps,
                l.p50_us,
                l.p95_us,
                l.plan_cache_hits,
                l.plan_cache_misses
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"service_concurrency\",\n  \
         \"statement_mix\": \"count / group-by CTAS / scan / drop\",\n  \
         \"mix_iters_per_session\": {MIX_ITERS_PER_SESSION},\n  \
         \"tail_ratio_p95\": {:.3},\n  \"series\": [\n{}\n  ]\n}}\n",
        tail_ratio_p95(levels),
        series.join(",\n")
    );
    std::fs::write(&path, json)?;
    Ok(path)
}

fn main() {
    println!("service-layer concurrency bench ({MIX_ITERS_PER_SESSION} mix iterations/session)");
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10}",
        "sessions", "statements", "qps", "p50_us", "p95_us"
    );
    let levels: Vec<Level> = SESSION_COUNTS.iter().map(|&s| run_level(s)).collect();
    for l in &levels {
        println!(
            "{:>8} {:>12} {:>10.1} {:>10} {:>10}",
            l.sessions, l.statements, l.qps, l.p50_us, l.p95_us
        );
    }
    let last = levels.last().unwrap();
    let served = last.plan_cache_hits + last.plan_cache_misses;
    println!(
        "tail ratio p95@{}/p95@1: {:.2}x; plan cache at {} sessions: {}/{} hits ({:.1}%)",
        last.sessions,
        tail_ratio_p95(&levels),
        last.sessions,
        last.plan_cache_hits,
        served,
        if served > 0 {
            100.0 * last.plan_cache_hits as f64 / served as f64
        } else {
            0.0
        }
    );
    match write_json(&levels) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results/service.json: {e}"),
    }
}
