//! End-to-end algorithm benchmarks: RC vs the three comparators on a
//! miniature of the evaluation bench — the Criterion-tracked version of
//! Table III (the full table comes from the `repro` binary).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use incc_core::driver::{run_on_graph, CcAlgorithm};
use incc_core::{
    cracker::Cracker, hash_to_min::HashToMin, two_phase::TwoPhase, RandomisedContraction,
};
use incc_graph::generators::{gnm_random_graph, path_graph, PathNumbering};
use incc_graph::EdgeList;
use incc_mppdb::{Cluster, ClusterConfig};

fn bench_on(c: &mut Criterion, label: &str, graph: &EdgeList) {
    let algos: Vec<Box<dyn CcAlgorithm>> = vec![
        Box::new(RandomisedContraction::paper()),
        Box::new(HashToMin::default()),
        Box::new(TwoPhase::default()),
        Box::new(Cracker::default()),
    ];
    let mut group = c.benchmark_group(label.to_string());
    group.sample_size(10);
    for algo in algos {
        group.bench_function(algo.name(), |b| {
            b.iter_batched(
                || Cluster::new(ClusterConfig::default()),
                |db| {
                    let mut seed = 0;
                    seed += 1;
                    run_on_graph(algo.as_ref(), &db, graph, seed).unwrap()
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_algorithms(c: &mut Criterion) {
    bench_on(c, "gnm_5k_10k", &gnm_random_graph(5_000, 10_000, 3));
    bench_on(c, "path_3k", &path_graph(3_000, PathNumbering::BitReversed, 0));
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
