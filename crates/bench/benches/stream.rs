//! Sustained update throughput: incremental maintenance vs naive rerun.
//!
//! The incremental subsystem's claim is that a bounded staleness budget
//! buys orders of magnitude in update throughput: inserts collapse to a
//! CAS in the concurrent union–find, and only the deferred deletions
//! force a Randomised Contraction run — one engine run per budget
//! window instead of one per batch. This bench drives an identical
//! randomized add/delete workload through [`IncrementalCc`] (staleness
//! budget 250 ms, rebuilds when triggered, plus a final rebuild so it
//! finishes exact) and [`NaiveRerun`] (full contraction after every
//! batch — never stale, which trivially satisfies the same bound), and
//! persists updates/sec for both to `results/stream_bench.json`.
//!
//! Run with `cargo bench -p incc-bench --bench stream`; set
//! `STREAM_BENCH_SMOKE=1` for a seconds-long CI smoke run (tiny
//! workload, separate output file, no speedup floor).

use incc_core::driver::RunControl;
use incc_graph::union_find::labellings_equivalent;
use incc_mppdb::{Cluster, ClusterConfig};
use incc_stream::{EdgeOp, IncrementalCc, NaiveRerun, StreamConfig};
use std::time::{Duration, Instant};

struct Scale {
    smoke: bool,
    /// Vertex id space.
    vertices: u64,
    /// Total edge updates in the workload.
    ops: usize,
    /// Updates per feed batch.
    batch: usize,
}

impl Scale {
    fn from_env() -> Scale {
        if std::env::var("STREAM_BENCH_SMOKE").is_ok_and(|v| v == "1") {
            Scale { smoke: true, vertices: 48, ops: 400, batch: 16 }
        } else {
            Scale { smoke: false, vertices: 2_000, ops: 20_000, batch: 64 }
        }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic mixed workload: ~80% inserts over a bounded vertex
/// space (so components keep merging), ~20% deletions of an edge that
/// was actually inserted earlier (so tombstones are real work, not
/// no-ops on absent edges).
fn workload(scale: &Scale, seed: u64) -> Vec<EdgeOp> {
    let mut rng = seed;
    let mut inserted: Vec<(u64, u64)> = Vec::new();
    let mut ops = Vec::with_capacity(scale.ops);
    for _ in 0..scale.ops {
        if !inserted.is_empty() && splitmix(&mut rng) % 100 < 20 {
            let idx = (splitmix(&mut rng) as usize) % inserted.len();
            let (u, v) = inserted.swap_remove(idx);
            ops.push(EdgeOp::Del(u, v));
        } else {
            let u = splitmix(&mut rng) % scale.vertices;
            let v = splitmix(&mut rng) % scale.vertices;
            inserted.push(if u <= v { (u, v) } else { (v, u) });
            ops.push(EdgeOp::Add(u, v));
        }
    }
    ops
}

struct Side {
    total: Duration,
    engine_runs: u64,
    updates_per_sec: f64,
}

fn per_sec(ops: usize, elapsed: Duration) -> f64 {
    ops as f64 / elapsed.as_secs_f64().max(1e-9)
}

fn main() {
    let scale = Scale::from_env();
    let seed = 42u64;
    println!(
        "stream throughput bench (vertices={}, ops={}, batch={}, smoke={})",
        scale.vertices, scale.ops, scale.batch, scale.smoke
    );
    let ops = workload(&scale, seed);
    let staleness = Duration::from_millis(250);

    // Incremental side: feeds are in-memory, the engine only runs when
    // a trigger fires. `max_tombstones` is lifted out of the way so the
    // 250 ms staleness budget is the binding trigger — the same bound
    // the baseline (staleness zero) trivially satisfies.
    let db = Cluster::new(ClusterConfig::default());
    let cc = IncrementalCc::new(
        "bench",
        StreamConfig {
            staleness_budget: staleness,
            max_tombstones: usize::MAX,
            seed,
            ..StreamConfig::default()
        },
    );
    let t0 = Instant::now();
    let mut rebuilds = 0u64;
    for batch in ops.chunks(scale.batch) {
        let summary = cc.feed(batch);
        if summary.needs_rebuild {
            cc.rebuild(&db, &RunControl::default()).expect("stream rebuild");
            rebuilds += 1;
        }
    }
    // Finish exact: one last rebuild flushes the remaining tombstones.
    cc.rebuild(&db, &RunControl::default()).expect("final rebuild");
    rebuilds += 1;
    let inc = Side {
        total: t0.elapsed(),
        engine_runs: rebuilds,
        updates_per_sec: per_sec(ops.len(), t0.elapsed()),
    };

    // Lock-free read path: component lookups against the live epoch.
    let lookups = 100_000u64;
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..lookups {
        if let Some((label, _)) = cc.component(i % scale.vertices) {
            acc = acc.wrapping_add(label);
        }
    }
    let lookup_elapsed = t0.elapsed();
    std::hint::black_box(acc);

    // Baseline: identical batches, full contraction per batch.
    let db2 = Cluster::new(ClusterConfig::default());
    let mut naive = NaiveRerun::new("bench_naive", seed);
    let t0 = Instant::now();
    for batch in ops.chunks(scale.batch) {
        naive.feed(&db2, batch).expect("naive rerun");
    }
    let base = Side {
        total: t0.elapsed(),
        engine_runs: naive.reruns(),
        updates_per_sec: per_sec(ops.len(), t0.elapsed()),
    };

    // Both sides must agree on the final partition.
    assert!(
        labellings_equivalent(&cc.labelling(), naive.labelling()),
        "incremental and naive labellings diverged on the same workload"
    );

    let speedup = inc.updates_per_sec / base.updates_per_sec;
    println!(
        "incremental: {:>10.0} updates/s ({} engine runs, {:.1}ms total)",
        inc.updates_per_sec,
        inc.engine_runs,
        inc.total.as_secs_f64() * 1e3
    );
    println!(
        "      naive: {:>10.0} updates/s ({} engine runs, {:.1}ms total)",
        base.updates_per_sec,
        base.engine_runs,
        base.total.as_secs_f64() * 1e3
    );
    println!(
        "    speedup: {speedup:.1}x   lookups: {:.0}/s",
        per_sec(lookups as usize, lookup_elapsed)
    );

    let file = if scale.smoke { "stream_bench_smoke.json" } else { "stream_bench.json" };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(file);
    let json = format!(
        "{{\n  \"bench\": \"stream_throughput\",\n  \"smoke\": {},\n  \
         \"config\": {{\"vertices\": {}, \"ops\": {}, \"batch\": {}, \
         \"staleness_budget_ms\": {}, \"delete_share\": 0.2, \"seed\": {}}},\n  \
         \"incremental\": {{\"updates_per_sec\": {:.1}, \"total_ms\": {:.3}, \
         \"engine_runs\": {}, \"final_epoch\": {}, \
         \"lookups_per_sec\": {:.0}}},\n  \
         \"baseline\": {{\"updates_per_sec\": {:.1}, \"total_ms\": {:.3}, \
         \"engine_runs\": {}}},\n  \"speedup\": {:.2},\n  \
         \"labellings_equivalent\": true\n}}\n",
        scale.smoke,
        scale.vertices,
        scale.ops,
        scale.batch,
        staleness.as_millis(),
        seed,
        inc.updates_per_sec,
        inc.total.as_secs_f64() * 1e3,
        inc.engine_runs,
        cc.epoch(),
        per_sec(lookups as usize, lookup_elapsed),
        base.updates_per_sec,
        base.total.as_secs_f64() * 1e3,
        base.engine_runs,
        speedup,
    );
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    if !scale.smoke {
        assert!(
            speedup >= 10.0,
            "acceptance floor: expected >= 10x updates/sec over naive rerun, got {speedup:.1}x"
        );
    }
}
