//! Contraction-step benchmarks: the in-memory mirror of one algorithm
//! round, used to compare randomisation methods at identical graph
//! sizes (paper Section V-C).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use incc_core::gamma::{contract_once, contract_to_completion};
use incc_ffield::Method;
use incc_graph::generators::{gnm_random_graph, path_graph, PathNumbering};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_contract_once(c: &mut Criterion) {
    let g = gnm_random_graph(10_000, 20_000, 7);
    let mut group = c.benchmark_group("contract_once");
    group.throughput(Throughput::Elements(g.edge_count() as u64));
    group.sample_size(20);
    for method in Method::ALL {
        group.bench_function(method.name(), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let h = method.sample_round(&mut rng);
                contract_once(black_box(&g.edges), |v| h.hash(v))
            })
        });
    }
    group.finish();
}

fn bench_full_contraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("contract_to_completion");
    group.sample_size(10);
    for n in [1_000usize, 4_000, 16_000] {
        let g = path_graph(n, PathNumbering::Sequential, 0);
        group.bench_function(format!("path_{n}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                contract_to_completion(black_box(&g.edges), Method::Gf64, seed).len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_contract_once, bench_full_contraction);
criterion_main!(benches);
