//! Engine operator benchmarks: the cost of the SQL building blocks
//! every algorithm round is assembled from (scan+aggregate, self-join,
//! distinct), and the colocated-vs-shuffled join gap that underlies the
//! paper's Section VII-C profile comparison.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use incc_graph::generators::{gnm_random_graph, PathNumbering};
use incc_mppdb::{Cluster, ClusterConfig, ExecutionProfile};

const N: usize = 20_000;
const M: usize = 40_000;

fn setup(profile: ExecutionProfile) -> Cluster {
    let db = Cluster::new(ClusterConfig { profile, ..Default::default() });
    let g = gnm_random_graph(N, M, 42);
    db.load_pairs("e", "v1", "v2", &g.to_i64_pairs()).unwrap();
    let _ = PathNumbering::Sequential; // keep the import meaningful
    db
}

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(M as u64));
    group.sample_size(20);

    let db = setup(ExecutionProfile::Colocated);
    group.bench_function("group_by_min", |b| {
        b.iter_batched(
            || (),
            |()| {
                db.run("create table reps as select v1 as v, least(v1, min(v2)) as r \
                        from e group by v1 distributed by (v)")
                    .unwrap();
                db.drop_table("reps").unwrap();
            },
            BatchSize::PerIteration,
        )
    });
    group.bench_function("self_join_colocated", |b| {
        b.iter_batched(
            || (),
            |()| {
                db.run("create table j as select a.v1 as x, b.v2 as y \
                        from e as a, e as b where a.v1 = b.v1 distributed by (x)")
                    .unwrap();
                db.drop_table("j").unwrap();
            },
            BatchSize::PerIteration,
        )
    });
    group.bench_function("distinct", |b| {
        b.iter_batched(
            || (),
            |()| {
                db.run("create table d as select distinct v1, v2 from e").unwrap();
                db.drop_table("d").unwrap();
            },
            BatchSize::PerIteration,
        )
    });
    group.bench_function("union_all_double", |b| {
        b.iter_batched(
            || (),
            |()| {
                db.run("create table dd as select v1, v2 from e \
                        union all select v2, v1 from e distributed by (v1)")
                    .unwrap();
                db.drop_table("dd").unwrap();
            },
            BatchSize::PerIteration,
        )
    });

    // The same join under the External profile always reshuffles.
    let ext = setup(ExecutionProfile::External);
    group.bench_function("self_join_external", |b| {
        b.iter_batched(
            || (),
            |()| {
                ext.run("create table j as select a.v1 as x, b.v2 as y \
                         from e as a, e as b where a.v1 = b.v1 distributed by (x)")
                    .unwrap();
                ext.drop_table("j").unwrap();
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_sql_frontend(c: &mut Criterion) {
    // Parse+plan cost per statement (amortised against multi-second
    // query execution, this must stay negligible).
    let db = setup(ExecutionProfile::Colocated);
    c.bench_function("parse_and_plan_only", |b| {
        b.iter(|| {
            incc_mppdb::sql::parse_statement(
                "select v1 v, least(v1, min(v2)) rep from e group by v1",
            )
            .unwrap()
        })
    });
    drop(db);
}

criterion_group!(benches, bench_operators, bench_sql_frontend);
criterion_main!(benches);
