//! Engine hot-path benchmarks with a persistent JSON trail.
//!
//! Measures the SQL building blocks every CC algorithm round is
//! assembled from — shuffle (hash repartition), self-join, group-by,
//! distinct, union-all — plus two end-to-end algorithm runs
//! (Randomised Contraction and Hash-to-Min), and writes
//! `results/engine_bench.json` so successive PRs have a perf
//! trajectory to compare against. The `baseline` block holds the
//! numbers measured on the pre-vectorization engine (PR 1, commit
//! 17e2349) at the same sizes on the same container, so the JSON
//! itself documents the speedup.
//!
//! Run with `cargo bench -p incc-bench --bench engine`; set
//! `ENGINE_BENCH_SMOKE=1` for a seconds-long CI smoke run (tiny sizes,
//! no baseline comparison — it only proves the harness and the JSON
//! stay well-formed).

use incc_core::hash_to_min::HashToMin;
use incc_core::{run_on_graph, RandomisedContraction};
use incc_graph::generators::gnm_random_graph;
use incc_mppdb::{Cluster, ClusterConfig, ExecutionProfile};
use std::time::Instant;

/// Microbench sizes (vertices, edges) and per-case iterations.
struct Scale {
    smoke: bool,
    n: usize,
    m: usize,
    iters: usize,
    /// End-to-end graph sizes (kept smaller: full algorithm runs).
    e2e_n: usize,
    e2e_m: usize,
}

impl Scale {
    fn from_env() -> Scale {
        if std::env::var("ENGINE_BENCH_SMOKE").is_ok_and(|v| v == "1") {
            Scale { smoke: true, n: 500, m: 1_000, iters: 2, e2e_n: 200, e2e_m: 400 }
        } else {
            Scale { smoke: false, n: 50_000, m: 100_000, iters: 5, e2e_n: 20_000, e2e_m: 40_000 }
        }
    }
}

/// Pre-change reference times (milliseconds), measured on this
/// container at the full scale above against the PR 1 engine
/// (per-operator thread spawning, row-at-a-time `KeyPart` paths,
/// clone-based shuffle). Used to compute the `speedup` block.
const BASELINE: &[(&str, f64)] = &[
    ("shuffle", 5.608),
    ("join", 38.668),
    ("group_by", 14.199),
    ("join_external", 47.511),
    ("distinct", 9.304),
    ("union_all", 11.461),
    ("rc_end_to_end", 154.325),
    ("hash_to_min_end_to_end", 487.962),
];

/// Pre-span-tracing reference times: the previous PR's tree
/// (push-based pipelined executor) re-benched on this container at
/// the high end of its observed jitter band, same sizes. The
/// `vs_prev` ratios this produces measure the tracing
/// instrumentation's overhead on the disabled (common) path: every
/// operator gained one `Option` branch per invocation and each
/// pipeline slice two clock stamps, so `rc_end_to_end` is gated at
/// 1.05x in `ci.sh` — tracing must stay free when it is off.
const PREV: &[(&str, f64)] = &[
    ("shuffle", 1.90),
    ("join", 13.30),
    ("group_by", 5.95),
    ("distinct", 4.40),
    ("union_all", 3.40),
    ("join_external", 18.10),
    ("rc_end_to_end", 64.10),
    ("hash_to_min_end_to_end", 263.60),
];

/// Smoke-scale reference times for the CI regression gate. Measured
/// on this container at the smoke sizes with the pipelined executor,
/// set at the high end of observed jitter (tiny inputs are noisy —
/// `join_external` alone spans almost 2x between runs) so the 1.25x
/// gate in `ci.sh` trips on real regressions, not scheduler noise.
const SMOKE_PREV: &[(&str, f64)] = &[
    ("shuffle", 0.14),
    ("join", 0.22),
    ("group_by", 0.16),
    ("distinct", 0.30),
    ("union_all", 0.20),
    ("join_external", 1.60),
    ("rc_end_to_end", 6.50),
    ("hash_to_min_end_to_end", 8.50),
];

struct Case {
    name: &'static str,
    /// Best-of-iters wall milliseconds.
    ms: f64,
    /// Input rows processed per second at that time.
    rows_per_sec: f64,
    /// Extra detail (e.g. rounds) rendered into the JSON record.
    extra: Option<String>,
}

fn time_case(
    name: &'static str,
    rows: usize,
    iters: usize,
    mut body: impl FnMut(),
) -> Case {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        body();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    Case {
        name,
        ms: best,
        rows_per_sec: rows as f64 / (best / 1e3),
        extra: None,
    }
}

fn setup(scale: &Scale, profile: ExecutionProfile) -> Cluster {
    let db = Cluster::new(ClusterConfig { profile, ..Default::default() });
    let g = gnm_random_graph(scale.n, scale.m, 42);
    db.load_pairs("e", "v1", "v2", &g.to_i64_pairs()).unwrap();
    db
}

fn micro_benches(scale: &Scale) -> Vec<Case> {
    let mut cases = Vec::new();
    let db = setup(scale, ExecutionProfile::Colocated);
    let m = scale.m;
    let iters = scale.iters;

    // Hash repartition: the edge table redistributed on its second
    // column — every row moves through the exchange.
    cases.push(time_case("shuffle", m, iters, || {
        db.run("create table s as select v1, v2 from e distributed by (v2)").unwrap();
        db.drop_table("s").unwrap();
    }));
    // Colocated self-join on the distribution key (RC's contract step).
    cases.push(time_case("join", m, iters, || {
        db.run(
            "create table j as select a.v1 as x, b.v2 as y \
             from e as a, e as b where a.v1 = b.v1 distributed by (x)",
        )
        .unwrap();
        db.drop_table("j").unwrap();
    }));
    // Grouped min: the representative-selection step.
    cases.push(time_case("group_by", m, iters, || {
        db.run(
            "create table reps as select v1 as v, least(v1, min(v2)) as r \
             from e group by v1 distributed by (v)",
        )
        .unwrap();
        db.drop_table("reps").unwrap();
    }));
    // Edge deduplication after contraction.
    cases.push(time_case("distinct", m, iters, || {
        db.run("create table d as select distinct v1, v2 from e").unwrap();
        db.drop_table("d").unwrap();
    }));
    // Symmetrising union (both edge directions).
    cases.push(time_case("union_all", 2 * m, iters, || {
        db.run(
            "create table dd as select v1, v2 from e \
             union all select v2, v1 from e distributed by (v1)",
        )
        .unwrap();
        db.drop_table("dd").unwrap();
    }));

    // The same self-join under the External profile: distribution is
    // invisible, so both sides reshuffle first.
    let ext = setup(scale, ExecutionProfile::External);
    cases.push(time_case("join_external", m, iters, || {
        ext.run(
            "create table j as select a.v1 as x, b.v2 as y \
             from e as a, e as b where a.v1 = b.v1 distributed by (x)",
        )
        .unwrap();
        ext.drop_table("j").unwrap();
    }));
    cases
}

fn end_to_end(scale: &Scale) -> Vec<Case> {
    let g = gnm_random_graph(scale.e2e_n, scale.e2e_m, 7);
    let mut cases = Vec::new();

    // Best-of-3 like the microbenches: a full algorithm run is long
    // enough that a single sample carries scheduler noise.
    let e2e_iters = if scale.smoke { 1 } else { 3 };
    let mut run_e2e = |name: &'static str, algo: &dyn incc_core::CcAlgorithm| {
        let mut best: Option<(f64, usize)> = None;
        for _ in 0..e2e_iters {
            let db = Cluster::new(ClusterConfig::default());
            let report = run_on_graph(algo, &db, &g, 42).unwrap();
            report.verify_against(&g).unwrap();
            let ms = report.elapsed.as_secs_f64() * 1e3;
            if best.is_none_or(|(b, _)| ms < b) {
                best = Some((ms, report.rounds));
            }
        }
        let (ms, rounds) = best.unwrap();
        cases.push(Case {
            name,
            ms,
            rows_per_sec: scale.e2e_m as f64 / (ms / 1e3),
            extra: Some(format!(
                "\"rounds\": {}, \"ms_per_round\": {:.3}",
                rounds,
                ms / rounds.max(1) as f64
            )),
        });
    };
    run_e2e("rc_end_to_end", &RandomisedContraction::paper());
    run_e2e("hash_to_min_end_to_end", &HashToMin::default());

    // The same RC run with a span trace collecting — the *enabled*
    // cost of tracing. No PREV entry, so it is reported but never
    // gated; compare its ms against rc_end_to_end to read the
    // overhead directly.
    let mut best: Option<(f64, usize, usize)> = None;
    for _ in 0..e2e_iters {
        let db = Cluster::new(ClusterConfig::default());
        let trace = std::sync::Arc::new(incc_mppdb::ActiveTrace::new(1, "bench"));
        db.install_trace(trace.clone());
        let report = run_on_graph(&RandomisedContraction::paper(), &db, &g, 42).unwrap();
        report.verify_against(&g).unwrap();
        db.take_trace();
        let fin = trace.finish("rc_end_to_end", trace.now_ns());
        let ms = report.elapsed.as_secs_f64() * 1e3;
        if best.is_none_or(|(b, _, _)| ms < b) {
            best = Some((ms, report.rounds, fin.spans.len()));
        }
    }
    let (ms, rounds, spans) = best.unwrap();
    cases.push(Case {
        name: "rc_end_to_end_traced",
        ms,
        rows_per_sec: scale.e2e_m as f64 / (ms / 1e3),
        extra: Some(format!(
            "\"rounds\": {rounds}, \"spans\": {spans}, \"ms_per_round\": {:.3}",
            ms / rounds.max(1) as f64
        )),
    });
    cases
}

fn baseline_ms(name: &str) -> Option<f64> {
    BASELINE
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, ms)| ms)
        .filter(|ms| ms.is_finite())
}

fn prev_ms(smoke: bool, name: &str) -> Option<f64> {
    let table = if smoke { SMOKE_PREV } else { PREV };
    table
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, ms)| ms)
        .filter(|ms| ms.is_finite())
}

fn write_json(scale: &Scale, cases: &[Case]) -> std::io::Result<std::path::PathBuf> {
    // Smoke runs land in their own file so CI never clobbers the
    // committed full-scale record.
    let file = if scale.smoke { "engine_bench_smoke.json" } else { "engine_bench.json" };
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results").join(file);
    let mut records = Vec::new();
    let mut speedups = Vec::new();
    for c in cases {
        let mut rec = format!(
            "    {{\"name\": \"{}\", \"ms\": {:.3}, \"rows_per_sec\": {:.0}",
            c.name, c.ms, c.rows_per_sec
        );
        if let Some(extra) = &c.extra {
            rec.push_str(", ");
            rec.push_str(extra);
        }
        if !scale.smoke {
            if let Some(base) = baseline_ms(c.name) {
                rec.push_str(&format!(
                    ", \"baseline_ms\": {:.3}, \"speedup\": {:.2}",
                    base,
                    base / c.ms
                ));
                speedups.push(format!("    \"{}\": {:.2}", c.name, base / c.ms));
            }
        }
        // vs_prev is emitted in smoke mode too (against SMOKE_PREV)
        // so ci.sh can gate on it.
        if let Some(prev) = prev_ms(scale.smoke, c.name) {
            rec.push_str(&format!(
                ", \"prev_ms\": {:.3}, \"vs_prev\": {:.3}",
                prev,
                c.ms / prev
            ));
        }
        rec.push('}');
        records.push(rec);
    }
    let speedup_block = if speedups.is_empty() {
        "null".to_string()
    } else {
        format!("{{\n{}\n  }}", speedups.join(",\n"))
    };
    let json = format!(
        "{{\n  \"bench\": \"engine_kernels\",\n  \"smoke\": {},\n  \
         \"config\": {{\"n\": {}, \"m\": {}, \"e2e_n\": {}, \"e2e_m\": {}, \
         \"segments\": 8, \"iters\": {}}},\n  \
         \"baseline_label\": \"PR 1 engine (pre-vectorization), same container\",\n  \
         \"results\": [\n{}\n  ],\n  \"speedup_vs_baseline\": {}\n}}\n",
        scale.smoke,
        scale.n,
        scale.m,
        scale.e2e_n,
        scale.e2e_m,
        scale.iters,
        records.join(",\n"),
        speedup_block
    );
    std::fs::write(&path, json)?;
    Ok(path)
}

fn main() {
    let scale = Scale::from_env();
    println!(
        "engine kernel bench (n={}, m={}, iters={}, smoke={})",
        scale.n, scale.m, scale.iters, scale.smoke
    );
    let mut cases = micro_benches(&scale);
    cases.extend(end_to_end(&scale));
    println!(
        "{:>24} {:>12} {:>14} {:>10} {:>9}",
        "case", "ms", "rows/sec", "speedup", "vs_prev"
    );
    for c in &cases {
        let speedup = baseline_ms(c.name)
            .filter(|_| !scale.smoke)
            .map(|b| format!("{:.2}x", b / c.ms))
            .unwrap_or_else(|| "-".into());
        let vs_prev = prev_ms(scale.smoke, c.name)
            .map(|p| format!("{:.3}", c.ms / p))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>24} {:>12.3} {:>14.0} {:>10} {:>9}",
            c.name, c.ms, c.rows_per_sec, speedup, vs_prev
        );
    }
    match write_json(&scale, &cases) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write results/engine_bench.json: {e}");
            std::process::exit(1);
        }
    }
}
