//! Per-round convergence trajectories for all five CC algorithms.
//!
//! The paper's central quantity is *rounds*: Theorem 1's O(log |V|)
//! bound, Fig. 9's convergence plots, and the Table V written-bytes
//! accounting are all per-round stories. This bench runs every
//! algorithm on the same graphs and persists the full `RoundReport`
//! trajectory — working rows, bytes written, exchange bytes, SQL
//! statements, wall time per round — to `results/rounds.json`, so the
//! geometric decay (and Hash-to-Min's blow-up shape) is recorded as
//! data rather than as a summary number.
//!
//! Run with `cargo bench -p incc-bench --bench rounds`; set
//! `ROUNDS_BENCH_SMOKE=1` for a seconds-long CI smoke run (tiny
//! sizes, separate output file).

use incc_core::bfs::BfsStrategy;
use incc_core::cracker::Cracker;
use incc_core::driver::{RoundRecorder, RunControl};
use incc_core::hash_to_min::HashToMin;
use incc_core::two_phase::TwoPhase;
use incc_core::{run_on_graph, CcAlgorithm, RandomisedContraction, RunReport};
use incc_graph::generators::{gnm_random_graph, path_graph, PathNumbering};
use incc_graph::EdgeList;
use incc_mppdb::{Cluster, ClusterConfig};
use std::fmt::Write as _;

struct Scale {
    smoke: bool,
    /// Random-graph vertices/edges.
    n: usize,
    m: usize,
    /// Path length for the worst-case trajectory.
    path: usize,
}

impl Scale {
    fn from_env() -> Scale {
        if std::env::var("ROUNDS_BENCH_SMOKE").is_ok_and(|v| v == "1") {
            Scale { smoke: true, n: 200, m: 300, path: 128 }
        } else {
            Scale { smoke: false, n: 10_000, m: 20_000, path: 4_096 }
        }
    }
}

fn algorithms() -> Vec<Box<dyn CcAlgorithm>> {
    vec![
        Box::new(RandomisedContraction::paper()),
        Box::new(HashToMin::default()),
        Box::new(TwoPhase::default()),
        Box::new(Cracker::default()),
        Box::new(BfsStrategy::default()),
    ]
}

/// One algorithm × graph record with its whole round trajectory.
fn record_json(graph_name: &str, report: &RunReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "    {{\"graph\": \"{graph_name}\", \"algorithm\": \"{}\", \"rounds\": {}, \
         \"total_ms\": {:.3}, \"bytes_written\": {}, \"network_bytes\": {}, \"trajectory\": [",
        report.algorithm,
        report.rounds,
        report.elapsed.as_secs_f64() * 1e3,
        report.stats.bytes_written,
        report.stats.network_bytes,
    );
    for (i, r) in report.round_reports.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"round\": {}, \"working_rows\": {}, \"bytes_written\": {}, \
             \"rows_written\": {}, \"network_bytes\": {}, \"statements\": {}, \
             \"retries\": {}, \"ms\": {:.3}}}",
            r.round,
            r.working_rows,
            r.bytes_written,
            r.rows_written,
            r.network_bytes,
            r.statements,
            r.retries,
            r.nanos as f64 / 1e6,
        );
    }
    out.push_str("]}");
    out
}

fn main() {
    let scale = Scale::from_env();
    println!(
        "round telemetry bench (n={}, m={}, path={}, smoke={})",
        scale.n, scale.m, scale.path, scale.smoke
    );
    // On long sequentially numbered paths Hash-to-Min's duplication
    // explodes quadratically (the paper's Table I worst case) and BFS
    // needs a round per vertex, so both get capped path inputs at full
    // scale — the *shape* of their trajectories is the point, and it
    // is fully visible at the capped sizes.
    let cap_for = |name: &str| -> usize {
        if scale.smoke {
            scale.path
        } else if name.to_ascii_lowercase().contains("hash") || name == "HM" {
            scale.path / 4
        } else if name == "BFS" {
            scale.path / 8
        } else {
            scale.path
        }
    };
    let graphs: Vec<(&str, EdgeList, bool)> = vec![
        ("gnm_random", gnm_random_graph(scale.n, scale.m, 42), false),
        (
            "path_sequential",
            path_graph(scale.path, PathNumbering::Sequential, 0),
            true,
        ),
    ];

    let mut records = Vec::new();
    for (graph_name, graph, is_path) in &graphs {
        for algo in algorithms() {
            let cap = cap_for(&algo.name());
            let g_owned;
            let g = if *is_path && cap < scale.path {
                g_owned = path_graph(cap, PathNumbering::Sequential, 0);
                &g_owned
            } else {
                graph
            };
            let db = Cluster::new(ClusterConfig::default());
            let report = run_on_graph(algo.as_ref(), &db, g, 42).expect("algorithm run");
            report.verify_against(g).expect("labelling must be exact");
            assert!(
                !report.round_reports.is_empty(),
                "{} emitted no round telemetry",
                report.algorithm
            );
            println!(
                "{:>16} {:>18} rounds={:<3} total={:.1}ms",
                graph_name,
                report.algorithm,
                report.rounds,
                report.elapsed.as_secs_f64() * 1e3
            );
            records.push(record_json(graph_name, &report));
        }
    }

    // The incremental subsystem's rebuilds are ordinary RC runs through
    // the same engine, so their round trajectories belong in this file
    // too: feed the random graph through a stream, rebuild once with a
    // recorder attached, and record it alongside the batch algorithms.
    {
        use incc_stream::{EdgeOp, IncrementalCc, StreamConfig};
        let graph = &graphs[0].1;
        let cc = IncrementalCc::new("rounds", StreamConfig::default());
        let adds: Vec<EdgeOp> =
            graph.edges.iter().map(|&(u, v)| EdgeOp::Add(u, v)).collect();
        for batch in adds.chunks(512) {
            cc.feed(batch);
        }
        let db = Cluster::new(ClusterConfig::default());
        let before = db.stats();
        let stats_fn = || db.stats();
        let recorder = RoundRecorder::new(&stats_fn);
        let started = std::time::Instant::now();
        let rebuild = cc
            .rebuild(
                &db,
                &RunControl { rounds: Some(&recorder), ..RunControl::default() },
            )
            .expect("stream rebuild");
        let report = RunReport {
            algorithm: "RC (stream rebuild)".into(),
            labels: cc.labelling(),
            rounds: rebuild.rounds,
            round_sizes: rebuild.round_sizes.clone(),
            round_reports: recorder.take(),
            elapsed: started.elapsed(),
            stats: db.stats().delta_since(&before),
            input_bytes: 0,
        };
        report.verify_against(graph).expect("stream labelling must be exact");
        assert!(
            !report.round_reports.is_empty(),
            "stream rebuild emitted no round telemetry"
        );
        println!(
            "{:>16} {:>18} rounds={:<3} total={:.1}ms",
            "gnm_random",
            report.algorithm,
            report.rounds,
            report.elapsed.as_secs_f64() * 1e3
        );
        records.push(record_json("gnm_random", &report));
    }

    let file = if scale.smoke { "rounds_smoke.json" } else { "rounds.json" };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(file);
    let json = format!(
        "{{\n  \"bench\": \"round_telemetry\",\n  \"smoke\": {},\n  \
         \"config\": {{\"n\": {}, \"m\": {}, \"path\": {}, \
         \"hash_to_min_path\": {}, \"bfs_path\": {}, \"seed\": 42}},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        scale.smoke,
        scale.n,
        scale.m,
        scale.path,
        cap_for("HashToMin"),
        cap_for("BFS"),
        records.join(",\n")
    );
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
