//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro all                # everything (the EXPERIMENTS.md run)
//! repro table1             # measured rounds/space scaling
//! repro table2             # dataset census
//! repro table3             # runtimes + Table IV space + Table V written + RSD
//! repro fig2               # path contraction factors
//! repro fig5               # component-size histograms (log-log)
//! repro gamma              # Theorem 1 / Appendix B contraction factors
//! repro sparkcmp           # Section VII-C in-db vs external profile
//! repro ablation           # RC variants × randomisation methods
//! repro adaptive           # adaptive-vs-fixed smoke (bench gate input)
//!
//! options: --scale <denom>  (default 20000; paper sizes are divided by this)
//!          --runs <n>       (default 3)
//!          --quick          (scale 100000, 1 run — smoke test)
//!          --json <dir>     (write machine-readable records)
//! ```

use incc_bench::report::{
    cells_to_json, human_bytes, render_fig6, render_rsd, render_runtimes, render_space,
    render_table, render_written,
};
use incc_bench::{
    ablation, benchmark_suite, convergence, fig2_path_contraction, fig5_histograms,
    gamma_experiment, gamma_search, large_scale_rounds, path_space_blowup, rounds_by_method,
    spark_comparison, suite_algorithms, table1_scaling, table2_census, table3_algorithms,
    transaction_space, union_find_baseline, Config,
};
use incc_graph::datasets::Dataset;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    experiment: String,
    cfg: Config,
    json_dir: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut experiment = "all".to_string();
    let mut cfg = Config::default();
    let mut json_dir = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                cfg.scale_denom = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--runs" => {
                cfg.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--runs needs a number"));
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--quick" => {
                cfg.scale_denom = 100_000;
                cfg.runs = 1;
            }
            "--json" => {
                json_dir = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| die("--json needs a directory")),
                ));
            }
            "--help" | "-h" => {
                println!("see module docs: repro [all|table1|table2|table3|fig2|fig5|gamma|sparkcmp|ablation|adaptive] [--scale N] [--runs N] [--quick] [--json DIR]");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => experiment = other.to_string(),
            other => die(&format!("unknown option {other}")),
        }
    }
    Args { experiment, cfg, json_dir }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2)
}

fn save_json<T: Serialize>(dir: &Option<PathBuf>, name: &str, value: &T) {
    let Some(dir) = dir else { return };
    std::fs::create_dir_all(dir).expect("create json dir");
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, serde_json::to_string_pretty(value).expect("serialize"))
        .expect("write json");
    println!("  [json saved to {}]", path.display());
}

/// Writes pre-rendered JSON text (the suite cells use the hand-rolled
/// renderer so the archived records carry real content).
fn save_json_text(dir: &Option<PathBuf>, name: &str, text: &str) {
    let Some(dir) = dir else { return };
    std::fs::create_dir_all(dir).expect("create json dir");
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, text).expect("write json");
    println!("  [json saved to {}]", path.display());
}

fn main() {
    let args = parse_args();
    let cfg = args.cfg;
    println!(
        "== In-database connected component analysis: reproduction ==\n\
         scale denominator: {} (paper sizes / {}), runs per cell: {}, {} segments\n",
        cfg.scale_denom, cfg.scale_denom, cfg.runs, cfg.segments
    );
    let t0 = Instant::now();
    let run_all = args.experiment == "all";
    match args.experiment.as_str() {
        "all" | "table1" => table1(&cfg, &args.json_dir),
        _ => {}
    }
    if run_all || args.experiment == "table2" {
        table2(&cfg, &args.json_dir);
    }
    if run_all || args.experiment == "table3" {
        table3(&cfg, &args.json_dir);
    }
    if run_all || args.experiment == "fig2" {
        fig2(&cfg, &args.json_dir);
    }
    if run_all || args.experiment == "fig5" {
        fig5(&cfg, &args.json_dir);
    }
    if run_all || args.experiment == "gamma" {
        gamma(&cfg, &args.json_dir);
    }
    if run_all || args.experiment == "sparkcmp" {
        sparkcmp(&cfg, &args.json_dir);
    }
    if run_all || args.experiment == "ablation" {
        run_ablation(&cfg, &args.json_dir);
    }
    if run_all || args.experiment == "adaptive" {
        adaptive_smoke(&cfg, &args.json_dir);
    }
    if !run_all
        && ![
            "table1", "table2", "table3", "fig2", "fig5", "gamma", "sparkcmp", "ablation",
            "adaptive",
        ]
        .contains(&args.experiment.as_str())
    {
        die(&format!("unknown experiment {:?}", args.experiment));
    }
    println!("\ntotal wall time: {:.1}s", t0.elapsed().as_secs_f64());
}

fn table1(cfg: &Config, json: &Option<PathBuf>) {
    println!("-- Table I (measured): rounds as |V| doubles, G(n, 2n) random graphs --");
    let algos = table3_algorithms();
    let sizes = [2_000usize, 4_000, 8_000, 16_000];
    let rows = table1_scaling(cfg, &algos, &sizes);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.clone(),
                r.n.to_string(),
                r.rounds.to_string(),
                format!("{:.2}x", r.space_ratio),
            ]
        })
        .collect();
    println!("{}", render_table(&["algorithm", "|V|", "rounds", "peak space"], &rendered));
    save_json(json, "table1_rounds", &rows);

    println!("-- Table I (measured): peak space on sequentially numbered paths --");
    let sizes = [500usize, 1_000, 2_000, 4_000];
    let rows = path_space_blowup(cfg, &algos, &sizes);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|(a, n, ratio)| {
            vec![
                a.clone(),
                n.to_string(),
                ratio.map(|r| format!("{r:.1}x input")).unwrap_or_else(|| "DNF".into()),
            ]
        })
        .collect();
    println!("{}", render_table(&["algorithm", "path length", "peak space"], &rendered));
    println!("(Hash-to-Min's ratio grows with n — the Θ(|V|²) column of Table I.)\n");

    println!("-- Table I (measured): large-scale rounds via in-memory mirrors --");
    let rows = large_scale_rounds(cfg.seed);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|(a, n, r)| vec![a.clone(), n.to_string(), r.to_string()])
        .collect();
    println!("{}", render_table(&["algorithm", "|V|", "rounds"], &rendered));
    println!(
        "(same per-round logic as the SQL algorithms, big enough to see the\n\
         log vs log² trend; /pathunion rows are Two-Phase's worst case)\n"
    );
    save_json(json, "table1_large_scale", &rows);
}

fn table2(cfg: &Config, json: &Option<PathBuf>) {
    println!("-- Table II: datasets (measured at 1/{} scale vs paper) --", cfg.scale_denom);
    let rows = table2_census(cfg);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.vertices.to_string(),
                r.edges.to_string(),
                r.components.to_string(),
                format!("{} M", r.paper_vertices_m),
                format!("{} M", r.paper_edges_m),
                format!("{} k", r.paper_components_k),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Dataset", "|V|", "|E|", "components", "paper |V|", "paper |E|", "paper comps"],
            &rendered
        )
    );
    save_json(json, "table2_census", &rows);
}

fn table3(cfg: &Config, json: &Option<PathBuf>) {
    println!("-- Tables III/IV/V + Fig. 6: RC/HM/TP/CR + native LT + adaptive on all datasets --");
    let algos = suite_algorithms();
    let cells = benchmark_suite(cfg, &Dataset::TABLE2, &algos);
    let unverified: Vec<_> = cells
        .iter()
        .flat_map(|c| c.runs.iter().map(move |r| (c, r)))
        .filter(|(_, r)| !r.verified)
        .map(|(c, _)| format!("{}/{}", c.dataset, c.algorithm))
        .collect();
    assert!(unverified.is_empty(), "unverified results: {unverified:?}");
    println!("\nTable III — runtimes (seconds, mean of {} runs):", cfg.runs);
    println!("{}", render_runtimes(&cells));
    println!("Fig. 6 — in-database execution times:");
    println!("{}", render_fig6(&cells));
    println!("Section VII-B — relative standard deviation of runtimes:");
    println!("{}", render_rsd(&cells));
    println!("Table IV — maximum space used:");
    println!("{}", render_space(&cells));
    println!("Table V — total bytes written:");
    println!("{}", render_written(&cells));
    // The scalability headline: fit log(time) against log(|E|) over
    // the Candels doubling series (paper: "runtime is essentially
    // linear in the size of the graph").
    let series: Vec<(f64, f64)> = cells
        .iter()
        .filter(|c| c.algorithm == "RC" && c.dataset.starts_with("Candels"))
        .filter_map(|c| {
            let secs = c.mean_secs()?;
            let bytes = c.runs.first()?.input_bytes as f64;
            Some((bytes.ln(), secs.ln()))
        })
        .collect();
    if series.len() >= 3 {
        let n = series.len() as f64;
        let sx: f64 = series.iter().map(|p| p.0).sum();
        let sy: f64 = series.iter().map(|p| p.1).sum();
        let sxx: f64 = series.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = series.iter().map(|p| p.0 * p.1).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        println!(
            "scalability: RC runtime ~ |E|^{slope:.2} over the Candels series \
             (paper: \"essentially linear\", exponent ~1)\n"
        );
    }
    println!("context: in-memory union-find (the sequential optimum, not in-database):");
    for (ds, secs) in union_find_baseline(cfg, &Dataset::TABLE2) {
        println!("  {ds}: {secs:.3}s");
    }
    println!("\ntransaction mode (drops deferred to commit; paper Table V rationale), Candels20:");
    println!(
        "{}",
        render_table(
            &["algorithm", "normal peak", "txn peak", "bytes written"],
            &transaction_space(cfg, Dataset::Candels(20))
                .iter()
                .map(|(a, n, t, w)| vec![
                    a.clone(),
                    human_bytes(*n),
                    human_bytes(*t),
                    human_bytes(*w)
                ])
                .collect::<Vec<_>>()
        )
    );
    println!("(transactional peak tracks bytes written, not the live working set)\n");
    // Per-algorithm totals across the suite, DNF cells counted as
    // losses for the algorithm that did not finish.
    let algo_names: Vec<String> = {
        let mut names = Vec::new();
        for c in &cells {
            if !names.contains(&c.algorithm) {
                names.push(c.algorithm.clone());
            }
        }
        names
    };
    println!("suite totals (sum of mean cell seconds; DNF cells excluded from their total):");
    for name in &algo_names {
        let (total, finished) = cells
            .iter()
            .filter(|c| c.algorithm == *name)
            .fold((0.0f64, 0usize), |(t, n), c| match c.mean_secs() {
                Some(s) => (t + s, n + 1),
                None => (t, n),
            });
        println!("  {name}: {total:.3}s over {finished} datasets");
    }
    save_json_text(json, "table3_suite", &cells_to_json(&cells));
}

/// The adaptive smoke comparison behind `ci.sh`'s bench gate: three
/// small datasets, every suite algorithm, five runs each — enough for
/// `scripts/bench_gate.py --adaptive` to assert the adaptive driver's
/// median lands within 5% of the best fixed algorithm per dataset.
fn adaptive_smoke(cfg: &Config, json: &Option<PathBuf>) {
    println!("-- Adaptive smoke: suite algorithms on three small datasets --");
    let mut cfg = *cfg;
    // The smoke gate holds the adaptive driver to 1.05x of the best
    // fixed algorithm, so cells must run long enough that the bounded
    // census probe (sub-millisecond) cannot dominate, and single runs
    // are too noisy to gate on: run at 2x the default scale and give
    // the gate five runs per cell to take a stable median of, even
    // under --quick.
    cfg.runs = cfg.runs.clamp(5, 5);
    cfg.scale_denom = cfg.scale_denom.min(10_000);
    let datasets = [Dataset::Candels(10), Dataset::BitcoinAddresses, Dataset::PathUnion10];
    let cells = benchmark_suite(&cfg, &datasets, &suite_algorithms());
    println!("{}", render_runtimes(&cells));
    for c in &cells {
        if let Some(picked) = c.runs.first().and_then(|r| r.picked.as_ref()) {
            println!("  {}: {}", c.dataset, picked);
        }
    }
    save_json_text(json, "adaptive_smoke", &cells_to_json(&cells));
}

fn fig2(_cfg: &Config, json: &Option<PathBuf>) {
    println!("-- Fig. 2: path-graph contraction factors --");
    let r = fig2_path_contraction(1000, 100, 7);
    println!(
        "sequential numbering, identity order: shrink factor {:.4} (worst case ≈ 1 − 1/n)",
        r.sequential_shrink
    );
    for (m, g) in &r.randomised_shrink {
        println!("randomised ({m}): mean shrink factor {g:.4}");
    }
    println!("(randomisation contracts the path by half per round - far below the 3/4 bound)\n");
    save_json(json, "fig2", &r);
}

fn fig5(cfg: &Config, json: &Option<PathBuf>) {
    println!("-- Fig. 5: component-size census (log2 buckets) --");
    let (rows, slopes) = fig5_histograms(cfg);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                format!("2^{}..2^{}", r.bucket, r.bucket + 1),
                r.count.to_string(),
                "#".repeat(((r.count as f64).log2().max(0.0) as usize).min(60)),
            ]
        })
        .collect();
    println!("{}", render_table(&["Dataset", "size bucket", "components", "log scale"], &rendered));
    for (ds, slope) in &slopes {
        println!("{ds}: fitted log-log slope {slope:.2} (roughly linear decay = scale-free)");
    }
    println!();
    save_json(json, "fig5", &rows);
}

fn gamma(_cfg: &Config, json: &Option<PathBuf>) {
    println!("-- Theorem 1 / Appendix B: contraction factors --");
    let rows = gamma_experiment(11, 60);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.family.clone(),
                r.method.clone(),
                format!("{:.4}", r.gamma),
                format!("{:.4}", r.bound),
                if r.gamma <= r.bound + 0.03 { "ok".into() } else { "VIOLATION".to_string() },
            ]
        })
        .collect();
    println!("{}", render_table(&["family", "method", "gamma", "bound", ""], &rendered));
    let methods = rounds_by_method(4096, 3);
    println!("rounds to contract a 4096-path, by method:");
    for (m, rounds) in &methods {
        println!("  {m}: {rounds} rounds (log2 n = 12)");
    }
    println!("\nper-round edge counts on Candels20 (Theorem 1's geometric decay, measured in SQL):");
    let curves = convergence(_cfg, Dataset::Candels(20));
    for (algo, sizes) in &curves {
        let series: Vec<String> = sizes.iter().map(|s| s.to_string()).collect();
        println!("  {algo}: {}", series.join(" -> "));
    }
    save_json(json, "convergence", &curves);
    println!("\nworst-gamma graph search (exact, all undirected graphs on n vertices):");
    let search = gamma_search(6);
    for (n, edges, g) in &search {
        println!(
            "  n={n}: max gamma {g:.4} ({} edges: {edges:?}) — paper's best known 0.5634",
            edges.len()
        );
    }
    println!("\nannealed worst-gamma search (exact inclusion-exclusion scoring):");
    for n in [8usize, 10, 12, 14] {
        let (edges, g) = incc_core::gamma::anneal_worst_gamma(n, 4000, 11);
        println!(
            "  n={n}: best gamma {g:.5} ({} edges) — Fig. 9's record is 0.56343",
            edges.len()
        );
    }
    println!();
    save_json(json, "gamma", &rows);
    save_json(json, "gamma_search", &search);
}

fn sparkcmp(cfg: &Config, json: &Option<PathBuf>) {
    println!("-- Section VII-C: in-database vs external execution profile --");
    let cells = spark_comparison(cfg);
    println!("{}", render_runtimes(&cells));
    // Highlight the headline ratios.
    let get = |ds: &str, algo: &str| {
        cells
            .iter()
            .find(|c| c.dataset == ds && c.algorithm == algo)
            .and_then(|c| c.mean_secs())
    };
    if let (Some(indb), Some(ext)) = (get("Candels10/in-db", "RC"), get("Candels10/external", "RC"))
    {
        println!(
            "RC on Candels10: external/in-db = {:.2}x (paper reports Spark SQL ≈ 2.3x slower)",
            ext / indb
        );
    }
    if let (Some(rc), Some(cr)) = (get("Streets/in-db", "RC"), get("Streets/in-db", "CR")) {
        println!(
            "Streets-of-Italy-like: RC {rc:.3}s vs Cracker {cr:.3}s ({:.2}x; paper: 143s vs 261s ≈ 1.8x)",
            cr / rc
        );
    }
    println!("network bytes (communication cost) per cell:");
    for c in &cells {
        if let Some(r) = c.runs.first() {
            println!(
                "  {} / {}: {}",
                c.dataset,
                c.algorithm,
                human_bytes(r.network_bytes)
            );
        }
    }
    println!();
    save_json(json, "sparkcmp", &cells);
}

fn run_ablation(cfg: &Config, json: &Option<PathBuf>) {
    println!("-- Ablation A1/A2: RC space variants × randomisation methods (Candels10) --");
    let cells = ablation(cfg, Dataset::Candels(10));
    let rendered: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let (secs, rounds, space, written, net) = c
                .runs
                .first()
                .map(|r| {
                    (
                        format!("{:.3}", c.mean_secs().unwrap_or(r.secs)),
                        r.rounds.to_string(),
                        human_bytes(c.max_space().unwrap_or(r.max_space)),
                        human_bytes(c.mean_bytes_written().unwrap_or(r.bytes_written)),
                        human_bytes(r.network_bytes),
                    )
                })
                .unwrap_or_else(|| {
                    let d = format!("DNF({})", c.dnf.clone().unwrap_or_default());
                    (d.clone(), d.clone(), d.clone(), d.clone(), d)
                });
            vec![c.algorithm.clone(), secs, rounds, space, written, net]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["configuration", "secs", "rounds", "peak space", "written", "network"],
            &rendered
        )
    );
    println!(
        "(random_reals ships a per-vertex table across segments each round;\n\
         the field methods ship two integers — compare the network column.)\n"
    );
    save_json(json, "ablation", &cells);
}
