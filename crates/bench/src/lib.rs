//! Experiment harness.
//!
//! Each public function regenerates one table or figure of the paper's
//! evaluation (Section VII) at a configurable scale, returning
//! structured records that the `repro` binary renders as the paper's
//! rows and archives as JSON. The experiment index lives in
//! `DESIGN.md`; measured-vs-paper comparisons in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use experiments::*;

use incc_core::driver::CcAlgorithm;
use incc_core::{bfs::BfsStrategy, cracker::Cracker, hash_to_min::HashToMin, two_phase::TwoPhase};
use incc_core::{AdaptiveDriver, LiuTarjan, RandomisedContraction, SpaceVariant};
use incc_ffield::Method;

/// Configuration shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Scale denominator: paper dataset sizes are divided by this
    /// (default 20 000 → the largest dataset has ≈ 200 k edge rows;
    /// pass 4000 for the ×5 larger "full" run).
    pub scale_denom: u64,
    /// Repetitions per (dataset, algorithm) cell — the paper uses 3.
    pub runs: usize,
    /// Segments in the simulated cluster.
    pub segments: usize,
    /// Space guard as a multiple of the loaded input bytes; runs
    /// exceeding it report "did not finish", as the paper's dashes.
    pub space_limit_factor: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale_denom: 20_000,
            runs: 3,
            segments: 8,
            space_limit_factor: 24,
            seed: 0x1CDE_2020,
        }
    }
}

/// The paper's four compared algorithms (Table III columns), in order.
pub fn table3_algorithms() -> Vec<Box<dyn CcAlgorithm>> {
    vec![
        Box::new(RandomisedContraction::paper()),
        Box::new(HashToMin::default()),
        Box::new(TwoPhase::default()),
        Box::new(Cracker::default()),
    ]
}

/// The full suite: the paper's four plus the engine-native Liu–Tarjan
/// rounds and the census-driven adaptive driver.
pub fn suite_algorithms() -> Vec<Box<dyn CcAlgorithm>> {
    let mut out = table3_algorithms();
    out.push(Box::new(LiuTarjan::default()));
    out.push(Box::<AdaptiveDriver>::default());
    out
}

/// All algorithm configurations exercised by the ablation experiment:
/// RC variants/methods plus the BFS strategy of Section IV.
pub fn ablation_algorithms() -> Vec<Box<dyn CcAlgorithm>> {
    let mut out: Vec<Box<dyn CcAlgorithm>> = Vec::new();
    for method in Method::ALL {
        out.push(Box::new(RandomisedContraction::with(method, SpaceVariant::Fast)));
    }
    out.push(Box::new(RandomisedContraction::with(
        Method::Gf64,
        SpaceVariant::Deterministic,
    )));
    out.push(Box::new(BfsStrategy::default()));
    out
}
