//! Rendering experiment results as the paper's tables.

use crate::experiments::CellResult;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Formats a byte count as the paper's tables do (GB with the scale
/// shrunk, so MB/KB here).
pub fn human_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.1} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

/// A generic fixed-width table printer.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
        }
        out.push('\n');
    };
    line(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(
        &mut out,
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
    );
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Renders suite cells as pretty-printed JSON. Hand-rolled (the whole
/// workspace renders JSON without a serializer); the shape matches the
/// archived `results/table3_suite.json` records, extended with the
/// per-run `picked` decision for adaptive cells and a `dnf` reason for
/// did-not-finish cells, so downstream tooling (`scripts/bench_gate.py`)
/// can aggregate while tolerating both.
pub fn cells_to_json(cells: &[CellResult]) -> String {
    let esc = |s: &str| {
        s.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    };
    let mut out = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "  {{\n    \"dataset\": \"{}\",\n    \"algorithm\": \"{}\",\n    \"runs\": [",
            esc(&c.dataset),
            esc(&c.algorithm)
        );
        for (j, r) in c.runs.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {{\n        \"secs\": {},\n        \"rounds\": {},\n        \
                 \"max_space\": {},\n        \"bytes_written\": {},\n        \
                 \"network_bytes\": {},\n        \"queries\": {},\n        \
                 \"input_bytes\": {},\n        \"verified\": {},\n        \"picked\": {}\n      }}",
                r.secs,
                r.rounds,
                r.max_space,
                r.bytes_written,
                r.network_bytes,
                r.queries,
                r.input_bytes,
                r.verified,
                match &r.picked {
                    Some(p) => format!("\"{}\"", esc(p)),
                    None => "null".into(),
                },
            );
        }
        if !c.runs.is_empty() {
            out.push_str("\n    ");
        }
        let _ = write!(
            out,
            "],\n    \"dnf\": {}\n  }}",
            match &c.dnf {
                Some(d) => format!("\"{}\"", esc(d)),
                None => "null".into(),
            }
        );
    }
    out.push_str("\n]\n");
    out
}

/// Pivot of the benchmark suite by dataset × algorithm, with one value
/// extractor — renders Tables III (seconds), IV (max space) and V
/// (bytes written) from the same cells.
pub fn pivot_cells(
    cells: &[CellResult],
    value: impl Fn(&CellResult) -> Option<String>,
) -> (Vec<&str>, Vec<Vec<String>>) {
    let datasets: Vec<&str> = {
        let mut seen = BTreeSet::new();
        cells
            .iter()
            .filter(|c| seen.insert(c.dataset.as_str()))
            .map(|c| c.dataset.as_str())
            .collect()
    };
    let algorithms: Vec<&str> = {
        let mut seen = BTreeSet::new();
        cells
            .iter()
            .filter(|c| seen.insert(c.algorithm.as_str()))
            .map(|c| c.algorithm.as_str())
            .collect()
    };
    let mut rows = Vec::new();
    for ds in &datasets {
        let mut row = vec![ds.to_string()];
        for algo in &algorithms {
            let cell = cells
                .iter()
                .find(|c| c.dataset == *ds && c.algorithm == *algo);
            row.push(match cell {
                Some(c) => match &c.dnf {
                    Some(reason) => format!("DNF({reason})"),
                    None => value(c).unwrap_or_else(|| "-".into()),
                },
                None => "-".into(),
            });
        }
        rows.push(row);
    }
    (algorithms, rows)
}

/// Renders the Table III view (mean seconds per cell).
pub fn render_runtimes(cells: &[CellResult]) -> String {
    let (algos, rows) = pivot_cells(cells, |c| c.mean_secs().map(|s| format!("{s:.3}")));
    let mut headers = vec!["Dataset"];
    headers.extend(algos);
    render_table(&headers, &rows)
}

/// Renders the Table IV view (max space, with input size first).
pub fn render_space(cells: &[CellResult]) -> String {
    let (algos, mut rows) = pivot_cells(cells, |c| c.max_space().map(human_bytes));
    // Prepend the input column.
    for row in rows.iter_mut() {
        let input = cells
            .iter()
            .find(|c| c.dataset == row[0] && !c.runs.is_empty())
            .map(|c| human_bytes(c.runs[0].input_bytes))
            .unwrap_or_else(|| "-".into());
        row.insert(1, input);
    }
    let mut headers = vec!["Dataset", "input"];
    headers.extend(algos);
    render_table(&headers, &rows)
}

/// Renders the Table V view (total bytes written).
pub fn render_written(cells: &[CellResult]) -> String {
    let (algos, mut rows) = pivot_cells(cells, |c| c.mean_bytes_written().map(human_bytes));
    for row in rows.iter_mut() {
        let input = cells
            .iter()
            .find(|c| c.dataset == row[0] && !c.runs.is_empty())
            .map(|c| human_bytes(c.runs[0].input_bytes))
            .unwrap_or_else(|| "-".into());
        row.insert(1, input);
    }
    let mut headers = vec!["Dataset", "input"];
    headers.extend(algos);
    render_table(&headers, &rows)
}

/// Renders the Fig. 6 horizontal bar chart: per dataset, one bar per
/// algorithm scaled to the slowest cell, annotated with seconds — the
/// chart form of Table III.
pub fn render_fig6(cells: &[CellResult]) -> String {
    let max_secs = cells
        .iter()
        .filter_map(CellResult::mean_secs)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let mut out = String::new();
    let mut datasets: Vec<&str> = Vec::new();
    for c in cells {
        if !datasets.contains(&c.dataset.as_str()) {
            datasets.push(&c.dataset);
        }
    }
    let width = 46usize;
    for ds in datasets {
        let _ = writeln!(out, "{ds}");
        for c in cells.iter().filter(|c| c.dataset == ds) {
            match c.mean_secs() {
                Some(secs) => {
                    let bar = ((secs / max_secs) * width as f64).ceil() as usize;
                    let _ = writeln!(
                        out,
                        "  {:<4} {:<width$} {:.3}s",
                        c.algorithm,
                        "█".repeat(bar.max(1)),
                        secs,
                        width = width
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  {:<4} {} did not finish",
                        c.algorithm,
                        c.dnf.as_deref().unwrap_or("-")
                    );
                }
            }
        }
    }
    out
}

/// Renders the Section VII-B variability view (relative std-dev %).
pub fn render_rsd(cells: &[CellResult]) -> String {
    let (algos, rows) =
        pivot_cells(cells, |c| c.relative_stddev().map(|r| format!("{:.1}%", r * 100.0)));
    let mut headers = vec!["Dataset"];
    headers.extend(algos);
    render_table(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::RunRecord;

    fn cell(ds: &str, algo: &str, secs: &[f64], dnf: Option<&str>) -> CellResult {
        CellResult {
            dataset: ds.into(),
            algorithm: algo.into(),
            runs: secs
                .iter()
                .map(|&s| RunRecord {
                    secs: s,
                    rounds: 3,
                    max_space: 1000,
                    bytes_written: 5000,
                    network_bytes: 100,
                    queries: 10,
                    input_bytes: 256,
                    verified: true,
                    picked: None,
                })
                .collect(),
            dnf: dnf.map(String::from),
        }
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(17), "17 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 << 20), "3.0 MiB");
        assert_eq!(human_bytes(5 << 30), "5.0 GiB");
    }

    #[test]
    fn pivot_preserves_order_and_marks_dnf() {
        let cells = vec![
            cell("A", "RC", &[1.0], None),
            cell("A", "HM", &[], Some("space limit")),
            cell("B", "RC", &[2.0, 4.0], None),
        ];
        let table = render_runtimes(&cells);
        assert!(table.contains("DNF(space limit)"), "{table}");
        assert!(table.contains("3.000"), "mean of 2 and 4: {table}");
        let a_pos = table.find("A ").unwrap();
        let b_pos = table.find("B ").unwrap();
        assert!(a_pos < b_pos);
    }

    #[test]
    fn rsd_requires_two_runs() {
        let cells = vec![cell("A", "RC", &[1.0], None)];
        assert!(render_rsd(&cells).contains('-'));
        let cells = vec![cell("A", "RC", &[1.0, 1.0], None)];
        assert!(render_rsd(&cells).contains("0.0%"));
    }

    #[test]
    fn cells_json_records_picked_and_dnf() {
        let mut adaptive = cell("A", "AD", &[1.0], None);
        adaptive.runs[0].picked = Some("picked LT (native)".into());
        let failed = cell("A", "HM", &[], Some("space limit"));
        let json = cells_to_json(&[adaptive, failed]);
        assert!(json.contains("\"picked\": \"picked LT (native)\""), "{json}");
        assert!(json.contains("\"picked\": null") || !json.contains("\"picked\": \"\""));
        assert!(json.contains("\"dnf\": \"space limit\""), "{json}");
        assert!(json.contains("\"dnf\": null"), "{json}");
        assert!(json.contains("\"runs\": []"), "empty runs stay compact: {json}");
        // Balanced brackets — a cheap well-formedness check without a
        // JSON parser in the workspace.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert!(json.trim_start().starts_with('[') && json.trim_end().ends_with(']'));
    }

    #[test]
    fn space_table_has_input_column() {
        let cells = vec![cell("A", "RC", &[1.0], None)];
        let t = render_space(&cells);
        assert!(t.contains("input"));
        assert!(t.contains("256 B"));
    }
}
