//! The experiments, one per paper artefact.

use crate::Config;
use incc_core::driver::{run_on_graph, run_on_session, CcAlgorithm, RunReport};
use incc_core::gamma::{
    contract_to_completion, exact_expected_representatives,
    exact_expected_representatives_directed, measured_gamma, sequential_path_worst_case,
};
use incc_core::{RandomisedContraction, SpaceVariant};
use incc_ffield::Method;
use incc_graph::census::{census, log2_size_histogram, loglog_slope};
use incc_graph::datasets::Dataset;
use incc_graph::generators::{
    complete_graph, cycle_graph, gnm_random_graph, path_graph, path_union, star_graph,
    PathNumbering,
};
use incc_graph::EdgeList;
use incc_mppdb::{Cluster, ClusterConfig, ExecutionProfile};
use serde::Serialize;

/// One measured run of one algorithm on one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// Wall-clock seconds of the in-database run.
    pub secs: f64,
    /// Algorithm rounds.
    pub rounds: usize,
    /// High-water live bytes (Table IV metric).
    pub max_space: u64,
    /// Total bytes written (Table V metric).
    pub bytes_written: u64,
    /// Bytes shuffled between segments.
    pub network_bytes: u64,
    /// SQL statements executed.
    pub queries: u64,
    /// Loaded input size in bytes.
    pub input_bytes: u64,
    /// Whether the labelling matched union–find ground truth.
    pub verified: bool,
    /// The adaptive driver's decision record for this run (which
    /// algorithm the census picked, and why); `None` for fixed
    /// algorithms.
    pub picked: Option<String>,
}

impl RunRecord {
    fn from_report(report: &RunReport, graph: &EdgeList, picked: Option<String>) -> RunRecord {
        RunRecord {
            secs: report.elapsed.as_secs_f64(),
            rounds: report.rounds,
            max_space: report.stats.max_live_bytes,
            bytes_written: report.stats.bytes_written,
            network_bytes: report.stats.network_bytes,
            queries: report.stats.queries,
            input_bytes: report.input_bytes,
            verified: report.verify_against(graph).is_ok(),
            picked,
        }
    }
}

/// All runs of one (dataset, algorithm) cell.
#[derive(Debug, Clone, Serialize)]
pub struct CellResult {
    /// Dataset row label.
    pub dataset: String,
    /// Algorithm column label.
    pub algorithm: String,
    /// Completed runs.
    pub runs: Vec<RunRecord>,
    /// "Did not finish" reason, if the cell failed (the paper's dash).
    pub dnf: Option<String>,
}

impl CellResult {
    /// Mean seconds over completed runs.
    pub fn mean_secs(&self) -> Option<f64> {
        if self.runs.is_empty() {
            return None;
        }
        Some(self.runs.iter().map(|r| r.secs).sum::<f64>() / self.runs.len() as f64)
    }

    /// Relative standard deviation of run times (Section VII-B's
    /// variability metric), when at least two runs completed.
    pub fn relative_stddev(&self) -> Option<f64> {
        if self.runs.len() < 2 {
            return None;
        }
        let mean = self.mean_secs()?;
        let var = self.runs.iter().map(|r| (r.secs - mean).powi(2)).sum::<f64>()
            / (self.runs.len() - 1) as f64;
        Some(var.sqrt() / mean)
    }

    /// Max live space over runs (bytes).
    pub fn max_space(&self) -> Option<u64> {
        self.runs.iter().map(|r| r.max_space).max()
    }

    /// Mean bytes written.
    pub fn mean_bytes_written(&self) -> Option<u64> {
        if self.runs.is_empty() {
            return None;
        }
        Some(self.runs.iter().map(|r| r.bytes_written).sum::<u64>() / self.runs.len() as u64)
    }
}

fn new_cluster(cfg: &Config, graph: &EdgeList, profile: ExecutionProfile) -> Cluster {
    // The guard scales with the input, like a fixed-size cluster does:
    // inputs are 1/denominator of the paper's, so is the "disk".
    let input_bytes = graph.edge_count() as u64 * 16;
    Cluster::new(ClusterConfig {
        segments: cfg.segments,
        profile,
        seed: cfg.seed,
        space_limit: input_bytes * cfg.space_limit_factor + (1 << 16),
        ..Default::default()
    })
}

/// Runs one (dataset, algorithm) cell: `cfg.runs` repetitions, a fresh
/// cluster each, stopping at the first failure (space guard or round
/// guard), which is recorded as "did not finish".
pub fn run_cell(
    cfg: &Config,
    dataset_name: &str,
    graph: &EdgeList,
    algo: &dyn CcAlgorithm,
    profile: ExecutionProfile,
) -> CellResult {
    let mut cell = CellResult {
        dataset: dataset_name.to_string(),
        algorithm: algo.name(),
        runs: Vec::new(),
        dnf: None,
    };
    for run in 0..cfg.runs {
        let db = new_cluster(cfg, graph, profile);
        match run_on_graph(algo, &db, graph, cfg.seed ^ (run as u64).wrapping_mul(0x9E37)) {
            Ok(report) => {
                cell.runs
                    .push(RunRecord::from_report(&report, graph, algo.last_decision()))
            }
            Err(e) => {
                cell.dnf = Some(if e.is_space_limit() {
                    "space limit".to_string()
                } else {
                    e.to_string()
                });
                break;
            }
        }
    }
    cell
}

/// Tables III, IV and V plus Fig. 6: every dataset × every algorithm,
/// measuring time, peak space and bytes written in the same runs.
///
/// Runs are interleaved round-robin across algorithms (run 0 of every
/// algorithm, then run 1, ...) rather than cell-by-cell, so slow
/// drift in machine state over the sweep (allocator growth, frequency
/// scaling) lands evenly on every algorithm instead of systematically
/// penalising whichever column runs last — the adaptive-selection
/// gate compares columns against each other at a 5% margin.
pub fn benchmark_suite(
    cfg: &Config,
    datasets: &[Dataset],
    algorithms: &[Box<dyn CcAlgorithm>],
) -> Vec<CellResult> {
    let mut out = Vec::new();
    for ds in datasets {
        let graph = ds.generate(cfg.scale_denom, cfg.seed);
        let mut cells: Vec<CellResult> = algorithms
            .iter()
            .map(|algo| CellResult {
                dataset: ds.name(),
                algorithm: algo.name(),
                runs: Vec::new(),
                dnf: None,
            })
            .collect();
        for run in 0..cfg.runs {
            for (algo, cell) in algorithms.iter().zip(cells.iter_mut()) {
                if cell.dnf.is_some() {
                    continue;
                }
                let db = new_cluster(cfg, &graph, ExecutionProfile::Colocated);
                let seed = cfg.seed ^ (run as u64).wrapping_mul(0x9E37);
                match run_on_graph(algo.as_ref(), &db, &graph, seed) {
                    Ok(report) => cell
                        .runs
                        .push(RunRecord::from_report(&report, &graph, algo.last_decision())),
                    Err(e) => {
                        cell.dnf = Some(if e.is_space_limit() {
                            "space limit".to_string()
                        } else {
                            e.to_string()
                        });
                    }
                }
            }
        }
        out.extend(cells);
    }
    out
}

/// One Table II row: measured census vs the paper's original sizes.
#[derive(Debug, Clone, Serialize)]
pub struct CensusRow {
    /// Dataset name.
    pub dataset: String,
    /// Measured |V|.
    pub vertices: usize,
    /// Measured |E| (rows).
    pub edges: usize,
    /// Measured component count.
    pub components: usize,
    /// Paper |V| in millions.
    pub paper_vertices_m: u64,
    /// Paper |E| in millions.
    pub paper_edges_m: u64,
    /// Paper component count in thousands.
    pub paper_components_k: u64,
}

/// Table II: the dataset census at the configured scale.
pub fn table2_census(cfg: &Config) -> Vec<CensusRow> {
    Dataset::TABLE2
        .iter()
        .map(|ds| {
            let g = ds.generate(cfg.scale_denom, cfg.seed);
            let c = census(&g);
            let pc = ds.paper_census();
            CensusRow {
                dataset: ds.name(),
                vertices: c.vertices,
                edges: c.edges,
                components: c.components,
                paper_vertices_m: pc.vertices_m,
                paper_edges_m: pc.edges_m,
                paper_components_k: pc.components_k,
            }
        })
        .collect()
}

/// One Table I scaling observation.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Vertex count of the input.
    pub n: usize,
    /// Rounds taken.
    pub rounds: usize,
    /// Peak space over input bytes.
    pub space_ratio: f64,
}

/// Table I, measured: round counts as |V| doubles (the O(log |V|) vs
/// O(log² |V|) claims) on random graphs, plus the space behaviour on
/// the adversarial path (linear for RC/TP, quadratic for HM).
pub fn table1_scaling(
    cfg: &Config,
    algorithms: &[Box<dyn CcAlgorithm>],
    sizes: &[usize],
) -> Vec<ScalingRow> {
    let mut out = Vec::new();
    for &n in sizes {
        let graph = gnm_random_graph(n, 2 * n, cfg.seed ^ n as u64);
        for algo in algorithms {
            let db = new_cluster(cfg, &graph, ExecutionProfile::Colocated);
            if let Ok(report) = run_on_graph(algo.as_ref(), &db, &graph, cfg.seed) {
                out.push(ScalingRow {
                    algorithm: algo.name(),
                    n,
                    rounds: report.rounds,
                    space_ratio: report.stats.max_live_bytes as f64
                        / report.input_bytes.max(1) as f64,
                });
            }
        }
    }
    out
}

/// Space blow-up on sequentially numbered paths: the Table I space
/// column, measured. Returns `(algorithm, n, space_ratio_or_dnf)`.
pub fn path_space_blowup(
    cfg: &Config,
    algorithms: &[Box<dyn CcAlgorithm>],
    sizes: &[usize],
) -> Vec<(String, usize, Option<f64>)> {
    let mut out = Vec::new();
    for &n in sizes {
        let graph = path_graph(n, PathNumbering::Sequential, 0);
        for algo in algorithms {
            let db = new_cluster(cfg, &graph, ExecutionProfile::Colocated);
            let ratio = run_on_graph(algo.as_ref(), &db, &graph, cfg.seed)
                .ok()
                .map(|r| r.stats.max_live_bytes as f64 / r.input_bytes.max(1) as f64);
            out.push((algo.name(), n, ratio));
        }
    }
    out
}

/// Fig. 2: shrink factors of an n-path under adversarial sequential
/// numbering (1 − 1/n) vs the randomised expectation (≈ 0.72).
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Result {
    /// Path length used.
    pub n: usize,
    /// Shrink factor under sequential numbering with identity hash.
    pub sequential_shrink: f64,
    /// Mean shrink factor per randomisation method.
    pub randomised_shrink: Vec<(String, f64)>,
}

/// Runs the Fig. 2 demonstration.
pub fn fig2_path_contraction(n: usize, trials: usize, seed: u64) -> Fig2Result {
    let step = sequential_path_worst_case(n);
    let edges: Vec<(u64, u64)> = (0..n as u64 - 1).map(|i| (i, i + 1)).collect();
    let randomised_shrink = Method::ALL
        .iter()
        .map(|&m| (m.name().to_string(), measured_gamma(&edges, m, seed, trials)))
        .collect();
    Fig2Result { n, sequential_shrink: step.shrink_factor(), randomised_shrink }
}

/// One Fig. 5 series point: components with size in `[2^bucket, 2^(bucket+1))`.
#[derive(Debug, Clone, Serialize)]
pub struct HistRow {
    /// Dataset name.
    pub dataset: String,
    /// log2 size bucket.
    pub bucket: u32,
    /// Number of components in the bucket.
    pub count: usize,
}

/// Fig. 5: log–log component-size census for the Andromeda-like and
/// Bitcoin-address-like graphs, plus the fitted slope per dataset.
pub fn fig5_histograms(cfg: &Config) -> (Vec<HistRow>, Vec<(String, f64)>) {
    let mut rows = Vec::new();
    let mut slopes = Vec::new();
    for ds in [Dataset::Andromeda, Dataset::BitcoinAddresses] {
        let g = ds.generate(cfg.scale_denom, cfg.seed);
        let hist = log2_size_histogram(&g);
        if let Some(s) = loglog_slope(&hist) {
            slopes.push((ds.name(), s));
        }
        for (bucket, count) in hist {
            rows.push(HistRow { dataset: ds.name(), bucket, count });
        }
    }
    (rows, slopes)
}

/// One contraction-factor observation (Theorem 1 / Appendix B).
#[derive(Debug, Clone, Serialize)]
pub struct GammaRow {
    /// Graph family.
    pub family: String,
    /// Randomisation method, or "exact" for enumerated expectation.
    pub method: String,
    /// Observed or exact expected shrink factor.
    pub gamma: f64,
    /// The applicable theoretical bound.
    pub bound: f64,
}

/// The Theorem 1 / Appendix B experiment: measured first-round shrink
/// factors per method on assorted families (bound 3/4), exact
/// enumerated expectations on small graphs (bound 2/3 under full
/// randomisation), and the directed 3-cycle tightness check.
pub fn gamma_experiment(seed: u64, trials: usize) -> Vec<GammaRow> {
    let mut rows = Vec::new();
    let families: Vec<(&str, Vec<(u64, u64)>)> = vec![
        ("path-200", path_graph(200, PathNumbering::Sequential, 0).edges),
        ("cycle-111", cycle_graph(111).edges),
        ("star-100", star_graph(100).edges),
        ("complete-24", complete_graph(24).edges),
        ("gnm-100-300", gnm_random_graph(100, 300, seed).edges),
    ];
    for (name, edges) in &families {
        for m in Method::ALL {
            rows.push(GammaRow {
                family: name.to_string(),
                method: m.name().to_string(),
                gamma: measured_gamma(edges, m, seed, trials),
                bound: 0.75,
            });
        }
    }
    // Exact expectations under full randomisation (Appendix B: ≤ 2/3).
    for n in [2usize, 3, 4, 5, 6, 7] {
        let edges: Vec<(u64, u64)> = (0..n as u64 - 1).map(|i| (i, i + 1)).collect();
        rows.push(GammaRow {
            family: format!("exact-path-{n}"),
            method: "exact".into(),
            gamma: exact_expected_representatives(&edges) / n as f64,
            bound: 2.0 / 3.0,
        });
    }
    for n in [3usize, 4, 5, 6, 7] {
        let edges = cycle_graph(n).edges;
        rows.push(GammaRow {
            family: format!("exact-cycle-{n}"),
            method: "exact".into(),
            gamma: exact_expected_representatives(&edges) / n as f64,
            bound: 2.0 / 3.0,
        });
    }
    // Tightness: the directed 3-cycle attains exactly 2/3.
    rows.push(GammaRow {
        family: "exact-directed-3-cycle".into(),
        method: "exact".into(),
        gamma: exact_expected_representatives_directed(&[(0, 1), (1, 2), (2, 0)]) / 3.0,
        bound: 2.0 / 3.0,
    });
    rows
}

/// Round counts to completion per method — the ablation behind the
/// Section V-C discussion (all methods contract equally well; they
/// differ in communication).
pub fn rounds_by_method(n: usize, seed: u64) -> Vec<(String, usize)> {
    let g = path_graph(n, PathNumbering::Sequential, 0);
    Method::ALL
        .iter()
        .map(|&m| {
            (m.name().to_string(), contract_to_completion(&g.edges, m, seed).len())
        })
        .collect()
}

/// Section VII-C: the same SQL under the MPP profile vs the External
/// (Spark-SQL-like) profile, plus the RC vs Cracker comparison on the
/// Streets-of-Italy-like dataset.
pub fn spark_comparison(cfg: &Config) -> Vec<CellResult> {
    let mut out = Vec::new();
    let rc = RandomisedContraction::paper();
    let cracker = incc_core::cracker::Cracker::default();
    for (ds, profile, label) in [
        (Dataset::Candels(10), ExecutionProfile::Colocated, "Candels10/in-db"),
        (Dataset::Candels(10), ExecutionProfile::External, "Candels10/external"),
        (Dataset::StreetsOfItaly, ExecutionProfile::Colocated, "Streets/in-db"),
        (Dataset::StreetsOfItaly, ExecutionProfile::External, "Streets/external"),
    ] {
        let graph = ds.generate(cfg.scale_denom, cfg.seed);
        out.push(run_cell(cfg, label, &graph, &rc, profile));
    }
    // RC vs Cracker head-to-head on the Streets graph (paper: 143 s vs
    // 261 s in-database, 1338 s for the original Spark Cracker).
    let streets = Dataset::StreetsOfItaly.generate(cfg.scale_denom, cfg.seed);
    out.push(run_cell(cfg, "Streets/in-db", &streets, &cracker, ExecutionProfile::Colocated));
    out
}

/// In-memory union–find wall times per dataset — the sequential
/// optimum the paper's introduction cites, for context alongside
/// Table III. (Not an in-database algorithm: no SQL, no distribution.)
pub fn union_find_baseline(cfg: &Config, datasets: &[Dataset]) -> Vec<(String, f64)> {
    datasets
        .iter()
        .map(|ds| {
            let g = ds.generate(cfg.scale_denom, cfg.seed);
            let t0 = std::time::Instant::now();
            let labels = incc_graph::union_find::connected_components(&g.edges);
            let secs = t0.elapsed().as_secs_f64();
            std::hint::black_box(labels);
            (ds.name(), secs)
        })
        .collect()
}

/// Transaction-mode space experiment (the paper's Table V rationale):
/// running the whole algorithm as one transaction defers every drop,
/// so peak space equals total bytes written. Returns
/// `(algorithm, normal_peak, transactional_peak, bytes_written)`.
pub fn transaction_space(cfg: &Config, dataset: Dataset) -> Vec<(String, u64, u64, u64)> {
    let graph = dataset.generate(cfg.scale_denom, cfg.seed);
    let mut out = Vec::new();
    for algo in crate::table3_algorithms() {
        let db = new_cluster(cfg, &graph, ExecutionProfile::Colocated);
        let Ok(normal) = run_on_graph(algo.as_ref(), &db, &graph, cfg.seed) else {
            continue;
        };
        let db = std::sync::Arc::new(Cluster::new(ClusterConfig {
            segments: cfg.segments,
            seed: cfg.seed,
            ..Default::default()
        }));
        // Transaction mode is session-scoped: the session defers its
        // drops' space until commit, so its high-water mark is the
        // transactional peak the paper's Table V reasons about.
        let session = db.session();
        session.begin_transaction();
        let outcome = run_on_session(algo.as_ref(), &session, &graph, cfg.seed);
        session.commit();
        session.close();
        let Ok(txn) = outcome else {
            continue;
        };
        out.push((
            algo.name(),
            normal.stats.max_live_bytes,
            txn.stats.max_live_bytes,
            txn.stats.bytes_written,
        ));
    }
    out
}

/// Per-round working-relation sizes for each algorithm on one dataset:
/// the geometric decay of Theorem 1, measured from the actual SQL runs.
pub fn convergence(cfg: &Config, dataset: Dataset) -> Vec<(String, Vec<usize>)> {
    let graph = dataset.generate(cfg.scale_denom, cfg.seed);
    crate::table3_algorithms()
        .iter()
        .filter_map(|algo| {
            let db = new_cluster(cfg, &graph, ExecutionProfile::Colocated);
            run_on_graph(algo.as_ref(), &db, &graph, cfg.seed)
                .ok()
                .map(|r| (algo.name(), r.round_sizes))
        })
        .collect()
}

/// One worst-γ search result: vertex count, worst graph's edges, γ.
pub type GammaSearchRow = (usize, Vec<(u64, u64)>, f64);

/// Large-scale round counts via the in-memory mirrors: big enough to
/// expose the O(log |V|) vs O(log² |V|) separation of Table I that
/// SQL-scale sweeps cannot reach. Returns `(algorithm, n, rounds)`;
/// Hash-to-Min rows are omitted where its quadratic guard trips.
pub fn large_scale_rounds(seed: u64) -> Vec<(String, usize, usize)> {
    use incc_core::mirror::{cracker_mirror, hash_to_min_mirror, rc_mirror, two_phase_mirror};
    let mut out = Vec::new();
    let mut n = 1usize << 12;
    while n <= 1 << 18 {
        let g = gnm_random_graph(n, 2 * n, seed ^ n as u64);
        out.push(("RC".into(), n, rc_mirror(&g.edges, Method::Gf64, seed).rounds));
        if let Some(hm) = hash_to_min_mirror(&g.edges, 64 * n) {
            out.push(("HM".into(), n, hm.rounds));
        }
        out.push(("TP".into(), n, two_phase_mirror(&g.edges).rounds));
        out.push(("CR".into(), n, cracker_mirror(&g.edges).rounds));
        n <<= 2;
    }
    // The Two-Phase worst case: unions of doubling bit-reversed paths.
    let mut base = 8usize;
    while base <= 512 {
        let g = path_union(10, base, PathNumbering::BitReversed);
        let n = g.vertex_count();
        out.push(("TP/pathunion".into(), n, two_phase_mirror(&g.edges).rounds));
        out.push((
            "RC/pathunion".into(),
            n,
            rc_mirror(&g.edges, Method::Gf64, seed).rounds,
        ));
        base <<= 2;
    }
    out
}

/// Worst-contraction-factor graph search (Appendix B's closing open
/// question): the highest exact γ over all undirected graphs on
/// n = 2..=`max_n` vertices.
pub fn gamma_search(max_n: usize) -> Vec<GammaSearchRow> {
    (2..=max_n.min(6))
        .map(|n| {
            let (edges, gamma) = incc_core::gamma::search_worst_undirected(n);
            (n, edges, gamma)
        })
        .collect()
}

/// The A1/A2 ablations: space variants and randomisation methods on a
/// fixed dataset, reporting time, space, rounds and network traffic.
pub fn ablation(cfg: &Config, dataset: Dataset) -> Vec<CellResult> {
    let graph = dataset.generate(cfg.scale_denom, cfg.seed);
    let mut out = Vec::new();
    for method in Method::ALL {
        for variant in [SpaceVariant::Fast, SpaceVariant::Deterministic] {
            let algo = RandomisedContraction::with(method, variant);
            out.push(run_cell(cfg, &dataset.name(), &graph, &algo, ExecutionProfile::Colocated));
        }
    }
    out
}
