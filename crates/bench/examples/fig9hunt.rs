//! Hunt for the paper's Fig. 9 record graph (the highest-known
//! contraction factor for an undirected graph, gamma = 81215/144144):
//! exact-rational beam search over trees, parametric double stars, and
//! simulated annealing over general graphs.
use incc_core::gamma::{anneal_worst_gamma, exact_gamma_rational, tree_beam_search};
fn main() {
    let (tn, td) = (81215i128, 144144i128);
    println!("target (paper Fig. 9): {tn}/{td} = {:.7}\n", tn as f64 / td as f64);
    println!("tree beam search (exact rational gamma, beam 64):");
    let mut best: (Vec<(u64, u64)>, i128, i128) = (Vec::new(), 0, 1);
    for (n, edges, num, den) in tree_beam_search(16, 64) {
        let exact = if num * td == den * tn { "  *** EXACT MATCH ***" } else { "" };
        println!("  n={n:<2} best gamma {num}/{den} = {:.7}{exact}", num as f64 / den as f64);
        if num * best.2 > best.1 * den {
            best = (edges, num, den);
        }
    }
    println!("\nannealing over general graphs (n=12..16):");
    for n in [12usize, 14, 16] {
        let (edges, g) = anneal_worst_gamma(n, 30_000, 3);
        let (num, den) = exact_gamma_rational(&edges);
        println!("  n={n}: gamma {num}/{den} = {g:.7}");
        if num * best.2 > best.1 * den {
            best = (edges, num, den);
        }
    }
    println!(
        "\nbest found: {}/{} = {:.7} (target {:.7}, diff {:+.2e})",
        best.1,
        best.2,
        best.1 as f64 / best.2 as f64,
        tn as f64 / td as f64,
        best.1 as f64 / best.2 as f64 - tn as f64 / td as f64
    );
    println!("edges: {:?}", best.0);
    if best.1 * td == best.2 * tn {
        println!("*** The paper's Fig. 9 record graph has been rediscovered. ***");
    }
}
