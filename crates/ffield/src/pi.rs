//! Exact hexadecimal digits of π.
//!
//! Blowfish initialises its P-array and S-boxes with the hexadecimal
//! expansion of π. Rather than embedding 4 KiB of opaque constants, this
//! module *computes* the digits with an exact fixed-point evaluation of
//! Machin's formula
//!
//! ```text
//! π = 16·arctan(1/5) − 4·arctan(1/239)
//! ```
//!
//! using a little big-number fraction type with `u64` limbs. Every
//! operation (shift, add, subtract, divide-by-small) is exact, and the
//! series is summed until terms vanish below the working precision, so
//! all requested digits are correct as long as a modest number of guard
//! limbs is kept (we keep eight, far more than the worst-case carry
//! propagation needs).

/// A fixed-point non-negative number with a single integer limb of
/// headroom: `value = Σ limb[i]·2^(64·i) / 2^(64·(n−1))` where
/// `n = limbs.len()`. Limbs are little-endian.
#[derive(Clone, Debug, PartialEq, Eq)]
struct BigFix {
    limbs: Vec<u64>,
}

impl BigFix {
    fn zero(n: usize) -> Self {
        BigFix { limbs: vec![0; n] }
    }

    /// Constructs `1/d` exactly rounded down.
    fn one_over(d: u64, n: usize) -> Self {
        let mut v = BigFix::zero(n);
        // Integer part of 1/d is 0 for d > 1; long-divide 1.0 by d.
        let mut rem: u128 = 1;
        for i in (0..n - 1).rev() {
            let cur = rem << 64;
            v.limbs[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        v
    }

    fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// In-place divide by a small divisor, truncating.
    fn div_small(&mut self, d: u64) {
        debug_assert!(d > 0);
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            self.limbs[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
    }

    /// In-place addition. Panics on overflow of the top limb, which
    /// cannot happen for the magnitudes used here (π < 4).
    fn add_assign(&mut self, other: &BigFix) {
        let mut carry = 0u64;
        for (a, &b) in self.limbs.iter_mut().zip(&other.limbs) {
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            *a = s2;
            carry = (c1 | c2) as u64;
        }
        assert_eq!(carry, 0, "BigFix overflow");
    }

    /// In-place subtraction; `self` must be ≥ `other`.
    fn sub_assign(&mut self, other: &BigFix) {
        let mut borrow = 0u64;
        for (a, &b) in self.limbs.iter_mut().zip(&other.limbs) {
            let (s1, c1) = a.overflowing_sub(b);
            let (s2, c2) = s1.overflowing_sub(borrow);
            *a = s2;
            borrow = (c1 | c2) as u64;
        }
        assert_eq!(borrow, 0, "BigFix underflow");
    }

    /// In-place multiply by a small factor.
    fn mul_small(&mut self, m: u64) {
        let mut carry = 0u128;
        for a in self.limbs.iter_mut() {
            let cur = *a as u128 * m as u128 + carry;
            *a = cur as u64;
            carry = cur >> 64;
        }
        assert_eq!(carry, 0, "BigFix overflow in mul_small");
    }
}

/// Computes `arctan(1/x)` to `n` limbs by the Gregory series.
fn arctan_inv(x: u64, n: usize) -> BigFix {
    let x2 = x * x;
    let mut power = BigFix::one_over(x, n); // 1/x^(2k+1)
    let mut result = power.clone(); // k = 0 term
    let mut k: u64 = 1;
    loop {
        power.div_small(x2);
        if power.is_zero() {
            break;
        }
        let mut term = power.clone();
        term.div_small(2 * k + 1);
        if k % 2 == 1 {
            result.sub_assign(&term);
        } else {
            result.add_assign(&term);
        }
        k += 1;
    }
    result
}

/// Returns the first `count` hexadecimal digits of the *fractional*
/// part of π, most significant first.
///
/// `pi_hex_digits(8)` is `[2, 4, 3, F, 6, A, 8, 8]`: π =
/// 3.243F6A88… in base 16.
pub fn pi_hex_digits(count: usize) -> Vec<u8> {
    if count == 0 {
        return Vec::new();
    }
    // 16 hex digits per limb; 8 guard limbs absorb series truncation
    // and rounding error.
    let n = count / 16 + 10;
    let mut pi = arctan_inv(5, n);
    pi.mul_small(16);
    let mut t = arctan_inv(239, n);
    t.mul_small(4);
    pi.sub_assign(&t);
    // Integer part lives in the top limb; sanity-check it is 3.
    assert_eq!(pi.limbs[n - 1], 3, "π integer part");
    let mut digits = Vec::with_capacity(count);
    'outer: for i in (0..n - 1).rev() {
        let limb = pi.limbs[i];
        for nib in (0..16).rev() {
            digits.push(((limb >> (nib * 4)) & 0xf) as u8);
            if digits.len() == count {
                break 'outer;
            }
        }
    }
    digits
}

/// Returns the first `count` 32-bit words of the fractional hexadecimal
/// expansion of π, as used by the Blowfish key schedule.
pub fn pi_words(count: usize) -> Vec<u32> {
    let digits = pi_hex_digits(count * 8);
    digits
        .chunks(8)
        .map(|c| c.iter().fold(0u32, |acc, &d| (acc << 4) | d as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_digits_match_reference() {
        // π = 3.243F6A8885A308D313198A2E03707344A4093822299F31D0…
        let expect = "243F6A8885A308D313198A2E03707344A4093822299F31D0";
        let digits = pi_hex_digits(expect.len());
        let got: String = digits
            .iter()
            .map(|&d| char::from_digit(d as u32, 16).unwrap().to_ascii_uppercase())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn words_match_blowfish_p_array_head() {
        // The first four Blowfish P-array constants are well known.
        let words = pi_words(4);
        assert_eq!(words, vec![0x243F_6A88, 0x85A3_08D3, 0x1319_8A2E, 0x0370_7344]);
    }

    #[test]
    fn sbox_head_constant() {
        // S-box 0 starts at word offset 18: S[0][0] = 0xD1310BA6.
        let words = pi_words(19);
        assert_eq!(words[18], 0xD131_0BA6);
    }

    #[test]
    fn digit_count_is_exact() {
        assert_eq!(pi_hex_digits(1), vec![2]);
        assert_eq!(pi_hex_digits(0), Vec::<u8>::new());
        assert_eq!(pi_hex_digits(33).len(), 33);
    }

    #[test]
    fn one_over_long_division() {
        // 1/2 in fixed point: top fractional limb = 2^63.
        let v = BigFix::one_over(2, 3);
        assert_eq!(v.limbs, vec![0, 1 << 63, 0]);
        // 1/3 = 0x5555…
        let v = BigFix::one_over(3, 3);
        assert_eq!(v.limbs[1], 0x5555_5555_5555_5555);
    }

    #[test]
    fn arith_roundtrip() {
        let mut a = BigFix::one_over(7, 4);
        let b = BigFix::one_over(11, 4);
        let a0 = a.clone();
        a.add_assign(&b);
        a.sub_assign(&b);
        assert_eq!(a, a0);
    }
}
