//! Arithmetic in GF(2^64).
//!
//! Elements are 64-bit integers interpreted as polynomials over GF(2);
//! multiplication is carry-less polynomial multiplication reduced modulo
//! the irreducible polynomial `x^64 + x^4 + x^3 + x + 1` (`0x1b`), the
//! same polynomial the paper's `axplusb` UDF uses (Fig. 7 of the paper).
//!
//! The paper stores vertex IDs as 64-bit integers and treats that data
//! type as the field GF(2^64), so the per-round relabelling
//! `h(x) = A·x + B` is a bijection whenever `A != 0`: every non-zero
//! field element has a multiplicative inverse.

/// The reduction constant: low bits of the irreducible polynomial
/// `x^64 + x^4 + x^3 + x + 1`.
pub const IRRPOLY: u64 = 0x1b;

/// Multiplies two elements of GF(2^64).
///
/// This is a direct port of the shift-and-add loop in the paper's C
/// user-defined function (Fig. 7): for every set bit of `x`, the current
/// shifted copy of `a` is XOR-ed into the result, with reduction by
/// [`IRRPOLY`] whenever `a` overflows the degree-63 boundary.
#[inline]
pub fn gf64_mul(mut a: u64, mut x: u64) -> u64 {
    let mut r = 0u64;
    while x != 0 {
        if x & 1 != 0 {
            r ^= a;
        }
        x >>= 1;
        // Shift `a` one degree up, folding the overflow back in.
        let carry = a >> 63;
        a <<= 1;
        if carry != 0 {
            a ^= IRRPOLY;
        }
    }
    r
}

/// Computes `A·x + B` over GF(2^64): the paper's `axplusb` UDF.
///
/// Addition in a field of characteristic 2 is XOR, so the result is
/// `gf64_mul(a, x) ^ b`. For any `a != 0` the map `x -> axplusb(a,x,b)`
/// is a bijection of the full 64-bit domain.
///
/// ```
/// use incc_ffield::gf64::{axplusb, axplusb_inv};
///
/// let y = axplusb(0xDEAD, 42, 0xBEEF);
/// assert_eq!(axplusb_inv(0xDEAD, y, 0xBEEF), 42);
/// ```
#[inline]
pub fn axplusb(a: u64, x: u64, b: u64) -> u64 {
    gf64_mul(a, x) ^ b
}

/// Raises `a` to the power `e` in GF(2^64) by square-and-multiply.
pub fn gf64_pow(mut a: u64, mut e: u64) -> u64 {
    let mut r = 1u64;
    while e != 0 {
        if e & 1 != 0 {
            r = gf64_mul(r, a);
        }
        a = gf64_mul(a, a);
        e >>= 1;
    }
    r
}

/// Computes the multiplicative inverse of a non-zero element.
///
/// Uses Fermat: the multiplicative group has order `2^64 − 1`, so
/// `a^(2^64 − 2) = a^{-1}`.
///
/// # Panics
/// Panics if `a == 0`; zero has no inverse.
pub fn gf64_inv(a: u64) -> u64 {
    assert!(a != 0, "0 has no multiplicative inverse in GF(2^64)");
    gf64_pow(a, u64::MAX - 1)
}

/// Inverts the affine map `y = A·x + B`, returning `x = A^{-1}·(y − B)`.
///
/// Subtraction equals addition (XOR) in characteristic 2.
pub fn axplusb_inv(a: u64, y: u64, b: u64) -> u64 {
    gf64_mul(gf64_inv(a), y ^ b)
}

/// The field GF(2^64) as a unit type implementing helpers used by the
/// randomisation strategy layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Gf64;

impl Gf64 {
    /// Field multiplication.
    #[inline]
    pub fn mul(self, a: u64, b: u64) -> u64 {
        gf64_mul(a, b)
    }

    /// Field addition (XOR).
    #[inline]
    pub fn add(self, a: u64, b: u64) -> u64 {
        a ^ b
    }

    /// The affine bijection `x -> A·x + B`.
    #[inline]
    pub fn axb(self, a: u64, x: u64, b: u64) -> u64 {
        axplusb(a, x, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mul_identity_and_zero() {
        for &v in &[0u64, 1, 2, 3, 0xdead_beef, u64::MAX] {
            assert_eq!(gf64_mul(v, 1), v);
            assert_eq!(gf64_mul(1, v), v);
            assert_eq!(gf64_mul(v, 0), 0);
            assert_eq!(gf64_mul(0, v), 0);
        }
    }

    #[test]
    fn mul_by_x_reduces() {
        // x^63 * x = x^64 = x^4 + x^3 + x + 1 = IRRPOLY.
        assert_eq!(gf64_mul(1 << 63, 2), IRRPOLY);
    }

    #[test]
    fn known_small_products() {
        // (x+1)(x+1) = x^2 + 1 in characteristic 2.
        assert_eq!(gf64_mul(0b11, 0b11), 0b101);
        // x^3 * x^5 = x^8.
        assert_eq!(gf64_mul(1 << 3, 1 << 5), 1 << 8);
    }

    #[test]
    fn axplusb_matches_paper_loop() {
        // Re-implementation of the C loop from Fig. 7, kept deliberately
        // verbatim (signed-shift masking included) as a cross-check.
        fn c_axplusb(mut a: i64, mut x: i64, b: i64) -> i64 {
            let mut r: i64 = 0;
            while x != 0 {
                if x & 1 != 0 {
                    r ^= a;
                }
                x = (x >> 1) & 0x7fff_ffff_ffff_ffff;
                if a & (1i64 << 63) != 0 {
                    a = (a << 1) ^ (IRRPOLY as i64);
                } else {
                    a <<= 1;
                }
            }
            r ^ b
        }
        let samples = [
            (1u64, 1u64, 0u64),
            (0x1234_5678_9abc_def0, 0xfedc_ba98_7654_3210, 42),
            (u64::MAX, u64::MAX, u64::MAX),
            (1 << 63, 3, 7),
        ];
        for (a, x, b) in samples {
            assert_eq!(
                axplusb(a, x, b),
                c_axplusb(a as i64, x as i64, b as i64) as u64,
                "mismatch for a={a:#x} x={x:#x} b={b:#x}"
            );
        }
    }

    #[test]
    fn inverse_of_generator_candidates() {
        for a in [2u64, 3, 0x1b, 0xdead_beef_cafe_babe] {
            let inv = gf64_inv(a);
            assert_eq!(gf64_mul(a, inv), 1, "a={a:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn zero_has_no_inverse() {
        gf64_inv(0);
    }

    #[test]
    fn affine_map_is_bijective_on_sample() {
        use std::collections::HashSet;
        let (a, b) = (0x9e37_79b9_7f4a_7c15u64, 0x2545_f491_4f6c_dd1du64);
        let mut seen = HashSet::new();
        for x in 0..4096u64 {
            assert!(seen.insert(axplusb(a, x, b)), "collision at x={x}");
        }
    }

    #[test]
    fn affine_inverse_round_trips() {
        let (a, b) = (0x0123_4567_89ab_cdefu64, 0xfeed_face_dead_beefu64);
        for x in [0u64, 1, 2, 1 << 63, u64::MAX, 0x5555_5555_5555_5555] {
            let y = axplusb(a, x, b);
            assert_eq!(axplusb_inv(a, y, b), x);
        }
    }

    proptest! {
        #[test]
        fn prop_mul_commutative(a: u64, b: u64) {
            prop_assert_eq!(gf64_mul(a, b), gf64_mul(b, a));
        }

        #[test]
        fn prop_mul_associative(a: u64, b: u64, c: u64) {
            prop_assert_eq!(gf64_mul(gf64_mul(a, b), c), gf64_mul(a, gf64_mul(b, c)));
        }

        #[test]
        fn prop_distributive(a: u64, b: u64, c: u64) {
            prop_assert_eq!(gf64_mul(a, b ^ c), gf64_mul(a, b) ^ gf64_mul(a, c));
        }

        #[test]
        fn prop_nonzero_invertible(a in 1u64..) {
            prop_assert_eq!(gf64_mul(a, gf64_inv(a)), 1);
        }

        #[test]
        fn prop_affine_inverse(a in 1u64.., x: u64, b: u64) {
            let y = axplusb(a, x, b);
            prop_assert_eq!(axplusb_inv(a, y, b), x);
        }

        #[test]
        fn prop_pow_agrees_with_repeated_mul(a: u64, e in 0u64..64) {
            let mut expect = 1u64;
            for _ in 0..e {
                expect = gf64_mul(expect, a);
            }
            prop_assert_eq!(gf64_pow(a, e), expect);
        }
    }
}
