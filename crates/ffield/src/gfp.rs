//! Arithmetic in GF(p) for the Mersenne prime `p = 2^61 − 1`.
//!
//! The paper notes (Section V-C) that an SQL-only implementation of the
//! finite-fields method — one that cannot load a C user-defined function
//! for GF(2^64) — "could alternatively choose a prime number p known to
//! be larger than any vertex ID and use normal integer arithmetic modulo
//! p". This module is that alternative. `2^61 − 1` is prime, large
//! enough for any realistic vertex-ID domain, and admits a fast
//! reduction: `x mod (2^61 − 1)` is a shift, a mask and at most two
//! conditional subtractions.

/// The Mersenne prime `2^61 − 1`.
pub const P: u64 = (1 << 61) - 1;

/// GF(p) with `p = 2^61 − 1`.
///
/// Elements are integers in `[0, p)`. All operations debug-assert their
/// inputs are reduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Gfp;

/// Reduces an arbitrary 128-bit value modulo `2^61 − 1`.
#[inline]
pub fn reduce128(x: u128) -> u64 {
    // Split into 61-bit limbs; since 2^61 ≡ 1 (mod p) their sum is
    // congruent to x. Two folds bring a 128-bit value under 2^62,
    // then one conditional subtraction normalises.
    let lo = (x & (P as u128)) as u64;
    let mid = ((x >> 61) & (P as u128)) as u64;
    let hi = (x >> 122) as u64;
    let mut s = lo + mid + hi; // < 2^61 + 2^61 + 2^6 < 2^63
    s = (s & P) + (s >> 61);
    if s >= P {
        s -= P;
    }
    s
}

impl Gfp {
    /// Reduces a `u64` into the field, mapping `x` to `x mod p`.
    #[inline]
    pub fn embed(self, x: u64) -> u64 {
        let mut s = (x & P) + (x >> 61);
        if s >= P {
            s -= P;
        }
        s
    }

    /// Field addition.
    #[inline]
    pub fn add(self, a: u64, b: u64) -> u64 {
        debug_assert!(a < P && b < P);
        let s = a + b;
        if s >= P {
            s - P
        } else {
            s
        }
    }

    /// Field subtraction.
    #[inline]
    pub fn sub(self, a: u64, b: u64) -> u64 {
        debug_assert!(a < P && b < P);
        if a >= b {
            a - b
        } else {
            a + P - b
        }
    }

    /// Field multiplication via one 128-bit product and Mersenne folding.
    #[inline]
    pub fn mul(self, a: u64, b: u64) -> u64 {
        debug_assert!(a < P && b < P);
        reduce128(a as u128 * b as u128)
    }

    /// The affine map `x -> A·x + B (mod p)`; a bijection of `[0, p)`
    /// whenever `A != 0`.
    #[inline]
    pub fn axb(self, a: u64, x: u64, b: u64) -> u64 {
        self.add(self.mul(a, self.embed(x)), b)
    }

    /// Exponentiation by square-and-multiply.
    pub fn pow(self, mut a: u64, mut e: u64) -> u64 {
        let mut r = 1u64;
        while e != 0 {
            if e & 1 != 0 {
                r = self.mul(r, a);
            }
            a = self.mul(a, a);
            e >>= 1;
        }
        r
    }

    /// Multiplicative inverse via Fermat's little theorem.
    ///
    /// # Panics
    /// Panics if `a == 0`.
    pub fn inv(self, a: u64) -> u64 {
        assert!(a != 0, "0 has no multiplicative inverse in GF(p)");
        self.pow(a, P - 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const F: Gfp = Gfp;

    #[test]
    fn p_is_mersenne_61() {
        assert_eq!(P, 2_305_843_009_213_693_951);
    }

    #[test]
    fn reduce_boundaries() {
        assert_eq!(reduce128(0), 0);
        assert_eq!(reduce128(P as u128), 0);
        assert_eq!(reduce128(P as u128 + 1), 1);
        assert_eq!(reduce128((P as u128) * (P as u128)), reduce_naive(P as u128 * P as u128));
        assert_eq!(reduce128(u128::MAX), reduce_naive(u128::MAX));
    }

    fn reduce_naive(x: u128) -> u64 {
        (x % P as u128) as u64
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(F.add(P - 1, 1), 0);
        assert_eq!(F.sub(0, 1), P - 1);
        assert_eq!(F.mul(2, 3), 6);
        assert_eq!(F.mul(P - 1, P - 1), 1); // (-1)^2 = 1
    }

    #[test]
    fn inverse_examples() {
        for a in [1u64, 2, 3, 1_000_003, P - 1] {
            assert_eq!(F.mul(a, F.inv(a)), 1, "a={a}");
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn zero_inverse_panics() {
        F.inv(0);
    }

    #[test]
    fn axb_bijective_on_sample() {
        use std::collections::HashSet;
        let (a, b) = (123_456_789u64, 987_654_321u64);
        let mut seen = HashSet::new();
        for x in 0..4096u64 {
            assert!(seen.insert(F.axb(a, x, b)));
        }
    }

    proptest! {
        #[test]
        fn prop_mul_matches_naive(a in 0..P, b in 0..P) {
            prop_assert_eq!(F.mul(a, b), reduce_naive(a as u128 * b as u128));
        }

        #[test]
        fn prop_reduce128_matches_naive(x: u128) {
            prop_assert_eq!(reduce128(x), reduce_naive(x));
        }

        #[test]
        fn prop_add_sub_roundtrip(a in 0..P, b in 0..P) {
            prop_assert_eq!(F.sub(F.add(a, b), b), a);
        }

        #[test]
        fn prop_inverse(a in 1..P) {
            prop_assert_eq!(F.mul(a, F.inv(a)), 1);
        }

        #[test]
        fn prop_affine_invertible(a in 1..P, b in 0..P, x in 0..P) {
            let y = F.axb(a, x, b);
            let x_back = F.mul(F.inv(a), F.sub(y, b));
            prop_assert_eq!(x_back, x);
        }
    }
}
