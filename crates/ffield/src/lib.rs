//! Pseudo-random bijections over vertex-ID domains.
//!
//! The Randomised Contraction algorithm of Bögeholz, Brand & Todor
//! ("In-database connected component analysis", ICDE 2020) relabels the
//! vertices of a graph at every contraction round with a fresh random
//! bijection `h_i` and picks each vertex's representative as the
//! `argmin` of `h_i` over its closed neighbourhood. The paper describes
//! three ways to realise `h_i` (Section V-C); this crate implements all
//! of them from scratch:
//!
//! * **Finite fields** — `h(x) = A·x + B` over a finite field on the
//!   vertex-ID domain. Two instantiations are provided:
//!   [`gf64`] implements GF(2^64) with polynomial arithmetic modulo
//!   `x^64 + x^4 + x^3 + x + 1`, bit-for-bit compatible with the paper's
//!   `axplusb` C user-defined function (Fig. 7); [`gfp`] implements
//!   GF(p) for the Mersenne prime `p = 2^61 − 1`, the paper's "SQL-only"
//!   alternative using ordinary modular integer arithmetic.
//! * **Encryption** — [`blowfish`] is a complete Blowfish implementation
//!   whose P-array and S-boxes are derived, as Schneier specifies, from
//!   the hexadecimal expansion of π; [`pi`] computes those digits
//!   exactly with a fixed-point Machin-formula spigot, so the tables are
//!   generated rather than embedded.
//! * **Random reals** — a per-vertex uniform draw; provided here as a
//!   keyed hash to `[0, 1)` ([`strategy::Method::RandomReals`]) so that the
//!   in-database implementation can evaluate it deterministically per
//!   round without shipping a table of reals to every segment.
//!
//! The [`strategy`] module wraps all methods behind the
//! [`strategy::RoundHash`] trait used by the algorithm driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blowfish;
pub mod gf64;
pub mod gfp;
pub mod pi;
pub mod strategy;

pub use gf64::{axplusb, Gf64};
pub use gfp::Gfp;
pub use strategy::{Method, RoundHash};
