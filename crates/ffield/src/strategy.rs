//! Per-round randomisation strategies.
//!
//! Each contraction round of Randomised Contraction needs a fresh
//! pseudo-random order on the (remaining) vertex IDs. The order is
//! induced by a hash `h : u64 -> u64`; a vertex's representative is the
//! neighbour (or itself) minimising `h`. This module packages the
//! paper's three methods behind one trait so the algorithm driver and
//! the benchmarks can switch between them.

use crate::blowfish::Blowfish;
use crate::gf64::axplusb;
use crate::gfp::{Gfp, P};
use rand::Rng;

/// The randomisation method used to order vertices each round
/// (paper Section V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// `h(x) = A·x + B` over GF(2^64) — the paper's headline method,
    /// implemented in the database as the `axplusb` UDF.
    Gf64,
    /// `h(x) = A·x + B (mod 2^61 − 1)` — the paper's "SQL-only"
    /// fallback using plain modular integer arithmetic.
    Gfp,
    /// Blowfish encryption of the vertex ID under a random 128-bit
    /// round key.
    Blowfish,
    /// The *random reals* method: an independent uniform draw per
    /// vertex, realised as a keyed non-bijective 64-bit mix. Collisions
    /// have probability ≈ n²/2^65 and only affect tie-breaking.
    RandomReals,
}

impl Method {
    /// All methods, for sweeps.
    pub const ALL: [Method; 4] = [Method::Gf64, Method::Gfp, Method::Blowfish, Method::RandomReals];

    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Method::Gf64 => "gf2_64",
            Method::Gfp => "gf_p61",
            Method::Blowfish => "blowfish",
            Method::RandomReals => "random_reals",
        }
    }

    /// Draws the round parameters and returns the round hash.
    pub fn sample_round<R: Rng + ?Sized>(self, rng: &mut R) -> RoundHash {
        match self {
            Method::Gf64 => {
                let mut a = 0u64;
                while a == 0 {
                    a = rng.gen();
                }
                RoundHash::Gf64 { a, b: rng.gen() }
            }
            Method::Gfp => {
                let mut a = 0u64;
                while a == 0 {
                    a = rng.gen_range(0..P);
                }
                RoundHash::Gfp { a, b: rng.gen_range(0..P) }
            }
            Method::Blowfish => RoundHash::Blowfish(Box::new(Blowfish::from_u128(rng.gen()))),
            Method::RandomReals => RoundHash::RandomReals { key: rng.gen() },
        }
    }

    /// Whether the method's hash is a bijection of its domain, which is
    /// what lets the in-database implementation *relabel* vertices by
    /// their hash values (new IDs stay unique).
    pub fn is_bijective(self) -> bool {
        !matches!(self, Method::RandomReals)
    }
}

/// A sampled per-round vertex ordering.
pub enum RoundHash {
    /// See [`Method::Gf64`].
    Gf64 {
        /// Multiplier, non-zero.
        a: u64,
        /// Offset.
        b: u64,
    },
    /// See [`Method::Gfp`].
    Gfp {
        /// Multiplier, non-zero, `< P`.
        a: u64,
        /// Offset, `< P`.
        b: u64,
    },
    /// See [`Method::Blowfish`].
    Blowfish(Box<Blowfish>),
    /// See [`Method::RandomReals`].
    RandomReals {
        /// 64-bit mixing key.
        key: u64,
    },
}

impl RoundHash {
    /// Evaluates the round hash at a vertex ID.
    #[inline]
    pub fn hash(&self, v: u64) -> u64 {
        match self {
            RoundHash::Gf64 { a, b } => axplusb(*a, v, *b),
            RoundHash::Gfp { a, b } => Gfp.axb(*a, v, *b),
            RoundHash::Blowfish(bf) => bf.encrypt(v),
            RoundHash::RandomReals { key } => mix64(v ^ key),
        }
    }

    /// The affine parameters `(A, B)` if this is a finite-field round;
    /// the Fig. 4 back-substitution loop folds these into a single
    /// accumulated affine map.
    pub fn affine_params(&self) -> Option<(u64, u64)> {
        match self {
            RoundHash::Gf64 { a, b } | RoundHash::Gfp { a, b } => Some((*a, *b)),
            _ => None,
        }
    }
}

impl std::fmt::Debug for RoundHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoundHash::Gf64 { a, b } => write!(f, "Gf64(a={a:#x}, b={b:#x})"),
            RoundHash::Gfp { a, b } => write!(f, "Gfp(a={a}, b={b})"),
            RoundHash::Blowfish(_) => write!(f, "Blowfish(..)"),
            RoundHash::RandomReals { key } => write!(f, "RandomReals(key={key:#x})"),
        }
    }
}

/// SplitMix64 finalisation: a fast full-avalanche 64-bit mixer, used to
/// model the random-reals draw deterministically from `(key, vertex)`.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn bijective_methods_have_no_collisions() {
        let mut rng = StdRng::seed_from_u64(7);
        for m in [Method::Gf64, Method::Gfp, Method::Blowfish] {
            let h = m.sample_round(&mut rng);
            let mut seen = HashSet::new();
            for v in 0..2048u64 {
                assert!(seen.insert(h.hash(v)), "{m:?} collided at {v}");
            }
        }
    }

    #[test]
    fn gfp_domain_restricted_outputs() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = Method::Gfp.sample_round(&mut rng);
        for v in 0..1000u64 {
            assert!(h.hash(v) < P);
        }
    }

    #[test]
    fn affine_params_only_for_field_methods() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(Method::Gf64.sample_round(&mut rng).affine_params().is_some());
        assert!(Method::Gfp.sample_round(&mut rng).affine_params().is_some());
        assert!(Method::Blowfish.sample_round(&mut rng).affine_params().is_none());
        assert!(Method::RandomReals.sample_round(&mut rng).affine_params().is_none());
    }

    #[test]
    fn rounds_differ_between_samples() {
        let mut rng = StdRng::seed_from_u64(9);
        for m in Method::ALL {
            let h1 = m.sample_round(&mut rng);
            let h2 = m.sample_round(&mut rng);
            let differs = (0..64u64).any(|v| h1.hash(v) != h2.hash(v));
            assert!(differs, "{m:?} produced identical rounds");
        }
    }

    #[test]
    fn mix64_avalanches() {
        // Flipping one input bit flips roughly half the output bits.
        let x = 0x0123_4567_89ab_cdefu64;
        let flips = (mix64(x) ^ mix64(x ^ 1)).count_ones();
        assert!((16..=48).contains(&flips), "weak avalanche: {flips}");
    }

    #[test]
    fn method_names_unique() {
        let names: HashSet<_> = Method::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), Method::ALL.len());
    }
}
