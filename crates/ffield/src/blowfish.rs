//! Blowfish — the paper's *encryption method* for vertex relabelling.
//!
//! Section V-C of the paper: "A more efficient idea is to pick a
//! pseudo-random permutation by means of an encryption function on the
//! domain of the vertex IDs. If the vertex IDs are 64-bit integers, a
//! suitable choice is the Blowfish algorithm which can be implemented
//! in a database as a user-defined function." Only the random round key
//! has to be shipped to the segments; each segment then computes the
//! pseudo-random IDs locally.
//!
//! This is a complete, from-scratch Blowfish (Schneier, 1993): a
//! 16-round Feistel network on 64-bit blocks with key-dependent
//! S-boxes. The initial P-array and S-box constants are the hexadecimal
//! digits of π, generated exactly by [`crate::pi`] instead of being
//! embedded as an opaque table. The implementation is validated against
//! the published Eric Young test vectors.

use crate::pi::pi_words;
use std::sync::OnceLock;

const ROUNDS: usize = 16;

/// The π-derived initial state shared by every cipher instance.
struct InitTables {
    p: [u32; ROUNDS + 2],
    s: [[u32; 256]; 4],
}

fn init_tables() -> &'static InitTables {
    static TABLES: OnceLock<InitTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let words = pi_words(ROUNDS + 2 + 4 * 256);
        let mut p = [0u32; ROUNDS + 2];
        p.copy_from_slice(&words[..ROUNDS + 2]);
        let mut s = [[0u32; 256]; 4];
        for (b, chunk) in s.iter_mut().zip(words[ROUNDS + 2..].chunks(256)) {
            b.copy_from_slice(chunk);
        }
        InitTables { p, s }
    })
}

/// A keyed Blowfish cipher operating on 64-bit blocks.
///
/// Encryption is a bijection of `u64`, which is exactly what the
/// Randomised Contraction relabelling requires: a unique representative
/// choice is guaranteed because distinct vertex IDs encrypt to distinct
/// values.
pub struct Blowfish {
    p: [u32; ROUNDS + 2],
    s: [[u32; 256]; 4],
}

impl Blowfish {
    /// Expands a key of 1 to 56 bytes into the cipher state.
    ///
    /// # Panics
    /// Panics if `key` is empty or longer than 56 bytes (the Blowfish
    /// maximum of 448 bits).
    pub fn new(key: &[u8]) -> Self {
        assert!(
            !key.is_empty() && key.len() <= 56,
            "Blowfish key must be 1..=56 bytes, got {}",
            key.len()
        );
        let init = init_tables();
        let mut cipher = Blowfish { p: init.p, s: init.s };
        // XOR the key, cycled, into the P-array.
        let mut k = 0usize;
        for p in cipher.p.iter_mut() {
            let mut word = 0u32;
            for _ in 0..4 {
                word = (word << 8) | key[k] as u32;
                k = (k + 1) % key.len();
            }
            *p ^= word;
        }
        // Replace P and S entries with successive encryptions of zero.
        let (mut l, mut r) = (0u32, 0u32);
        for i in (0..ROUNDS + 2).step_by(2) {
            let (nl, nr) = cipher.encrypt_halves(l, r);
            cipher.p[i] = nl;
            cipher.p[i + 1] = nr;
            l = nl;
            r = nr;
        }
        for b in 0..4 {
            for i in (0..256).step_by(2) {
                let (nl, nr) = cipher.encrypt_halves(l, r);
                cipher.s[b][i] = nl;
                cipher.s[b][i + 1] = nr;
                l = nl;
                r = nr;
            }
        }
        cipher
    }

    /// Convenience constructor from a 128-bit round key, the form the
    /// Randomised Contraction driver draws per round.
    pub fn from_u128(key: u128) -> Self {
        Blowfish::new(&key.to_be_bytes())
    }

    #[inline]
    fn encrypt_halves(&self, mut l: u32, mut r: u32) -> (u32, u32) {
        for i in 0..ROUNDS {
            l ^= self.p[i];
            r ^= self.f(l);
            std::mem::swap(&mut l, &mut r);
        }
        std::mem::swap(&mut l, &mut r);
        r ^= self.p[ROUNDS];
        l ^= self.p[ROUNDS + 1];
        (l, r)
    }

    /// The Blowfish F function:
    /// `F(x) = ((S0[a] + S1[b]) ^ S2[c]) + S3[d]` with wrapping adds.
    #[inline]
    fn f(&self, x: u32) -> u32 {
        let a = self.s[0][(x >> 24) as usize];
        let b = self.s[1][(x >> 16 & 0xff) as usize];
        let c = self.s[2][(x >> 8 & 0xff) as usize];
        let d = self.s[3][(x & 0xff) as usize];
        (a.wrapping_add(b) ^ c).wrapping_add(d)
    }

    #[inline]
    fn decrypt_halves(&self, mut l: u32, mut r: u32) -> (u32, u32) {
        for i in (2..ROUNDS + 2).rev() {
            l ^= self.p[i];
            r ^= self.f(l);
            std::mem::swap(&mut l, &mut r);
        }
        std::mem::swap(&mut l, &mut r);
        r ^= self.p[1];
        l ^= self.p[0];
        (l, r)
    }

    /// Encrypts one 64-bit block (big-endian halves convention).
    #[inline]
    pub fn encrypt(&self, block: u64) -> u64 {
        let (l, r) = self.encrypt_halves((block >> 32) as u32, block as u32);
        (l as u64) << 32 | r as u64
    }

    /// Decrypts one 64-bit block; the inverse of [`Blowfish::encrypt`].
    #[inline]
    pub fn decrypt(&self, block: u64) -> u64 {
        let (l, r) = self.decrypt_halves((block >> 32) as u32, block as u32);
        (l as u64) << 32 | r as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Published Blowfish known-answer vectors (Eric Young's set):
    /// (key, plaintext, ciphertext).
    const VECTORS: &[(u64, u64, u64)] = &[
        (0x0000000000000000, 0x0000000000000000, 0x4EF997456198DD78),
        (0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF, 0x51866FD5B85ECB8A),
        (0x3000000000000000, 0x1000000000000001, 0x7D856F9A613063F2),
        (0x1111111111111111, 0x1111111111111111, 0x2466DD878B963C9D),
        (0x0123456789ABCDEF, 0x1111111111111111, 0x61F9C3802281B096),
        (0xFEDCBA9876543210, 0x0123456789ABCDEF, 0x0ACEAB0FC6A0A28D),
        (0x7CA110454A1A6E57, 0x01A1D6D039776742, 0x59C68245EB05282B),
    ];

    #[test]
    fn known_answer_vectors() {
        for &(key, plain, cipher) in VECTORS {
            let bf = Blowfish::new(&key.to_be_bytes());
            assert_eq!(
                bf.encrypt(plain),
                cipher,
                "key={key:016X} plain={plain:016X}"
            );
            assert_eq!(bf.decrypt(cipher), plain);
        }
    }

    #[test]
    fn variable_key_length() {
        // Same 8-byte key given as 8 and as 16 bytes (doubled) must
        // differ — the schedule cycles the key, so doubling changes
        // nothing for an 8-byte key repeated. Verify cycling semantics:
        let k8 = Blowfish::new(&0x0123456789ABCDEFu64.to_be_bytes());
        let mut k16 = [0u8; 16];
        k16[..8].copy_from_slice(&0x0123456789ABCDEFu64.to_be_bytes());
        k16[8..].copy_from_slice(&0x0123456789ABCDEFu64.to_be_bytes());
        let c16 = Blowfish::new(&k16);
        assert_eq!(k8.encrypt(42), c16.encrypt(42));
    }

    #[test]
    #[should_panic(expected = "1..=56 bytes")]
    fn empty_key_rejected() {
        Blowfish::new(&[]);
    }

    #[test]
    #[should_panic(expected = "1..=56 bytes")]
    fn oversized_key_rejected() {
        Blowfish::new(&[0u8; 57]);
    }

    #[test]
    fn encryption_is_injective_on_sample() {
        use std::collections::HashSet;
        let bf = Blowfish::from_u128(0xDEAD_BEEF_CAFE_BABE_0123_4567_89AB_CDEF);
        let mut seen = HashSet::new();
        for x in 0..4096u64 {
            assert!(seen.insert(bf.encrypt(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_decrypt_inverts_encrypt(key: u128, block: u64) {
            let bf = Blowfish::from_u128(key);
            prop_assert_eq!(bf.decrypt(bf.encrypt(block)), block);
        }

        #[test]
        fn prop_different_keys_differ(key: u128, block: u64) {
            let a = Blowfish::from_u128(key);
            let b = Blowfish::from_u128(key ^ 1);
            // Not a cryptographic claim — just a smoke test that the key
            // schedule actually depends on the key.
            prop_assert_ne!(a.encrypt(block), b.encrypt(block));
        }
    }
}
