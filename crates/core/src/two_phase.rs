//! The Two-Phase algorithm (Kiveris et al., "Connected components in
//! MapReduce and beyond", SoCC 2014) — ported to SQL.
//!
//! Two-Phase alternates two edge-rewriting operations until fixpoint:
//!
//! * **Large-Star**: every vertex `u` connects each *strictly larger*
//!   neighbour `v > u` to `m(u) = min(N(u) ∪ {u})`.
//! * **Small-Star**: every vertex `u` connects each smaller neighbour
//!   (and itself) to the minimum among its smaller neighbourhood.
//!
//! At convergence the edge set is a forest of stars centred at
//! component minima. The paper credits Two-Phase with the best known
//! MapReduce space bound (linear) but Θ(log² |V|) rounds, and its
//! Table IV confirms it as the most space-frugal algorithm measured —
//! behaviour this port preserves by keeping exactly one canonical edge
//! table (`a > b` invariant) and evaluating doubled-neighbourhood views
//! as pipelined subqueries rather than materialised tables. The
//! `PathUnion10` dataset is its round-count worst case.

use crate::driver::{drop_if_exists, AlgoOutcome, CcAlgorithm, RunControl};
use incc_mppdb::{DbError, DbResult, SqlEngine};

/// Two-Phase, in-database.
#[derive(Debug, Clone, Copy)]
pub struct TwoPhase {
    /// Round guard (0 = unlimited).
    pub max_rounds: usize,
}

impl Default for TwoPhase {
    fn default() -> Self {
        TwoPhase { max_rounds: 10_000 }
    }
}

/// The doubled-neighbourhood view of the canonical edge table,
/// inlined wherever a star operation needs it.
const DBL: &str =
    "(select a as v, b as w from tpedges union all select b as v, a as w from tpedges)";

impl TwoPhase {
    /// One star operation over the canonical edge table `tpedges`
    /// (every row satisfies `a > b`). `large` selects Large-Star,
    /// otherwise Small-Star. Returns a signature of the new edge set
    /// for convergence detection.
    fn star(&self, db: &dyn SqlEngine, large: bool) -> DbResult<(i64, i64, i64)> {
        if large {
            // m(u) over ALL neighbours; connect each v > u to m(u).
            // m ≤ u < v keeps the a > b invariant.
            db.run(&format!(
                "create table tpmin as \
                 select v, least(v, min(w)) as m from {DBL} as d \
                 group by v distributed by (v)"
            ))?;
            db.run(&format!(
                "create table tpnew as \
                 select distinct d.w as a, t.m as b from {DBL} as d, tpmin as t \
                 where d.v = t.v and d.w > d.v \
                 distributed by (a)"
            ))?;
        } else {
            // Small-Star: the canonical table IS the smaller-neighbour
            // view (b < a on every row). m(u) = min of u's smaller
            // neighbours; connect them (and u) to m.
            db.run(
                "create table tpmin as select a as v, min(b) as m from tpedges \
                 group by a distributed by (v)",
            )?;
            db.run(
                "create table tpnew as \
                 select distinct a, b from \
                 (select e.b as a, t.m as b from tpedges as e, tpmin as t \
                  where e.a = t.v and e.b != t.m \
                  union all \
                  select t.v as a, t.m as b from tpmin as t) \
                 as stars distributed by (a)",
            )?;
        }
        db.drop_table("tpmin")?;
        db.drop_table("tpedges")?;
        db.rename_table("tpnew", "tpedges")?;
        let sig = db.query(
            "select count(*) as c, sum(a) as sa, sum(b) as sb from tpedges",
        )?;
        Ok((
            sig[0][0].as_int().unwrap_or(0),
            sig[0][1].as_int().unwrap_or(0),
            sig[0][2].as_int().unwrap_or(0),
        ))
    }
}

impl CcAlgorithm for TwoPhase {
    fn name(&self) -> String {
        "TP".into()
    }

    fn run_controlled(
        &self,
        db: &dyn SqlEngine,
        input: &str,
        _seed: u64,
        ctrl: &RunControl<'_>,
    ) -> DbResult<AlgoOutcome> {
        drop_if_exists(db, &["tpedges", "tpmin", "tpnew", "tpverts", "tpresult"]);
        // Remember the full vertex set (loop edges disappear from the
        // star iteration; they rejoin at labelling time).
        db.run(&format!(
            "create table tpverts as \
             select distinct v1 as v from \
             (select v1 from {input} union all select v2 as v1 from {input}) as b \
             distributed by (v)"
        ))?;
        // Canonical non-loop edges (a > b).
        db.run(&format!(
            "create table tpedges as \
             select distinct greatest(v1, v2) as a, least(v1, v2) as b from {input} \
             where v1 != v2 distributed by (a)"
        ))?;
        let mut rounds = 0usize;
        let mut round_sizes: Vec<usize> = Vec::new();
        let mut prev_sig: Option<(i64, i64, i64)> = None;
        loop {
            if let Err(e) = ctrl.checkpoint() {
                drop_if_exists(db, &["tpedges", "tpmin", "tpnew", "tpverts"]);
                return Err(e);
            }
            rounds += 1;
            if self.max_rounds > 0 && rounds > self.max_rounds {
                drop_if_exists(db, &["tpedges", "tpverts"]);
                return Err(DbError::Exec(format!(
                    "Two-Phase did not converge within {} rounds",
                    self.max_rounds
                )));
            }
            if db.row_count("tpedges")? == 0 {
                break;
            }
            self.star(db, true)?;
            let sig = self.star(db, false)?;
            round_sizes.push(sig.0.max(0) as usize);
            ctrl.report_round(rounds, sig.0.max(0) as usize);
            if prev_sig == Some(sig) {
                break;
            }
            prev_sig = Some(sig);
        }
        // tpedges is now a star forest (leaf `a`, centre `b`); every
        // vertex missing from the leaves is its own centre.
        db.run(
            "create table tpresult as \
             select t.v as v, coalesce(e.b, t.v) as r \
             from tpverts as t left outer join tpedges as e on (t.v = e.a) \
             distributed by (v)",
        )?;
        drop_if_exists(db, &["tpedges", "tpverts"]);
        Ok(AlgoOutcome { result_table: "tpresult".into(), rounds, round_sizes })
    }
}
