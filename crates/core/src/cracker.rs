//! The Cracker algorithm (Lulli et al., "Fast connected components
//! computation in large graphs by vertex pruning", TPDS 2017) — ported
//! to SQL.
//!
//! Cracker alternates two steps, pruning vertices out of the active
//! graph into a *propagation tree* until the graph is empty, then
//! propagates component seeds down the tree:
//!
//! * **MinSelection**: every vertex `v` computes `vmin(v) = min N[v]`
//!   and tells every vertex of `N[v]` (and itself) about `vmin(v)`.
//!   A vertex `u`'s new neighbourhood `NN(u)` is the set of minima it
//!   was told about.
//! * **Pruning**: each `u` links `min NN(u)` to the rest of `NN(u)` in
//!   the next active graph. A vertex that is nobody's minimum
//!   (`u ∉ NN(u)`) leaves the computation, recording the tree edge
//!   `(min NN(u), u)` through which its label will arrive.
//!
//! When the active graph empties, tree roots are component seeds;
//! labels propagate root-to-leaf in O(#rounds) joins. The paper's
//! evaluation shows Cracker round-competitive with Randomised
//! Contraction but substantially heavier in data volume (Table V),
//! matching its published communication bound of O(|V|·|E| / log |V|).

use crate::driver::{drop_if_exists, AlgoOutcome, CcAlgorithm, RunControl};
use incc_mppdb::{DbError, DbResult, SqlEngine};

/// Cracker, in-database.
#[derive(Debug, Clone, Copy)]
pub struct Cracker {
    /// Round guard (0 = unlimited).
    pub max_rounds: usize,
}

impl Default for Cracker {
    fn default() -> Self {
        Cracker { max_rounds: 10_000 }
    }
}

const WORK_TABLES: &[&str] = &[
    "crgraph", "crdbl", "crmin", "crms", "crmm", "crtree", "crtreenew", "crroots", "crlab",
    "crlabnew", "crverts", "crresult",
];

impl CcAlgorithm for Cracker {
    fn name(&self) -> String {
        "CR".into()
    }

    fn run_controlled(
        &self,
        db: &dyn SqlEngine,
        input: &str,
        _seed: u64,
        ctrl: &RunControl<'_>,
    ) -> DbResult<AlgoOutcome> {
        drop_if_exists(db, WORK_TABLES);
        // Full vertex set (seeds silently leave the active graph; the
        // final labelling joins back against this).
        db.run(&format!(
            "create table crverts as \
             select distinct v1 as v from \
             (select v1 from {input} union all select v2 as v1 from {input}) as b \
             distributed by (v)"
        ))?;
        // Active graph: undirected edges, one row each.
        db.run(&format!(
            "create table crgraph as select v1 as a, v2 as b from {input}"
        ))?;
        let mut tree_exists = false;
        let mut rounds = 0usize;
        let mut round_sizes: Vec<usize> = Vec::new();
        let result =
            self.prune_loop(db, ctrl, &mut rounds, &mut tree_exists, &mut round_sizes);
        if let Err(e) = result {
            drop_if_exists(db, WORK_TABLES);
            return Err(e);
        }
        self.propagate(db, tree_exists)?;
        Ok(AlgoOutcome { result_table: "crresult".into(), rounds, round_sizes })
    }
}

impl Cracker {
    /// MinSelection + Pruning until the active graph is empty.
    fn prune_loop(
        &self,
        db: &dyn SqlEngine,
        ctrl: &RunControl<'_>,
        rounds: &mut usize,
        tree_exists: &mut bool,
        round_sizes: &mut Vec<usize>,
    ) -> DbResult<()> {
        loop {
            ctrl.checkpoint()?;
            if db.row_count("crgraph")? == 0 {
                db.drop_table("crgraph")?;
                return Ok(());
            }
            *rounds += 1;
            if self.max_rounds > 0 && *rounds > self.max_rounds {
                return Err(DbError::Exec(format!(
                    "Cracker did not converge within {} rounds",
                    self.max_rounds
                )));
            }
            // Doubled adjacency view of the active graph.
            db.run(
                "create table crdbl as \
                 select a as v, b as w from crgraph union all \
                 select b as v, a as w from crgraph \
                 distributed by (v)",
            )?;
            db.drop_table("crgraph")?;
            // vmin over closed neighbourhoods.
            db.run(
                "create table crmin as \
                 select v, least(v, min(w)) as m from crdbl \
                 group by v distributed by (v)",
            )?;
            // NN relation: u was told about minimum b.
            db.run(
                "create table crms as \
                 select distinct a, b from \
                 (select d.w as a, t.m as b from crdbl as d, crmin as t where d.v = t.v \
                  union all \
                  select t.v as a, t.m as b from crmin as t) \
                 as sel distributed by (a)",
            )?;
            db.drop_table("crdbl")?;
            db.drop_table("crmin")?;
            // mm(u) = min NN(u).
            db.run(
                "create table crmm as select a, min(b) as mm from crms \
                 group by a distributed by (a)",
            )?;
            // Tree edges: u ∉ NN(u)  ⇔  no self row (a, a) in crms,
            // i.e. the anti-join probe comes back NULL.
            let tree_sql = "select m.mm as parent, m.a as child \
                 from crmm as m left outer join \
                 (select a as sa from crms where a = b) as s \
                 on (m.a = s.sa) \
                 where s.sa is null and m.a != m.mm";
            if *tree_exists {
                db.run(&format!(
                    "create table crtreenew as \
                     select parent, child from crtree union all {tree_sql}"
                ))?;
                db.drop_table("crtree")?;
                db.rename_table("crtreenew", "crtree")?;
            } else {
                let rows =
                    db.run(&format!("create table crtree as {tree_sql}"))?.row_count();
                if rows == 0 {
                    db.drop_table("crtree")?;
                } else {
                    *tree_exists = true;
                }
            }
            // Next active graph: mm(u) — x for the rest of NN(u).
            let rows = db
                .run(
                    "create table crgraph as \
                     select distinct m.mm as a, s.b as b \
                     from crms as s, crmm as m \
                     where s.a = m.a and s.b != m.mm \
                     distributed by (a)",
                )?
                .row_count();
            round_sizes.push(rows);
            ctrl.report_round(*rounds, rows);
            db.drop_table("crms")?;
            db.drop_table("crmm")?;
        }
    }

    /// Seeds label themselves; labels flow down the propagation tree;
    /// vertices outside the tree (pure seeds) label themselves via the
    /// final outer join.
    fn propagate(&self, db: &dyn SqlEngine, tree_exists: bool) -> DbResult<()> {
        if !tree_exists {
            // Every vertex was a seed (edge-free or loop-only input).
            db.run(
                "create table crresult as select v, v as r from crverts \
                 distributed by (v)",
            )?;
            db.drop_table("crverts")?;
            return Ok(());
        }
        // Roots: parents never appearing as children.
        db.run(
            "create table crroots as \
             select distinct p.parent as v from \
             (select distinct parent from crtree) as p \
             left outer join (select distinct child from crtree) as c \
             on (p.parent = c.child) \
             where c.child is null \
             distributed by (v)",
        )?;
        db.run("create table crlab as select v, v as r from crroots distributed by (v)")?;
        db.drop_table("crroots")?;
        let mut prev = -1i64;
        loop {
            db.run(
                "create table crlabnew as \
                 select distinct v, r from \
                 (select t.child as v, l.r as r from crtree as t, crlab as l \
                  where t.parent = l.v \
                  union all select v, r from crlab) as nxt \
                 distributed by (v)",
            )?;
            let n = db.row_count("crlabnew")? as i64;
            db.drop_table("crlab")?;
            db.rename_table("crlabnew", "crlab")?;
            if n == prev {
                break;
            }
            prev = n;
        }
        db.drop_table("crtree")?;
        db.run(
            "create table crresult as \
             select cv.v as v, coalesce(l.r, cv.v) as r \
             from crverts as cv left outer join crlab as l on (cv.v = l.v) \
             distributed by (v)",
        )?;
        db.drop_table("crlab")?;
        db.drop_table("crverts")?;
        Ok(())
    }
}
