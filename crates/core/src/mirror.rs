//! In-memory mirrors of the four distributed algorithms.
//!
//! The SQL implementations in this crate are the faithful artefacts;
//! these mirrors replay the same per-round logic on plain hash maps so
//! that *round-count* experiments can run at 10⁶–10⁷ vertices without
//! engine overhead — large enough to separate Randomised Contraction's
//! O(log |V|) from Two-Phase's O(log² |V|) (the paper's Table I), which
//! single-machine SQL sweeps cannot reach. Each mirror returns both the
//! labelling (verified against union–find in tests) and the number of
//! rounds, defined identically to its SQL twin.

use incc_ffield::Method;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

/// Result of an in-memory run: component labels plus round count.
#[derive(Debug, Clone)]
pub struct MirrorRun {
    /// Vertex → component label.
    pub labels: HashMap<u64, u64>,
    /// Rounds executed (same counting as the SQL implementation).
    pub rounds: usize,
}

fn adjacency(edges: &[(u64, u64)]) -> HashMap<u64, Vec<u64>> {
    let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(a, b) in edges {
        if a == b {
            adj.entry(a).or_default();
        } else {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        }
    }
    adj
}

/// Randomised Contraction, in memory: contract with a fresh hash per
/// round until no edges remain, composing representative maps.
pub fn rc_mirror(edges: &[(u64, u64)], method: Method, seed: u64) -> MirrorRun {
    let mut rng = StdRng::seed_from_u64(seed);
    // Composition map: original vertex -> current representative.
    let mut labels: HashMap<u64, u64> = adjacency(edges).keys().map(|&v| (v, v)).collect();
    let mut current: Vec<(u64, u64)> =
        edges.iter().filter(|(a, b)| a != b).copied().collect();
    let mut rounds = 0usize;
    while !current.is_empty() {
        rounds += 1;
        assert!(rounds < 10_000, "RC mirror failed to converge");
        let h = method.sample_round(&mut rng);
        let adj = adjacency(&current);
        let mut rep: HashMap<u64, u64> = HashMap::with_capacity(adj.len());
        for (&v, ns) in &adj {
            let mut best = v;
            let mut best_h = h.hash(v);
            for &w in ns {
                let hw = h.hash(w);
                if hw < best_h || (hw == best_h && w < best) {
                    best = w;
                    best_h = hw;
                }
            }
            rep.insert(v, best);
        }
        for label in labels.values_mut() {
            if let Some(&r) = rep.get(label) {
                *label = r;
            }
        }
        let mut next: HashSet<(u64, u64)> = HashSet::new();
        for &(a, b) in &current {
            let (ra, rb) = (rep[&a], rep[&b]);
            if ra != rb {
                next.insert((ra.min(rb), ra.max(rb)));
            }
        }
        current = next.into_iter().collect();
    }
    MirrorRun { labels, rounds }
}

/// Hash-to-Min, in memory: clusters C(v), min-to-all and all-to-min
/// until fixpoint. `max_cluster_total` guards the Θ(|V|²) blow-up
/// (0 = unlimited); exceeding it returns `None` ("did not finish").
pub fn hash_to_min_mirror(
    edges: &[(u64, u64)],
    max_cluster_total: usize,
) -> Option<MirrorRun> {
    let adj = adjacency(edges);
    let mut clusters: HashMap<u64, HashSet<u64>> = adj
        .iter()
        .map(|(&v, ns)| {
            let mut c: HashSet<u64> = ns.iter().copied().collect();
            c.insert(v);
            (v, c)
        })
        .collect();
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        assert!(rounds < 10_000, "Hash-to-Min mirror failed to converge");
        let mut next: HashMap<u64, HashSet<u64>> = HashMap::with_capacity(clusters.len());
        for c in clusters.values() {
            let m = *c.iter().min().expect("cluster contains v");
            for &u in c {
                next.entry(m).or_default().insert(u);
                next.entry(u).or_default().insert(m);
            }
        }
        if max_cluster_total > 0 {
            let total: usize = next.values().map(HashSet::len).sum();
            if total > max_cluster_total {
                return None;
            }
        }
        let unchanged = next == clusters;
        clusters = next;
        if unchanged {
            break;
        }
    }
    let labels = clusters
        .iter()
        .map(|(&v, c)| (v, *c.iter().min().expect("nonempty")))
        .collect();
    Some(MirrorRun { labels, rounds })
}

/// Two-Phase, in memory: alternate Large-Star and Small-Star on the
/// canonical (a > b) edge set until fixpoint.
pub fn two_phase_mirror(edges: &[(u64, u64)]) -> MirrorRun {
    let verts: HashSet<u64> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    let mut e: HashSet<(u64, u64)> = edges
        .iter()
        .filter(|(a, b)| a != b)
        .map(|&(a, b)| (a.max(b), a.min(b)))
        .collect();
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        assert!(rounds < 10_000, "Two-Phase mirror failed to converge");
        if e.is_empty() {
            break;
        }
        // Large-Star: m(u) over all neighbours; connect each v > u to m(u).
        let mut nbrs: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(a, b) in &e {
            nbrs.entry(a).or_default().push(b);
            nbrs.entry(b).or_default().push(a);
        }
        let mut large: HashSet<(u64, u64)> = HashSet::with_capacity(e.len());
        for (&u, ns) in &nbrs {
            let m = ns.iter().copied().min().unwrap_or(u).min(u);
            for &v in ns {
                if v > u {
                    large.insert((v, m));
                }
            }
        }
        // Small-Star: m over smaller neighbours; connect them and u to m.
        let mut smaller: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(a, b) in &large {
            smaller.entry(a).or_default().push(b);
        }
        let mut small: HashSet<(u64, u64)> = HashSet::with_capacity(large.len());
        for (&u, ns) in &smaller {
            let m = ns.iter().copied().min().expect("nonempty");
            for &s in ns {
                if s != m {
                    small.insert((s.max(m), s.min(m)));
                }
            }
            small.insert((u, m));
        }
        let unchanged = small == e;
        e = small;
        if unchanged {
            break;
        }
    }
    // Star forest: leaf -> centre; everything else labels itself.
    let mut labels: HashMap<u64, u64> = verts.iter().map(|&v| (v, v)).collect();
    for &(leaf, centre) in &e {
        labels.insert(leaf, centre);
    }
    MirrorRun { labels, rounds }
}

/// Cracker, in memory: MinSelection + Pruning building a propagation
/// tree, then root-to-leaf label propagation.
pub fn cracker_mirror(edges: &[(u64, u64)]) -> MirrorRun {
    let verts: HashSet<u64> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    let mut active: HashSet<(u64, u64)> = edges
        .iter()
        .filter(|(a, b)| a != b)
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    let mut tree: Vec<(u64, u64)> = Vec::new(); // (parent, child)
    let mut rounds = 0usize;
    while !active.is_empty() {
        rounds += 1;
        assert!(rounds < 10_000, "Cracker mirror failed to converge");
        let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(a, b) in &active {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        }
        // MinSelection: u learns vmin(v) for every v with u ∈ N[v].
        let vmin: HashMap<u64, u64> = adj
            .iter()
            .map(|(&v, ns)| (v, ns.iter().copied().min().unwrap_or(v).min(v)))
            .collect();
        let mut nn: HashMap<u64, HashSet<u64>> = HashMap::new();
        for (&v, ns) in &adj {
            let m = vmin[&v];
            nn.entry(v).or_default().insert(m);
            for &u in ns {
                nn.entry(u).or_default().insert(m);
            }
        }
        // Pruning.
        let mut next: HashSet<(u64, u64)> = HashSet::new();
        for (&u, set) in &nn {
            let mm = *set.iter().min().expect("nonempty");
            if !set.contains(&u) {
                tree.push((mm, u));
            }
            for &x in set {
                if x != mm {
                    next.insert((mm.min(x), mm.max(x)));
                }
            }
        }
        active = next;
    }
    // Roots label themselves; labels flow down the tree (children were
    // pruned strictly later than their parents, so a reverse pass over
    // the insertion order resolves in one sweep per tree level).
    let mut labels: HashMap<u64, u64> = verts.iter().map(|&v| (v, v)).collect();
    // Iterate to fixpoint (tree depth ≈ rounds, so this is cheap).
    loop {
        let mut changed = false;
        for &(parent, child) in &tree {
            let lp = labels[&parent];
            if labels[&child] != lp {
                labels.insert(child, lp);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    MirrorRun { labels, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incc_graph::generators::{
        cycle_graph, gnm_random_graph, path_graph, path_union, star_graph, PathNumbering,
    };
    use incc_graph::union_find::{connected_components, labellings_equivalent};

    fn check(edges: &[(u64, u64)]) {
        let truth = connected_components(edges);
        let rc = rc_mirror(edges, Method::Gf64, 7);
        assert!(labellings_equivalent(&rc.labels, &truth), "RC mirror wrong");
        let hm = hash_to_min_mirror(edges, 0).expect("unlimited");
        assert!(labellings_equivalent(&hm.labels, &truth), "HM mirror wrong");
        let tp = two_phase_mirror(edges);
        assert!(labellings_equivalent(&tp.labels, &truth), "TP mirror wrong");
        let cr = cracker_mirror(edges);
        assert!(labellings_equivalent(&cr.labels, &truth), "CR mirror wrong");
    }

    #[test]
    fn mirrors_correct_on_families() {
        check(&path_graph(200, PathNumbering::Sequential, 0).edges);
        check(&path_graph(97, PathNumbering::BitReversed, 50).edges);
        check(&cycle_graph(64).edges);
        check(&star_graph(40).edges);
        check(&path_union(3, 7, PathNumbering::Sequential).edges);
        check(&gnm_random_graph(120, 200, 5).edges);
        check(&[(1, 1), (2, 2)]); // loops only
        check(&[(5, 9)]);
    }

    #[test]
    fn mirrors_match_random_multigraphs() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let m = rng.gen_range(1..60);
            let edges: Vec<(u64, u64)> =
                (0..m).map(|_| (rng.gen_range(0..30), rng.gen_range(0..30))).collect();
            check(&edges);
        }
    }

    #[test]
    fn hm_mirror_guard_trips_on_paths() {
        let g = path_graph(2000, PathNumbering::Sequential, 0);
        assert!(
            hash_to_min_mirror(&g.edges, 100_000).is_none(),
            "quadratic growth must trip the guard"
        );
    }

    #[test]
    fn rc_mirror_rounds_logarithmic() {
        let g = path_graph(1 << 16, PathNumbering::Sequential, 0);
        let run = rc_mirror(&g.edges, Method::Gf64, 3);
        assert!(run.rounds <= 40, "{} rounds on a 65536-path", run.rounds);
        assert!(run.rounds >= 10);
    }

    #[test]
    fn mirror_round_counts_match_sql_order_of_magnitude() {
        // The mirrors must count rounds like their SQL twins: compare on
        // a mid-size graph.
        use crate::driver::run_on_graph;
        use crate::two_phase::TwoPhase;
        use incc_mppdb::{Cluster, ClusterConfig};
        let g = gnm_random_graph(300, 500, 9);
        let db = Cluster::new(ClusterConfig::default());
        let sql = run_on_graph(&TwoPhase::default(), &db, &g, 1).unwrap();
        let mem = two_phase_mirror(&g.edges);
        // The SQL twin needs one extra round to observe the fixpoint
        // signature; allow ±2.
        assert!(
            (sql.rounds as i64 - mem.rounds as i64).abs() <= 2,
            "SQL {} vs mirror {}",
            sql.rounds,
            mem.rounds
        );
    }
}
