//! Liu–Tarjan connected components over engine-native primitives.
//!
//! The sixth algorithm, and the first that runs no SQL at all: each
//! round is three direct calls into the engine's vectorized CC
//! primitives ([`incc_mppdb::CcOp`]) — *connect* (every edge offers
//! its smaller endpoint to the larger one's label, applied as a
//! min-update), *shortcut* (pointer jumping `r(v) ← r(r(v))`, looped
//! to a fixpoint within the round) and *alter* (rewrite edges onto
//! current labels, dropping loops and duplicates). The framework is
//! Liu & Tarjan's "Simple Concurrent Labeling Algorithms for Connected
//! Components" (arXiv 1812.06177), specialised to the minimum-label
//! variant so every step is deterministic: a given input graph always
//! produces byte-identical labels, which is what lets the chaos
//! harness compare faulted runs against clean ones.
//!
//! Why it terminates, and why the labelling is correct: label updates
//! only ever decrease, and the shortcut fixpoint before each alter
//! means every edge endpoint entering a round is a label *root* —
//! so connect's min-update replaces only self-parent links, never an
//! edge of the label forest, keeping the forest-plus-remaining-edges
//! component structure invariant. Every live edge's larger endpoint
//! strictly shrinks each round (it always receives at least its own
//! smaller endpoint as a candidate), so the edge relation drains; once
//! it is empty, the final shortcut fixpoint leaves a height-one forest
//! with exactly one root per component.
//!
//! Cost shape: per round, one pass over the edges (connect), a few
//! passes over the labels (shortcut — pointer jumping halves chain
//! lengths, so the inner loop is logarithmic in the longest chain) and
//! two passes over the edges (alter). On low-diameter dense graphs the
//! edge relation collapses in a couple of rounds and the per-round SQL
//! overhead the other five algorithms pay (parse, plan, statement
//! bookkeeping, result materialisation) never occurs.

use crate::driver::{drop_if_exists, AlgoOutcome, CcAlgorithm, RunControl};
use incc_mppdb::{CcOp, DbError, DbResult, SqlEngine};

/// Working-table names (namespaced per session by the engine).
const EDGES: &str = "ltedges";
const LABELS: &str = "ltlabels";
const RESULT: &str = "ltresult";

/// The Liu–Tarjan minimum-label algorithm, executing on an engine's
/// native CC primitives ([`SqlEngine::native_cc`]). Fails on engines
/// without native support — the adaptive driver only selects it after
/// probing.
#[derive(Debug, Clone)]
pub struct LiuTarjan {
    /// Safety bound on rounds; 0 disables the check. The larger
    /// endpoint of every live edge strictly decreases per round, so
    /// non-termination means an engine bug, not an input shape.
    pub max_rounds: usize,
    /// Fuse the first connect into initialisation: the label relation
    /// is seeded with `min(v, smallest smaller neighbour)` while the
    /// working tables are being built, saving a full exchange over the
    /// edge relation. Off for the vanilla framework; the adaptive
    /// driver turns it on.
    pub seed_connect: bool,
}

impl Default for LiuTarjan {
    fn default() -> LiuTarjan {
        LiuTarjan { max_rounds: 512, seed_connect: false }
    }
}

impl LiuTarjan {
    /// The census-tuned configuration the adaptive driver selects.
    pub fn tuned() -> LiuTarjan {
        LiuTarjan { seed_connect: true, ..LiuTarjan::default() }
    }

    fn cleanup(db: &dyn SqlEngine) {
        drop_if_exists(db, &[EDGES, LABELS]);
    }
}

impl CcAlgorithm for LiuTarjan {
    fn name(&self) -> String {
        "LT".into()
    }

    fn run_controlled(
        &self,
        db: &dyn SqlEngine,
        input: &str,
        _seed: u64,
        ctrl: &RunControl<'_>,
    ) -> DbResult<AlgoOutcome> {
        drop_if_exists(db, &[EDGES, LABELS, RESULT]);
        let init = db.native_cc(&CcOp::Init {
            input,
            edges: EDGES,
            labels: LABELS,
            seed_connect: self.seed_connect,
        })?;

        let mut edge_rows = init.rows_out;
        let mut rounds = 0usize;
        let mut round_sizes: Vec<usize> = Vec::new();
        let body = (|| -> DbResult<()> {
            while edge_rows > 0 {
                ctrl.checkpoint()?;
                rounds += 1;
                if self.max_rounds > 0 && rounds > self.max_rounds {
                    return Err(DbError::Exec(format!(
                        "Liu–Tarjan did not converge within {} rounds",
                        self.max_rounds
                    )));
                }
                // A seeding init already performed round 1's connect.
                if !(self.seed_connect && rounds == 1) {
                    db.native_cc(&CcOp::Connect { edges: EDGES, labels: LABELS })?;
                }
                while db.native_cc(&CcOp::Shortcut { labels: LABELS })?.changed > 0 {
                    ctrl.checkpoint()?;
                }
                edge_rows = db
                    .native_cc(&CcOp::Alter { edges: EDGES, labels: LABELS })?
                    .rows_out;
                round_sizes.push(edge_rows);
                ctrl.report_round_native(rounds, edge_rows);
            }
            // Drain any chains left by the last round (the final alter
            // ran against fixpoint labels, so usually a no-op pass).
            while db.native_cc(&CcOp::Shortcut { labels: LABELS })?.changed > 0 {
                ctrl.checkpoint()?;
            }
            Ok(())
        })();
        if let Err(e) = body {
            Self::cleanup(db);
            return Err(e);
        }

        // An edge-free graph reports its single (vacuous) boundary so
        // every run emits at least one round of telemetry.
        if rounds == 0 {
            rounds = 1;
            round_sizes.push(0);
            ctrl.report_round_native(1, 0);
        }

        db.drop_table(EDGES)?;
        db.rename_table(LABELS, RESULT)?;
        Ok(AlgoOutcome {
            result_table: RESULT.into(),
            rounds,
            round_sizes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_on_graph;
    use incc_graph::generators::gnm_random_graph;
    use incc_graph::EdgeList;
    use incc_mppdb::{Cluster, ClusterConfig};
    use std::sync::Arc;

    fn small_cluster() -> Arc<Cluster> {
        Arc::new(Cluster::new(ClusterConfig { segments: 4, ..Default::default() }))
    }

    #[test]
    fn labels_random_graph_correctly() {
        let g = gnm_random_graph(80, 120, 7);
        let c = small_cluster();
        let report = run_on_graph(&LiuTarjan::default(), &c, &g, 1).unwrap();
        report.verify_against(&g).unwrap();
        assert!(report.rounds >= 1);
        assert_eq!(report.stats.queries, 0, "native rounds run no SQL");
        assert!(c.table_names().is_empty(), "working tables cleaned up");
    }

    #[test]
    fn tuned_variant_matches_vanilla() {
        let g = gnm_random_graph(60, 90, 11);
        let c1 = small_cluster();
        let c2 = small_cluster();
        let a = run_on_graph(&LiuTarjan::default(), &c1, &g, 1).unwrap();
        let b = run_on_graph(&LiuTarjan::tuned(), &c2, &g, 1).unwrap();
        a.verify_against(&g).unwrap();
        assert_eq!(a.labels, b.labels, "min-label results are canonical");
    }

    #[test]
    fn handles_edge_free_and_loop_only_graphs() {
        let c = small_cluster();
        let g = EdgeList::from_pairs(vec![(5, 5), (9, 9)]);
        let report = run_on_graph(&LiuTarjan::default(), &c, &g, 1).unwrap();
        assert_eq!(report.labels.len(), 2);
        assert_eq!(report.rounds, 1);
    }

    #[test]
    fn path_graph_converges_in_few_rounds() {
        // A 64-vertex path: high diameter; min-label connect pulls the
        // whole chain onto vertex 0 in one connect + log-many jumps.
        let g = EdgeList::from_pairs((0..63).map(|i| (i, i + 1)).collect());
        let c = small_cluster();
        let report = run_on_graph(&LiuTarjan::default(), &c, &g, 1).unwrap();
        assert!(report.rounds <= 8, "rounds={}", report.rounds);
        assert!(report.labels.values().all(|&l| l == 0));
    }
}
