//! The naive "Breadth First Search" strategy (paper Section IV).
//!
//! Each vertex repeatedly replaces its representative with the minimum
//! representative in its closed neighbourhood until nothing changes —
//! the approach of Apache MADlib's connected-components module. It is
//! correct, but its round count is bounded only by the graph diameter:
//! on the sequentially numbered path it needs `n − 1` rounds, the
//! worst-case behaviour the paper uses to motivate Randomised
//! Contraction. A configurable round guard converts that pathology
//! into a clean "did not finish" error.

use crate::driver::{drop_if_exists, AlgoOutcome, CcAlgorithm, RunControl};
use incc_mppdb::{DbError, DbResult, SqlEngine};

/// The min-propagation (BFS / MADlib) strategy.
#[derive(Debug, Clone, Copy)]
pub struct BfsStrategy {
    /// Abort with an error after this many rounds (0 = unlimited).
    /// The paper's Table III marks such runs "did not finish".
    pub max_rounds: usize,
}

impl Default for BfsStrategy {
    fn default() -> Self {
        BfsStrategy { max_rounds: 10_000 }
    }
}

impl CcAlgorithm for BfsStrategy {
    fn name(&self) -> String {
        "BFS".into()
    }

    fn run_controlled(
        &self,
        db: &dyn SqlEngine,
        input: &str,
        _seed: u64,
        ctrl: &RunControl<'_>,
    ) -> DbResult<AlgoOutcome> {
        drop_if_exists(db, &["bfsgraph", "bfslab", "bfsupd", "bfsresult"]);
        // Doubled edge table, as in every algorithm's setup.
        db.run(&format!(
            "create table bfsgraph as \
             select v1, v2 from {input} union all select v2, v1 from {input} \
             distributed by (v1)"
        ))?;
        // Initial representative: min of the closed neighbourhood.
        db.run(
            "create table bfslab as \
             select v1 as v, least(v1, min(v2)) as r from bfsgraph \
             group by v1 distributed by (v)",
        )?;
        let mut rounds = 1usize;
        loop {
            if let Err(e) = ctrl.checkpoint() {
                drop_if_exists(db, &["bfsgraph", "bfslab", "bfsupd"]);
                return Err(e);
            }
            if self.max_rounds > 0 && rounds > self.max_rounds {
                drop_if_exists(db, &["bfsgraph", "bfslab", "bfsupd"]);
                return Err(DbError::Exec(format!(
                    "BFS did not finish within {} rounds (diameter-bound worst case)",
                    self.max_rounds
                )));
            }
            // Improve: r'(v) = min(r(v), min over neighbours w of r(w)).
            db.run(
                "create table bfsupd as \
                 select g.v1 as v, least(l1.r, min(l2.r)) as r \
                 from bfsgraph as g, bfslab as l1, bfslab as l2 \
                 where g.v1 = l1.v and g.v2 = l2.v \
                 group by g.v1, l1.r \
                 distributed by (v)",
            )?;
            let changed = db.query_scalar_i64(
                "select count(*) as n from bfsupd as u, bfslab as l \
                 where u.v = l.v and u.r != l.r",
            )?;
            db.drop_table("bfslab")?;
            db.rename_table("bfsupd", "bfslab")?;
            ctrl.report_round(rounds, changed.max(0) as usize);
            if changed == 0 {
                break;
            }
            rounds += 1;
        }
        db.drop_table("bfsgraph")?;
        db.rename_table("bfslab", "bfsresult")?;
        Ok(AlgoOutcome { result_table: "bfsresult".into(), rounds, round_sizes: Vec::new() })
    }
}
