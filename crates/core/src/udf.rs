//! The user-defined SQL functions the algorithms register.
//!
//! The paper loads a C implementation of GF(2^64) arithmetic into the
//! database as the UDF `axplusb(A, x, B)` (its Fig. 7). This module
//! provides that function plus its GF(p) sibling and a per-round
//! Blowfish encryptor, all as [`ScalarUdf`] implementations for
//! [`incc_mppdb::Cluster::register_udf`].

use incc_ffield::blowfish::Blowfish;
use incc_ffield::gf64::axplusb;
use incc_ffield::gfp::Gfp;
use incc_mppdb::{Datum, ScalarUdf};

/// `axplusb(a, x, b)` over GF(2^64) — bit-identical to the paper's C
/// UDF: 64-bit integers are polynomials over GF(2) reduced modulo
/// `x^64 + x^4 + x^3 + x + 1`.
pub struct AxPlusB;

impl ScalarUdf for AxPlusB {
    fn eval(&self, args: &[Datum]) -> Datum {
        match args {
            [Datum::Int(a), Datum::Int(x), Datum::Int(b)] => {
                Datum::Int(axplusb(*a as u64, *x as u64, *b as u64) as i64)
            }
            _ => Datum::Null,
        }
    }
}

/// `axb_p(a, x, b)` over GF(p), `p = 2^61 − 1` — the paper's SQL-only
/// alternative ("choose a prime number p known to be larger than any
/// vertex ID and use normal integer arithmetic modulo p").
pub struct AxbP;

impl ScalarUdf for AxbP {
    fn eval(&self, args: &[Datum]) -> Datum {
        match args {
            [Datum::Int(a), Datum::Int(x), Datum::Int(b)] => {
                Datum::Int(Gfp.axb(*a as u64, *x as u64, *b as u64) as i64)
            }
            _ => Datum::Null,
        }
    }
}

/// A per-round Blowfish encryption UDF `bf(x)` with the round key baked
/// in — the paper's *encryption method*: "only the encryption key needs
/// to be distributed and each processor can compute the pseudo-random
/// vertex IDs independently".
pub struct BlowfishUdf {
    cipher: Blowfish,
}

impl BlowfishUdf {
    /// Creates the UDF for a random 128-bit round key.
    pub fn new(key: u128) -> BlowfishUdf {
        BlowfishUdf { cipher: Blowfish::from_u128(key) }
    }
}

impl ScalarUdf for BlowfishUdf {
    fn eval(&self, args: &[Datum]) -> Datum {
        match args {
            [Datum::Int(x)] => Datum::Int(self.cipher.encrypt(*x as u64) as i64),
            _ => Datum::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axplusb_matches_field_math() {
        let udf = AxPlusB;
        let out = udf.eval(&[Datum::Int(3), Datum::Int(5), Datum::Int(7)]);
        assert_eq!(out, Datum::Int(axplusb(3, 5, 7) as i64));
        // Null propagation.
        assert_eq!(udf.eval(&[Datum::Null, Datum::Int(1), Datum::Int(2)]), Datum::Null);
    }

    #[test]
    fn axplusb_handles_negative_bit_patterns() {
        // -1 is the all-ones 64-bit pattern; arithmetic is bit-level.
        let udf = AxPlusB;
        let out = udf.eval(&[Datum::Int(-1), Datum::Int(-1), Datum::Int(0)]);
        assert_eq!(out, Datum::Int(axplusb(u64::MAX, u64::MAX, 0) as i64));
    }

    #[test]
    fn axb_p_stays_in_field() {
        let udf = AxbP;
        let Datum::Int(v) = udf.eval(&[
            Datum::Int(123_456_789),
            Datum::Int(987_654_321),
            Datum::Int(42),
        ]) else {
            panic!("expected int")
        };
        assert!((v as u64) < incc_ffield::gfp::P);
    }

    #[test]
    fn blowfish_udf_is_keyed_bijection_sample() {
        let udf = BlowfishUdf::new(0xABCD);
        let a = udf.eval(&[Datum::Int(1)]);
        let b = udf.eval(&[Datum::Int(2)]);
        assert_ne!(a, b);
        // Deterministic per key.
        let udf2 = BlowfishUdf::new(0xABCD);
        assert_eq!(udf2.eval(&[Datum::Int(1)]), a);
        let udf3 = BlowfishUdf::new(0xABCE);
        assert_ne!(udf3.eval(&[Datum::Int(1)]), a);
    }
}
