//! Hash-to-Min (Rastogi et al., "Finding connected components in
//! Map-Reduce in logarithmic rounds", ICDE 2013) — ported to SQL.
//!
//! Every vertex `v` maintains a cluster `C(v)`, initialised to its
//! closed neighbourhood. Each round, `v` sends `min C(v)` to every
//! member of `C(v)` and sends all of `C(v)` to the minimum; each
//! vertex's new cluster is the union of what it received. The paper
//! reports this as the best practical MapReduce algorithm of its
//! family — and exploits its Θ(|V|²) worst-case space on path graphs
//! (the `Path100M` dataset) to show why worst-case space matters: "on a
//! shorter path of 100,000 vertices they already use more than 100 GB".
//! The port keeps that behaviour; the engine's space guard reports it
//! as "did not finish", matching the dashes in the paper's Table III.
//!
//! The SQL translation is the direct one the paper describes for its
//! own experiments: the cluster relation is a table `cc(v, u)` meaning
//! `u ∈ C(v)`; the map phase is a join against the per-vertex minima
//! and the reduce phase a `DISTINCT` union.

use crate::driver::{drop_if_exists, AlgoOutcome, CcAlgorithm, RunControl};
use incc_mppdb::{DbError, DbResult, SqlEngine};

/// Hash-to-Min, in-database.
#[derive(Debug, Clone, Copy)]
pub struct HashToMin {
    /// Round guard (0 = unlimited); Hash-to-Min provably converges in
    /// O(log |V|) rounds, so this only trips on bugs.
    pub max_rounds: usize,
}

impl Default for HashToMin {
    fn default() -> Self {
        HashToMin { max_rounds: 1000 }
    }
}

impl CcAlgorithm for HashToMin {
    fn name(&self) -> String {
        "HM".into()
    }

    fn run_controlled(
        &self,
        db: &dyn SqlEngine,
        input: &str,
        _seed: u64,
        ctrl: &RunControl<'_>,
    ) -> DbResult<AlgoOutcome> {
        drop_if_exists(db, &["hmgraph", "hmcc", "hmmin", "hmnew", "hmresult"]);
        db.run(&format!(
            "create table hmgraph as \
             select v1, v2 from {input} union all select v2, v1 from {input} \
             distributed by (v1)"
        ))?;
        // C(v) = N[v]: all neighbours plus v itself.
        db.run(
            "create table hmcc as \
             select distinct v1 as v, v2 as u from hmgraph \
             union all select distinct v1 as v, v1 as u from hmgraph \
             distributed by (v)",
        )?;
        db.drop_table("hmgraph")?;

        let mut rounds = 0usize;
        let mut round_sizes: Vec<usize> = Vec::new();
        let mut prev_sig: Option<(i64, i64, i64)> = None;
        loop {
            if let Err(e) = ctrl.checkpoint() {
                drop_if_exists(db, &["hmcc", "hmmin", "hmnew"]);
                return Err(e);
            }
            rounds += 1;
            if self.max_rounds > 0 && rounds > self.max_rounds {
                drop_if_exists(db, &["hmcc", "hmmin", "hmnew"]);
                return Err(DbError::Exec(format!(
                    "Hash-to-Min did not converge within {} rounds",
                    self.max_rounds
                )));
            }
            db.run(
                "create table hmmin as select v, min(u) as m from hmcc \
                 group by v distributed by (v)",
            )?;
            // Map: send C(v) to min(C(v)) and min(C(v)) to all of C(v).
            // Reduce: union (DISTINCT).
            let create = db.run(
                "create table hmnew as \
                 select distinct v, u from \
                 (select m.m as v, c.u as u from hmcc as c, hmmin as m where c.v = m.v \
                  union all \
                  select c.u as v, m.m as u from hmcc as c, hmmin as m where c.v = m.v) \
                 as msgs distributed by (v)",
            );
            db.drop_table("hmmin")?;
            let _rows = match create {
                Ok(out) => out.row_count(),
                Err(e) => {
                    drop_if_exists(db, &["hmcc", "hmnew"]);
                    return Err(e);
                }
            };
            // Convergence: the cluster relation is a fixpoint. The
            // check compares a cheap signature (count, Σv, Σu) across
            // rounds; at the fixpoint the relation is literally equal,
            // so the signature is too. The converse is assumed: a
            // signature collision between *different* consecutive
            // relations would stop the loop early. With three
            // 64-bit-sum components over data that changes by whole
            // cluster merges, no workload has exhibited this; every
            // run is verified against union-find downstream.
            let sig_row = db.query(
                "select count(*) as c, sum(v) as sv, sum(u) as su from hmnew",
            )?;
            let sig = (
                sig_row[0][0].as_int().unwrap_or(0),
                sig_row[0][1].as_int().unwrap_or(0),
                sig_row[0][2].as_int().unwrap_or(0),
            );
            db.drop_table("hmcc")?;
            db.rename_table("hmnew", "hmcc")?;
            round_sizes.push(sig.0.max(0) as usize);
            ctrl.report_round(rounds, sig.0.max(0) as usize);
            if prev_sig == Some(sig) {
                break;
            }
            prev_sig = Some(sig);
        }
        // At convergence C(m) is the whole component for the minimum m
        // and C(v) ∋ m for every other vertex: the label is min C(v).
        db.run(
            "create table hmresult as select v, min(u) as r from hmcc \
             group by v distributed by (v)",
        )?;
        db.drop_table("hmcc")?;
        Ok(AlgoOutcome { result_table: "hmresult".into(), rounds, round_sizes })
    }
}
