//! Census-driven adaptive algorithm selection.
//!
//! The paper evaluates each algorithm against fixed dataset families
//! and finds no single winner: Randomised Contraction dominates the
//! heavy-tailed graphs, the simpler propagation schemes win small or
//! shallow inputs, and the engine-native Liu–Tarjan rounds beat every
//! SQL formulation whenever the native primitives are available. The
//! [`AdaptiveDriver`] turns that observation into a strategy — it is a
//! [`CcAlgorithm`] itself, so it slots into every harness (service
//! jobs, benchmarks, chaos tests) unchanged:
//!
//! 1. **Probe.** A bounded census sample of the input edge relation is
//!    drawn, preferring the engine's native [`CcOp::Census`] primitive
//!    (one stride-sampled pass, no SQL) and falling back to a plain
//!    scan on engines without native support. The probe also reveals
//!    whether native primitives exist at all.
//! 2. **Decide.** Decision features come from [`incc_graph::census`]:
//!    degree skew, edge density, the log–log component-size slope and
//!    a BFS-estimated diameter — all computed on the sample, so the
//!    probe cost stays bounded regardless of input size.
//! 3. **Run, and possibly re-decide.** The chosen algorithm runs under
//!    a wrapped [`RunControl`]. After round 1 the driver compares the
//!    observed working-set decay against the decay model that justified
//!    the choice; if it is off-model the run is cancelled at the round
//!    boundary (algorithms already clean up on cancellation) and the
//!    fallback algorithm reruns from the untouched input table.
//!
//! Every decision is recorded as a human-readable string retrievable
//! via [`CcAlgorithm::last_decision`]; the service layer surfaces it in
//! job results and counts choices in Prometheus metrics.

use crate::driver::{AlgoOutcome, CcAlgorithm, RunControl};
use crate::hash_to_min::HashToMin;
use crate::liu_tarjan::LiuTarjan;
use crate::rc::RandomisedContraction;
use crate::two_phase::TwoPhase;
use incc_graph::census;
use incc_graph::EdgeList;
use incc_mppdb::{CcOp, DbError, DbResult, SqlEngine};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Tunables for [`AdaptiveDriver`]. The defaults are what the service
/// and benchmarks use; tests override `forced_initial` to exercise the
/// switching path deterministically.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Census sample rows requested per partition (native probe).
    pub probe_rows_per_part: usize,
    /// BFS probes for the diameter estimate.
    pub diameter_probes: usize,
    /// Degree-skew threshold above which the SQL fallback prefers
    /// Two-Phase (its per-round dedup flattens heavy-tailed stars).
    pub skew_threshold: f64,
    /// Sampled-edge count below which Hash-to-Min is picked outright —
    /// on tiny graphs its simplicity beats everyone's setup cost.
    pub tiny_edges: usize,
    /// Edges-per-distinct-source threshold at which native Liu–Tarjan
    /// is preferred over Randomised Contraction. Below it the graph is
    /// path- or forest-like (each edge brings its own vertex) and LT's
    /// per-round full-relation passes pay for label tables RC's
    /// contraction would have collapsed in one round; above it the
    /// graph is dense enough that LT's SQL-free rounds win. The ratio
    /// is exact (census counts distinct sources per partition) and
    /// scale-invariant — Candels sits at ≈2.2 and RMAT at ≈68 across
    /// every scale, the forest-like Bitcoin/path datasets at 1.0–1.4.
    pub dense_threshold: f64,
    /// Whether the round-1 decay check may abandon the first choice.
    pub allow_switch: bool,
    /// If the working set after round 1 exceeds this fraction of the
    /// initial edge count, the decay is declared off-model. Calibrated
    /// high: contraction on a pure path legitimately shrinks the edge
    /// set by only ~5% in round 1 (endpoint pairs), so the switch must
    /// fire only when round 1 achieved essentially nothing.
    pub decay_limit: f64,
    /// Test hook: force the initial pick (algorithm display name,
    /// `"LT"`, `"RC"`, `"TP"` or `"HM"`) regardless of the census.
    pub forced_initial: Option<String>,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            probe_rows_per_part: 512,
            diameter_probes: 4,
            skew_threshold: 8.0,
            tiny_edges: 16,
            dense_threshold: 1.8,
            allow_switch: true,
            decay_limit: 0.98,
            forced_initial: None,
        }
    }
}

/// Decision features extracted from the census sample.
#[derive(Debug, Clone)]
struct Features {
    native: bool,
    sampled_edges: usize,
    total_edges: usize,
    /// Exact edges / distinct-source-vertices ratio (`None` when the
    /// engine could not report distinct sources).
    edges_per_src: Option<f64>,
    skew: Option<f64>,
    density: Option<f64>,
    slope: Option<f64>,
    diameter: Option<usize>,
}

/// The census-driven meta-algorithm. See the module docs for the
/// probe → decide → run/re-decide lifecycle.
#[derive(Debug, Default)]
pub struct AdaptiveDriver {
    /// Selection tunables.
    pub config: AdaptiveConfig,
    decision: Mutex<Option<String>>,
}

impl AdaptiveDriver {
    /// A driver with explicit tunables.
    pub fn with_config(config: AdaptiveConfig) -> AdaptiveDriver {
        AdaptiveDriver { config, decision: Mutex::new(None) }
    }

    /// Draws the census sample, preferring the native primitive.
    fn probe(&self, db: &dyn SqlEngine, input: &str, seed: u64) -> DbResult<Features> {
        let (native, pairs, total_edges, src_verts) = match db.native_cc(&CcOp::Census {
            input,
            per_part: self.config.probe_rows_per_part,
        }) {
            Ok(rep) => (true, rep.sample, rep.changed, rep.src_verts),
            Err(DbError::Exec(_)) => {
                let pairs = db.scan_pairs(input)?;
                let total = pairs.len();
                let srcs = pairs
                    .iter()
                    .map(|&(a, _)| a)
                    .collect::<std::collections::HashSet<_>>()
                    .len();
                (false, pairs, total, srcs)
            }
            Err(e) => return Err(e),
        };
        // Features are computed on a bounded sub-sample of the census
        // sample: decision quality saturates far below the per-part
        // sample size, and the probe has to stay near-free relative to
        // even the fastest algorithm (the CI gate holds the adaptive
        // driver to 1.05x of the best fixed pick). The load-bearing
        // density feature (edges per distinct source) is exact and
        // comes from the census itself, not this sub-sample.
        const FEATURE_EDGE_CAP: usize = 256;
        let stride = pairs.len().div_ceil(FEATURE_EDGE_CAP).max(1);
        let sample = EdgeList::from_pairs(
            pairs
                .iter()
                .step_by(stride)
                .take(FEATURE_EDGE_CAP)
                .map(|&(a, b)| (a as u64, b as u64))
                .collect::<Vec<_>>(),
        );
        let diameter = census::estimated_diameter(&sample, self.config.diameter_probes, seed);
        Ok(Features {
            native,
            sampled_edges: sample.edge_count(),
            total_edges,
            edges_per_src: (src_verts > 0).then(|| total_edges as f64 / src_verts as f64),
            skew: census::degree_skew(&sample),
            density: census::density(&sample),
            slope: census::loglog_slope(&census::log2_size_histogram(&sample)),
            diameter,
        })
    }

    /// Maps features to an initial algorithm and a fallback for the
    /// off-model case. Returns `(algorithm, fallback, rationale)`.
    fn pick(&self, f: &Features) -> (Box<dyn CcAlgorithm>, Box<dyn CcAlgorithm>, String) {
        if let Some(name) = &self.config.forced_initial {
            let forced: Box<dyn CcAlgorithm> = match name.as_str() {
                "LT" => Box::new(LiuTarjan::tuned()),
                "TP" => Box::new(TwoPhase::default()),
                "HM" => Box::new(HashToMin::default()),
                _ => Box::new(RandomisedContraction::default()),
            };
            return (
                forced,
                Box::new(RandomisedContraction::default()),
                format!("forced initial pick {name}"),
            );
        }
        let eps = f.edges_per_src.unwrap_or(0.0);
        if f.native && eps >= self.config.dense_threshold {
            // Dense graph with native rounds available: every edge
            // shares sources, so LT's label relation stays small
            // relative to the edge relation and its SQL-free rounds
            // win outright; the seeded-connect variant additionally
            // folds round 1's exchange into initialisation.
            let why = format!(
                "native primitives, dense input (edges/src {:.2} >= {:.2}); \
                 skew={:?} slope={:?} est_diameter={:?}",
                eps, self.config.dense_threshold, f.skew, f.slope, f.diameter
            );
            return (
                Box::new(LiuTarjan::tuned()),
                Box::new(RandomisedContraction::default()),
                why,
            );
        }
        if f.native {
            // Forest- or path-like (every edge brings its own source):
            // LT would pay per-round full passes over a label relation
            // as large as the vertex set, while one contraction round
            // collapses most tiny components — Randomised Contraction
            // wins despite its SQL round overhead.
            let why = format!(
                "native primitives but sparse input (edges/src {:.2} < {:.2}): \
                 contraction collapses forest-like graphs; skew={:?} est_diameter={:?}",
                eps, self.config.dense_threshold, f.skew, f.diameter
            );
            return (
                Box::new(RandomisedContraction::default()),
                Box::new(LiuTarjan::tuned()),
                why,
            );
        }
        if f.sampled_edges <= self.config.tiny_edges && f.total_edges <= self.config.tiny_edges {
            return (
                Box::new(HashToMin::default()),
                Box::new(RandomisedContraction::default()),
                format!("tiny input ({} edges)", f.total_edges),
            );
        }
        if f.skew.unwrap_or(1.0) >= self.config.skew_threshold {
            return (
                Box::new(TwoPhase::default()),
                Box::new(RandomisedContraction::default()),
                format!("heavy-tailed sample (skew {:?})", f.skew),
            );
        }
        (
            Box::new(RandomisedContraction::default()),
            Box::new(TwoPhase::default()),
            format!(
                "default contraction pick; skew={:?} density={:?} slope={:?}",
                f.skew, f.density, f.slope
            ),
        )
    }

    fn record(&self, text: String) {
        *self.decision.lock().unwrap() = Some(text);
    }
}

impl CcAlgorithm for AdaptiveDriver {
    fn name(&self) -> String {
        "AD".into()
    }

    fn last_decision(&self) -> Option<String> {
        self.decision.lock().unwrap().clone()
    }

    fn run_controlled(
        &self,
        db: &dyn SqlEngine,
        input: &str,
        seed: u64,
        ctrl: &RunControl<'_>,
    ) -> DbResult<AlgoOutcome> {
        ctrl.checkpoint()?;
        let features = self.probe(db, input, seed)?;
        let (first, fallback, why) = self.pick(&features);
        self.record(format!("picked {} ({why})", first.name()));

        // Run the first choice under a wrapped control: the hook
        // forwards round progress, propagates the caller's cancel flag
        // and flips `abort` itself when round 1's observed decay is
        // off-model. Decay is measured between the first two round
        // reports (round 2's working set vs round 1's) because
        // algorithms emit round 1 *before* their first contraction
        // lands — comparing round 1 against the input size would read
        // every algorithm's round 1 as "no decay".
        let abort = AtomicBool::new(false);
        let off_model = AtomicBool::new(false);
        let round1_rows = std::sync::atomic::AtomicUsize::new(usize::MAX);
        let decay_limit = if self.config.allow_switch {
            self.config.decay_limit
        } else {
            f64::INFINITY
        };
        let hook = |round: usize, working_rows: usize| {
            if let Some(f) = ctrl.on_round {
                f(round, working_rows);
            }
            if ctrl.cancel.map(|c| c.load(Ordering::Relaxed)).unwrap_or(false) {
                abort.store(true, Ordering::Relaxed);
            }
            if round == 1 {
                round1_rows.store(working_rows, Ordering::Relaxed);
            } else if round == 2 {
                let r1 = round1_rows.load(Ordering::Relaxed);
                if r1 != usize::MAX && working_rows as f64 > decay_limit * r1 as f64 {
                    off_model.store(true, Ordering::Relaxed);
                    abort.store(true, Ordering::Relaxed);
                }
            }
        };
        let inner = RunControl {
            cancel: Some(&abort),
            on_round: Some(&hook),
            rounds: ctrl.rounds,
        };
        match first.run_controlled(db, input, seed, &inner) {
            Ok(outcome) => Ok(outcome),
            Err(DbError::Cancelled(reason)) => {
                // The caller's cancellation wins over our own switch.
                ctrl.checkpoint()?;
                if !off_model.load(Ordering::Relaxed) {
                    return Err(DbError::Cancelled(reason));
                }
                self.record(format!(
                    "picked {} ({why}); switched to {} after round 1 \
                     (round-2 working set above {:.0}% of round 1's)",
                    first.name(),
                    fallback.name(),
                    self.config.decay_limit * 100.0,
                ));
                fallback.run_controlled(db, input, seed, ctrl)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_on_graph;
    use incc_graph::generators::gnm_random_graph;
    use incc_mppdb::{Cluster, ClusterConfig};
    use std::sync::Arc;

    fn small_cluster() -> Arc<Cluster> {
        Arc::new(Cluster::new(ClusterConfig { segments: 4, ..Default::default() }))
    }

    #[test]
    fn picks_native_liu_tarjan_on_a_dense_cluster() {
        // 180 edges over ≤60 sources: edges/src ≥ 3, well past the
        // dense threshold.
        let g = gnm_random_graph(60, 180, 5);
        let c = small_cluster();
        let ad = AdaptiveDriver::default();
        let report = run_on_graph(&ad, &c, &g, 3).unwrap();
        report.verify_against(&g).unwrap();
        let decision = ad.last_decision().unwrap();
        assert!(decision.starts_with("picked LT"), "{decision}");
        assert_eq!(report.stats.queries, 0, "native pick runs no SQL");
    }

    #[test]
    fn picks_contraction_on_a_forest_like_cluster() {
        // A path: every edge brings its own source (edges/src = 1.0),
        // so even with native primitives available the driver must
        // prefer contraction.
        let pairs: Vec<(u64, u64)> = (0..200).map(|i| (i, i + 1)).collect();
        let g = incc_graph::EdgeList::from_pairs(pairs);
        let c = small_cluster();
        let ad = AdaptiveDriver::default();
        let report = run_on_graph(&ad, &c, &g, 3).unwrap();
        report.verify_against(&g).unwrap();
        let decision = ad.last_decision().unwrap();
        assert!(decision.starts_with("picked RC"), "{decision}");
        assert!(decision.contains("sparse"), "{decision}");
    }

    #[test]
    fn switches_when_round_one_decay_is_off_model() {
        // Force BFS-style Hash-to-Min... actually force TwoPhase with a
        // decay limit of zero: any non-empty round-1 working set is
        // off-model, so the driver must cancel and rerun the fallback.
        let g = gnm_random_graph(60, 100, 6);
        let c = small_cluster();
        let ad = AdaptiveDriver::with_config(AdaptiveConfig {
            forced_initial: Some("TP".into()),
            decay_limit: 0.0,
            ..AdaptiveConfig::default()
        });
        let report = run_on_graph(&ad, &c, &g, 3).unwrap();
        report.verify_against(&g).unwrap();
        let decision = ad.last_decision().unwrap();
        assert!(decision.contains("switched to RC"), "{decision}");
        assert!(c.table_names().is_empty(), "abandoned run cleaned up");
    }

    #[test]
    fn does_not_switch_when_disabled() {
        let g = gnm_random_graph(60, 100, 6);
        let c = small_cluster();
        let ad = AdaptiveDriver::with_config(AdaptiveConfig {
            forced_initial: Some("TP".into()),
            decay_limit: 0.0,
            allow_switch: false,
            ..AdaptiveConfig::default()
        });
        let report = run_on_graph(&ad, &c, &g, 3).unwrap();
        report.verify_against(&g).unwrap();
        assert!(!ad.last_decision().unwrap().contains("switched"));
    }

    #[test]
    fn caller_cancellation_is_not_mistaken_for_a_switch() {
        use crate::driver::RunControl;
        let g = gnm_random_graph(60, 100, 6);
        let c = small_cluster();
        let _ = c.run("drop table if exists ccinput");
        c.load_pairs("ccinput", "v1", "v2", &g.to_i64_pairs()).unwrap();
        let cancel = AtomicBool::new(true);
        let ctrl = RunControl { cancel: Some(&cancel), ..RunControl::default() };
        let ad = AdaptiveDriver::default();
        let err = ad.run_controlled(&*c, "ccinput", 3, &ctrl).unwrap_err();
        assert!(matches!(err, DbError::Cancelled(_)), "{err:?}");
        c.drop_table("ccinput").unwrap();
    }
}
