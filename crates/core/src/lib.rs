//! In-database connected component analysis.
//!
//! This crate implements the primary contribution of Bögeholz, Brand &
//! Todor, *"In-database connected component analysis"* (ICDE 2020):
//! **Randomised Contraction**, a randomised, always-correct,
//! linear-space connected-components algorithm whose building blocks
//! are plain SQL queries executed inside an MPP relational database —
//! here the from-scratch [`incc_mppdb`] engine. For any ε > 0 the
//! algorithm terminates within O(log |V|) SQL queries with probability
//! at least 1 − ε (paper Theorem 1 plus Markov).
//!
//! Alongside the paper's algorithm (both space variants of Figs. 3-4
//! and all randomisation methods of Section V-C), the crate ports the
//! three distributed comparators the paper evaluates against — exactly
//! as the paper did, via "direct, one-to-one translations" to SQL:
//!
//! * [`hash_to_min::HashToMin`] — Rastogi et al., ICDE 2013.
//! * [`two_phase::TwoPhase`] — Kiveris et al., SoCC 2014.
//! * [`cracker::Cracker`] — Lulli et al., TPDS 2017.
//! * [`bfs::BfsStrategy`] — the naive min-propagation strategy of the
//!   paper's Section IV (the MADlib approach), kept for the worst-case
//!   demonstrations.
//!
//! Every algorithm implements [`driver::CcAlgorithm`]: it receives an
//! edge table named by the caller (columns `v1`, `v2`, one row per
//! undirected edge, loop edges marking isolated vertices) and leaves a
//! result table of `(v, r)` labellings, the paper's output contract.
//! [`driver::run_on_graph`] wires a generated graph through any
//! algorithm and verifies the labelling against in-memory union–find.
//!
//! The [`gamma`] module contains the contraction-factor machinery
//! behind the paper's Theorem 1 (γ ≤ 3/4), Appendix B (γ ≤ 2/3 under
//! full randomisation, tight on the directed 3-cycle) and Fig. 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod bfs;
pub mod cracker;
pub mod driver;
pub mod gamma;
pub mod hash_to_min;
pub mod liu_tarjan;
pub mod mirror;
pub mod rc;
pub mod two_phase;
pub mod udf;

pub use adaptive::{AdaptiveConfig, AdaptiveDriver};
pub use driver::{
    run_on_graph, AlgoOutcome, CcAlgorithm, RoundRecorder, RoundReport, RunReport,
};
pub use liu_tarjan::LiuTarjan;
pub use rc::{RandomisedContraction, SpaceVariant};
