//! Contraction-factor analysis (paper Theorem 1, Fig. 2, Appendix B).
//!
//! The engine-level algorithm needs one fact: under random vertex
//! ordering, each contraction round shrinks the vertex set to at most a
//! constant expected fraction γ < 1. The paper proves γ ≤ 3/4 for the
//! finite-fields and random-reals methods (Theorem 1) and γ ≤ 2/3
//! under full randomisation (Appendix B, Theorem 2 — tight on the
//! directed 3-cycle). This module provides in-memory machinery to
//! *measure* shrink factors for any method and to compute the
//! expectation *exactly* on small graphs by enumerating all orderings,
//! which is how the benchmarks verify the theorems empirically.

use incc_ffield::Method;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

/// Result of one contraction step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractionStep {
    /// Vertices before the step.
    pub vertices_before: usize,
    /// Distinct representatives chosen (vertices after, before loop
    /// removal).
    pub representatives: usize,
    /// The contracted edge list (duplicates and loops removed).
    pub edges: Vec<(u64, u64)>,
}

impl ContractionStep {
    /// The shrink factor `representatives / vertices_before`.
    pub fn shrink_factor(&self) -> f64 {
        if self.vertices_before == 0 {
            return 0.0;
        }
        self.representatives as f64 / self.vertices_before as f64
    }
}

/// Applies one contraction round: every vertex maps to the member of
/// its closed neighbourhood minimising `h` (ties by smaller vertex ID,
/// matching the random-reals argmin SQL).
pub fn contract_once(edges: &[(u64, u64)], h: impl Fn(u64) -> u64) -> ContractionStep {
    let mut neigh: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(a, b) in edges {
        neigh.entry(a).or_default().push(b);
        neigh.entry(b).or_default().push(a);
    }
    let vertices_before = neigh.len();
    let mut rep: HashMap<u64, u64> = HashMap::with_capacity(neigh.len());
    for (&v, ns) in &neigh {
        let mut best = v;
        let mut best_h = h(v);
        for &w in ns {
            let hw = h(w);
            if hw < best_h || (hw == best_h && w < best) {
                best = w;
                best_h = hw;
            }
        }
        rep.insert(v, best);
    }
    let representatives: HashSet<u64> = rep.values().copied().collect();
    let mut new_edges: HashSet<(u64, u64)> = HashSet::new();
    for &(a, b) in edges {
        let (ra, rb) = (rep[&a], rep[&b]);
        if ra != rb {
            new_edges.insert((ra.min(rb), ra.max(rb)));
        }
    }
    ContractionStep {
        vertices_before,
        representatives: representatives.len(),
        edges: new_edges.into_iter().collect(),
    }
}

/// Contracts repeatedly with fresh random hashes until no edges remain;
/// returns the per-round shrink factors. This is the in-memory mirror
/// of the full algorithm, used for round-count experiments.
pub fn contract_to_completion(
    edges: &[(u64, u64)],
    method: Method,
    seed: u64,
) -> Vec<ContractionStep> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current: Vec<(u64, u64)> = edges.iter().filter(|(a, b)| a != b).copied().collect();
    let mut steps = Vec::new();
    while !current.is_empty() {
        let h = method.sample_round(&mut rng);
        let step = contract_once(&current, |v| h.hash(v));
        current = step.edges.clone();
        steps.push(step);
        assert!(steps.len() < 10_000, "contraction failed to converge");
    }
    steps
}

/// Measures the mean first-round shrink factor over `trials`
/// independent randomisations — the empirical check of Theorem 1's
/// γ ≤ 3/4 bound.
pub fn measured_gamma(edges: &[(u64, u64)], method: Method, seed: u64, trials: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    for _ in 0..trials {
        let h = method.sample_round(&mut rng);
        total += contract_once(edges, |v| h.hash(v)).shrink_factor();
    }
    total / trials as f64
}

/// Exact expected number of representatives of a *directed* graph under
/// a uniformly random vertex ordering, by enumerating all |V|!
/// labellings (Appendix B setting: `r(v) = argmin over the closed
/// out-neighbourhood`). Every vertex must have at least one
/// out-neighbour. Practical up to ~9 vertices.
pub fn exact_expected_representatives_directed(arcs: &[(u64, u64)]) -> f64 {
    let mut verts: Vec<u64> = arcs
        .iter()
        .flat_map(|&(a, b)| [a, b])
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    verts.sort_unstable();
    let n = verts.len();
    assert!(n <= 10, "exact enumeration is factorial; use measured_gamma instead");
    let index: HashMap<u64, usize> = verts.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    // Closed out-neighbourhoods as index lists.
    let mut out: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    for &(a, b) in arcs {
        out[index[&a]].push(index[&b]);
    }
    for (i, o) in out.iter().enumerate() {
        assert!(o.len() > 1 || arcs.iter().any(|&(a, b)| index[&a] == i && index[&b] == i),
            "vertex {} has an empty out-neighbourhood", verts[i]);
    }
    let mut labels: Vec<usize> = (0..n).collect();
    let mut total_reps: u64 = 0;
    let mut count: u64 = 0;
    permute(&mut labels, 0, &mut |perm| {
        let mut reps = 0u32;
        let mut seen = [false; 10];
        for o in &out {
            let r = *o.iter().min_by_key(|&&w| perm[w]).expect("nonempty");
            if !seen[r] {
                seen[r] = true;
                reps += 1;
            }
        }
        total_reps += reps as u64;
        count += 1;
    });
    total_reps as f64 / count as f64
}

/// Undirected variant: each edge becomes two arcs.
pub fn exact_expected_representatives(edges: &[(u64, u64)]) -> f64 {
    let arcs: Vec<(u64, u64)> = edges
        .iter()
        .flat_map(|&(a, b)| if a == b { vec![(a, b)] } else { vec![(a, b), (b, a)] })
        .collect();
    exact_expected_representatives_directed(&arcs)
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

/// Per-vertex ordering census for the paper's Lemma 1 (Appendix B):
/// over all |V|! labellings of a directed graph, how often is the
/// vertex the representative of nobody (type 0), exactly one vertex
/// (type 1), or two-or-more (type 2+)?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeCensus {
    /// The vertex.
    pub vertex: u64,
    /// Orderings making it type 0.
    pub type0: u64,
    /// Orderings making it type 1.
    pub type1: u64,
    /// Orderings making it type 2+.
    pub type2_plus: u64,
}

/// Counts, for every vertex of a small directed graph, the orderings
/// under which it has each representative type — the quantities of the
/// paper's Lemma 1, which proves `type1 ≤ type0` for every vertex with
/// a non-empty out-neighbourhood. Exact, by enumeration; practical up
/// to ~8 vertices.
pub fn lemma1_type_census(arcs: &[(u64, u64)]) -> Vec<TypeCensus> {
    let mut verts: Vec<u64> = arcs
        .iter()
        .flat_map(|&(a, b)| [a, b])
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    verts.sort_unstable();
    let n = verts.len();
    assert!(n <= 9, "Lemma 1 census is factorial; keep graphs small");
    let index: HashMap<u64, usize> = verts.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut out: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    for &(a, b) in arcs {
        if index[&a] != index[&b] {
            out[index[&a]].push(index[&b]);
        }
    }
    let mut census: Vec<[u64; 3]> = vec![[0; 3]; n];
    let mut labels: Vec<usize> = (0..n).collect();
    permute(&mut labels, 0, &mut |perm| {
        let mut rep_count = [0u32; 9];
        for o in &out {
            let r = *o.iter().min_by_key(|&&w| perm[w]).expect("closed nbhd");
            rep_count[r] += 1;
        }
        for (i, c) in census.iter_mut().enumerate() {
            c[(rep_count[i] as usize).min(2)] += 1;
        }
    });
    verts
        .iter()
        .zip(&census)
        .map(|(&v, c)| TypeCensus { vertex: v, type0: c[0], type1: c[1], type2_plus: c[2] })
        .collect()
}

/// Exhaustively searches all undirected graphs on `n` labelled
/// vertices (every vertex covered by at least one edge) for the
/// highest exact expected contraction factor γ — the open question the
/// paper's Appendix B closes with (its best known undirected graph has
/// γ ≈ 56.343%). Returns `(edges, gamma)` of the worst graph found.
/// Cost grows as `2^(n(n-1)/2) · n!`; practical to n = 6.
pub fn search_worst_undirected(n: usize) -> (Vec<(u64, u64)>, f64) {
    assert!((2..=6).contains(&n), "search is doubly exponential; n must be 2..=6");
    let pairs: Vec<(usize, usize)> =
        (0..n).flat_map(|a| (a + 1..n).map(move |b| (a, b))).collect();
    let m = pairs.len();
    let mut best: (Vec<(u64, u64)>, f64) = (Vec::new(), 0.0);
    // Precompute all permutations of 0..n once.
    let mut perms: Vec<Vec<usize>> = Vec::new();
    let mut labels: Vec<usize> = (0..n).collect();
    permute(&mut labels, 0, &mut |p| perms.push(p.to_vec()));
    for mask in 1u32..(1 << m) {
        // Build closed neighbourhood bitmasks; skip graphs leaving a
        // vertex uncovered.
        let mut nbhd: Vec<u32> = (0..n).map(|i| 1 << i).collect();
        let mut covered = 0u32;
        for (bit, &(a, b)) in pairs.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                nbhd[a] |= 1 << b;
                nbhd[b] |= 1 << a;
                covered |= (1 << a) | (1 << b);
            }
        }
        if covered != (1 << n) - 1 {
            continue;
        }
        let mut total_reps: u64 = 0;
        for perm in &perms {
            let mut reps = 0u32;
            let mut seen = 0u32;
            for &nb in &nbhd {
                let mut r = 0usize;
                let mut best_label = usize::MAX;
                let mut bits = nb;
                while bits != 0 {
                    let w = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if perm[w] < best_label {
                        best_label = perm[w];
                        r = w;
                    }
                }
                if seen & (1 << r) == 0 {
                    seen |= 1 << r;
                    reps += 1;
                }
            }
            total_reps += reps as u64;
        }
        let gamma = total_reps as f64 / (perms.len() as u64 * n as u64) as f64;
        if gamma > best.1 {
            best = (
                pairs
                    .iter()
                    .enumerate()
                    .filter(|(bit, _)| mask & (1 << bit) != 0)
                    .map(|(_, &(a, b))| (a as u64, b as u64))
                    .collect(),
                gamma,
            );
        }
    }
    best
}


/// Exact expected contraction factor of an undirected graph under full
/// randomisation, computed by inclusion–exclusion instead of
/// permutation enumeration — polynomial in |V| for bounded degree, so
/// it scales far beyond [`exact_expected_representatives`]'s n ≤ 10.
///
/// Derivation: vertex `v` is chosen as a representative iff it is the
/// minimum of at least one closed neighbourhood `N[u]` with `u ∈ N[v]`.
/// Under a uniform random ordering `Pr(v = min S) = 1/|S|` for any set
/// `S ∋ v`, and `v = min S_a` and `v = min S_b` iff `v = min(S_a ∪
/// S_b)`, so by inclusion–exclusion over the (deduplicated) family
/// `{N[u] : u ∈ N[v]}`:
///
/// ```text
/// Pr(v chosen) = Σ_{∅≠T} (−1)^{|T|+1} / |∪T|
/// ```
///
/// Supports up to 128 vertices and at most 20 distinct neighbourhoods
/// per vertex (2^k subset enumeration).
pub fn exact_gamma_inclusion_exclusion(edges: &[(u64, u64)]) -> f64 {
    // Dense-index the vertices into u128 bitmasks.
    let mut verts: Vec<u64> = edges
        .iter()
        .flat_map(|&(a, b)| [a, b])
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    verts.sort_unstable();
    let n = verts.len();
    assert!(n <= 128, "inclusion-exclusion gamma supports up to 128 vertices");
    let index: HashMap<u64, usize> = verts.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut closed: Vec<u128> = (0..n).map(|i| 1u128 << i).collect();
    for &(a, b) in edges {
        let (ia, ib) = (index[&a], index[&b]);
        closed[ia] |= 1 << ib;
        closed[ib] |= 1 << ia;
    }
    let mut expected = 0.0f64;
    for v in 0..n {
        // The family {N[u] : u ∈ N[v]} (u = v included), deduplicated.
        let mut family: Vec<u128> = Vec::new();
        let mut members = closed[v];
        while members != 0 {
            let u = members.trailing_zeros() as usize;
            members &= members - 1;
            if !family.contains(&closed[u]) {
                family.push(closed[u]);
            }
        }
        let k = family.len();
        assert!(k <= 20, "vertex with more than 20 distinct neighbourhoods");
        // Subset DP: union of T = union of (T without lowest bit) and
        // the lowest set.
        let mut union_of: Vec<u128> = vec![0; 1 << k];
        let mut prob = 0.0f64;
        for t in 1usize..1 << k {
            let low = t.trailing_zeros() as usize;
            union_of[t] = union_of[t & (t - 1)] | family[low];
            let sign = if t.count_ones() % 2 == 1 { 1.0 } else { -1.0 };
            prob += sign / union_of[t].count_ones() as f64;
        }
        expected += prob;
    }
    expected / n as f64
}


/// Exact expected contraction factor as a reduced rational `(num,
/// den)`, via the same inclusion–exclusion as
/// [`exact_gamma_inclusion_exclusion`] but in integer arithmetic —
/// every term is `±1/|∪T|` with `|∪T| ≤ |V| ≤ 128`, so sums stay well
/// inside `i128` using the LCM of 1..=n as the common denominator.
/// Exact rationals let results be compared against the paper's
/// γ = 81215/144144 record without floating-point doubt.
pub fn exact_gamma_rational(edges: &[(u64, u64)]) -> (i128, i128) {
    let mut verts: Vec<u64> = edges
        .iter()
        .flat_map(|&(a, b)| [a, b])
        .collect::<HashSet<_>>()
        .into_iter()
        .collect();
    verts.sort_unstable();
    let n = verts.len();
    assert!(n <= 40, "rational gamma supports up to 40 vertices");
    let index: HashMap<u64, usize> = verts.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut closed: Vec<u64> = (0..n).map(|i| 1u64 << i).collect();
    for &(a, b) in edges {
        let (ia, ib) = (index[&a], index[&b]);
        closed[ia] |= 1 << ib;
        closed[ib] |= 1 << ia;
    }
    // LCM of 1..=n.
    let gcd = |mut a: i128, mut b: i128| {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a.abs()
    };
    let mut lcm: i128 = 1;
    for k in 1..=n as i128 {
        lcm = lcm / gcd(lcm, k) * k;
    }
    let mut numerator: i128 = 0; // of Σ_v Pr(v chosen), scaled by lcm
    for v in 0..n {
        let mut family: Vec<u64> = Vec::new();
        let mut members = closed[v];
        while members != 0 {
            let u = members.trailing_zeros() as usize;
            members &= members - 1;
            if !family.contains(&closed[u]) {
                family.push(closed[u]);
            }
        }
        let k = family.len();
        assert!(k <= 20, "vertex with more than 20 distinct neighbourhoods");
        let mut union_of: Vec<u64> = vec![0; 1 << k];
        for t in 1usize..1 << k {
            let low = t.trailing_zeros() as usize;
            union_of[t] = union_of[t & (t - 1)] | family[low];
            let size = union_of[t].count_ones() as i128;
            let term = lcm / size;
            if t.count_ones() % 2 == 1 {
                numerator += term;
            } else {
                numerator -= term;
            }
        }
    }
    // gamma = numerator / (lcm * n), reduced.
    let den = lcm * n as i128;
    let g = gcd(numerator, den);
    (numerator / g, den / g)
}

/// One tree-beam-search result: vertex count, best tree's edges, and
/// its exact γ as a reduced `numerator / denominator`.
pub type BeamRow = (usize, Vec<(u64, u64)>, i128, i128);

/// Beam search for high-γ **trees**: every best-known worst-γ graph is
/// a tree (stars, double stars, the paper's Fig. 9 graph), and trees
/// admit a natural generator — attach one new leaf to any vertex of a
/// smaller tree. Keeps the `beam` highest-γ trees at each size and
/// returns the best `(edges, num, den)` per vertex count up to
/// `max_n`.
pub fn tree_beam_search(max_n: usize, beam: usize) -> Vec<BeamRow> {
    assert!((2..=20).contains(&max_n));
    let mut frontier: Vec<Vec<(u64, u64)>> = vec![vec![(0, 1)]];
    let mut results = Vec::new();
    let score = |edges: &[(u64, u64)]| -> (i128, i128) { exact_gamma_rational(edges) };
    {
        let (num, den) = score(&frontier[0]);
        results.push((2usize, frontier[0].clone(), num, den));
    }
    for n in 3..=max_n {
        type Candidate = (f64, (i128, i128), Vec<(u64, u64)>);
        let mut candidates: Vec<Candidate> = Vec::new();
        let mut seen: HashSet<u128> = HashSet::new();
        for tree in &frontier {
            let new_vertex = (n - 1) as u64;
            for attach in 0..new_vertex {
                // Degree cap guard for the scorer.
                let deg = tree.iter().filter(|&&(a, b)| a == attach || b == attach).count();
                if deg + 1 >= 19 {
                    continue;
                }
                let mut next = tree.clone();
                next.push((attach, new_vertex));
                let (num, den) = score(&next);
                // Dedup by exact gamma + sorted degree sequence: a cheap
                // isomorphism-class proxy that keeps the beam diverse.
                let mut degs = vec![0u8; n];
                for &(a, b) in &next {
                    degs[a as usize] += 1;
                    degs[b as usize] += 1;
                }
                degs.sort_unstable();
                let mut sig: u128 = (num as u128) ^ ((den as u128) << 64);
                for d in degs {
                    sig = sig.wrapping_mul(131).wrapping_add(d as u128);
                }
                if !seen.insert(sig) {
                    continue;
                }
                candidates.push((num as f64 / den as f64, (num, den), next));
            }
        }
        candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        candidates.truncate(beam);
        if let Some((_, (num, den), edges)) = candidates.first() {
            results.push((n, edges.clone(), *num, *den));
        }
        frontier = candidates.into_iter().map(|(_, _, e)| e).collect();
    }
    results
}

/// Simulated-annealing search for high-γ undirected graphs on `n`
/// labelled vertices, extending [`search_worst_undirected`]'s
/// exhaustive range (n ≤ 6) toward the size of the paper's Fig. 9
/// record graph (γ ≈ 0.56343). Starts from the star (the best small
/// family), proposes single-edge toggles that keep every vertex
/// covered, and scores with the exact inclusion–exclusion expectation.
/// Returns the best `(edges, gamma)` seen.
///
/// `n` is capped at 20: the starting star's hub has `n − 1` distinct
/// neighbourhoods, and the exact scorer enumerates `2^(deg+1)` subsets
/// per vertex.
pub fn anneal_worst_gamma(n: usize, iters: usize, seed: u64) -> (Vec<(u64, u64)>, f64) {
    use rand::Rng;
    assert!(
        (3..=20).contains(&n),
        "anneal supports 3..=20 vertices (inclusion-exclusion degree cap)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs: Vec<(usize, usize)> =
        (0..n).flat_map(|a| (a + 1..n).map(move |b| (a, b))).collect();
    // Start: star at 0.
    let mut present: Vec<bool> = pairs.iter().map(|&(a, _)| a == 0).collect();
    let edges_of = |present: &[bool]| -> Vec<(u64, u64)> {
        pairs
            .iter()
            .zip(present)
            .filter(|(_, &p)| p)
            .map(|(&(a, b), _)| (a as u64, b as u64))
            .collect()
    };
    // Every vertex covered, and degrees inside the inclusion-exclusion
    // cap (a vertex's family has at most deg+1 distinct sets).
    let covered = |present: &[bool]| -> bool {
        let mut deg = vec![0usize; n];
        for (&(a, b), &p) in pairs.iter().zip(present) {
            if p {
                deg[a] += 1;
                deg[b] += 1;
            }
        }
        deg.iter().all(|&d| d > 0 && d < 19)
    };
    let mut current = exact_gamma_inclusion_exclusion(&edges_of(&present));
    let mut best = (edges_of(&present), current);
    let (t0, t1) = (0.02f64, 0.0005f64);
    for i in 0..iters {
        let temp = t0 * (t1 / t0).powf(i as f64 / iters.max(1) as f64);
        let flip = rng.gen_range(0..pairs.len());
        present[flip] = !present[flip];
        if !covered(&present) {
            present[flip] = !present[flip];
            continue;
        }
        let cand = exact_gamma_inclusion_exclusion(&edges_of(&present));
        let delta = cand - current;
        if delta >= 0.0 || rng.gen::<f64>() < (delta / temp).exp() {
            current = cand;
            if cand > best.1 {
                best = (edges_of(&present), cand);
            }
        } else {
            present[flip] = !present[flip];
        }
    }
    best
}

/// The Fig. 2 demonstration: a sequentially numbered path contracts by
/// exactly one vertex under the identity ordering (worst case), while
/// random orderings contract it geometrically.
pub fn sequential_path_worst_case(n: usize) -> ContractionStep {
    assert!(n >= 2);
    let edges: Vec<(u64, u64)> = (0..n as u64 - 1).map(|i| (i, i + 1)).collect();
    contract_once(&edges, |v| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incc_graph::generators::{cycle_graph, gnm_random_graph, path_graph, PathNumbering};

    #[test]
    fn sequential_path_shrinks_by_one() {
        // Fig. 2(a): every vertex but the first picks its left
        // neighbour; n-1 representatives remain.
        for n in [2usize, 5, 50] {
            let step = sequential_path_worst_case(n);
            assert_eq!(step.vertices_before, n);
            assert_eq!(step.representatives, n - 1, "n={n}");
        }
    }

    #[test]
    fn optimal_path_numbering_contracts_to_a_third() {
        // Fig. 2(b): the path numbered 3 1 4 5 2 6 contracts to 2 = n/3.
        let order = [3u64, 1, 4, 5, 2, 6];
        let edges: Vec<(u64, u64)> = order.windows(2).map(|w| (w[0], w[1])).collect();
        let step = contract_once(&edges, |v| v);
        assert_eq!(step.representatives, 2);
    }

    #[test]
    fn contraction_preserves_component_count() {
        use incc_graph::union_find::connected_components;
        let g = gnm_random_graph(60, 90, 3);
        let before: HashSet<u64> =
            connected_components(&g.edges).values().copied().collect();
        let step = contract_once(&g.edges, incc_ffield::strategy::mix64);
        // Isolated representatives drop out of the edge list, so only
        // multi-vertex components are directly comparable.
        let after: HashSet<u64> =
            connected_components(&step.edges).values().copied().collect();
        assert!(after.len() <= before.len());
        assert!(!step.edges.iter().any(|(a, b)| a == b), "no loops survive");
    }

    #[test]
    fn contract_to_completion_is_logarithmic_ish() {
        let g = path_graph(4096, PathNumbering::Sequential, 0);
        let steps = contract_to_completion(&g.edges, Method::Gf64, 7);
        // log_{4/3}(4096) ≈ 29; allow generous slack.
        assert!(
            steps.len() <= 60,
            "randomised contraction took {} rounds on a 4096-path",
            steps.len()
        );
        assert!(steps.len() >= 6, "cannot finish a 4096-path in {} rounds", steps.len());
    }

    #[test]
    fn measured_gamma_below_three_quarters() {
        // Theorem 1: E(shrink) ≤ 3/4 for any graph without isolated
        // vertices, any method.
        let graphs: Vec<Vec<(u64, u64)>> = vec![
            path_graph(200, PathNumbering::Sequential, 0).edges,
            cycle_graph(111).edges,
            gnm_random_graph(100, 300, 1).edges,
        ];
        for edges in graphs {
            for m in Method::ALL {
                let gamma = measured_gamma(&edges, m, 42, 40);
                assert!(
                    gamma < 0.78,
                    "{m:?}: measured gamma {gamma} exceeds Theorem 1 bound"
                );
            }
        }
    }

    #[test]
    fn exact_expectation_on_directed_3_cycle_is_two_thirds() {
        // Appendix B Theorem 2: the bound γ = 2/3 is attained by the
        // directed 3-cycle.
        let arcs = vec![(0u64, 1), (1, 2), (2, 0)];
        let gamma = exact_expected_representatives_directed(&arcs) / 3.0;
        assert!((gamma - 2.0 / 3.0).abs() < 1e-9, "gamma={gamma}");
    }

    #[test]
    fn exact_expectation_undirected_triangle() {
        // Undirected triangle: every vertex picks the global minimum:
        // always exactly 1 representative.
        let gamma = exact_expected_representatives(&[(0, 1), (1, 2), (0, 2)]) / 3.0;
        assert!((gamma - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn exact_expectation_path_p2() {
        // Two vertices, one edge: both pick the smaller label: 1 rep.
        let gamma = exact_expected_representatives(&[(0, 1)]) / 2.0;
        assert!((gamma - 0.5).abs() < 1e-9);
    }

    #[test]
    fn exact_expectation_matches_measured_on_p4() {
        let edges = vec![(0u64, 1), (1, 2), (2, 3)];
        let exact = exact_expected_representatives(&edges) / 4.0;
        let measured = measured_gamma(&edges, Method::RandomReals, 5, 20_000);
        assert!(
            (exact - measured).abs() < 0.02,
            "exact {exact} vs measured {measured}"
        );
        assert!(exact <= 2.0 / 3.0 + 1e-9, "Appendix B bound");
    }


    #[test]
    fn inclusion_exclusion_matches_enumeration() {
        // Cross-check the polynomial formula against brute force on
        // every family the enumeration can reach.
        let graphs: Vec<Vec<(u64, u64)>> = vec![
            vec![(0, 1)],
            vec![(0, 1), (1, 2)],
            vec![(0, 1), (1, 2), (2, 0)],
            vec![(0, 1), (1, 2), (2, 3)],
            vec![(0, 1), (0, 2), (0, 3)],
            incc_graph::generators::cycle_graph(6).edges,
            incc_graph::generators::complete_graph(5).edges,
            incc_graph::generators::gnm_random_graph(7, 10, 3).edges,
        ];
        for edges in graphs {
            let n = edges
                .iter()
                .flat_map(|&(a, b)| [a, b])
                .collect::<std::collections::HashSet<_>>()
                .len() as f64;
            let brute = exact_expected_representatives(&edges) / n;
            let ie = exact_gamma_inclusion_exclusion(&edges);
            assert!(
                (brute - ie).abs() < 1e-9,
                "mismatch on {edges:?}: brute {brute} vs IE {ie}"
            );
        }
    }

    #[test]
    fn inclusion_exclusion_scales_past_enumeration() {
        // Sizes far beyond the n ≤ 10 permutation enumeration, within
        // the per-vertex 2^k family cap (k = deg + 1 ≤ 20): an
        // 18-vertex star and a 60-vertex path.
        let g = incc_graph::generators::star_graph(18);
        let gamma = exact_gamma_inclusion_exclusion(&g.edges);
        assert!(gamma > 0.5 && gamma < 2.0 / 3.0, "star-18 gamma {gamma}");
        let p = incc_graph::generators::path_graph(
            60,
            incc_graph::generators::PathNumbering::Sequential,
            0,
        );
        let gamma_p = exact_gamma_inclusion_exclusion(&p.edges);
        assert!(gamma_p < 2.0 / 3.0, "path-60 gamma {gamma_p}");
    }

    #[test]
    #[should_panic(expected = "20 distinct neighbourhoods")]
    fn inclusion_exclusion_degree_cap_guard() {
        // A big star's hub has one distinct neighbourhood per leaf;
        // past the cap the function must refuse, not hang.
        let g = incc_graph::generators::star_graph(40);
        exact_gamma_inclusion_exclusion(&g.edges);
    }


    #[test]
    fn rational_gamma_matches_float_and_enumeration() {
        let graphs: Vec<Vec<(u64, u64)>> = vec![
            vec![(0, 1)],
            vec![(0, 1), (1, 2), (2, 0)],
            vec![(0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (1, 6), (1, 7)], // D(3,3)
        ];
        for edges in graphs {
            let (num, den) = exact_gamma_rational(&edges);
            let f = exact_gamma_inclusion_exclusion(&edges);
            assert!((num as f64 / den as f64 - f).abs() < 1e-12, "{edges:?}");
        }
        // P2: gamma = 1/2 exactly.
        assert_eq!(exact_gamma_rational(&[(0, 1)]), (1, 2));
        // Triangle: gamma = 1/3 exactly.
        assert_eq!(exact_gamma_rational(&[(0, 1), (1, 2), (2, 0)]), (1, 3));
    }

    #[test]
    fn tree_beam_search_reaches_known_optima() {
        let results = tree_beam_search(8, 24);
        // n=3: P3 = 5/9; n=4: star = 9/16; n=8: double star D(3,3).
        let by_n: std::collections::HashMap<usize, (i128, i128)> =
            results.iter().map(|(n, _, num, den)| (*n, (*num, *den))).collect();
        assert_eq!(by_n[&3], (5, 9));
        assert_eq!(by_n[&4], (9, 16));
        let (num, den) = by_n[&8];
        let g8 = num as f64 / den as f64;
        assert!(g8 >= 0.5633, "n=8 best {g8}");
    }

    #[test]
    fn anneal_recovers_exhaustive_optimum() {
        let (_, g4) = search_worst_undirected(4);
        let (_, a4) = anneal_worst_gamma(4, 1500, 7);
        assert!(a4 >= g4 - 1e-9, "anneal {a4} below exhaustive {g4}");
        // And stays below the Appendix B ceiling at a larger size.
        let (_, a10) = anneal_worst_gamma(10, 800, 7);
        assert!(a10 < 2.0 / 3.0);
        assert!(a10 > 0.5);
    }

    #[test]
    fn lemma1_holds_on_sample_digraphs() {
        // Lemma 1: for any vertex with a non-empty out-neighbourhood,
        // #orderings making it type 1 ≤ #orderings making it type 0.
        let digraphs: Vec<Vec<(u64, u64)>> = vec![
            vec![(0, 1), (1, 2), (2, 0)],                  // directed 3-cycle
            vec![(0, 1), (1, 0)],                          // 2-cycle
            vec![(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)],  // 4-cycle + chord
            vec![(0, 1), (0, 2), (1, 2), (2, 0), (3, 0), (2, 3)],
            // Undirected P4 as arcs both ways.
            vec![(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)],
        ];
        for arcs in digraphs {
            for tc in lemma1_type_census(&arcs) {
                assert!(
                    tc.type1 <= tc.type0,
                    "Lemma 1 violated at vertex {} of {arcs:?}: {tc:?}",
                    tc.vertex
                );
                let total = tc.type0 + tc.type1 + tc.type2_plus;
                assert_eq!(total, factorial_of_vertex_count(&arcs));
            }
        }
    }

    fn factorial_of_vertex_count(arcs: &[(u64, u64)]) -> u64 {
        let n = arcs
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .collect::<std::collections::HashSet<_>>()
            .len() as u64;
        (1..=n).product()
    }

    #[test]
    fn lemma1_census_matches_expectation_identity() {
        // Σ_v (type1 + type2_plus) / n! = E[#representatives].
        let arcs = vec![(0u64, 1), (1, 2), (2, 0)];
        let census = lemma1_type_census(&arcs);
        let fact = factorial_of_vertex_count(&arcs) as f64;
        let from_census: f64 =
            census.iter().map(|c| (c.type1 + c.type2_plus) as f64 / fact).sum();
        let direct = exact_expected_representatives_directed(&arcs);
        assert!((from_census - direct).abs() < 1e-9);
    }

    #[test]
    fn worst_gamma_search_small_n() {
        // n = 2: only K2, gamma = 1/2.
        let (_, g2) = search_worst_undirected(2);
        assert!((g2 - 0.5).abs() < 1e-9);
        // n = 3: P3 beats the triangle (5/9 vs 1/3).
        let (edges3, g3) = search_worst_undirected(3);
        assert!((g3 - 5.0 / 9.0).abs() < 1e-9, "gamma={g3} for {edges3:?}");
        assert_eq!(edges3.len(), 2, "worst 3-vertex graph is the path");
        // Appendix B: every undirected gamma stays below 2/3...
        assert!(g3 < 2.0 / 3.0);
        // ...and n = 4 pushes higher than n = 3's path but stays below.
        let (_, g4) = search_worst_undirected(4);
        assert!(g4 >= g3 - 1e-12 && g4 < 2.0 / 3.0, "gamma4={g4}");
    }

    #[test]
    #[should_panic(expected = "3..=20")]
    fn anneal_size_guard() {
        // n = 21+ would start from a star whose hub exceeds the
        // inclusion-exclusion cap; the range check must refuse first.
        anneal_worst_gamma(21, 10, 0);
    }

    #[test]
    #[should_panic(expected = "doubly exponential")]
    fn worst_gamma_search_size_guard() {
        search_worst_undirected(7);
    }

    #[test]
    #[should_panic(expected = "factorial")]
    fn exact_enumeration_size_guard() {
        let edges: Vec<(u64, u64)> = (0..11u64).map(|i| (i, (i + 1) % 12)).collect();
        exact_expected_representatives(&edges);
    }

    #[test]
    fn empty_graph_contracts_trivially() {
        let step = contract_once(&[], |v| v);
        assert_eq!(step.vertices_before, 0);
        assert_eq!(step.shrink_factor(), 0.0);
    }
}
