//! The common algorithm interface and the run harness.

use incc_graph::union_find::{connected_components, labellings_equivalent};
use incc_graph::EdgeList;
use incc_mppdb::{Cluster, DbError, DbResult, Session, SqlEngine, StatsSnapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Telemetry for one completed algorithm round — the per-round lens
/// behind the paper's Fig. 9 convergence curves. Resource figures are
/// deltas over the round, measured by a [`RoundRecorder`] from the
/// engine's counters; `working_rows` comes from the algorithm itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundReport {
    /// 1-based round index as the algorithm counts it.
    pub round: usize,
    /// Size of the main working relation after the round — active edge
    /// rows for contraction-style algorithms, changed-label counts for
    /// label propagation. The same number `AlgoOutcome::round_sizes`
    /// accumulates.
    pub working_rows: usize,
    /// Bytes written during the round.
    pub bytes_written: u64,
    /// Rows written during the round.
    pub rows_written: u64,
    /// Bytes exchanged between segments during the round.
    pub network_bytes: u64,
    /// SQL statements the round executed.
    pub statements: u64,
    /// Statement retries a recovery layer performed during the round.
    pub retries: u64,
    /// Round wall time in nanoseconds (boundary to boundary).
    pub nanos: u64,
}

/// Accumulates [`RoundReport`]s across a run by differencing engine
/// counter snapshots at every round boundary.
///
/// Hangs off [`RunControl::rounds`]; the existing
/// [`RunControl::report_round`] calls every algorithm already makes at
/// its round boundaries feed it, so all five CC algorithms emit round
/// telemetry without any algorithm-side changes. Setup work before the
/// first boundary (seeding working tables) is attributed to round 1.
///
/// Two figures the paper discusses are deliberately *not* here:
/// per-round components finalised would need extra counting queries at
/// every boundary (observable overhead, against the pay-for-what-you-
/// use rule), and active-vertex counts are only meaningful for the
/// vertex-centric algorithms — `working_rows` carries whichever notion
/// the algorithm itself tracks.
pub struct RoundRecorder<'a> {
    stats_fn: &'a (dyn Fn() -> StatsSnapshot + Sync),
    inner: Mutex<RecorderState>,
}

struct RecorderState {
    last: StatsSnapshot,
    last_at: Instant,
    reports: Vec<RoundReport>,
}

impl<'a> RoundRecorder<'a> {
    /// Starts recording: the first round's deltas are measured from
    /// this call.
    pub fn new(stats_fn: &'a (dyn Fn() -> StatsSnapshot + Sync)) -> RoundRecorder<'a> {
        RoundRecorder {
            stats_fn,
            inner: Mutex::new(RecorderState {
                last: stats_fn(),
                last_at: Instant::now(),
                reports: Vec::new(),
            }),
        }
    }

    /// Closes one round: snapshots the counters, differences against
    /// the previous boundary, appends a [`RoundReport`].
    pub fn note(&self, round: usize, working_rows: usize) {
        self.close_round(round, working_rows, false);
    }

    /// Closes one round of a *native* (SQL-free) algorithm: identical
    /// to [`RoundRecorder::note`] except the statement count is pinned
    /// to 0. The counter snapshot still advances, so a stale statement
    /// delta (e.g. from SQL run before the round, or from an abandoned
    /// SQL algorithm when the adaptive driver switches) is consumed
    /// here rather than inherited by the next round's report.
    pub fn note_native(&self, round: usize, working_rows: usize) {
        self.close_round(round, working_rows, true);
    }

    fn close_round(&self, round: usize, working_rows: usize, native: bool) {
        let snap = (self.stats_fn)();
        let now = Instant::now();
        let mut st = self.inner.lock().unwrap();
        let delta = snap.delta_since(&st.last);
        let nanos = now.duration_since(st.last_at).as_nanos() as u64;
        st.reports.push(RoundReport {
            round,
            working_rows,
            bytes_written: delta.bytes_written,
            rows_written: delta.rows_written,
            network_bytes: delta.network_bytes,
            statements: if native { 0 } else { delta.queries },
            retries: delta.retries,
            nanos,
        });
        st.last = snap;
        st.last_at = now;
    }

    /// The reports collected so far, in boundary order.
    pub fn reports(&self) -> Vec<RoundReport> {
        self.inner.lock().unwrap().reports.clone()
    }

    /// Drains the collected reports.
    pub fn take(&self) -> Vec<RoundReport> {
        std::mem::take(&mut self.inner.lock().unwrap().reports)
    }
}

/// What an algorithm reports back after finishing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgoOutcome {
    /// Name of the table holding the `(v, r)` labelling.
    pub result_table: String,
    /// Number of algorithm rounds executed (the O(log |V|) quantity).
    pub rounds: usize,
    /// Size of the algorithm's main working relation after each round
    /// (edge rows for contraction-style algorithms) — the geometric
    /// decay behind the paper's Theorem 1. Empty when an algorithm
    /// does not track it.
    pub round_sizes: Vec<usize>,
}

/// Cooperative controls threaded through a whole algorithm run: a
/// cancel flag checked between rounds and an optional round-progress
/// callback. The default value never interrupts and reports nowhere —
/// the behaviour of the plain [`CcAlgorithm::run`].
///
/// This is the algorithm-level counterpart of the engine's
/// per-statement [`incc_mppdb::QueryGuard`]: the guard stops a single
/// long statement between operators, while `RunControl` stops the
/// *loop* between rounds and lets a job scheduler surface
/// `Running {{ round }}` status.
#[derive(Default, Clone, Copy)]
pub struct RunControl<'a> {
    /// When set and true, the run aborts with [`DbError::Cancelled`] at
    /// the next round boundary (after cleaning up working tables).
    pub cancel: Option<&'a AtomicBool>,
    /// Called after each completed round with `(round, working_rows)`.
    pub on_round: Option<&'a (dyn Fn(usize, usize) + Sync)>,
    /// When set, every round boundary also closes a [`RoundReport`]
    /// (resource deltas + wall time) in the recorder.
    pub rounds: Option<&'a RoundRecorder<'a>>,
}

impl RunControl<'_> {
    /// Returns [`DbError::Cancelled`] when the cancel flag is raised.
    /// Algorithms call this at every round boundary.
    pub fn checkpoint(&self) -> DbResult<()> {
        if let Some(flag) = self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(DbError::Cancelled("algorithm run cancelled".into()));
            }
        }
        Ok(())
    }

    /// Reports one completed round to the progress callback and the
    /// round recorder, if any.
    pub fn report_round(&self, round: usize, working_rows: usize) {
        if let Some(f) = self.on_round {
            f(round, working_rows);
        }
        if let Some(r) = self.rounds {
            r.note(round, working_rows);
        }
    }

    /// [`RunControl::report_round`] for rounds that executed no SQL:
    /// the recorder pins the round's statement count to 0 instead of
    /// attributing whatever statement delta happens to be pending.
    pub fn report_round_native(&self, round: usize, working_rows: usize) {
        if let Some(f) = self.on_round {
            f(round, working_rows);
        }
        if let Some(r) = self.rounds {
            r.note_native(round, working_rows);
        }
    }
}

/// A connected-components algorithm executing inside the database.
///
/// The contract mirrors the paper's Section III: the input is a table
/// with two vertex-ID columns `v1`, `v2`, one row per undirected edge
/// (loop edges `(v, v)` represent isolated vertices); the output is a
/// table with columns `v`, `r` assigning each vertex a label such that
/// two vertices share a label iff they are in the same component.
///
/// Algorithms run against any [`SqlEngine`]: a bare [`Cluster`] (the
/// original single-tenant mode) or a [`incc_mppdb::Session`], which
/// namespaces the hardcoded working-table names per session so
/// concurrent runs on one cluster cannot collide.
pub trait CcAlgorithm {
    /// Stable display name ("RC", "HM", "TP", "CR", …).
    fn name(&self) -> String;

    /// Runs the algorithm over `input` (an existing edge table),
    /// returning the result-table name, honouring `ctrl`'s cancel flag
    /// at round boundaries and reporting round progress through it.
    /// Implementations create and drop their own working tables; `seed`
    /// drives all randomness.
    fn run_controlled(
        &self,
        db: &dyn SqlEngine,
        input: &str,
        seed: u64,
        ctrl: &RunControl<'_>,
    ) -> DbResult<AlgoOutcome>;

    /// [`CcAlgorithm::run_controlled`] with no cancellation or progress
    /// reporting — the plain entry point.
    fn run(&self, db: &dyn SqlEngine, input: &str, seed: u64) -> DbResult<AlgoOutcome> {
        self.run_controlled(db, input, seed, &RunControl::default())
    }

    /// A record of the most recent run's algorithm-selection decision,
    /// for algorithms that make one (the adaptive driver). Fixed
    /// algorithms return `None`. The string leads with the chosen
    /// algorithm's job-API name, followed by the census features that
    /// drove the choice.
    fn last_decision(&self) -> Option<String> {
        None
    }
}

/// Everything measured about one algorithm run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Algorithm display name.
    pub algorithm: String,
    /// The computed labelling (vertex -> component label).
    pub labels: HashMap<u64, u64>,
    /// Algorithm rounds.
    pub rounds: usize,
    /// Per-round working-relation sizes (see [`AlgoOutcome::round_sizes`]).
    pub round_sizes: Vec<usize>,
    /// Per-round resource and timing telemetry (one entry per reported
    /// round boundary).
    pub round_reports: Vec<RoundReport>,
    /// Wall-clock duration of the in-database run (excludes graph
    /// loading and result download).
    pub elapsed: Duration,
    /// Resource counters accumulated during the run: bytes written,
    /// high-water space, network traffic, statement count.
    pub stats: StatsSnapshot,
    /// Logical byte size of the loaded input table, the baseline the
    /// paper's Tables IV-V compare space figures against.
    pub input_bytes: u64,
}

impl RunReport {
    /// Verifies the labelling against in-memory union–find ground
    /// truth. This is the paper's correctness criterion: identical
    /// vertex sets and identical co-labelling.
    pub fn verify_against(&self, edges: &EdgeList) -> Result<(), String> {
        let truth = connected_components(&edges.edges);
        if labellings_equivalent(&self.labels, &truth) {
            Ok(())
        } else {
            Err(format!(
                "{}: labelling disagrees with ground truth \
                 ({} labelled vertices vs {} true)",
                self.algorithm,
                self.labels.len(),
                truth.len()
            ))
        }
    }
}

/// Loads a graph, runs an algorithm, downloads and returns the result.
///
/// The input table is created as `ccinput` (dropped first if present),
/// loaded through the bulk path and hash-distributed on `v1` — the
/// placement the paper's `DISTRIBUTED BY (v1)` declares. Run-scoped
/// counters are reset after loading so the report reflects the
/// algorithm alone.
pub fn run_on_graph(
    algo: &dyn CcAlgorithm,
    db: &Cluster,
    graph: &EdgeList,
    seed: u64,
) -> DbResult<RunReport> {
    let _ = db.run("drop table if exists ccinput");
    db.load_pairs("ccinput", "v1", "v2", &graph.to_i64_pairs())?;
    let input_bytes = db.stats().live_bytes;
    db.reset_run_counters();

    let stats_fn = || db.stats();
    let recorder = RoundRecorder::new(&stats_fn);
    let ctrl = RunControl { rounds: Some(&recorder), ..RunControl::default() };
    let start = Instant::now();
    let outcome = algo.run_controlled(db, "ccinput", seed, &ctrl);
    let elapsed = start.elapsed();
    let stats = db.stats();

    // Clean up the input regardless of success.
    let cleanup = db.drop_table("ccinput");
    let outcome = outcome?;
    cleanup?;

    let pairs = db.scan_pairs(&outcome.result_table)?;
    db.drop_table(&outcome.result_table)?;
    let mut labels = HashMap::with_capacity(pairs.len());
    for (v, r) in pairs {
        if labels.insert(v as u64, r as u64).is_some() {
            return Err(DbError::Exec(format!(
                "{}: duplicate vertex {v} in result",
                algo.name()
            )));
        }
    }
    Ok(RunReport {
        algorithm: algo.name(),
        labels,
        rounds: outcome.rounds,
        round_sizes: outcome.round_sizes,
        round_reports: recorder.take(),
        elapsed,
        stats,
        input_bytes,
    })
}

/// [`run_on_graph`], scoped to one [`Session`]: the input table lands
/// in the session's namespace and the report's counters are the
/// session's own rather than the cluster roll-up. This is the harness
/// for session-scoped experiments — notably transaction mode
/// ([`Session::begin_transaction`]), where the cluster-global toggle
/// is deprecated and a multi-tenant cluster's global counters would
/// mix other sessions' work into the measurement.
pub fn run_on_session(
    algo: &dyn CcAlgorithm,
    session: &Session,
    graph: &EdgeList,
    seed: u64,
) -> DbResult<RunReport> {
    let _ = session.run("drop table if exists ccinput");
    session.load_pairs("ccinput", "v1", "v2", &graph.to_i64_pairs())?;
    let input_bytes = session.stats().live_bytes;
    let before = session.stats();

    let stats_fn = || session.stats().delta_since(&before);
    let recorder = RoundRecorder::new(&stats_fn);
    let ctrl = RunControl { rounds: Some(&recorder), ..RunControl::default() };
    let start = Instant::now();
    let outcome = algo.run_controlled(session, "ccinput", seed, &ctrl);
    let elapsed = start.elapsed();
    let stats = session.stats().delta_since(&before);

    let cleanup = session.drop_table("ccinput");
    let outcome = outcome?;
    cleanup?;

    let pairs = session.scan_pairs(&outcome.result_table)?;
    session.drop_table(&outcome.result_table)?;
    let mut labels = HashMap::with_capacity(pairs.len());
    for (v, r) in pairs {
        if labels.insert(v as u64, r as u64).is_some() {
            return Err(DbError::Exec(format!(
                "{}: duplicate vertex {v} in result",
                algo.name()
            )));
        }
    }
    Ok(RunReport {
        algorithm: algo.name(),
        labels,
        rounds: outcome.rounds,
        round_sizes: outcome.round_sizes,
        round_reports: recorder.take(),
        elapsed,
        stats,
        input_bytes,
    })
}

/// Drops a list of tables, ignoring "does not exist" errors — used by
/// algorithms to start from a clean slate and to clean up on failure.
pub fn drop_if_exists(db: &dyn SqlEngine, tables: &[&str]) {
    for t in tables {
        let _ = db.drop_table(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incc_mppdb::ClusterConfig;

    /// A fake algorithm that labels every vertex with itself — correct
    /// only for edge-free graphs, used to exercise the harness.
    struct SelfLabel;

    impl CcAlgorithm for SelfLabel {
        fn name(&self) -> String {
            "SelfLabel".into()
        }

        fn run_controlled(
            &self,
            db: &dyn SqlEngine,
            input: &str,
            _seed: u64,
            ctrl: &RunControl<'_>,
        ) -> DbResult<AlgoOutcome> {
            ctrl.checkpoint()?;
            drop_if_exists(db, &["selflabel_out"]);
            db.run(&format!(
                "create table selflabel_out as \
                 select distinct v1 as v, v1 as r from {input} distributed by (v)"
            ))?;
            ctrl.report_round(1, 0);
            Ok(AlgoOutcome {
                result_table: "selflabel_out".into(),
                rounds: 1,
                round_sizes: Vec::new(),
            })
        }
    }

    #[test]
    fn harness_runs_and_verifies() {
        let db = Cluster::new(ClusterConfig::default());
        // Only loop edges: every vertex isolated -> SelfLabel is correct.
        let g = EdgeList::from_pairs(vec![(1, 1), (5, 5), (9, 9)]);
        let report = run_on_graph(&SelfLabel, &db, &g, 0).unwrap();
        assert_eq!(report.labels.len(), 3);
        assert_eq!(report.rounds, 1);
        report.verify_against(&g).unwrap();
        // Working tables cleaned up.
        assert!(db.table_names().is_empty(), "{:?}", db.table_names());
    }

    #[test]
    fn harness_detects_wrong_labelling() {
        let db = Cluster::new(ClusterConfig::default());
        let g = EdgeList::from_pairs(vec![(1, 2)]);
        let report = run_on_graph(&SelfLabel, &db, &g, 0).unwrap();
        assert!(report.verify_against(&g).is_err());
    }

    #[test]
    fn report_records_input_bytes() {
        let db = Cluster::new(ClusterConfig::default());
        let g = EdgeList::from_pairs(vec![(1, 1), (2, 2)]);
        let report = run_on_graph(&SelfLabel, &db, &g, 0).unwrap();
        assert_eq!(report.input_bytes, 32);
    }
}
