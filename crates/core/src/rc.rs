//! Randomised Contraction — the paper's algorithm.
//!
//! The algorithm repeatedly contracts the graph to a set of
//! representative vertices, preserving connectivity, until only
//! isolated vertices remain (Section V-A). Each round relabels the
//! vertices with a fresh random bijection `h_i` and picks
//! `r_i(v) = min_{w ∈ N[v]} h_i(w)` — computed as a plain SQL
//! `GROUP BY` with the `min` aggregate, the performance optimisation
//! the paper describes in Section V-D (relabelling is sound because
//! `h_i` is a bijection, so labels stay unique).
//!
//! Two space variants are implemented:
//!
//! * [`SpaceVariant::Fast`] — the paper's Fig. 4 / Appendix A code:
//!   one representative table `ccreps{i}` per round, composed
//!   back-to-front after contraction finishes, folding the affine round
//!   keys as `(A, B) ← (A·α, A·β + B)`. Space is linear in expectation.
//! * [`SpaceVariant::Deterministic`] — the paper's Fig. 3: a running
//!   composition table `L` updated every round, giving deterministic
//!   linear space at the cost of joining the full-size `L` each round.
//!
//! All four randomisation methods of Section V-C are supported; the
//! finite-field methods ship only two 64-bit round keys to the
//! segments, the Blowfish method one 128-bit key, while the random
//! reals method materialises a per-vertex table of uniform draws and
//! joins it across the cluster — the communication difference the
//! paper's Section V-C discussion predicts, measurable through the
//! engine's network counter.

use crate::driver::{drop_if_exists, AlgoOutcome, CcAlgorithm, RunControl};
use crate::udf::{AxPlusB, AxbP, BlowfishUdf};
use incc_ffield::gfp::P;
use incc_ffield::Method;
use incc_mppdb::{Datum, DbResult, ScalarUdf, SqlEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic discriminator for per-run UDF names. Cipher UDFs live in
/// the cluster-wide registry, so two RC runs executing concurrently (in
/// different sessions) must not both call their round key `bf_1`.
static UDF_SEQ: AtomicU64 = AtomicU64::new(0);

/// Which space/performance variant to run (paper Figs. 3 vs 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpaceVariant {
    /// Fig. 4: per-round representative tables joined small-to-large
    /// afterwards. Faster; linear space in expectation.
    #[default]
    Fast,
    /// Fig. 3: one full-size composition table maintained per round.
    /// Slower; linear space deterministically.
    Deterministic,
}

/// The Randomised Contraction algorithm.
///
/// ```
/// use incc_core::{run_on_graph, RandomisedContraction};
/// use incc_graph::EdgeList;
/// use incc_mppdb::{Cluster, ClusterConfig};
///
/// let db = Cluster::new(ClusterConfig::default());
/// let graph = EdgeList::from_pairs(vec![(1, 2), (2, 3), (9, 9)]);
/// let report = run_on_graph(&RandomisedContraction::paper(), &db, &graph, 42).unwrap();
/// report.verify_against(&graph).unwrap();
/// assert_eq!(report.labels[&1], report.labels[&3]);
/// assert_ne!(report.labels[&1], report.labels[&9]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RandomisedContraction {
    /// Randomisation method (default: GF(2^64), the paper's choice).
    pub method: Method,
    /// Space variant (default: the fast Fig. 4 code).
    pub variant: SpaceVariant,
}

impl Default for RandomisedContraction {
    fn default() -> Self {
        RandomisedContraction { method: Method::Gf64, variant: SpaceVariant::Fast }
    }
}

impl RandomisedContraction {
    /// The paper's configuration: finite fields over GF(2^64), fast
    /// variant.
    pub fn paper() -> Self {
        Self::default()
    }

    /// A specific configuration.
    pub fn with(method: Method, variant: SpaceVariant) -> Self {
        RandomisedContraction { method, variant }
    }
}

/// Everything the per-round SQL needs to evaluate `h_i`.
enum RoundExpr {
    /// Finite-field affine map rendered inline: `udf(A, x, B)`.
    Affine { udf: &'static str, a: i64, b: i64 },
    /// Per-round registered Blowfish UDF: `name(x)`.
    Cipher { name: String },
}

impl RoundExpr {
    fn apply(&self, operand: &str) -> String {
        match self {
            RoundExpr::Affine { udf, a, b } => format!("{udf}({a}, {operand}, {b})"),
            RoundExpr::Cipher { name } => format!("{name}({operand})"),
        }
    }
}

/// Per-run working state.
struct RcRun<'a> {
    db: &'a dyn SqlEngine,
    ctrl: &'a RunControl<'a>,
    method: Method,
    rng: StdRng,
    /// Discriminator making this run's UDF names globally unique.
    uid: u64,
    /// UDF names registered during this run (unregistered at the end).
    registered: Vec<String>,
}

impl CcAlgorithm for RandomisedContraction {
    fn name(&self) -> String {
        match (self.method, self.variant) {
            (Method::Gf64, SpaceVariant::Fast) => "RC".into(),
            (m, SpaceVariant::Fast) => format!("RC[{}]", m.name()),
            (m, SpaceVariant::Deterministic) => format!("RC[{},det]", m.name()),
        }
    }

    fn run_controlled(
        &self,
        db: &dyn SqlEngine,
        input: &str,
        seed: u64,
        ctrl: &RunControl<'_>,
    ) -> DbResult<AlgoOutcome> {
        let mut run = RcRun {
            db,
            ctrl,
            method: self.method,
            rng: StdRng::seed_from_u64(seed),
            uid: UDF_SEQ.fetch_add(1, Ordering::Relaxed),
            registered: Vec::new(),
        };
        run.prepare();
        let result = match self.variant {
            SpaceVariant::Fast => run.run_fast(input),
            SpaceVariant::Deterministic => run.run_deterministic(input),
        };
        if result.is_err() {
            run.cleanup();
        }
        run.finish();
        result
    }
}

impl<'a> RcRun<'a> {
    /// Registers the standing UDFs and clears leftover working tables.
    fn prepare(&mut self) {
        self.db.register_udf("axplusb", Arc::new(AxPlusB));
        self.db.register_udf("axb_p", Arc::new(AxbP));
        self.cleanup();
    }

    /// Drops every working table this run may have left behind — the
    /// clean-slate step before a run and the error/cancellation path
    /// after one.
    fn cleanup(&mut self) {
        drop_if_exists(
            self.db,
            &[
                "ccgraph", "ccgraph2", "ccgraph3", "ccresult", "cctmp", "cclab", "ccrepr",
                "ccverts", "cchash", "cccand", "ccminh",
            ],
        );
        let mut i = 1;
        while self.db.drop_table(&format!("ccreps{i}")).is_ok() {
            i += 1;
        }
    }

    fn finish(&mut self) {
        for name in self.registered.drain(..) {
            self.db.unregister_udf(&name);
        }
    }

    /// Draws the next round's key. Affine keys avoid the `i64::MIN`
    /// bit pattern, whose decimal rendering cannot round-trip through
    /// the SQL parser.
    fn sample_key(&mut self) -> RoundKey {
        match self.method {
            Method::Gf64 => loop {
                let a: u64 = self.rng.gen();
                let b: u64 = self.rng.gen();
                if a != 0 && a != 1 << 63 && b != 1 << 63 {
                    return RoundKey::Affine { a, b };
                }
            },
            Method::Gfp => RoundKey::Affine {
                a: self.rng.gen_range(1..P),
                b: self.rng.gen_range(0..P),
            },
            Method::Blowfish => RoundKey::Cipher(self.rng.gen()),
            Method::RandomReals => RoundKey::None,
        }
    }

    /// Builds the SQL-side expression for this round's hash, registering
    /// a cipher UDF when needed. `None` for the random-reals method,
    /// which has no per-vertex closed form.
    fn round_expr(&mut self, round: usize, key: &RoundKey) -> Option<RoundExpr> {
        match key {
            RoundKey::Affine { a, b } => Some(RoundExpr::Affine {
                udf: match self.method {
                    Method::Gf64 => "axplusb",
                    Method::Gfp => "axb_p",
                    _ => unreachable!("affine key for non-field method"),
                },
                a: *a as i64,
                b: *b as i64,
            }),
            RoundKey::Cipher(k) => {
                let name = format!("bf{}_{round}", self.uid);
                self.db.register_udf(&name, Arc::new(BlowfishUdf::new(*k)));
                self.registered.push(name.clone());
                Some(RoundExpr::Cipher { name })
            }
            RoundKey::None => None,
        }
    }

    /// One round's representative table: for bijection methods this is
    /// the paper's one-query `least(h(v), min(h(w)))` relabelling; for
    /// random reals it is the argmin construction keeping original IDs.
    fn build_reps(&mut self, reps_table: &str, expr: &Option<RoundExpr>) -> DbResult<()> {
        match expr {
            Some(e) => {
                self.db.run(&format!(
                    "create table {reps_table} as \
                     select v1 v, least({hv}, min({hw})) rep \
                     from ccgraph group by v1 \
                     distributed by (v)",
                    hv = e.apply("v1"),
                    hw = e.apply("v2"),
                ))?;
            }
            None => {
                // Random reals: draw h per vertex, pick the argmin
                // neighbour (ties broken by min ID). Representatives
                // remain original vertex IDs, so no relabelling occurs
                // and correctness survives h collisions.
                self.db.run(
                    "create table ccverts as select distinct v1 as v from ccgraph \
                     distributed by (v)",
                )?;
                self.db.run(
                    "create table cchash as select v, random() as h from ccverts \
                     distributed by (v)",
                )?;
                self.db.run(
                    "create table cccand as \
                     select g.v1 as v, g.v2 as w, hh.h as h \
                     from ccgraph as g, cchash as hh where g.v2 = hh.v \
                     union all \
                     select hh.v as v, hh.v as w, hh.h as h from cchash as hh",
                )?;
                self.db.run(
                    "create table ccminh as select v, min(h) as mh from cccand \
                     group by v distributed by (v)",
                )?;
                self.db.run(&format!(
                    "create table {reps_table} as \
                     select c.v as v, min(c.w) as rep \
                     from cccand as c, ccminh as m \
                     where c.v = m.v and c.h = m.mh \
                     group by c.v distributed by (v)"
                ))?;
                drop_if_exists(self.db, &["ccverts", "cchash", "cccand", "ccminh"]);
            }
        }
        Ok(())
    }

    /// Contracts `ccgraph` through `reps_table` (the Appendix A
    /// two-join formulation), returning the new edge count.
    fn contract(&mut self, reps_table: &str) -> DbResult<usize> {
        self.db.run(&format!(
            "create table ccgraph2 as \
             select r1.rep as v1, v2 from ccgraph, {reps_table} as r1 \
             where ccgraph.v1 = r1.v \
             distributed by (v2)"
        ))?;
        self.db.drop_table("ccgraph")?;
        let rows = self
            .db
            .run(&format!(
                "create table ccgraph3 as \
                 select distinct v1, r2.rep as v2 \
                 from ccgraph2, {reps_table} as r2 \
                 where ccgraph2.v2 = r2.v and v1 != r2.rep \
                 distributed by (v1)"
            ))?
            .row_count();
        self.db.drop_table("ccgraph2")?;
        self.db.rename_table("ccgraph3", "ccgraph")?;
        Ok(rows)
    }

    /// The paper's setup query: double the edge table so each
    /// undirected edge appears in both directions.
    fn setup(&mut self, input: &str) -> DbResult<()> {
        self.db.run(&format!(
            "create table ccgraph as \
             select v1, v2 from {input} union all select v2, v1 from {input} \
             distributed by (v1)"
        ))?;
        Ok(())
    }

    /// Fig. 4 / Appendix A: contract with per-round `ccreps{i}` tables,
    /// then compose back-to-front with folded keys.
    fn run_fast(&mut self, input: &str) -> DbResult<AlgoOutcome> {
        self.setup(input)?;
        let mut stack: Vec<RoundKey> = Vec::new();
        let mut round_sizes: Vec<usize> = Vec::new();
        let mut roundno = 0usize;
        loop {
            self.ctrl.checkpoint()?;
            roundno += 1;
            let key = self.sample_key();
            let expr = self.round_expr(roundno, &key);
            let reps = format!("ccreps{roundno}");
            self.build_reps(&reps, &expr)?;
            let rows = self.contract(&reps)?;
            round_sizes.push(rows);
            stack.push(key);
            self.ctrl.report_round(roundno, rows);
            if rows == 0 {
                break;
            }
        }
        self.db.drop_table("ccgraph")?;
        let total_rounds = roundno;

        // Back-to-front composition. `fold` accumulates the relabelling
        // of all already-popped rounds: affine keys fold into one (A, B)
        // pair — the paper's `(A, B) ← (A·α, A·β + B)` — ciphers
        // accumulate into a composed UDF; random reals need no
        // relabelling at all.
        let mut fold = Fold::identity(self.method);
        while roundno >= 1 {
            self.ctrl.checkpoint()?;
            let key = stack.pop().expect("stack tracks rounds");
            fold.absorb(&key);
            roundno -= 1;
            if roundno == 0 {
                break;
            }
            let missing =
                fold.missing_expr(self.db, &mut self.registered, "r1.rep", self.uid);
            self.db.run(&format!(
                "create table cctmp as \
                 select r1.v as v, coalesce(r2.rep, {missing}) as rep \
                 from ccreps{lo} as r1 left outer join ccreps{hi} as r2 \
                 on (r1.rep = r2.v) \
                 distributed by (v)",
                lo = roundno,
                hi = roundno + 1,
            ))?;
            self.db.drop_table(&format!("ccreps{roundno}"))?;
            self.db.drop_table(&format!("ccreps{}", roundno + 1))?;
            self.db.rename_table("cctmp", &format!("ccreps{roundno}"))?;
        }
        self.db.rename_table("ccreps1", "ccresult")?;
        Ok(AlgoOutcome {
            result_table: "ccresult".into(),
            rounds: total_rounds,
            round_sizes,
        })
    }

    /// Fig. 3: maintain the running composition table `cclab`.
    fn run_deterministic(&mut self, input: &str) -> DbResult<AlgoOutcome> {
        self.setup(input)?;
        let mut first = true;
        let mut rounds = 0usize;
        let mut round_sizes: Vec<usize> = Vec::new();
        loop {
            self.ctrl.checkpoint()?;
            rounds += 1;
            let key = self.sample_key();
            let expr = self.round_expr(rounds, &key);
            self.build_reps("ccrepr", &expr)?;
            let rows = self.contract("ccrepr")?;
            round_sizes.push(rows);
            self.ctrl.report_round(rounds, rows);
            if first {
                self.db.rename_table("ccrepr", "cclab")?;
                first = false;
            } else {
                // Missing rows are vertices already isolated; they are
                // relabelled through this round's hash so label spaces
                // stay consistent (random reals never relabels).
                let missing = match &expr {
                    Some(e) => e.apply("l.rep"),
                    None => "l.rep".to_string(),
                };
                self.db.run(&format!(
                    "create table cctmp as \
                     select l.v as v, coalesce(r.rep, {missing}) as rep \
                     from cclab as l left outer join ccrepr as r on (l.rep = r.v) \
                     distributed by (v)"
                ))?;
                self.db.drop_table("cclab")?;
                self.db.drop_table("ccrepr")?;
                self.db.rename_table("cctmp", "cclab")?;
            }
            if rows == 0 {
                break;
            }
        }
        self.db.drop_table("ccgraph")?;
        self.db.rename_table("cclab", "ccresult")?;
        Ok(AlgoOutcome { result_table: "ccresult".into(), rounds, round_sizes })
    }
}

/// One round's sampled key material.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoundKey {
    /// Finite-field affine parameters (A, B), A ≠ 0.
    Affine { a: u64, b: u64 },
    /// A 128-bit Blowfish round key.
    Cipher(u128),
    /// Random reals: no closed-form key.
    None,
}

/// The accumulated relabelling of the rounds popped so far in the
/// Fig. 4 back-substitution loop.
enum Fold {
    /// Affine over GF(2^64): `x -> A·x + B`.
    Gf64 { a: u64, b: u64 },
    /// Affine over GF(p).
    Gfp { a: u64, b: u64 },
    /// Composition of Blowfish ciphers, applied oldest-first.
    Ciphers(Vec<u128>),
    /// Random reals: representatives keep original IDs; nothing folds.
    None,
}

impl Fold {
    fn identity(method: Method) -> Fold {
        match method {
            Method::Gf64 => Fold::Gf64 { a: 1, b: 0 },
            Method::Gfp => Fold::Gfp { a: 1, b: 0 },
            Method::Blowfish => Fold::Ciphers(Vec::new()),
            Method::RandomReals => Fold::None,
        }
    }

    /// Absorbs one more (earlier) round: `acc ← acc ∘ h`, the paper's
    /// `(A, B) ← (A·α, A·β + B)` key folding.
    fn absorb(&mut self, key: &RoundKey) {
        match (self, key) {
            (Fold::Gf64 { a, b }, RoundKey::Affine { a: alpha, b: beta }) => {
                let na = incc_ffield::gf64::gf64_mul(*a, *alpha);
                let nb = incc_ffield::gf64::gf64_mul(*a, *beta) ^ *b;
                *a = na;
                *b = nb;
            }
            (Fold::Gfp { a, b }, RoundKey::Affine { a: alpha, b: beta }) => {
                let f = incc_ffield::Gfp;
                let na = f.mul(*a, *alpha);
                let nb = f.add(f.mul(*a, *beta), *b);
                *a = na;
                *b = nb;
            }
            (Fold::Ciphers(keys), RoundKey::Cipher(k)) => {
                // Earlier rounds apply first: insert at the front.
                keys.insert(0, *k);
            }
            (Fold::None, RoundKey::None) => {}
            _ => unreachable!("method/round mismatch"),
        }
    }

    /// Renders the relabelling of a missing (early-isolated) vertex.
    fn missing_expr(
        &self,
        db: &dyn SqlEngine,
        registered: &mut Vec<String>,
        operand: &str,
        uid: u64,
    ) -> String {
        match self {
            Fold::Gf64 { a, b } => {
                format!("axplusb({}, {operand}, {})", *a as i64, *b as i64)
            }
            Fold::Gfp { a, b } => {
                format!("axb_p({}, {operand}, {})", *a as i64, *b as i64)
            }
            Fold::Ciphers(keys) => {
                let name = format!("bf_fold{uid}");
                db.register_udf(&name, Arc::new(CipherFold::new(keys.clone())));
                if !registered.contains(&name) {
                    registered.push(name.clone());
                }
                format!("{name}({operand})")
            }
            Fold::None => operand.to_string(),
        }
    }
}

/// Applies a sequence of Blowfish encryptions oldest-key-first — the
/// composed relabelling `h_k ∘ … ∘ h_{i+1}` for the encryption method's
/// back-substitution.
struct CipherFold {
    ciphers: Vec<incc_ffield::blowfish::Blowfish>,
}

impl CipherFold {
    fn new(keys: Vec<u128>) -> CipherFold {
        CipherFold {
            ciphers: keys
                .into_iter()
                .map(incc_ffield::blowfish::Blowfish::from_u128)
                .collect(),
        }
    }
}

impl ScalarUdf for CipherFold {
    fn eval(&self, args: &[Datum]) -> Datum {
        match args {
            [Datum::Int(x)] => {
                let mut v = *x as u64;
                for c in &self.ciphers {
                    v = c.encrypt(v);
                }
                Datum::Int(v as i64)
            }
            _ => Datum::Null,
        }
    }
}
