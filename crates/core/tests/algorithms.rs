//! End-to-end correctness: every algorithm, on every graph family,
//! verified against in-memory union–find (the paper's correctness
//! criterion: identical vertex sets, identical co-labelling).

use incc_core::bfs::BfsStrategy;
use incc_core::cracker::Cracker;
use incc_core::hash_to_min::HashToMin;
use incc_core::two_phase::TwoPhase;
use incc_core::{run_on_graph, CcAlgorithm, RandomisedContraction, SpaceVariant};
use incc_ffield::Method;
use incc_graph::generators::{
    complete_graph, cycle_graph, gnm_random_graph, image_graph_2d, path_graph, path_union,
    star_graph, GridParams, PathNumbering,
};
use incc_graph::EdgeList;
use incc_mppdb::{Cluster, ClusterConfig};

fn test_graphs() -> Vec<(&'static str, EdgeList)> {
    vec![
        ("single_loop", EdgeList::from_pairs(vec![(7, 7)])),
        ("one_edge", EdgeList::from_pairs(vec![(5, 9)])),
        ("loops_only", EdgeList::from_pairs(vec![(1, 1), (2, 2), (3, 3)])),
        ("duplicate_edges", EdgeList::from_pairs(vec![(1, 2), (2, 1), (1, 2), (2, 3)])),
        ("path_sequential", path_graph(40, PathNumbering::Sequential, 0)),
        ("path_bitrev", path_graph(33, PathNumbering::BitReversed, 100)),
        ("path_union", path_union(3, 5, PathNumbering::Sequential)),
        ("cycle", cycle_graph(25)),
        ("star", star_graph(30)),
        ("complete", complete_graph(12)),
        ("gnm_sparse", gnm_random_graph(80, 60, 11)),
        ("gnm_dense", gnm_random_graph(40, 200, 12)),
        (
            "image",
            image_graph_2d(20, 14, GridParams { seed: 3, ..Default::default() }),
        ),
        ("mixed_with_isolated", {
            let mut g = gnm_random_graph(30, 25, 13);
            g.push(1_000_001, 1_000_001);
            g.push(1_000_002, 1_000_002);
            g
        }),
    ]
}

fn check_algorithm(algo: &dyn CcAlgorithm) {
    let db = Cluster::new(ClusterConfig { segments: 4, ..Default::default() });
    for (name, g) in test_graphs() {
        let report = run_on_graph(algo, &db, &g, 0xD15EA5E)
            .unwrap_or_else(|e| panic!("{} failed on {name}: {e}", algo.name()));
        report
            .verify_against(&g)
            .unwrap_or_else(|e| panic!("{} wrong on {name}: {e}", algo.name()));
        assert!(report.rounds >= 1, "{} reported zero rounds on {name}", algo.name());
        // No working tables may survive a run.
        assert!(
            db.table_names().is_empty(),
            "{} leaked tables on {name}: {:?}",
            algo.name(),
            db.table_names()
        );
    }
}

#[test]
fn randomised_contraction_fast_gf64() {
    check_algorithm(&RandomisedContraction::paper());
}

#[test]
fn randomised_contraction_fast_gfp() {
    check_algorithm(&RandomisedContraction::with(Method::Gfp, SpaceVariant::Fast));
}

#[test]
fn randomised_contraction_fast_blowfish() {
    check_algorithm(&RandomisedContraction::with(Method::Blowfish, SpaceVariant::Fast));
}

#[test]
fn randomised_contraction_fast_random_reals() {
    check_algorithm(&RandomisedContraction::with(Method::RandomReals, SpaceVariant::Fast));
}

#[test]
fn randomised_contraction_deterministic_gf64() {
    check_algorithm(&RandomisedContraction::with(Method::Gf64, SpaceVariant::Deterministic));
}

#[test]
fn randomised_contraction_deterministic_blowfish() {
    check_algorithm(&RandomisedContraction::with(Method::Blowfish, SpaceVariant::Deterministic));
}

#[test]
fn randomised_contraction_deterministic_random_reals() {
    check_algorithm(&RandomisedContraction::with(
        Method::RandomReals,
        SpaceVariant::Deterministic,
    ));
}

#[test]
fn hash_to_min_correct() {
    check_algorithm(&HashToMin::default());
}

#[test]
fn two_phase_correct() {
    check_algorithm(&TwoPhase::default());
}

#[test]
fn cracker_correct() {
    check_algorithm(&Cracker::default());
}

#[test]
fn bfs_correct() {
    check_algorithm(&BfsStrategy::default());
}

#[test]
fn rc_round_count_logarithmic_on_path() {
    // The headline claim: O(log |V|) rounds on the adversarial path.
    let db = Cluster::new(ClusterConfig::default());
    let g = path_graph(2048, PathNumbering::Sequential, 0);
    let report = run_on_graph(&RandomisedContraction::paper(), &db, &g, 1).unwrap();
    report.verify_against(&g).unwrap();
    assert!(
        report.rounds <= 40,
        "RC took {} rounds on a 2048-path (expected ~log)",
        report.rounds
    );
}

#[test]
fn bfs_hits_round_guard_on_path() {
    // Section IV: BFS needs n-1 rounds on the sequentially numbered
    // path; the guard converts that into "did not finish".
    let db = Cluster::new(ClusterConfig::default());
    let g = path_graph(300, PathNumbering::Sequential, 0);
    let err = run_on_graph(&BfsStrategy { max_rounds: 20 }, &db, &g, 0).unwrap_err();
    assert!(err.to_string().contains("did not finish"), "{err}");
}

#[test]
fn hash_to_min_blows_space_limit_on_path() {
    // The paper: "on a shorter path of 100,000 vertices they already
    // use more than 100 GB" — quadratic intermediate state. With a
    // tight space guard the run reports "did not finish" (space).
    let g = path_graph(600, PathNumbering::Sequential, 0);
    let db = Cluster::new(ClusterConfig { space_limit: 200_000, ..Default::default() });
    let err = run_on_graph(&HashToMin::default(), &db, &g, 0).unwrap_err();
    assert!(err.is_space_limit(), "expected space-limit error, got {err}");
    // Randomised Contraction handles the same graph within the limit.
    let db2 = Cluster::new(ClusterConfig { space_limit: 200_000, ..Default::default() });
    let report = run_on_graph(&RandomisedContraction::paper(), &db2, &g, 0).unwrap();
    report.verify_against(&g).unwrap();
}

#[test]
fn rc_is_reproducible_per_seed() {
    let db = Cluster::new(ClusterConfig::default());
    let g = gnm_random_graph(60, 100, 5);
    let a = run_on_graph(&RandomisedContraction::paper(), &db, &g, 99).unwrap();
    let b = run_on_graph(&RandomisedContraction::paper(), &db, &g, 99).unwrap();
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.rounds, b.rounds);
}

#[test]
fn all_algorithms_agree_on_partition() {
    let g = gnm_random_graph(70, 80, 21);
    let algos: Vec<Box<dyn CcAlgorithm>> = vec![
        Box::new(RandomisedContraction::paper()),
        Box::new(HashToMin::default()),
        Box::new(TwoPhase::default()),
        Box::new(Cracker::default()),
        Box::new(BfsStrategy::default()),
    ];
    let db = Cluster::new(ClusterConfig::default());
    let reference = incc_graph::union_find::connected_components(&g.edges);
    for algo in &algos {
        let report = run_on_graph(algo.as_ref(), &db, &g, 3).unwrap();
        assert!(
            incc_graph::union_find::labellings_equivalent(&report.labels, &reference),
            "{} disagrees with union-find",
            algo.name()
        );
    }
}

#[test]
fn blowfish_fast_composition_handles_early_isolation() {
    // Regression guard for the Fig. 4 back-substitution with the
    // encryption method: a star contracts in round 1, so its vertices
    // are missing from every later representative table and must be
    // relabelled through the *composed* ciphers (oldest key first). A
    // long path alongside forces several more rounds.
    let mut g = star_graph(12);
    g.extend(&path_graph(400, PathNumbering::Sequential, 1000));
    let algo = RandomisedContraction::with(Method::Blowfish, SpaceVariant::Fast);
    let db = Cluster::new(ClusterConfig::default());
    for seed in [1u64, 2, 3, 4, 5] {
        let report = run_on_graph(&algo, &db, &g, seed).unwrap();
        assert!(report.rounds >= 3, "need several rounds to exercise the fold");
        report.verify_against(&g).unwrap();
    }
}

#[test]
fn round_sizes_decay_geometrically_for_rc() {
    let g = path_graph(2000, PathNumbering::Sequential, 0);
    let db = Cluster::new(ClusterConfig::default());
    let report = run_on_graph(&RandomisedContraction::paper(), &db, &g, 9).unwrap();
    assert_eq!(report.round_sizes.len(), report.rounds);
    assert_eq!(*report.round_sizes.last().unwrap(), 0, "terminates empty");
    // Strictly decreasing from round 2 on a path (dedup + loop removal).
    for w in report.round_sizes.windows(2) {
        assert!(w[1] < w[0] || w[0] == 0, "no shrink: {:?}", report.round_sizes);
    }
}
