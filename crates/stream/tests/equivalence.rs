//! The incremental maintainer's correctness contract, property-tested:
//!
//! 1. **Equivalence** — after any interleaving of inserts, deletes and
//!    rebuilds, a final rebuild leaves labels partition-equivalent to
//!    from-scratch connected components over the surviving edge set
//!    (live edges plus a loop per ever-seen vertex).
//! 2. **Monotone staleness** — *between* rebuilds labels are only ever
//!    over-merged: every edge currently live has same-labelled
//!    endpoints, because inserts apply eagerly and deletes defer.
//! 3. **Epoch safety under faults** — a rebuild that dies on injected
//!    segment panics publishes nothing: the old epoch keeps answering
//!    with its exact pre-failure labels, and a later rebuild (fault
//!    budget exhausted) succeeds and advances the epoch.

use incc_core::driver::RunControl;
use incc_graph::union_find::{connected_components, labellings_equivalent};
use incc_mppdb::{Cluster, ClusterConfig, FaultPlan};
use incc_stream::{EdgeOp, IncrementalCc, StreamConfig};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

fn norm(u: u64, v: u64) -> (u64, u64) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// The reference state: the edge set the stream should describe.
#[derive(Default)]
struct Model {
    live: HashSet<(u64, u64)>,
    vertices: HashSet<u64>,
}

impl Model {
    fn apply(&mut self, op: EdgeOp) {
        match op {
            EdgeOp::Add(u, v) => {
                self.live.insert(norm(u, v));
                self.vertices.insert(u);
                self.vertices.insert(v);
            }
            EdgeOp::Del(u, v) => {
                self.live.remove(&norm(u, v));
            }
        }
    }

    /// From-scratch truth: CC over live edges + loops for every
    /// ever-seen vertex (the paper's isolated-vertex convention, and
    /// exactly what a rebuild feeds the engine).
    fn truth(&self) -> std::collections::HashMap<u64, u64> {
        let mut edges: Vec<(u64, u64)> = self.live.iter().copied().collect();
        edges.extend(self.vertices.iter().map(|&v| (v, v)));
        connected_components(&edges)
    }
}

/// One scripted step: an edge op, or a rebuild through the engine.
#[derive(Debug, Clone, Copy)]
enum Step {
    Op(EdgeOp),
    Rebuild,
}

/// Random interleavings over a small vertex space: mostly adds, a
/// healthy share of deletes (often of actually-live edges, because the
/// space is small), and occasional rebuilds.
fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec((0u8..8, 0u64..24, 0u64..24), 1..60).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, u, v)| match kind {
                0..=3 => Step::Op(EdgeOp::Add(u, v)),
                4..=6 => Step::Op(EdgeOp::Del(u, v)),
                _ => Step::Rebuild,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn final_rebuild_matches_from_scratch_cc(steps in arb_steps(), seed: u64) {
        let db = Arc::new(Cluster::new(ClusterConfig::default()));
        let cc = IncrementalCc::new(
            "eq",
            StreamConfig { seed, ..StreamConfig::default() },
        );
        let mut model = Model::default();
        for step in steps {
            match step {
                Step::Op(op) => {
                    model.apply(op);
                    cc.feed(&[op]);
                }
                Step::Rebuild => {
                    cc.rebuild(db.as_ref(), &RunControl::default()).unwrap();
                }
            }
            // Invariant at every point, rebuilt or stale: live edges
            // always have same-labelled endpoints (inserts are eager,
            // deletes only defer — labels over-merge, never split).
            for &(u, v) in &model.live {
                prop_assert_eq!(
                    cc.component(u).map(|(l, _)| l),
                    cc.component(v).map(|(l, _)| l),
                    "live edge ({}, {}) split across components", u, v
                );
            }
        }
        cc.rebuild(db.as_ref(), &RunControl::default()).unwrap();
        prop_assert!(
            labellings_equivalent(&cc.labelling(), &model.truth()),
            "rebuilt labelling is not the from-scratch partition"
        );
        // After the rebuild, the tombstone log is fully compacted.
        prop_assert_eq!(cc.status().tombstones, 0);
    }
}

#[test]
fn failed_rebuild_keeps_the_old_epoch_queryable() {
    // Aggressive panic injection with a finite budget, and *no* retry
    // layer (the maintainer is driven on the raw cluster): the first
    // rebuild attempts must die, and each failure must be invisible to
    // readers.
    let db = Arc::new(Cluster::new(ClusterConfig {
        faults: Some(FaultPlan::panics(9, 400, 12)),
        ..ClusterConfig::default()
    }));
    let cc = IncrementalCc::new("chaos", StreamConfig::default());
    cc.feed(&[
        EdgeOp::Add(1, 2),
        EdgeOp::Add(2, 3),
        EdgeOp::Add(10, 11),
    ]);
    cc.feed(&[EdgeOp::Del(2, 3)]);
    let before = cc.labelling();
    assert_eq!(cc.epoch(), 0);

    let mut failures = 0u32;
    loop {
        match cc.rebuild(db.as_ref(), &RunControl::default()) {
            Err(_) => {
                failures += 1;
                // Old epoch still fully queryable, labels untouched,
                // tombstone preserved for the next attempt.
                assert_eq!(cc.epoch(), 0, "failed rebuild must not publish");
                assert_eq!(cc.labelling(), before);
                assert_eq!(cc.status().tombstones, 1);
                assert!(!cc.status().rebuilding, "latch must reset on failure");
                assert!(failures < 64, "fault budget never exhausted");
            }
            Ok(report) => {
                // Budget ran dry; the rebuild went through atomically.
                assert_eq!(report.epoch, 1);
                break;
            }
        }
    }
    assert!(failures > 0, "plan injected no faults before succeeding");
    assert_eq!(cc.epoch(), 1);
    assert_eq!(cc.status().tombstones, 0);
    // The deletion finally took effect; the untouched component and
    // the deferred split are both correct now.
    assert_ne!(
        cc.component(1).unwrap().0,
        cc.component(3).unwrap().0,
        "tombstoned edge survived the rebuild"
    );
    assert_eq!(cc.component(10).unwrap().0, cc.component(11).unwrap().0);
}

#[test]
fn labels_stay_consistent_under_concurrent_feeds_and_rebuilds() {
    // Thread soup: two feeders and a rebuild loop race; afterwards a
    // final rebuild must still equal the from-scratch partition of
    // whatever edge set won. Deletions target distinct edges per
    // feeder so the final edge set is deterministic.
    let db = Arc::new(Cluster::new(ClusterConfig::default()));
    let cc = Arc::new(IncrementalCc::new("race", StreamConfig::default()));
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let cc = Arc::clone(&cc);
            s.spawn(move || {
                let base = 1000 * (t + 1);
                for i in 0..40 {
                    cc.feed(&[EdgeOp::Add(base + i, base + i + 1)]);
                }
                for i in (0..40).step_by(2) {
                    cc.feed(&[EdgeOp::Del(base + i, base + i + 1)]);
                }
            });
        }
        let cc = Arc::clone(&cc);
        let db = Arc::clone(&db);
        s.spawn(move || {
            for _ in 0..3 {
                let _ = cc.rebuild(db.as_ref(), &RunControl::default());
            }
        });
    });
    cc.rebuild(db.as_ref(), &RunControl::default()).unwrap();
    let mut model = Model::default();
    for t in 0..2u64 {
        let base = 1000 * (t + 1);
        for i in 0..40 {
            model.apply(EdgeOp::Add(base + i, base + i + 1));
        }
        for i in (0..40).step_by(2) {
            model.apply(EdgeOp::Del(base + i, base + i + 1));
        }
    }
    assert!(
        labellings_equivalent(&cc.labelling(), &model.truth()),
        "post-race rebuild diverged from the from-scratch partition"
    );
}
