//! The strawman the bench compares against: rerun the paper's
//! Randomised Contraction through the engine after **every** batch.
//!
//! This is what "streaming CC" looks like without the incremental
//! subsystem — always exact, but each batch pays a full O(log n)-round
//! SQL run over the whole edge set, so sustained update throughput is
//! bounded by engine latency rather than by a CAS. The bench
//! (`benches/stream.rs`) holds the *staleness bound* equal on both
//! sides — this baseline's labels are never stale, the incremental
//! side's are stale at most its configured budget — and measures
//! updates/sec.

use crate::inc::EdgeOp;
use incc_core::driver::{drop_if_exists, CcAlgorithm, RunControl};
use incc_core::RandomisedContraction;
use incc_mppdb::{DbResult, SqlEngine};
use std::collections::{HashMap, HashSet};

/// Exact-but-slow streaming CC: full contraction rerun per batch.
#[derive(Debug)]
pub struct NaiveRerun {
    name: String,
    seed: u64,
    live: HashSet<(u64, u64)>,
    vertices: HashSet<u64>,
    labels: HashMap<u64, u64>,
    reruns: u64,
}

impl NaiveRerun {
    /// A fresh, empty baseline stream.
    pub fn new(name: impl Into<String>, seed: u64) -> NaiveRerun {
        NaiveRerun {
            name: name.into(),
            seed,
            live: HashSet::new(),
            vertices: HashSet::new(),
            labels: HashMap::new(),
            reruns: 0,
        }
    }

    /// Applies one batch and reruns the contraction over the full
    /// current edge set. Returns the number of state-changing updates.
    pub fn feed(&mut self, db: &dyn SqlEngine, ops: &[EdgeOp]) -> DbResult<usize> {
        let mut applied = 0usize;
        for &op in ops {
            match op {
                EdgeOp::Add(u, v) => {
                    let key = if u <= v { (u, v) } else { (v, u) };
                    if self.live.insert(key) {
                        applied += 1;
                    }
                    self.vertices.insert(u);
                    self.vertices.insert(v);
                }
                EdgeOp::Del(u, v) => {
                    let key = if u <= v { (u, v) } else { (v, u) };
                    if self.live.remove(&key) {
                        applied += 1;
                    }
                }
            }
        }
        self.rerun(db)?;
        Ok(applied)
    }

    fn rerun(&mut self, db: &dyn SqlEngine) -> DbResult<()> {
        self.reruns += 1;
        if self.vertices.is_empty() {
            self.labels.clear();
            return Ok(());
        }
        let input = format!("{}_naive_in", self.name);
        drop_if_exists(db, &[&input]);
        let mut rows: Vec<(i64, i64)> = self
            .live
            .iter()
            .map(|&(u, v)| (u as i64, v as i64))
            .collect();
        rows.extend(self.vertices.iter().map(|&v| (v as i64, v as i64)));
        db.load_pairs(&input, "v1", "v2", &rows)?;
        let seed = self.seed.wrapping_add(self.reruns);
        let outcome = RandomisedContraction::paper().run_controlled(
            db,
            &input,
            seed,
            &RunControl::default(),
        )?;
        let labels = db.scan_pairs(&outcome.result_table)?;
        let _ = db.drop_table(&outcome.result_table);
        let _ = db.drop_table(&input);
        self.labels = labels
            .into_iter()
            .map(|(v, r)| (v as u64, r as u64))
            .collect();
        Ok(())
    }

    /// Component label of `v` from the labels of the last rerun.
    pub fn component(&self, v: u64) -> Option<u64> {
        self.labels.get(&v).copied()
    }

    /// The full labelling as of the last rerun.
    pub fn labelling(&self) -> &HashMap<u64, u64> {
        &self.labels
    }

    /// Engine runs performed so far.
    pub fn reruns(&self) -> u64 {
        self.reruns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incc_mppdb::{Cluster, ClusterConfig};
    use std::sync::Arc;

    #[test]
    fn naive_stays_exact_through_adds_and_deletes() {
        let db = Arc::new(Cluster::new(ClusterConfig::default()));
        let mut naive = NaiveRerun::new("n", 7);
        naive
            .feed(db.as_ref(), &[EdgeOp::Add(1, 2), EdgeOp::Add(2, 3)])
            .unwrap();
        assert_eq!(naive.component(1), naive.component(3));
        naive.feed(db.as_ref(), &[EdgeOp::Del(2, 3)]).unwrap();
        assert_ne!(naive.component(1), naive.component(3));
        assert!(naive.component(3).is_some(), "vertex survives, isolated");
        assert_eq!(naive.reruns(), 2);
    }
}
