//! The incremental connected-components maintainer.
//!
//! [`IncrementalCc`] keeps live component labels for a graph receiving
//! a stream of edge insertions and deletions, built from two halves
//! with very different costs:
//!
//! * **Insertions are cheap.** An `AddEdge` is a CAS union in the
//!   current generation's concurrent union–find ([`crate::AtomicUf`]),
//!   so a feed batch is microseconds and `component(v)` point lookups
//!   stay lock-free throughout. This is the incremental fast path the
//!   Liu–Tarjan connect/shortcut framework motivates: unions only ever
//!   *merge* components, so they can be applied eagerly and in any
//!   order without ever producing a wrong merge.
//! * **Deletions are deferred.** A union–find cannot split, so a
//!   `DelEdge` only tombstones the edge in the [`EdgeLog`]; labels go
//!   *stale* (possibly over-merged) until a **rebuild** reruns the
//!   paper's Randomised Contraction through the SQL engine over the
//!   surviving edge set and atomically publishes a fresh generation.
//!
//! Staleness is budgeted: a rebuild is signalled once the tombstone
//! count or the age of the oldest tombstone crosses the configured
//! bounds (or the union–find trees grow past a rank budget). Between
//! rebuilds every answer is *correct for some recent past*: the
//! labelling of the graph as of the last rebuild plus all insertions
//! since — exactly the edge set minus un-applied deletions.
//!
//! # Epoch versioning
//!
//! Each generation is an immutable-identity [`Arc`] holding its own
//! interner and union–find, stamped with an epoch number. Readers
//! clone the `Arc` and keep answering from it even while a rebuild
//! publishes a successor, so a failed or panicking rebuild (see the
//! engine's fault injection) leaves the old epoch fully queryable —
//! the swap happens only after the new generation is complete.
//!
//! The one ordering subtlety: [`IncrementalCc::feed`] takes the edge
//! log lock *before* reading the generation pointer, and the rebuild
//! publishes the new generation *while holding* that same lock. A feed
//! therefore lands either entirely before the publish (its edges are
//! replayed into the successor from the log) or entirely after (its
//! unions apply directly to the successor) — never astride it, which
//! is what would lose updates.

use crate::uf::AtomicUf;
use incc_core::driver::{drop_if_exists, CcAlgorithm, RunControl};
use incc_core::RandomisedContraction;
use incc_mppdb::{DbError, DbResult, HistogramSnapshot, LatencyHistogram, SqlEngine};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for one [`IncrementalCc`] stream.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Rebuild once this many deletions are tombstoned.
    pub max_tombstones: usize,
    /// Rebuild once the oldest tombstone is older than this — the
    /// staleness budget: how far behind the truth labels may lag.
    pub staleness_budget: Duration,
    /// Rebuild once the union–find's max rank exceeds this (a depth
    /// proxy; rebuilding re-flattens the forest). `u32::MAX` disables.
    pub max_rank: u32,
    /// Base seed for the rebuild contraction runs (varied per epoch).
    pub seed: u64,
    /// Vertex capacity of each generation's union–find.
    pub capacity: usize,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            max_tombstones: 64,
            staleness_budget: Duration::from_millis(250),
            max_rank: u32::MAX,
            seed: 0xB0E6_401D,
            capacity: 1 << 22,
        }
    }
}

/// One streamed update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOp {
    /// Insert the undirected edge `(u, v)` (idempotent; `u == v`
    /// registers an isolated vertex).
    Add(u64, u64),
    /// Delete the undirected edge `(u, v)` (ignored when absent).
    Del(u64, u64),
}

/// What a feed batch did.
#[derive(Debug, Clone, Copy)]
pub struct FeedSummary {
    /// Updates that changed state (duplicate adds and deletes of
    /// absent edges don't count).
    pub applied: usize,
    /// Epoch the batch was applied to.
    pub epoch: u64,
    /// True when the stream has crossed a rebuild trigger — the caller
    /// (the service layer) should schedule [`IncrementalCc::rebuild`].
    pub needs_rebuild: bool,
}

/// A point-in-time summary of one stream, for `\stream stats` and the
/// metrics endpoint.
#[derive(Debug, Clone)]
pub struct StreamStatus {
    /// Stream name.
    pub name: String,
    /// Current generation's epoch.
    pub epoch: u64,
    /// Vertices ever seen.
    pub vertices: usize,
    /// Currently live (un-deleted) edges.
    pub live_edges: usize,
    /// Deletions awaiting a rebuild.
    pub tombstones: usize,
    /// Age of the oldest pending deletion — how stale labels may be.
    pub staleness: Duration,
    /// Component count of the current generation (over-merged while
    /// tombstones are pending; exact right after a rebuild).
    pub components: usize,
    /// Max union–find rank in the current generation.
    pub max_rank: u32,
    /// Updates applied over the stream's lifetime.
    pub updates_total: u64,
    /// Feed batches absorbed.
    pub batches_total: u64,
    /// Rebuilds published.
    pub rebuilds_total: u64,
    /// Contraction rounds of the most recent rebuild.
    pub last_rebuild_rounds: u64,
    /// True when a rebuild trigger has been crossed.
    pub needs_rebuild: bool,
    /// True while a rebuild is executing.
    pub rebuilding: bool,
    /// Feed batch latency distribution.
    pub batch_latency: HistogramSnapshot,
}

/// What a completed rebuild produced.
#[derive(Debug, Clone)]
pub struct RebuildReport {
    /// Epoch of the newly published generation.
    pub epoch: u64,
    /// Contraction rounds the engine ran (0 for an empty graph).
    pub rounds: usize,
    /// Working-set sizes per round, as reported by the algorithm.
    pub round_sizes: Vec<usize>,
    /// Vertices in the rebuilt snapshot.
    pub vertices: usize,
    /// Live edges in the rebuilt snapshot.
    pub edges: usize,
    /// Name of the published `(v, r)` label table, when the engine ran
    /// (`None` for the in-memory empty-graph short cut).
    pub label_table: Option<String>,
}

/// External-id interner: dense `u32` ids for the union–find, both
/// directions.
#[derive(Debug, Default)]
struct Interner {
    map: HashMap<u64, u32>,
    ids: Vec<u64>,
}

/// One epoch's worth of answers: an interner plus a concurrent
/// union–find, immutable in identity (shared via `Arc`) but internally
/// growable so insertions apply in place.
#[derive(Debug)]
struct Generation {
    epoch: u64,
    interner: RwLock<Interner>,
    uf: AtomicUf,
}

impl Generation {
    fn empty(epoch: u64, capacity: usize) -> Generation {
        Generation {
            epoch,
            interner: RwLock::new(Interner::default()),
            uf: AtomicUf::with_capacity(capacity),
        }
    }

    /// Dense id for `v`, allocating on first sight.
    fn intern(&self, v: u64) -> u32 {
        if let Some(&id) = self.interner.read().map.get(&v) {
            return id;
        }
        let mut w = self.interner.write();
        if let Some(&id) = w.map.get(&v) {
            return id;
        }
        let id = self.uf.push();
        debug_assert_eq!(id as usize, w.ids.len());
        w.map.insert(v, id);
        w.ids.push(v);
        id
    }

    fn union(&self, u: u64, v: u64) {
        let iu = self.intern(u);
        let iv = self.intern(v);
        self.uf.union(iu, iv);
    }

    /// Component label (the external id of the set representative) of
    /// `v`, or `None` when `v` has never been seen.
    fn component(&self, v: u64) -> Option<u64> {
        let r = self.interner.read();
        let &iv = r.map.get(&v)?;
        Some(r.ids[self.uf.find(iv) as usize])
    }

    /// The full labelling, for equivalence checks and status.
    fn labelling(&self) -> HashMap<u64, u64> {
        let r = self.interner.read();
        r.ids
            .iter()
            .enumerate()
            .map(|(iv, &v)| (v, r.ids[self.uf.find(iv as u32) as usize]))
            .collect()
    }
}

/// The stream's ground truth: every live edge and every pending
/// deletion, sequence-stamped so a rebuild can snapshot a prefix and
/// replay exactly the suffix.
#[derive(Debug, Default)]
struct EdgeLog {
    /// Monotone per-update sequence number; `0` means "before any
    /// update".
    seq: u64,
    /// Live undirected edges (normalised `(min, max)` keys) → sequence
    /// of their most recent insertion.
    live: HashMap<(u64, u64), u64>,
    /// Tombstoned edges → (deletion sequence, deletion instant). The
    /// instant drives the staleness budget.
    dead: HashMap<(u64, u64), (u64, Instant)>,
    /// Every vertex ever seen. Vertices persist after their last edge
    /// is deleted (they become isolated), matching the paper's
    /// loop-edge convention for isolated vertices.
    vertices: HashSet<u64>,
}

fn norm(u: u64, v: u64) -> (u64, u64) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Resets a flag when dropped — keeps the `rebuilding` latch correct
/// even when a rebuild errors or unwinds.
struct ResetOnDrop<'a>(&'a AtomicBool);

impl Drop for ResetOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// Live component labels under streaming edge updates. See the module
/// docs for the design; [`crate`] docs for the service wiring.
#[derive(Debug)]
pub struct IncrementalCc {
    name: String,
    config: StreamConfig,
    generation: RwLock<Arc<Generation>>,
    log: Mutex<EdgeLog>,
    rebuilding: AtomicBool,
    updates_total: AtomicU64,
    batches_total: AtomicU64,
    rebuilds_total: AtomicU64,
    last_rebuild_rounds: AtomicU64,
    batch_latency: LatencyHistogram,
}

impl IncrementalCc {
    /// A fresh, empty stream at epoch 0.
    pub fn new(name: impl Into<String>, config: StreamConfig) -> IncrementalCc {
        let capacity = config.capacity;
        IncrementalCc {
            name: name.into(),
            config,
            generation: RwLock::new(Arc::new(Generation::empty(0, capacity))),
            log: Mutex::new(EdgeLog::default()),
            rebuilding: AtomicBool::new(false),
            updates_total: AtomicU64::new(0),
            batches_total: AtomicU64::new(0),
            rebuilds_total: AtomicU64::new(0),
            last_rebuild_rounds: AtomicU64::new(0),
            batch_latency: LatencyHistogram::new(),
        }
    }

    /// Stream name (also the prefix of its published label table).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stream's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.generation.read().epoch
    }

    /// Absorbs one batch of updates. Insertions are applied to the
    /// live generation immediately; deletions are tombstoned. Returns
    /// whether a rebuild trigger was crossed — feeding never rebuilds
    /// by itself, so the caller stays in charge of scheduling.
    pub fn feed(&self, ops: &[EdgeOp]) -> FeedSummary {
        let started = Instant::now();
        // Log lock before generation read: see the module docs — this
        // is what makes feeds atomic with respect to epoch swaps.
        let mut log = self.log.lock();
        let generation = self.generation.read().clone();
        let mut applied = 0usize;
        for &op in ops {
            match op {
                EdgeOp::Add(u, v) => {
                    let key = norm(u, v);
                    log.seq += 1;
                    let seq = log.seq;
                    log.live.insert(key, seq);
                    // Re-inserting a tombstoned edge revalidates the
                    // merge the old generation still carries.
                    log.dead.remove(&key);
                    log.vertices.insert(u);
                    log.vertices.insert(v);
                    generation.union(u, v);
                    applied += 1;
                }
                EdgeOp::Del(u, v) => {
                    let key = norm(u, v);
                    if log.live.remove(&key).is_some() {
                        log.seq += 1;
                        let seq = log.seq;
                        log.dead.insert(key, (seq, Instant::now()));
                        applied += 1;
                    }
                }
            }
        }
        let needs_rebuild = self.rebuild_due(&log, &generation);
        drop(log);
        self.updates_total.fetch_add(applied as u64, Ordering::Relaxed);
        self.batches_total.fetch_add(1, Ordering::Relaxed);
        self.batch_latency
            .record(started.elapsed().as_nanos() as u64);
        FeedSummary { applied, epoch: generation.epoch, needs_rebuild }
    }

    /// Component label of `v` in the current generation, with the
    /// epoch it came from. Lock-free on the union–find; `None` when
    /// `v` has never been streamed.
    pub fn component(&self, v: u64) -> Option<(u64, u64)> {
        let generation = self.generation.read().clone();
        generation.component(v).map(|label| (label, generation.epoch))
    }

    /// The current generation's complete `(v, label)` map. Intended
    /// for tests and small streams — it scans every vertex.
    pub fn labelling(&self) -> HashMap<u64, u64> {
        self.generation.read().labelling()
    }

    /// True when a rebuild trigger has been crossed.
    pub fn needs_rebuild(&self) -> bool {
        let log = self.log.lock();
        let generation = self.generation.read().clone();
        self.rebuild_due(&log, &generation)
    }

    fn rebuild_due(&self, log: &EdgeLog, generation: &Generation) -> bool {
        if log.dead.len() >= self.config.max_tombstones {
            return true;
        }
        if self.oldest_tombstone(log) >= self.config.staleness_budget {
            return true;
        }
        generation.uf.max_rank() > self.config.max_rank
    }

    fn oldest_tombstone(&self, log: &EdgeLog) -> Duration {
        log.dead
            .values()
            .map(|&(_, at)| at.elapsed())
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Point-in-time stream summary.
    pub fn status(&self) -> StreamStatus {
        let log = self.log.lock();
        let generation = self.generation.read().clone();
        let needs_rebuild = self.rebuild_due(&log, &generation);
        let status = StreamStatus {
            name: self.name.clone(),
            epoch: generation.epoch,
            vertices: log.vertices.len(),
            live_edges: log.live.len(),
            tombstones: log.dead.len(),
            staleness: self.oldest_tombstone(&log),
            components: generation.uf.set_count(),
            max_rank: generation.uf.max_rank(),
            updates_total: self.updates_total.load(Ordering::Relaxed),
            batches_total: self.batches_total.load(Ordering::Relaxed),
            rebuilds_total: self.rebuilds_total.load(Ordering::Relaxed),
            last_rebuild_rounds: self.last_rebuild_rounds.load(Ordering::Relaxed),
            needs_rebuild,
            rebuilding: self.rebuilding.load(Ordering::Acquire),
            batch_latency: self.batch_latency.snapshot(),
        };
        drop(log);
        status
    }

    /// Rebuilds the labelling from scratch through the SQL engine and
    /// atomically publishes the result as the next epoch.
    ///
    /// The live edge set is snapshotted at a log sequence number, run
    /// through the paper's Randomised Contraction (so the rebuild is a
    /// first-class engine job: it shows up in round telemetry, honours
    /// `ctrl`'s cancellation, and rides the same retry machinery as
    /// any query), and the resulting `(v, r)` labels are published to
    /// the `{name}_labels` table via the engine's atomic
    /// `replace_table` swap. Updates that arrive *during* the rebuild
    /// are replayed from the log into the new generation before the
    /// epoch pointer swings, and tombstones covered by the snapshot
    /// are compacted away — only then, so a failed rebuild leaves both
    /// the old generation and the full tombstone log intact.
    ///
    /// Errors when a rebuild is already in flight.
    pub fn rebuild(
        &self,
        db: &dyn SqlEngine,
        ctrl: &RunControl<'_>,
    ) -> DbResult<RebuildReport> {
        if self.rebuilding.swap(true, Ordering::AcqRel) {
            return Err(DbError::Exec(format!(
                "stream {:?}: rebuild already in progress",
                self.name
            )));
        }
        let _latch = ResetOnDrop(&self.rebuilding);

        // Snapshot: everything at or below `snap_seq` goes through the
        // engine; everything above is replayed at publish time.
        let (snap_seq, old_epoch, edges, vertices) = {
            let log = self.log.lock();
            let edges: Vec<(u64, u64)> = log.live.keys().copied().collect();
            let vertices: Vec<u64> = log.vertices.iter().copied().collect();
            (log.seq, self.generation.read().epoch, edges, vertices)
        };

        let next = Generation::empty(old_epoch + 1, self.config.capacity);
        let mut rounds = 0usize;
        let mut round_sizes = Vec::new();
        let mut label_table = None;
        if vertices.is_empty() {
            // Nothing to label; skip the engine entirely.
        } else {
            let input = format!("{}_rcin", self.name);
            let published = format!("{}_labels", self.name);
            drop_if_exists(db, &[&input]);
            // Live edges plus a loop edge per vertex: the paper's
            // convention for keeping isolated vertices in the output.
            let mut rows: Vec<(i64, i64)> = edges
                .iter()
                .map(|&(u, v)| (u as i64, v as i64))
                .collect();
            rows.extend(vertices.iter().map(|&v| (v as i64, v as i64)));
            db.load_pairs(&input, "v1", "v2", &rows)?;
            let seed = self.config.seed.wrapping_add(old_epoch);
            let outcome =
                RandomisedContraction::paper().run_controlled(db, &input, seed, ctrl)?;
            let labels = db.scan_pairs(&outcome.result_table)?;
            db.replace_table(&outcome.result_table, &published)?;
            let _ = db.drop_table(&input);
            // The `r` column is a component representative in the
            // algorithm's own label domain (a finite-field value, not
            // necessarily a vertex id), so it must never enter the
            // interner: group rows by `r` and union each group's
            // vertices onto the first one seen.
            let mut group_anchor: HashMap<i64, u64> = HashMap::new();
            for &(v, r) in &labels {
                let v = v as u64;
                match group_anchor.entry(r) {
                    std::collections::hash_map::Entry::Occupied(anchor) => {
                        next.union(v, *anchor.get());
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        next.intern(v);
                        slot.insert(v);
                    }
                }
            }
            rounds = outcome.rounds;
            round_sizes = outcome.round_sizes;
            label_table = Some(published);
        }

        // Publish: compact tombstones the snapshot covered, replay the
        // suffix that raced the engine run, then swing the epoch — all
        // under the log lock so no feed lands astride the swap.
        let mut log = self.log.lock();
        log.dead.retain(|_, &mut (seq, _)| seq > snap_seq);
        for (&(u, v), &seq) in &log.live {
            if seq > snap_seq {
                next.union(u, v);
            }
        }
        // A post-snapshot insert that was deleted again is still an
        // insert the new labels must reflect; its deletion survives
        // above as a tombstone for the *next* rebuild.
        for (&(u, v), &(seq, _)) in &log.dead {
            if seq > snap_seq {
                next.union(u, v);
            }
        }
        let epoch = next.epoch;
        *self.generation.write() = Arc::new(next);
        drop(log);

        self.rebuilds_total.fetch_add(1, Ordering::Relaxed);
        self.last_rebuild_rounds
            .store(rounds as u64, Ordering::Relaxed);
        Ok(RebuildReport {
            epoch,
            rounds,
            round_sizes,
            vertices: vertices.len(),
            edges: edges.len(),
            label_table,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incc_mppdb::{Cluster, ClusterConfig};

    fn cluster() -> Arc<Cluster> {
        Arc::new(Cluster::new(ClusterConfig::default()))
    }

    #[test]
    fn inserts_merge_immediately_without_the_engine() {
        let cc = IncrementalCc::new("s", StreamConfig::default());
        let s = cc.feed(&[EdgeOp::Add(1, 2), EdgeOp::Add(2, 3), EdgeOp::Add(10, 11)]);
        assert_eq!(s.applied, 3);
        assert_eq!(s.epoch, 0);
        assert_eq!(cc.component(1).unwrap().0, cc.component(3).unwrap().0);
        assert_ne!(cc.component(1).unwrap().0, cc.component(10).unwrap().0);
        assert!(cc.component(99).is_none());
    }

    #[test]
    fn deletes_tombstone_and_trip_the_count_trigger() {
        let config = StreamConfig { max_tombstones: 2, ..StreamConfig::default() };
        let cc = IncrementalCc::new("s", config);
        cc.feed(&[EdgeOp::Add(1, 2), EdgeOp::Add(3, 4), EdgeOp::Add(5, 6)]);
        let s = cc.feed(&[EdgeOp::Del(1, 2)]);
        assert!(!s.needs_rebuild);
        // Labels are stale (still merged) until a rebuild.
        assert_eq!(cc.component(1).unwrap().0, cc.component(2).unwrap().0);
        let s = cc.feed(&[EdgeOp::Del(3, 4)]);
        assert!(s.needs_rebuild);
        // Deleting an absent edge is a no-op.
        let s = cc.feed(&[EdgeOp::Del(100, 200)]);
        assert_eq!(s.applied, 0);
    }

    #[test]
    fn readding_a_tombstoned_edge_cancels_the_tombstone() {
        let cc = IncrementalCc::new("s", StreamConfig::default());
        cc.feed(&[EdgeOp::Add(1, 2)]);
        cc.feed(&[EdgeOp::Del(1, 2)]);
        assert_eq!(cc.status().tombstones, 1);
        cc.feed(&[EdgeOp::Add(2, 1)]);
        assert_eq!(cc.status().tombstones, 0);
        assert_eq!(cc.status().live_edges, 1);
    }

    #[test]
    fn rebuild_splits_deleted_components_and_bumps_the_epoch() {
        let db = cluster();
        let cc = IncrementalCc::new("s", StreamConfig::default());
        cc.feed(&[EdgeOp::Add(1, 2), EdgeOp::Add(2, 3), EdgeOp::Add(3, 4)]);
        cc.feed(&[EdgeOp::Del(2, 3)]);
        assert_eq!(cc.component(1).unwrap().0, cc.component(4).unwrap().0);
        let report = cc.rebuild(db.as_ref(), &RunControl::default()).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.edges, 2);
        assert_eq!(report.vertices, 4);
        assert!(report.rounds >= 1);
        assert_eq!(report.label_table.as_deref(), Some("s_labels"));
        assert_ne!(cc.component(1).unwrap().0, cc.component(4).unwrap().0);
        assert_eq!(cc.component(1).unwrap().0, cc.component(2).unwrap().0);
        assert_eq!(cc.component(1).unwrap().1, 1, "answers carry the new epoch");
        // The label table is queryable through SQL afterwards.
        assert_eq!(db.row_count("s_labels").unwrap(), 4);
        // Tombstone compacted; no rebuild due any more.
        let st = cc.status();
        assert_eq!(st.tombstones, 0);
        assert!(!st.needs_rebuild);
        assert_eq!(st.rebuilds_total, 1);
        assert_eq!(st.components, 2);
    }

    #[test]
    fn rebuild_of_an_empty_stream_skips_the_engine() {
        let db = cluster();
        let cc = IncrementalCc::new("empty", StreamConfig::default());
        let report = cc.rebuild(db.as_ref(), &RunControl::default()).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.rounds, 0);
        assert!(report.label_table.is_none());
        assert!(db.row_count("empty_labels").is_err());
    }

    #[test]
    fn deleted_vertices_stay_queryable_as_isolated() {
        let db = cluster();
        let cc = IncrementalCc::new("s", StreamConfig::default());
        cc.feed(&[EdgeOp::Add(7, 8)]);
        cc.feed(&[EdgeOp::Del(7, 8)]);
        cc.rebuild(db.as_ref(), &RunControl::default()).unwrap();
        let (l7, _) = cc.component(7).unwrap();
        let (l8, _) = cc.component(8).unwrap();
        assert_ne!(l7, l8, "vertices survive their last edge, isolated");
    }

    #[test]
    fn feeds_racing_a_rebuild_survive_the_epoch_swap() {
        // Deterministic version of the race: snapshot happens, more
        // feeds land, then publish replays them.
        let db = cluster();
        let cc = IncrementalCc::new("s", StreamConfig::default());
        cc.feed(&[EdgeOp::Add(1, 2)]);
        // Feed concurrently with the rebuild from another thread; the
        // lock ordering guarantees no update is lost either way.
        std::thread::scope(|s| {
            let cc = &cc;
            s.spawn(move || {
                for i in 0..50u64 {
                    cc.feed(&[EdgeOp::Add(100 + i, 101 + i)]);
                }
            });
            cc.rebuild(db.as_ref(), &RunControl::default()).unwrap();
        });
        assert_eq!(cc.epoch(), 1);
        // Every fed edge is reflected in the new generation.
        for i in 0..50u64 {
            assert_eq!(
                cc.component(100 + i).unwrap().0,
                cc.component(101 + i).unwrap().0,
                "edge {i} lost across the epoch swap"
            );
        }
    }

    #[test]
    fn staleness_budget_trigger_fires_on_old_tombstones() {
        let config = StreamConfig {
            staleness_budget: Duration::from_millis(1),
            ..StreamConfig::default()
        };
        let cc = IncrementalCc::new("s", config);
        cc.feed(&[EdgeOp::Add(1, 2)]);
        cc.feed(&[EdgeOp::Del(1, 2)]);
        std::thread::sleep(Duration::from_millis(5));
        assert!(cc.needs_rebuild());
        assert!(cc.status().staleness >= Duration::from_millis(1));
    }

    #[test]
    fn concurrent_rebuilds_are_refused() {
        let cc = IncrementalCc::new("s", StreamConfig::default());
        cc.rebuilding.store(true, Ordering::Release);
        let db = cluster();
        assert!(cc.rebuild(db.as_ref(), &RunControl::default()).is_err());
        cc.rebuilding.store(false, Ordering::Release);
        assert!(cc.rebuild(db.as_ref(), &RunControl::default()).is_ok());
    }
}
