//! Incremental connected-components maintenance under streaming edge
//! updates.
//!
//! The paper computes connected components as a *batch* job: load an
//! edge table, run Randomised Contraction, read the labels. This crate
//! adds the subsystem the paper's Section VII sketches as future work
//! — keeping those labels **live** while edges stream in and out —
//! without giving up the in-database batch algorithm as the source of
//! truth:
//!
//! * [`IncrementalCc`] absorbs `Add`/`Del` batches. Insertions apply
//!   immediately as CAS unions in a concurrent union–find
//!   ([`AtomicUf`]); deletions are tombstoned and deferred. Labels are
//!   at most a configured *staleness budget* behind the truth.
//! * When the budget trips, a **rebuild** reruns the paper's
//!   contraction through any [`incc_mppdb::SqlEngine`] over the
//!   surviving edges, publishes the `(v, r)` labels as a SQL table via
//!   the engine's atomic `replace_table` swap, and swings an epoch
//!   pointer — readers of the old epoch are never blocked and a failed
//!   rebuild changes nothing.
//! * [`NaiveRerun`] is the baseline the bench compares against: a full
//!   engine rerun per batch.
//!
//! The service layer wires this up as `\stream open|feed|component|
//! stats` verbs with rebuilds scheduled as ordinary jobs; see the
//! `incc-service` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inc;
mod naive;
mod uf;

pub use inc::{
    EdgeOp, FeedSummary, IncrementalCc, RebuildReport, StreamConfig, StreamStatus,
};
pub use naive::NaiveRerun;
pub use uf::AtomicUf;
