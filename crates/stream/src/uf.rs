//! A concurrent, lock-free union–find over dense `u32` ids.
//!
//! This is the in-memory half of the incremental maintainer: edge
//! insertions become CAS unions, and `component` point lookups become
//! wait-free-in-practice finds with path halving, so readers never
//! block behind a feeder thread. The structure is grow-only — ids are
//! appended, never removed — because deletions are handled one level
//! up by the tombstone log and epoch rebuilds ([`crate::inc`]).
//!
//! Storage is chunked: a fixed array of lazily initialised chunks of
//! `CHUNK` slots each. Appending a chunk never moves existing slots,
//! so concurrent `find`/`union` calls on already-published ids stay
//! valid while the structure grows — the standard trick for lock-free
//! growable arrays, done here with [`OnceLock`] to stay inside safe
//! Rust.
//!
//! The union is union-by-rank with the rank bump applied after a
//! successful link (`fetch_max`), as in wait-free union–find designs:
//! ranks may lag by a race, which costs at most a constant in path
//! length and never affects which vertices end up connected.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// log2 of the slots per chunk.
const CHUNK_BITS: usize = 12;
/// Slots per storage chunk.
const CHUNK: usize = 1 << CHUNK_BITS;

/// One vertex: its parent pointer and its (root) rank.
#[derive(Debug)]
struct Slot {
    parent: AtomicU32,
    rank: AtomicU32,
}

/// A concurrent union–find: CAS union-by-rank, path-halving finds,
/// lock-free appends. See the module docs for the design.
#[derive(Debug)]
pub struct AtomicUf {
    chunks: Box<[OnceLock<Box<[Slot]>>]>,
    len: AtomicU32,
    max_rank: AtomicU32,
}

impl AtomicUf {
    /// An empty structure able to hold up to [`AtomicUf::capacity`]
    /// vertices (default: 2^22, ~4M — capacity costs one `OnceLock`
    /// per 4096 ids, not per id).
    pub fn new() -> AtomicUf {
        AtomicUf::with_capacity(1 << 22)
    }

    /// An empty structure with room for at least `cap` vertices.
    pub fn with_capacity(cap: usize) -> AtomicUf {
        let chunks = cap.div_ceil(CHUNK).max(1);
        let chunks = (0..chunks).map(|_| OnceLock::new()).collect();
        AtomicUf { chunks, len: AtomicU32::new(0), max_rank: AtomicU32::new(0) }
    }

    /// Maximum number of vertices this structure can hold.
    pub fn capacity(&self) -> usize {
        self.chunks.len() * CHUNK
    }

    /// Number of vertices appended so far.
    pub fn len(&self) -> u32 {
        self.len.load(Ordering::Acquire)
    }

    /// True when no vertex has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn slot(&self, x: u32) -> &Slot {
        let chunk = (x as usize) >> CHUNK_BITS;
        let within = (x as usize) & (CHUNK - 1);
        let chunk = self.chunks[chunk].get_or_init(|| {
            let base = (chunk as u32) << CHUNK_BITS;
            (0..CHUNK as u32)
                .map(|i| Slot {
                    parent: AtomicU32::new(base + i),
                    rank: AtomicU32::new(0),
                })
                .collect()
        });
        &chunk[within]
    }

    /// Appends one singleton vertex and returns its id.
    ///
    /// Slots are pre-initialised to singletons when their chunk is
    /// created, so the append is a single `fetch_add`; ids at or above
    /// [`AtomicUf::len`] are simply not handed out yet. Panics when
    /// capacity is exhausted.
    pub fn push(&self) -> u32 {
        let id = self.len.fetch_add(1, Ordering::AcqRel);
        assert!(
            (id as usize) < self.capacity(),
            "AtomicUf capacity {} exhausted",
            self.capacity()
        );
        // Touch the slot so the chunk exists before the id escapes.
        let _ = self.slot(id);
        id
    }

    /// The representative of `x`'s set, halving the path as it walks:
    /// each step tries to swing `x`'s parent pointer to its
    /// grandparent with a CAS, which keeps trees flat under concurrent
    /// use without ever taking a lock.
    pub fn find(&self, mut x: u32) -> u32 {
        loop {
            let p = self.slot(x).parent.load(Ordering::Acquire);
            if p == x {
                return x;
            }
            let gp = self.slot(p).parent.load(Ordering::Acquire);
            if p == gp {
                return p;
            }
            let _ = self.slot(x).parent.compare_exchange_weak(
                p,
                gp,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
            x = gp;
        }
    }

    /// Current rank of `x`'s slot (meaningful at roots).
    fn rank(&self, x: u32) -> u32 {
        self.slot(x).rank.load(Ordering::Acquire)
    }

    /// Unions the sets of `a` and `b`; returns `true` when they were
    /// previously disjoint. Lock-free: the link is a single CAS on the
    /// loser root's parent pointer, retried from fresh finds when a
    /// concurrent union got there first.
    pub fn union(&self, a: u32, b: u32) -> bool {
        loop {
            let mut x = self.find(a);
            let mut y = self.find(b);
            if x == y {
                return false;
            }
            let mut rx = self.rank(x);
            let mut ry = self.rank(y);
            // Link the lower-ranked root under the higher; break rank
            // ties by id so concurrent unions agree on a direction.
            if rx > ry || (rx == ry && x < y) {
                std::mem::swap(&mut x, &mut y);
                std::mem::swap(&mut rx, &mut ry);
            }
            if self
                .slot(x)
                .parent
                .compare_exchange(x, y, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                if rx == ry {
                    let bumped = rx + 1;
                    self.slot(y).rank.fetch_max(bumped, Ordering::AcqRel);
                    self.max_rank.fetch_max(bumped, Ordering::AcqRel);
                }
                return true;
            }
        }
    }

    /// True when `a` and `b` are currently in the same set. Uses the
    /// standard concurrent check: two finds agree, or the first root
    /// is confirmed still a root (in which case the sets really were
    /// distinct at that instant).
    pub fn same(&self, a: u32, b: u32) -> bool {
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return true;
            }
            if self.slot(ra).parent.load(Ordering::Acquire) == ra {
                return false;
            }
        }
    }

    /// Highest rank ever produced — a cheap proxy for tree depth that
    /// the maintainer uses as one of its rebuild triggers.
    pub fn max_rank(&self) -> u32 {
        self.max_rank.load(Ordering::Acquire)
    }

    /// Number of disjoint sets among the appended ids. A full scan —
    /// meant for stats and tests, not hot paths.
    pub fn set_count(&self) -> usize {
        let n = self.len();
        (0..n)
            .filter(|&x| self.slot(x).parent.load(Ordering::Acquire) == x)
            .count()
    }

    /// The representative of every appended id, in id order. A
    /// consistent labelling only when unions are quiescent.
    pub fn labels(&self) -> Vec<u32> {
        (0..self.len()).map(|x| self.find(x)).collect()
    }
}

impl Default for AtomicUf {
    fn default() -> AtomicUf {
        AtomicUf::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn singletons_and_basic_unions() {
        let uf = AtomicUf::with_capacity(8);
        let a = uf.push();
        let b = uf.push();
        let c = uf.push();
        assert_eq!(uf.len(), 3);
        assert!(!uf.same(a, b));
        assert!(uf.union(a, b));
        assert!(!uf.union(a, b));
        assert!(uf.same(a, b));
        assert!(!uf.same(a, c));
        assert!(uf.union(b, c));
        assert!(uf.same(a, c));
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn capacity_grows_in_chunks_without_moving_ids() {
        let uf = AtomicUf::with_capacity(3 * CHUNK);
        assert_eq!(uf.capacity(), 3 * CHUNK);
        for _ in 0..(CHUNK + 2) {
            uf.push();
        }
        // Ids straddling the chunk boundary still union fine.
        assert!(uf.union(0, CHUNK as u32 + 1));
        assert!(uf.same(0, CHUNK as u32 + 1));
    }

    #[test]
    fn ranks_stay_logarithmic_under_pairwise_merging() {
        let uf = AtomicUf::with_capacity(1024);
        for _ in 0..1024 {
            uf.push();
        }
        // Binary-tournament merge: the worst case for rank growth.
        let mut stride = 1u32;
        while stride < 1024 {
            for base in (0..1024).step_by(2 * stride as usize) {
                uf.union(base, base + stride);
            }
            stride *= 2;
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.max_rank() <= 10, "rank {} > log2(n)", uf.max_rank());
    }

    #[test]
    fn concurrent_unions_agree_with_sequential_result() {
        // 4 threads union a ring of 4096 vertices in interleaved
        // slices; afterwards everything must be one component and the
        // structure internally consistent.
        let uf = Arc::new(AtomicUf::with_capacity(4096));
        for _ in 0..4096 {
            uf.push();
        }
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let uf = Arc::clone(&uf);
                s.spawn(move || {
                    let mut i = t;
                    while i < 4096 {
                        uf.union(i, (i + 1) % 4096);
                        i += 4;
                    }
                });
            }
        });
        assert_eq!(uf.set_count(), 1);
        let root = uf.find(0);
        for x in 0..4096 {
            assert_eq!(uf.find(x), root);
        }
    }

    #[test]
    fn concurrent_finds_during_unions_return_valid_roots() {
        let uf = Arc::new(AtomicUf::with_capacity(2048));
        for _ in 0..2048 {
            uf.push();
        }
        std::thread::scope(|s| {
            let w = Arc::clone(&uf);
            s.spawn(move || {
                for i in 0..2047u32 {
                    w.union(i, i + 1);
                }
            });
            for _ in 0..2 {
                let r = Arc::clone(&uf);
                s.spawn(move || {
                    for i in 0..2048u32 {
                        let root = r.find(i);
                        // A returned root is always a live id.
                        assert!(root < 2048);
                    }
                });
            }
        });
        assert_eq!(uf.set_count(), 1);
    }
}
