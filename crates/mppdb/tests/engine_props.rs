//! Property tests pitting the distributed engine against naive
//! single-threaded reference implementations: whatever the partitioning,
//! exchange placement and fast paths do, the relational semantics must
//! be exactly those of the obvious nested-loop/sort evaluation.

use incc_mppdb::{Cluster, ClusterConfig, Datum, ExecutionProfile};
use proptest::prelude::*;
use std::collections::HashMap;

/// A small random table: rows of (key, value) with keys drawn from a
/// narrow domain so joins and groups actually collide.
fn arb_table() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((-8i64..8, -100i64..100), 0..40)
}

fn load(db: &Cluster, name: &str, rows: &[(i64, i64)]) {
    db.load_pairs(name, "k", "x", rows).unwrap();
}

fn sorted(mut rows: Vec<Vec<i64>>) -> Vec<Vec<i64>> {
    rows.sort();
    rows
}

fn query_ints(db: &Cluster, sql: &str) -> Vec<Vec<i64>> {
    db.query(sql)
        .unwrap()
        .into_iter()
        .map(|r| r.into_iter().map(|d| d.as_int().expect("int")).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Inner equi-join == nested loop join, under both profiles.
    #[test]
    fn join_matches_nested_loop(a in arb_table(), b in arb_table(), external: bool) {
        let profile = if external {
            ExecutionProfile::External
        } else {
            ExecutionProfile::Colocated
        };
        let db = Cluster::new(ClusterConfig { segments: 4, profile, ..Default::default() });
        load(&db, "a", &a);
        load(&db, "b", &b);
        let got = sorted(query_ints(
            &db,
            "select a.k, a.x, b.x from a, b where a.k = b.k",
        ));
        let mut expect = Vec::new();
        for &(ka, xa) in &a {
            for &(kb, xb) in &b {
                if ka == kb {
                    expect.push(vec![ka, xa, xb]);
                }
            }
        }
        prop_assert_eq!(got, sorted(expect));
    }

    /// Left outer join == nested loop + null padding (checked on the
    /// count of padded rows; values carry NULL so they leave the int
    /// domain).
    #[test]
    fn left_join_pads_unmatched(a in arb_table(), b in arb_table()) {
        let db = Cluster::new(ClusterConfig { segments: 4, ..Default::default() });
        load(&db, "a", &a);
        load(&db, "b", &b);
        let rows = db
            .query("select a.k, b.x from a left outer join b on (a.k = b.k)")
            .unwrap();
        let match_count: usize = a
            .iter()
            .map(|&(ka, _)| b.iter().filter(|&&(kb, _)| ka == kb).count().max(1))
            .sum();
        prop_assert_eq!(rows.len(), match_count);
        let nulls = rows.iter().filter(|r| r[1].is_null()).count();
        let unmatched = a
            .iter()
            .filter(|&&(ka, _)| !b.iter().any(|&(kb, _)| ka == kb))
            .count();
        prop_assert_eq!(nulls, unmatched);
    }

    /// GROUP BY min/max/count/sum == HashMap fold.
    #[test]
    fn aggregate_matches_fold(a in arb_table()) {
        let db = Cluster::new(ClusterConfig { segments: 4, ..Default::default() });
        load(&db, "a", &a);
        let got = sorted(query_ints(
            &db,
            "select k, min(x), max(x), count(*), sum(x) from a group by k",
        ));
        let mut folds: HashMap<i64, (i64, i64, i64, i64)> = HashMap::new();
        for &(k, x) in &a {
            let e = folds.entry(k).or_insert((i64::MAX, i64::MIN, 0, 0));
            e.0 = e.0.min(x);
            e.1 = e.1.max(x);
            e.2 += 1;
            e.3 += x;
        }
        let expect: Vec<Vec<i64>> = folds
            .into_iter()
            .map(|(k, (mn, mx, c, s))| vec![k, mn, mx, c, s])
            .collect();
        prop_assert_eq!(got, sorted(expect));
    }

    /// DISTINCT == set dedup, regardless of partitioning.
    #[test]
    fn distinct_matches_set(a in arb_table(), external: bool) {
        let profile = if external {
            ExecutionProfile::External
        } else {
            ExecutionProfile::Colocated
        };
        let db = Cluster::new(ClusterConfig { segments: 4, profile, ..Default::default() });
        load(&db, "a", &a);
        let got = sorted(query_ints(&db, "select distinct k, x from a"));
        let mut set: Vec<Vec<i64>> = a
            .iter()
            .map(|&(k, x)| vec![k, x])
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        set.sort();
        prop_assert_eq!(got, set);
    }

    /// Filters: the engine's WHERE equals the predicate applied in Rust.
    #[test]
    fn filter_matches_predicate(a in arb_table(), threshold in -100i64..100) {
        let db = Cluster::new(ClusterConfig { segments: 4, ..Default::default() });
        load(&db, "a", &a);
        let got = sorted(query_ints(&db, &format!(
            "select k, x from a where x >= {threshold} and k != 0"
        )));
        let expect: Vec<Vec<i64>> = a
            .iter()
            .filter(|&&(k, x)| x >= threshold && k != 0)
            .map(|&(k, x)| vec![k, x])
            .collect();
        prop_assert_eq!(got, sorted(expect));
    }

    /// ORDER BY really sorts, and LIMIT takes a prefix of that order.
    #[test]
    fn order_by_sorts(a in arb_table(), limit in 0usize..20) {
        let db = Cluster::new(ClusterConfig { segments: 4, ..Default::default() });
        load(&db, "a", &a);
        let rows = query_ints(&db, &format!(
            "select k, x from a order by k, x desc limit {limit}"
        ));
        prop_assert!(rows.len() <= limit.min(a.len()));
        for w in rows.windows(2) {
            prop_assert!(
                w[0][0] < w[1][0] || (w[0][0] == w[1][0] && w[0][1] >= w[1][1]),
                "not sorted: {w:?}"
            );
        }
        // The full ordered result has all rows.
        let all = query_ints(&db, "select k, x from a order by k, x desc");
        prop_assert_eq!(all.len(), a.len());
    }

    /// The distribution/exchange machinery never changes the multiset
    /// of rows: a CTAS re-distributed by any column scans back the same.
    #[test]
    fn redistribution_preserves_rows(a in arb_table(), by_second: bool) {
        let db = Cluster::new(ClusterConfig { segments: 4, ..Default::default() });
        load(&db, "a", &a);
        let col = if by_second { "x" } else { "k" };
        db.run(&format!("create table moved as select k, x from a distributed by ({col})"))
            .unwrap();
        let mut got = db.scan_pairs("moved").unwrap();
        let mut expect = a.clone();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}

#[test]
fn fast_and_slow_join_paths_agree_on_nulls() {
    // The int fast path must not engage when NULLs exist; verify the
    // NULL-key rows never match (SQL semantics).
    let db = Cluster::new(ClusterConfig::default());
    db.run(
        "create table a as select 1 as k, 10 as x union all select null as k, 20 as x",
    )
    .unwrap();
    db.run(
        "create table b as select 1 as k, 30 as x union all select null as k, 40 as x",
    )
    .unwrap();
    let rows = db.query("select a.x, b.x from a, b where a.k = b.k").unwrap();
    assert_eq!(rows, vec![vec![Datum::Int(10), Datum::Int(30)]]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The optimizer must be semantically invisible: any query of this
    /// family returns identical rows with it on and off.
    #[test]
    fn optimizer_preserves_semantics(
        a in arb_table(),
        b in arb_table(),
        threshold in -50i64..50,
        outer: bool,
    ) {
        let run = |optimize: bool| {
            let db = Cluster::new(ClusterConfig {
                segments: 4,
                optimize,
                ..Default::default()
            });
            load(&db, "a", &a);
            load(&db, "b", &b);
            let sql = if outer {
                format!(
                    "select a.k, a.x, b.x from a left outer join b on (a.k = b.k) \
                     where a.x >= {threshold} and 1 = 1"
                )
            } else {
                format!(
                    "select a.k, a.x, b.x from a, b \
                     where a.k = b.k and a.x >= {threshold} and b.x < 90 and 2 > 1"
                )
            };
            let mut rows: Vec<Vec<String>> = db
                .query(&sql)
                .unwrap()
                .into_iter()
                .map(|r| r.into_iter().map(|d| d.to_string()).collect())
                .collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(run(true), run(false));
    }
}
