//! Property tests pinning the push-based pipelined executor to the
//! materializing oracle: two clusters run the same statements over the
//! same random tables — one with `pipelined: true` (the default), one
//! with `pipelined: false` (the per-operator materializing path kept
//! as the correctness oracle) — and every result must be
//! row-set-identical. Tables mix NULL keys, duplicate keys, and key
//! domains narrow enough that some of the 4 segments end up empty, so
//! the pipelines see empty partitions, skewed partitions, and
//! all-NULL morsels.

use incc_mppdb::{Cluster, ClusterConfig, Datum};
use proptest::prelude::*;

type Rows = Vec<(Option<i64>, Option<i64>)>;

/// ~1 in 4 values is NULL; the rest collide heavily.
fn arb_nullable() -> impl Strategy<Value = Option<i64>> {
    prop_oneof![
        (-6i64..6).prop_map(Some),
        (-6i64..6).prop_map(Some),
        (-6i64..6).prop_map(Some),
        Just(None),
    ]
}

fn arb_table() -> impl Strategy<Value = Rows> {
    proptest::collection::vec((arb_nullable(), arb_nullable()), 0..40)
}

fn literal(v: Option<i64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

fn load(db: &Cluster, name: &str, rows: &Rows) {
    db.run(&format!("create table {name} (k bigint, x bigint)")).unwrap();
    if rows.is_empty() {
        return;
    }
    let values: Vec<String> = rows
        .iter()
        .map(|&(k, x)| format!("({}, {})", literal(k), literal(x)))
        .collect();
    db.run(&format!("insert into {name} values {}", values.join(", "))).unwrap();
}

/// A pipelined cluster and a materializing-oracle cluster with
/// otherwise identical configuration. `vectorized` is part of the
/// random input so the parity also holds across kernel tiers.
fn pair_of_clusters(vectorized: bool) -> (Cluster, Cluster) {
    let base = ClusterConfig { segments: 4, vectorized, ..Default::default() };
    let piped = Cluster::new(ClusterConfig { pipelined: true, ..base.clone() });
    let oracle = Cluster::new(ClusterConfig { pipelined: false, ..base });
    (piped, oracle)
}

/// Total order over the datums these tests produce (ints and NULLs),
/// so result multisets can be compared exactly.
fn sort_key(d: &Datum) -> (u8, i64) {
    match d {
        Datum::Null => (0, 0),
        Datum::Int(v) => (1, *v),
        Datum::Double(v) => (2, v.to_bits() as i64),
    }
}

fn sorted_rows(mut rows: Vec<Vec<Datum>>) -> Vec<Vec<Datum>> {
    rows.sort_by(|a, b| {
        let ka: Vec<_> = a.iter().map(sort_key).collect();
        let kb: Vec<_> = b.iter().map(sort_key).collect();
        ka.cmp(&kb)
    });
    rows
}

/// Runs `sql` on both clusters and asserts identical (sorted) results.
fn assert_parity(piped: &Cluster, oracle: &Cluster, sql: &str) {
    let streamed = sorted_rows(piped.query(sql).unwrap());
    let materialized = sorted_rows(oracle.query(sql).unwrap());
    assert_eq!(
        streamed, materialized,
        "pipelined executor diverged from materializing oracle on: {sql}"
    );
}

/// Query shapes the random-plan test draws from. Each stacks several
/// operators so a single statement exercises a multi-stage pipeline
/// (filter + project feeding a breaker, breaker output re-entering a
/// streaming chain, union of pipelines, joins on both sides of an
/// exchange).
const PLANS: &[&str] = &[
    // Streaming chain only: filter -> project.
    "select least(k, x) as lo, x from a where k > 0",
    // Filter under an aggregate (breaker fed by a streamed chain).
    "select k, count(*) as c, sum(x) as s, min(x) as lo, max(x) as hi \
     from a where x < 4 group by k",
    // Global aggregate over a filtered scan.
    "select count(*) as c, sum(k) as s, min(x) as lo, max(k) as hi from a where k != 1",
    // Distinct over a projected, filtered chain.
    "select distinct least(k, x) as lo from a where x is not null",
    // Inner join with an extra filter condition.
    "select a.k, a.x, b.x from a, b where a.k = b.k and a.x > -3",
    // Left outer join: NULL padding must match exactly.
    "select a.k, b.x from a left outer join b on (a.k = b.k)",
    // Join keyed off the non-distribution column: both sides exchange.
    "select a.x, b.k from a, b where a.x = b.x",
    // Aggregate over a join (two breakers stacked).
    "select a.k, count(*) as c, min(b.x) as lo from a, b where a.k = b.k group by a.k",
    // Union of two pipelines, one column-swapped, then distinct on top.
    "select distinct k, x from a union all select x, k from b",
    // Union inside a subquery feeding an aggregate.
    "select k, count(*) as c from \
     (select k, x from a union all select k, x from b) as u group by k",
    // Self-join: same source scanned by two pipelines.
    "select l.k, r.x from a as l, a as r where l.k = r.k and l.x < r.x",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized plans over random tables: every shape in `PLANS`
    /// must agree between the pipelined executor and the oracle, on
    /// whichever kernel tier the case drew.
    #[test]
    fn random_plans_match_materializing_oracle(
        a in arb_table(),
        b in arb_table(),
        vectorized in any::<bool>(),
    ) {
        let (piped, oracle) = pair_of_clusters(vectorized);
        for db in [&piped, &oracle] {
            load(db, "a", &a);
            load(db, "b", &b);
        }
        for sql in PLANS {
            assert_parity(&piped, &oracle, sql);
        }
    }

    /// CTAS with redistribution: rows must land on the same segments
    /// under both executors (a later colocated join silently skips its
    /// exchange only if placement agrees), and reading the table back
    /// must yield the same multiset.
    #[test]
    fn redistribution_matches_materializing_oracle(
        t in arb_table(),
        vectorized in any::<bool>(),
    ) {
        let (piped, oracle) = pair_of_clusters(vectorized);
        for db in [&piped, &oracle] {
            load(db, "t", &t);
            db.run("create table r as select k, x from t distributed by (x)").unwrap();
        }
        assert_parity(&piped, &oracle, "select k, x from r");
        assert_parity(&piped, &oracle, "select r.x, t.k from r, t where r.x = t.x");
    }

    /// Nondeterministic expressions: `random()` is seeded per query
    /// and offset by absolute row position, so morsel splitting in
    /// the pipelined path must not change which row draws which
    /// value. Compared through a deterministic reduction.
    #[test]
    fn random_expression_is_stable_across_executors(t in arb_table()) {
        let (piped, oracle) = pair_of_clusters(true);
        for db in [&piped, &oracle] {
            load(db, "t", &t);
        }
        assert_parity(
            &piped,
            &oracle,
            "select k, count(*) from t where random() < 0.5 group by k",
        );
    }
}
