//! Property tests for plan-cache coherence: random interleavings of
//! CTAS / DROP / INSERT with cached SELECTs across two sessions must
//! be indistinguishable from an engine with no cache at all. The
//! model is a shadow copy of each session's table contents; any stale
//! catalog read (a cached plan surviving a drop/recreate it should
//! not have) shows up as a wrong count or a wrong error.

use incc_mppdb::{Cluster, ClusterConfig, QueryOutput};
use proptest::prelude::*;
use std::sync::Arc;

/// Rows for the shared `base` table: narrow key domain so filters
/// select real subsets.
fn arb_base() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((-4i64..5, -50i64..50), 0..20)
}

/// An op stream: (session index, action, parameter). Actions:
/// 0 = CTAS `t` from `base`, 1 = DROP `t`, 2 = INSERT into `t`,
/// 3 = cached SELECT count over `t`.
fn arb_ops() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    proptest::collection::vec((0i64..2, 0i64..4, -4i64..5), 1..60)
}

fn scalar(out: QueryOutput) -> i64 {
    match out {
        QueryOutput::Rows(rows) => rows[0][0].as_int().expect("int scalar"),
        other => panic!("expected rows, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cached_selects_never_see_stale_catalog_state(
        base in arb_base(),
        ops in arb_ops(),
    ) {
        let cluster = Arc::new(Cluster::new(ClusterConfig {
            segments: 4,
            ..Default::default()
        }));
        cluster.load_pairs("base", "k", "x", &base).unwrap();
        let sessions = [cluster.session(), cluster.session()];
        // Shadow contents of each session's `t` (None = not created).
        let mut models: [Option<Vec<(i64, i64)>>; 2] = [None, None];
        for &(who, action, p) in &ops {
            let s = &sessions[who as usize];
            let model = &mut models[who as usize];
            match action {
                0 => {
                    // The CTAS itself is cacheable: repeated creations
                    // with different filter literals share a template.
                    let r = s.run(&format!(
                        "create table t as select k, x from base \
                         where k >= {p} distributed by (k)"
                    ));
                    if model.is_some() {
                        prop_assert!(r.is_err());
                    } else {
                        prop_assert!(r.is_ok());
                        *model = Some(
                            base.iter().copied().filter(|&(k, _)| k >= p).collect(),
                        );
                    }
                }
                1 => {
                    s.run("drop table if exists t").unwrap();
                    *model = None;
                }
                2 => {
                    let r = s.run(&format!("insert into t values ({p}, {})", p * 10));
                    match model {
                        Some(rows) => {
                            prop_assert!(r.is_ok());
                            rows.push((p, p * 10));
                        }
                        None => prop_assert!(r.is_err()),
                    }
                }
                _ => {
                    let r = s.run(&format!("select count(*) as n from t where k >= {p}"));
                    match model {
                        Some(rows) => {
                            let expect =
                                rows.iter().filter(|&&(k, _)| k >= p).count() as i64;
                            prop_assert_eq!(scalar(r.unwrap()), expect);
                        }
                        None => prop_assert!(r.is_err()),
                    }
                }
            }
        }
        for s in &sessions {
            s.close();
        }
        // Session close purged both sessions' cache keys; only shared
        // templates (none here reference surviving tables) may remain.
        prop_assert_eq!(cluster.plan_cache_stats().entries, 0);
    }
}

/// Deterministic companion: sessions do not poison each other's cache
/// entries — one session dropping *its* `t` must not invalidate (or
/// redirect) the other session's cached select over its own `t`.
#[test]
fn sessions_cache_independently() {
    let cluster = Arc::new(Cluster::new(ClusterConfig::default()));
    let (a, b) = (cluster.session(), cluster.session());
    a.run("create table t as select 1 as k union all select 2 as k")
        .unwrap();
    b.run("create table t as select 10 as k").unwrap();
    for _ in 0..3 {
        assert_eq!(scalar(a.run("select count(*) as n from t").unwrap()), 2);
        assert_eq!(scalar(b.run("select count(*) as n from t").unwrap()), 1);
    }
    let before = cluster.plan_cache_stats();
    assert!(before.hits >= 4, "repeat selects should hit: {before:?}");
    // b drops and recreates its t with a different shape; a's cached
    // plan still answers over a's unchanged table.
    b.run("drop table t").unwrap();
    assert!(b.run("select count(*) as n from t").is_err());
    b.run("create table t as select 5 as k union all select 6 as k union all select 7 as k")
        .unwrap();
    assert_eq!(scalar(b.run("select count(*) as n from t").unwrap()), 3);
    assert_eq!(scalar(a.run("select count(*) as n from t").unwrap()), 2);
    a.close();
    b.close();
}
