//! Regression tests for the cluster-owned segment worker pool: thread
//! accounting across many queries, result ordering, error and
//! cancellation propagation out of pool-executed partitions, and pool
//! reuse after failures.

use incc_mppdb::{Cluster, ClusterConfig, Datum, DbError};
use std::sync::atomic::Ordering;
use std::time::Duration;

fn cluster(segments: usize) -> Cluster {
    Cluster::new(ClusterConfig { segments, ..Default::default() })
}

/// OS threads in this process right now (Linux).
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").map(|d| d.count()).unwrap_or(0)
}

#[test]
fn pool_threads_are_created_once_and_reused_across_queries() {
    let db = cluster(4);
    // Warm up: the pool threads exist from Cluster::new, but run one
    // query so any lazy per-thread state is in place.
    db.load_pairs("e", "a", "b", &[(1, 2), (2, 3), (3, 4), (4, 1)]).unwrap();
    db.query("select count(*) as n from e").unwrap();
    let before = thread_count();
    assert!(before >= 4, "expected at least the 4 segment workers, saw {before}");
    for i in 0..10 {
        let rows = db
            .query("select e.a, count(*) as n from e, e as f where e.a = f.b group by e.a")
            .unwrap();
        assert!(!rows.is_empty(), "query {i} returned nothing");
    }
    let after = thread_count();
    assert_eq!(before, after, "thread count drifted across queries — pool not reused");
}

#[test]
fn results_keep_partition_order() {
    let db = cluster(8);
    // Values chosen so every segment holds rows; a full scan must
    // return the same multiset every time regardless of which worker
    // finishes first.
    let pairs: Vec<(i64, i64)> = (0..256).map(|i| (i, i * 3)).collect();
    db.load_pairs("t", "k", "x", &pairs).unwrap();
    let baseline = db.query("select k, x from t order by k").unwrap();
    assert_eq!(baseline.len(), 256);
    for _ in 0..5 {
        let again = db.query("select k, x from t order by k").unwrap();
        assert_eq!(baseline, again, "scan order unstable across pool runs");
    }
}

#[test]
fn errors_from_partition_tasks_surface_and_pool_survives() {
    let db = cluster(4);
    db.load_pairs("t", "k", "x", &[(1, 0), (2, 5)]).unwrap();
    // Division by zero inside a projected expression fails the
    // statement cleanly...
    let err = db.query("select k / x as q from t").unwrap_err();
    assert!(!err.to_string().is_empty());
    // ...and the pool keeps serving queries afterwards.
    let rows = db.query("select count(*) as n from t").unwrap();
    assert_eq!(rows, vec![vec![Datum::Int(2)]]);
}

#[test]
fn session_cancellation_stops_pool_partitions() {
    let db = std::sync::Arc::new(cluster(4));
    let session = db.session();
    let pairs: Vec<(i64, i64)> = (0..512).map(|i| (i % 50, i)).collect();
    session.run("create table t (k bigint, x bigint)").unwrap();
    db.load_pairs("t2", "k", "x", &pairs).unwrap();

    // Raise the flag first: the guard check at the start of every
    // pool-executed partition must abort the statement.
    session.cancel();
    let err = session
        .run("select a.k, count(*) as n from t2 as a, t2 as b where a.k = b.k group by a.k")
        .unwrap_err();
    assert!(matches!(err, DbError::Cancelled(_)), "got {err:?}");

    // The flag is sticky until cleared; afterwards the same session
    // and the same pool run the statement to completion.
    session.clear_interrupt();
    match session.run("select count(*) as n from t2").unwrap() {
        incc_mppdb::QueryOutput::Rows(rows) => {
            assert_eq!(rows, vec![vec![Datum::Int(512)]]);
        }
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn cancellation_mid_query_from_another_thread() {
    let db = std::sync::Arc::new(cluster(4));
    let session = db.session();
    // A skewed self-join big enough to take a while: 5 keys over 8000
    // rows gives ~12.8M join pairs.
    let pairs: Vec<(i64, i64)> = (0..8000).map(|i| (i % 5, i)).collect();
    db.load_pairs("big", "k", "x", &pairs).unwrap();
    let flag = session.cancel_flag();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        flag.store(true, Ordering::Relaxed);
    });
    // Either the statement finishes before the flag lands (fast
    // machine) or it must fail with Cancelled — never anything else.
    let outcome =
        session.run("select count(*) as n from big as a, big as b where a.k = b.k");
    canceller.join().unwrap();
    if let Err(e) = outcome {
        assert!(matches!(e, DbError::Cancelled(_)), "got {e:?}");
    }
}

#[test]
fn concurrent_sessions_share_one_pool() {
    let db = std::sync::Arc::new(cluster(4));
    db.load_pairs("t", "k", "x", &(0..64).map(|i| (i % 8, i)).collect::<Vec<_>>()).unwrap();
    db.query("select count(*) as n from t").unwrap();
    let before = thread_count();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let db = db.clone();
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let rows = db
                        .query("select k, sum(x) as s from t group by k")
                        .unwrap();
                    assert_eq!(rows.len(), 8);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let after = thread_count();
    assert_eq!(before, after, "concurrent queries spawned extra threads");
}
