//! Property tests pinning the vectorized i64 kernels to the generic
//! row-at-a-time path: two clusters run the same statements over the
//! same random tables — one with `vectorized: true`, one with
//! `vectorized: false` — and every result must be bit-identical. The
//! tables mix NULL keys, duplicate keys, and key domains narrow enough
//! that some of the 4 segments end up empty.

use incc_mppdb::{Cluster, ClusterConfig, Datum, OpKind};
use proptest::prelude::*;

type Rows = Vec<(Option<i64>, Option<i64>)>;

/// ~1 in 4 values is NULL; the rest collide heavily.
fn arb_nullable() -> impl Strategy<Value = Option<i64>> {
    prop_oneof![
        (-6i64..6).prop_map(Some),
        (-6i64..6).prop_map(Some),
        (-6i64..6).prop_map(Some),
        Just(None),
    ]
}

fn arb_table() -> impl Strategy<Value = Rows> {
    proptest::collection::vec((arb_nullable(), arb_nullable()), 0..40)
}

fn literal(v: Option<i64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

/// Creates `name(k bigint, x bigint)` and inserts `rows` (NULLs and
/// all). Empty row sets exercise fully empty tables.
fn load(db: &Cluster, name: &str, rows: &Rows) {
    db.run(&format!("create table {name} (k bigint, x bigint)")).unwrap();
    if rows.is_empty() {
        return;
    }
    let values: Vec<String> = rows
        .iter()
        .map(|&(k, x)| format!("({}, {})", literal(k), literal(x)))
        .collect();
    db.run(&format!("insert into {name} values {}", values.join(", "))).unwrap();
}

fn pair_of_clusters() -> (Cluster, Cluster) {
    let base = ClusterConfig { segments: 4, ..Default::default() };
    let vec_db = Cluster::new(ClusterConfig { vectorized: true, ..base.clone() });
    let gen_db = Cluster::new(ClusterConfig { vectorized: false, ..base });
    (vec_db, gen_db)
}

/// Total order over the datums these tests produce (ints and NULLs),
/// so result multisets can be compared exactly.
fn sort_key(d: &Datum) -> (u8, i64) {
    match d {
        Datum::Null => (0, 0),
        Datum::Int(v) => (1, *v),
        Datum::Double(v) => (2, v.to_bits() as i64),
    }
}

fn sorted_rows(mut rows: Vec<Vec<Datum>>) -> Vec<Vec<Datum>> {
    rows.sort_by(|a, b| {
        let ka: Vec<_> = a.iter().map(sort_key).collect();
        let kb: Vec<_> = b.iter().map(sort_key).collect();
        ka.cmp(&kb)
    });
    rows
}

/// Runs `sql` on both clusters and asserts identical (sorted) results.
fn assert_parity(vec_db: &Cluster, gen_db: &Cluster, sql: &str) {
    let fast = sorted_rows(vec_db.query(sql).unwrap());
    let slow = sorted_rows(gen_db.query(sql).unwrap());
    assert_eq!(fast, slow, "vectorized and generic paths diverged on: {sql}");
}

/// The vectorized cluster must actually take the kernel path for
/// `kind` (otherwise these tests silently compare generic to generic).
fn assert_kernels_ran(db: &Cluster, kind: OpKind) {
    let hits: u64 = db
        .op_stats()
        .iter()
        .filter(|s| s.kind == kind)
        .map(|s| s.vectorized_parts)
        .sum();
    assert!(hits > 0, "no vectorized partitions recorded for {:?}", kind);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Inner and left-outer equi-joins: NULL keys never match, dup
    /// keys fan out, match order is normalised away by sorting.
    #[test]
    fn join_kernels_match_generic_path(a in arb_table(), b in arb_table()) {
        let (vec_db, gen_db) = pair_of_clusters();
        for db in [&vec_db, &gen_db] {
            load(db, "a", &a);
            load(db, "b", &b);
        }
        assert_parity(&vec_db, &gen_db, "select a.k, a.x, b.x from a, b where a.k = b.k");
        assert_parity(
            &vec_db,
            &gen_db,
            "select a.k, a.x, b.x from a left outer join b on (a.k = b.k)",
        );
        if a.iter().any(|&(k, _)| k.is_some()) {
            assert_kernels_ran(&vec_db, OpKind::Join);
        }
    }

    /// GROUP BY over a nullable key: NULLs form one group; count/sum/
    /// min/max aggregate identically on both tiers.
    #[test]
    fn aggregate_kernels_match_generic_path(t in arb_table()) {
        let (vec_db, gen_db) = pair_of_clusters();
        for db in [&vec_db, &gen_db] {
            load(db, "t", &t);
        }
        assert_parity(
            &vec_db,
            &gen_db,
            "select k, count(*) as c, sum(x) as s, min(x) as lo, max(x) as hi \
             from t group by k",
        );
        if !t.is_empty() {
            assert_kernels_ran(&vec_db, OpKind::Aggregate);
        }
    }

    /// DISTINCT over one and two nullable columns.
    #[test]
    fn distinct_kernels_match_generic_path(t in arb_table()) {
        let (vec_db, gen_db) = pair_of_clusters();
        for db in [&vec_db, &gen_db] {
            load(db, "t", &t);
        }
        assert_parity(&vec_db, &gen_db, "select distinct k from t");
        assert_parity(&vec_db, &gen_db, "select distinct k, x from t");
        if !t.is_empty() {
            assert_kernels_ran(&vec_db, OpKind::Distinct);
        }
    }

    /// Hash repartitioning: `t` is stored hash-distributed on `k`
    /// (the default first column), so a CTAS `distributed by (x)`
    /// forces the exchange; rows must land identically however they
    /// are bucketed, and reading the table back must yield the same
    /// multiset.
    #[test]
    fn repartition_kernels_match_generic_path(t in arb_table()) {
        let (vec_db, gen_db) = pair_of_clusters();
        for db in [&vec_db, &gen_db] {
            load(db, "t", &t);
            db.run("create table r as select k, x from t distributed by (x)").unwrap();
        }
        assert_parity(&vec_db, &gen_db, "select k, x from r");
        // The exchange hash must agree exactly between tiers: a join on
        // the redistributed table only skips its own exchange if rows
        // were placed where the colocation check expects them.
        assert_parity(
            &vec_db,
            &gen_db,
            "select r.k, r.x, t.x from r, t where r.k = t.k",
        );
        if !t.is_empty() {
            assert_kernels_ran(&vec_db, OpKind::Repartition);
        }
    }
}
