//! Engine feature tests: EXPLAIN, ORDER BY / LIMIT, transaction-mode
//! space accounting, CSV import/export, and parser robustness.

use incc_mppdb::{Cluster, ClusterConfig, DataType, Datum, DbError, QueryOutput};
use proptest::prelude::*;

fn db_with_edges() -> Cluster {
    let db = Cluster::new(ClusterConfig { segments: 4, ..Default::default() });
    db.load_pairs("e", "v1", "v2", &[(3, 30), (1, 10), (2, 20), (1, 11)]).unwrap();
    db
}

#[test]
fn order_by_and_limit() {
    let db = db_with_edges();
    let rows = db.query("select v1, v2 from e order by v1, v2 desc").unwrap();
    let flat: Vec<(i64, i64)> = rows
        .iter()
        .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
        .collect();
    assert_eq!(flat, vec![(1, 11), (1, 10), (2, 20), (3, 30)]);
    let rows = db.query("select v1 from e order by v1 desc limit 2").unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Datum::Int(3));
    // LIMIT 0 and over-limit both behave.
    assert!(db.query("select v1 from e limit 0").unwrap().is_empty());
    assert_eq!(db.query("select v1 from e limit 99").unwrap().len(), 4);
}

#[test]
fn order_by_aggregate_output() {
    let db = db_with_edges();
    let rows = db
        .query("select v1, min(v2) as m from e group by v1 order by m desc")
        .unwrap();
    assert_eq!(rows[0][1], Datum::Int(30));
    assert_eq!(rows[2][1], Datum::Int(10));
}

#[test]
fn order_by_unknown_column_rejected() {
    let db = db_with_edges();
    let err = db.query("select v1 from e order by nosuch").unwrap_err();
    assert!(matches!(err, DbError::Plan(_)), "{err}");
}

#[test]
fn order_by_in_ctas_rejected() {
    let db = db_with_edges();
    let err = db.run("create table t as select v1 from e order by v1").unwrap_err();
    assert!(err.to_string().contains("ORDER BY"), "{err}");
    let err = db
        .run("select s.v1 from (select v1 from e order by v1) as s")
        .unwrap_err();
    assert!(err.to_string().contains("subquer"), "{err}");
}

#[test]
fn explain_renders_plan_tree() {
    let db = db_with_edges();
    let QueryOutput::Explain(plan) = db
        .run(
            "explain select v1, least(v1, min(v2)) as r from e \
             group by v1",
        )
        .unwrap()
    else {
        panic!("expected explain output")
    };
    assert!(plan.contains("Project"), "{plan}");
    assert!(plan.contains("Aggregate"), "{plan}");
    assert!(plan.contains("Scan: e"), "{plan}");
    // Tree indentation: scan is deeper than project.
    let proj_indent = plan.lines().find(|l| l.contains("Project")).unwrap().len()
        - plan.lines().find(|l| l.contains("Project")).unwrap().trim_start().len();
    let scan_indent = plan.lines().find(|l| l.contains("Scan")).unwrap().len()
        - plan.lines().find(|l| l.contains("Scan")).unwrap().trim_start().len();
    assert!(scan_indent > proj_indent, "{plan}");
}

#[test]
fn explain_join_distinct_union() {
    let db = db_with_edges();
    let QueryOutput::Explain(plan) = db
        .run(
            "explain select distinct a.v1 from e as a, e as b where a.v1 = b.v2 \
             union all select v2 as v1 from e",
        )
        .unwrap()
    else {
        panic!()
    };
    assert!(plan.contains("UnionAll"), "{plan}");
    assert!(plan.contains("Distinct"), "{plan}");
    assert!(plan.contains("InnerJoin"), "{plan}");
}

#[test]
#[allow(deprecated)] // exercises the delegating cluster-level transaction API
fn transaction_mode_defers_space_reclamation() {
    let db = db_with_edges();
    let base = db.stats().live_bytes;
    db.begin_transaction();
    db.run("create table t1 as select v1, v2 from e").unwrap();
    let t1_bytes = db.stats().live_bytes - base;
    db.drop_table("t1").unwrap();
    // Space not reclaimed inside the transaction.
    assert_eq!(db.stats().live_bytes, base + t1_bytes);
    db.run("create table t2 as select v1, v2 from e").unwrap();
    assert_eq!(db.stats().live_bytes, base + 2 * t1_bytes);
    db.commit();
    // Only the still-live t2 remains charged.
    assert_eq!(db.stats().live_bytes, base + t1_bytes);
    db.drop_table("t2").unwrap();
    assert_eq!(db.stats().live_bytes, base);
}

#[test]
#[allow(deprecated)] // exercises the delegating cluster-level transaction API
fn transaction_mode_peak_equals_written() {
    // The paper's Table V rationale: in a transaction, peak space is
    // the total written because drops don't free anything.
    let db = db_with_edges();
    db.reset_run_counters();
    db.begin_transaction();
    for i in 0..5 {
        db.run(&format!("create table t{i} as select v1, v2 from e")).unwrap();
        db.drop_table(&format!("t{i}")).unwrap();
    }
    let s = db.stats();
    // Everything written during the transaction stays live, so the
    // peak is exactly bytes_written plus the 64-byte input table.
    assert_eq!(
        s.max_live_bytes,
        s.bytes_written + 64,
        "peak {} vs written {} + input 64",
        s.max_live_bytes,
        s.bytes_written
    );
    db.commit();
    assert_eq!(db.stats().live_bytes, 64, "only the input survives commit");
}

#[test]
fn csv_roundtrip() {
    let db = db_with_edges();
    let dir = std::env::temp_dir().join("incc_csv_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e.csv");
    db.copy_to_csv("e", &path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.starts_with("v1,v2\n"), "{text}");
    db.copy_from_csv("e2", &path, &[DataType::Int64, DataType::Int64]).unwrap();
    let mut a = db.scan_pairs("e").unwrap();
    let mut b = db.scan_pairs("e2").unwrap();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
    std::fs::remove_file(&path).ok();
}

#[test]
fn csv_with_nulls_and_doubles() {
    let db = Cluster::new(ClusterConfig::default());
    db.run(
        "create table t as select 1 as a, 0.5 as h union all select 2 as a, null as h",
    )
    .unwrap();
    let dir = std::env::temp_dir().join("incc_csv_test2");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("t.csv");
    db.copy_to_csv("t", &path).unwrap();
    db.copy_from_csv("t2", &path, &[DataType::Int64, DataType::Float64]).unwrap();
    let rows = db.query("select a, h from t2 order by a").unwrap();
    assert_eq!(rows[0][1], Datum::Double(0.5));
    assert_eq!(rows[1][1], Datum::Null);
    std::fs::remove_file(&path).ok();
}

#[test]
fn csv_errors() {
    let db = Cluster::new(ClusterConfig::default());
    let missing = std::path::Path::new("/nonexistent/nope.csv");
    assert!(db.copy_from_csv("x", missing, &[DataType::Int64]).is_err());
    assert!(db.copy_to_csv("nosuchtable", missing).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser must never panic, whatever bytes arrive.
    #[test]
    fn parser_never_panics(input in ".*") {
        let _ = incc_mppdb::sql::parse_statement(&input);
    }

    /// SQL-ish token soup must also parse or error cleanly.
    #[test]
    fn parser_survives_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("select".to_string()),
                Just("from".to_string()),
                Just("where".to_string()),
                Just("group".to_string()),
                Just("by".to_string()),
                Just("union".to_string()),
                Just("all".to_string()),
                Just("order".to_string()),
                Just("limit".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just("=".to_string()),
                Just("t".to_string()),
                Just("v".to_string()),
                Just("1".to_string()),
                Just("min".to_string()),
            ],
            0..24,
        )
    ) {
        let sql = words.join(" ");
        let _ = incc_mppdb::sql::parse_statement(&sql);
    }

    /// Any successfully parsed statement must also plan or produce a
    /// clean planner error — never panic — against a live catalog.
    #[test]
    fn planner_never_panics_on_valid_parse(
        words in proptest::collection::vec(
            prop_oneof![
                Just("select"), Just("distinct"), Just("from"), Just("where"),
                Just("group"), Just("by"), Just("e"), Just("v1"), Just("v2"),
                Just("min"), Just("count"), Just("least"), Just("("), Just(")"),
                Just(","), Just("="), Just("!="), Just("1"), Just("as"), Just("x"),
                Just("union"), Just("all"), Just("*"),
            ],
            1..20,
        )
    ) {
        let sql = words.join(" ");
        if incc_mppdb::sql::parse_statement(&sql).is_ok() {
            let db = db_with_edges();
            let _ = db.run(&sql);
        }
    }
}

#[test]
fn having_filters_groups() {
    let db = db_with_edges();
    // Groups: v1=1 has 2 rows, v1=2 and v1=3 have 1 each.
    let rows = db
        .query("select v1, count(*) as n from e group by v1 having count(*) > 1")
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Datum::Int(1));
    assert_eq!(rows[0][1], Datum::Int(2));
    // HAVING on a group column.
    let rows = db
        .query("select v1, min(v2) as m from e group by v1 having v1 != 2 order by v1")
        .unwrap();
    assert_eq!(rows.len(), 2);
    // HAVING may reference an aggregate absent from the select list.
    let rows = db
        .query("select v1 from e group by v1 having min(v2) >= 20 order by v1")
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Datum::Int(2));
}

#[test]
fn having_without_aggregation_rejected() {
    let db = db_with_edges();
    let err = db.query("select v1 from e having v1 > 1").unwrap_err();
    assert!(err.to_string().contains("HAVING"), "{err}");
}

#[test]
fn is_null_predicates() {
    let db = db_with_edges();
    // Left outer join introduces NULLs; IS NULL does the anti-join.
    db.load_pairs("r", "v", "rep", &[(1, 100)]).unwrap();
    let rows = db
        .query(
            "select e.v1 from e left outer join r on (e.v1 = r.v) \
             where r.rep is null order by v1",
        )
        .unwrap();
    let vals: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(vals, vec![2, 3]);
    let rows = db
        .query(
            "select e.v1 from e left outer join r on (e.v1 = r.v) \
             where r.rep is not null",
        )
        .unwrap();
    assert_eq!(rows.len(), 2, "both (1,10) and (1,11) match");
    // IS NULL as a value is rejected.
    assert!(db.query("select v1 is null from e").is_err());
}

#[test]
fn explain_analyze_reports_rows_and_time() {
    let db = db_with_edges();
    let QueryOutput::Explain(out) = db
        .run("explain analyze select v1, min(v2) as m from e group by v1")
        .unwrap()
    else {
        panic!()
    };
    assert!(out.contains("rows=3"), "aggregate output rows: {out}");
    // The scan is fused into the aggregate's pipeline; its 4 rows show
    // up as that stage's input.
    assert!(out.contains("rows_in=4"), "scan rows feed the aggregate: {out}");
    assert!(out.contains("Pipeline:"), "pipelined stages visible: {out}");
    assert!(out.contains("time="), "{out}");
    assert!(out.starts_with("Statement:"), "{out}");
    // Per-segment row counts: one bracketed list of 4 per plan node.
    let segs = out.lines().find_map(|l| l.split("segs=[").nth(1)).unwrap();
    let seg_list = segs.split(']').next().unwrap();
    assert_eq!(seg_list.split(',').count(), 4, "{out}");
    // Operator measurements appear under the nodes.
    assert!(out.contains("aggregate: rows_in="), "{out}");
}

#[test]
fn create_table_and_insert_values() {
    let db = Cluster::new(ClusterConfig { segments: 4, ..Default::default() });
    db.run("create table t (v bigint, h double precision) distributed by (v)").unwrap();
    assert_eq!(db.row_count("t").unwrap(), 0);
    let out = db
        .run("insert into t values (1, 0.5), (2, null), (-3, 7)")
        .unwrap();
    assert_eq!(out.row_count(), 3);
    let rows = db.query("select v, h from t order by v").unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0][0], Datum::Int(-3));
    assert_eq!(rows[0][1], Datum::Double(7.0), "int literal widens into double column");
    assert_eq!(rows[2][1], Datum::Null);
    // Inserted rows are hash-placed: a colocated self-join works.
    let joined = db
        .query("select a.v from t as a, t as b where a.v = b.v")
        .unwrap();
    assert_eq!(joined.len(), 3);
    // Space accounting charged the delta.
    assert!(db.stats().live_bytes > 0);
}

#[test]
fn insert_errors() {
    let db = Cluster::new(ClusterConfig::default());
    db.run("create table t (v bigint)").unwrap();
    assert!(db.run("insert into t values (1, 2)").is_err(), "arity checked");
    assert!(db.run("insert into t values (0.5)").is_err(), "float into bigint");
    assert!(db.run("insert into nosuch values (1)").is_err());
    assert!(db.run("create table bad (v varchar)").is_err(), "unsupported type");
    // Reserved shape still parses: insert of expression is rejected at plan time.
    assert!(db.run("insert into t values (least(1, 2))").is_err());
}

#[test]
fn create_table_duplicate_distribution_errors() {
    let db = Cluster::new(ClusterConfig::default());
    assert!(db
        .run("create table t (a bigint) distributed by (nosuch)")
        .is_err());
}

#[test]
fn create_table_duplicate_column_rejected_cleanly() {
    let db = Cluster::new(ClusterConfig::default());
    let err = db.run("create table t (a bigint, a bigint)").unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
}
