//! Vectorized int64 operator kernels.
//!
//! Every query the paper's CC algorithms issue keys on one or two
//! `Int64` columns, so the operators dispatch to these kernels whenever
//! the key columns are integers (see [`crate::Column::as_int_parts`]).
//! The kernels work directly over `&[i64]` slices plus optional
//! validity masks, with open-addressing hash tables sized up-front —
//! no per-row `KeyPart` vectors, no `Datum` boxing, no rehash growth in
//! the hot loop. The row-at-a-time generic paths in [`crate::ops`]
//! remain as the fallback and as the correctness oracle for the parity
//! property suite.
//!
//! Row indices are `u32` ([`SelVec`]); partitions holding ≥ `u32::MAX`
//! rows fall back to the generic path before a kernel is entered.

use crate::batch::SelVec;
use incc_ffield::strategy::mix64;

/// Sentinel for "no row" in chain links and padded selection vectors.
pub const NO_ROW: u32 = u32::MAX;

/// FNV offset basis — [`crate::exec::hash_key`]'s fold seed. Bucketing
/// here must stay byte-identical to that row-at-a-time hash, or stored
/// hash distributions and co-location stop lining up.
const KEY_FOLD_SEED: u64 = 0xcbf2_9ce4_8422_2325;
/// [`crate::exec::hash_datum`]'s NULL bucket.
const NULL_HASH: u64 = 0x6e75_6c6c_6e75_6c6c;

#[inline]
fn is_valid(validity: Option<&[bool]>, row: usize) -> bool {
    validity.map_or(true, |m| m[row])
}

/// An open-addressing `i64 → u32` hash table: power-of-two capacity,
/// linear probing, one SplitMix64 round per lookup. Sized for a ≤ 0.5
/// load factor at construction, so it never grows.
pub struct I64Map {
    keys: Vec<i64>,
    vals: Vec<u32>,
    used: Vec<bool>,
    mask: u64,
}

impl I64Map {
    /// A table ready to hold up to `rows` distinct keys.
    pub fn for_rows(rows: usize) -> I64Map {
        let cap = (rows.max(4) * 2).next_power_of_two();
        I64Map {
            keys: vec![0; cap],
            vals: vec![0; cap],
            used: vec![false; cap],
            mask: cap as u64 - 1,
        }
    }

    /// The slot holding `key`, or the empty slot where it belongs.
    #[inline]
    fn slot_of(&self, key: i64) -> usize {
        let mut slot = (mix64(key as u64) & self.mask) as usize;
        while self.used[slot] && self.keys[slot] != key {
            slot = ((slot as u64 + 1) & self.mask) as usize;
        }
        slot
    }

    /// The value stored for `key`, if any.
    #[inline]
    pub fn get(&self, key: i64) -> Option<u32> {
        let slot = self.slot_of(key);
        self.used[slot].then(|| self.vals[slot])
    }

    /// Returns the existing value for `key`, or inserts `value` and
    /// returns `None`.
    #[inline]
    pub fn get_or_insert(&mut self, key: i64, value: u32) -> Option<u32> {
        let slot = self.slot_of(key);
        if self.used[slot] {
            Some(self.vals[slot])
        } else {
            self.used[slot] = true;
            self.keys[slot] = key;
            self.vals[slot] = value;
            None
        }
    }

    /// Stores `value` for `key`, returning the previous value if any.
    #[inline]
    pub fn set(&mut self, key: i64, value: u32) -> Option<u32> {
        let slot = self.slot_of(key);
        let prev = self.used[slot].then(|| self.vals[slot]);
        self.used[slot] = true;
        self.keys[slot] = key;
        self.vals[slot] = value;
        prev
    }
}

/// Computes each row's destination partition for a hash repartition,
/// reproducing `hash_key` exactly over all-integer key columns.
pub fn bucket_rows(key_cols: &[(&[i64], Option<&[bool]>)], n_parts: u64) -> SelVec {
    let rows = key_cols.first().map_or(0, |(v, _)| v.len());
    let mut dests = Vec::with_capacity(rows);
    match key_cols {
        // The dominant case — one integer key — with no per-row
        // column-loop overhead.
        [(values, None)] => {
            for &v in *values {
                let h = mix64(KEY_FOLD_SEED ^ mix64(v as u64));
                dests.push((h % n_parts) as u32);
            }
        }
        _ => {
            for row in 0..rows {
                let mut h = KEY_FOLD_SEED;
                for &(values, validity) in key_cols {
                    let d = if is_valid(validity, row) {
                        mix64(values[row] as u64)
                    } else {
                        NULL_HASH
                    };
                    h = mix64(h ^ d);
                }
                dests.push((h % n_parts) as u32);
            }
        }
    }
    dests
}

/// A hash-join build side over one integer key column: a head table
/// plus per-row chain links for duplicate keys. NULL keys are skipped —
/// SQL equi-joins never match them.
pub struct JoinBuild {
    heads: I64Map,
    next: Vec<u32>,
}

/// Builds the join hash table over the build (right) side's keys.
/// Rows are inserted in reverse so chain traversal yields ascending row
/// order — the same match order as the generic path.
pub fn build_join(keys: &[i64], validity: Option<&[bool]>) -> JoinBuild {
    let mut heads = I64Map::for_rows(keys.len());
    let mut next = vec![NO_ROW; keys.len()];
    for row in (0..keys.len()).rev() {
        if !is_valid(validity, row) {
            continue;
        }
        next[row] = heads.set(keys[row], row as u32).unwrap_or(NO_ROW);
    }
    JoinBuild { heads, next }
}

/// Probes the build table with the left side's keys, appending matched
/// row pairs to the selection vectors. Unmatched probe rows are dropped
/// for inner joins and padded with [`NO_ROW`] on the right for left
/// outer joins; NULL probe keys never match.
pub fn probe_join(
    build: &JoinBuild,
    keys: &[i64],
    validity: Option<&[bool]>,
    left_outer: bool,
    left_sel: &mut SelVec,
    right_sel: &mut SelVec,
) {
    for (row, &key) in keys.iter().enumerate() {
        let head = if is_valid(validity, row) { build.heads.get(key) } else { None };
        match head {
            Some(mut r) => loop {
                left_sel.push(row as u32);
                right_sel.push(r);
                r = build.next[r as usize];
                if r == NO_ROW {
                    break;
                }
            },
            None => {
                if left_outer {
                    left_sel.push(row as u32);
                    right_sel.push(NO_ROW);
                }
            }
        }
    }
}

/// Group assignment over one integer key column, in first-seen order.
pub struct GroupIds {
    /// Group index of every input row.
    pub row_groups: SelVec,
    /// First-seen key per group; the entry at [`GroupIds::null_group`]
    /// (if any) is a placeholder for the NULL group.
    pub keys: Vec<i64>,
    /// Index of the group holding NULL keys, when one exists.
    pub null_group: Option<u32>,
}

/// Assigns each row to a group by its key, NULLs grouping together
/// (SQL `GROUP BY` semantics). Group indices follow first appearance,
/// matching the generic path's deterministic output order.
pub fn group_ids(keys: &[i64], validity: Option<&[bool]>) -> GroupIds {
    let mut map = I64Map::for_rows(keys.len());
    let mut row_groups = Vec::with_capacity(keys.len());
    let mut group_keys: Vec<i64> = Vec::new();
    let mut null_group = NO_ROW;
    for (row, &key) in keys.iter().enumerate() {
        let g = if !is_valid(validity, row) {
            if null_group == NO_ROW {
                null_group = group_keys.len() as u32;
                group_keys.push(0);
            }
            null_group
        } else {
            match map.get_or_insert(key, group_keys.len() as u32) {
                Some(g) => g,
                None => {
                    group_keys.push(key);
                    (group_keys.len() - 1) as u32
                }
            }
        };
        row_groups.push(g);
    }
    GroupIds {
        row_groups,
        keys: group_keys,
        null_group: (null_group != NO_ROW).then_some(null_group),
    }
}

/// First-occurrence indices over one integer column, NULL counting as a
/// single distinct value — `SELECT DISTINCT` on a one-column relation.
pub fn distinct_ints(keys: &[i64], validity: Option<&[bool]>) -> SelVec {
    DistinctInts::for_rows(keys.len()).filter(keys, validity)
}

/// First-occurrence indices over an integer pair — the edge-table shape
/// every contraction round deduplicates.
pub fn distinct_pairs(
    a: &[i64],
    a_validity: Option<&[bool]>,
    b: &[i64],
    b_validity: Option<&[bool]>,
) -> SelVec {
    DistinctPairs::for_rows(a.len()).filter(a, a_validity, b, b_validity)
}

/// A growable distinct-set over one integer column, NULL counting as a
/// single distinct value. Keeps state across calls so the pipelined
/// executor's dedup stage can filter a partition morsel-by-morsel; the
/// table doubles at a 0.5 load factor.
pub struct DistinctInts {
    keys: Vec<i64>,
    used: Vec<bool>,
    mask: u64,
    len: usize,
    seen_null: bool,
}

impl DistinctInts {
    /// A set pre-sized so `rows` inserts never trigger a rehash.
    pub fn for_rows(rows: usize) -> DistinctInts {
        let cap = (rows.max(4) * 2).next_power_of_two();
        DistinctInts {
            keys: vec![0; cap],
            used: vec![false; cap],
            mask: cap as u64 - 1,
            len: 0,
            seen_null: false,
        }
    }

    #[inline]
    fn slot_of(keys: &[i64], used: &[bool], mask: u64, key: i64) -> usize {
        let mut slot = (mix64(key as u64) & mask) as usize;
        while used[slot] && keys[slot] != key {
            slot = ((slot as u64 + 1) & mask) as usize;
        }
        slot
    }

    fn grow(&mut self) {
        self.grow_to(self.keys.len() * 2);
    }

    fn grow_to(&mut self, cap: usize) {
        let mask = cap as u64 - 1;
        let mut keys = vec![0i64; cap];
        let mut used = vec![false; cap];
        for slot in 0..self.keys.len() {
            if self.used[slot] {
                let dst = Self::slot_of(&keys, &used, mask, self.keys[slot]);
                keys[dst] = self.keys[slot];
                used[dst] = true;
            }
        }
        self.keys = keys;
        self.used = used;
        self.mask = mask;
    }

    /// Grows once so `additional` further inserts cannot rehash —
    /// called per morsel so batched inserts pay at most one resize
    /// instead of a doubling cascade from the initial capacity.
    pub fn reserve(&mut self, additional: usize) {
        let need = ((self.len + additional).max(4) * 2).next_power_of_two();
        if need > self.keys.len() {
            self.grow_to(need);
        }
    }

    /// Inserts `key`, returning true when it was not yet present.
    #[inline]
    fn insert(&mut self, key: i64) -> bool {
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let slot = Self::slot_of(&self.keys, &self.used, self.mask, key);
        if self.used[slot] {
            false
        } else {
            self.used[slot] = true;
            self.keys[slot] = key;
            self.len += 1;
            true
        }
    }

    /// Appends to the set and returns the indices (within this call's
    /// slice) of rows seen for the first time across all calls.
    pub fn filter(&mut self, keys: &[i64], validity: Option<&[bool]>) -> SelVec {
        let mut keep = Vec::new();
        for (row, &key) in keys.iter().enumerate() {
            if !is_valid(validity, row) {
                if !self.seen_null {
                    self.seen_null = true;
                    keep.push(row as u32);
                }
            } else if self.insert(key) {
                keep.push(row as u32);
            }
        }
        keep
    }
}

/// A growable distinct-set over an integer pair, keyed on
/// `(a, b, null-bits)` with NULL slots normalised to 0 before hashing
/// so unspecified storage under an invalid bit cannot split a logical
/// duplicate. Stateful like [`DistinctInts`], for morsel-at-a-time
/// dedup of the edge-table shape every contraction round produces.
pub struct DistinctPairs {
    a: Vec<i64>,
    b: Vec<i64>,
    bits: Vec<u8>,
    used: Vec<bool>,
    mask: u64,
    len: usize,
}

impl DistinctPairs {
    /// A set pre-sized so `rows` inserts never trigger a rehash.
    pub fn for_rows(rows: usize) -> DistinctPairs {
        let cap = (rows.max(4) * 2).next_power_of_two();
        DistinctPairs {
            a: vec![0; cap],
            b: vec![0; cap],
            bits: vec![0; cap],
            used: vec![false; cap],
            mask: cap as u64 - 1,
            len: 0,
        }
    }

    #[inline]
    fn hash(va: i64, vb: i64, bits: u8) -> u64 {
        mix64(mix64(va as u64 ^ KEY_FOLD_SEED) ^ (vb as u64) ^ ((bits as u64) << 56))
    }

    fn grow(&mut self) {
        self.grow_to(self.a.len() * 2);
    }

    fn grow_to(&mut self, cap: usize) {
        let mut next = DistinctPairs {
            a: vec![0; cap],
            b: vec![0; cap],
            bits: vec![0; cap],
            used: vec![false; cap],
            mask: cap as u64 - 1,
            len: self.len,
        };
        for slot in 0..self.a.len() {
            if self.used[slot] {
                let dst = next.slot_of(self.a[slot], self.b[slot], self.bits[slot]);
                next.a[dst] = self.a[slot];
                next.b[dst] = self.b[slot];
                next.bits[dst] = self.bits[slot];
                next.used[dst] = true;
            }
        }
        *self = next;
    }

    /// Grows once so `additional` further inserts cannot rehash —
    /// called per morsel so batched inserts pay at most one resize
    /// instead of a doubling cascade from the initial capacity.
    pub fn reserve(&mut self, additional: usize) {
        let need = ((self.len + additional).max(4) * 2).next_power_of_two();
        if need > self.a.len() {
            self.grow_to(need);
        }
    }

    #[inline]
    fn slot_of(&self, va: i64, vb: i64, bits: u8) -> usize {
        let mut slot = (Self::hash(va, vb, bits) & self.mask) as usize;
        while self.used[slot]
            && !(self.a[slot] == va && self.b[slot] == vb && self.bits[slot] == bits)
        {
            slot = ((slot as u64 + 1) & self.mask) as usize;
        }
        slot
    }

    /// Appends to the set and returns the indices (within this call's
    /// slice) of pairs seen for the first time across all calls.
    pub fn filter(
        &mut self,
        a: &[i64],
        a_validity: Option<&[bool]>,
        b: &[i64],
        b_validity: Option<&[bool]>,
    ) -> SelVec {
        let mut keep = Vec::new();
        for row in 0..a.len() {
            if (self.len + 1) * 2 > self.a.len() {
                self.grow();
            }
            let a_ok = is_valid(a_validity, row);
            let b_ok = is_valid(b_validity, row);
            let va = if a_ok { a[row] } else { 0 };
            let vb = if b_ok { b[row] } else { 0 };
            let bits = u8::from(!a_ok) | (u8::from(!b_ok) << 1);
            let slot = self.slot_of(va, vb, bits);
            if !self.used[slot] {
                self.used[slot] = true;
                self.a[slot] = va;
                self.b[slot] = vb;
                self.bits[slot] = bits;
                self.len += 1;
                keep.push(row as u32);
            }
        }
        keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{Batch, Column};
    use crate::exec::hash_key;
    use crate::value::Datum;

    #[test]
    fn bucketing_matches_row_at_a_time_hash() {
        let vals = vec![1i64, -5, 0, i64::MAX, i64::MIN, 42];
        let col = Column::from_ints(vals.clone());
        let batch = Batch::from_columns(vec![col]);
        let dests = bucket_rows(&[(&vals, None)], 8);
        for (row, &dest) in dests.iter().enumerate() {
            assert_eq!(dest as u64, hash_key(&batch, row, &[0]) % 8);
        }
    }

    #[test]
    fn bucketing_matches_with_nulls_and_two_keys() {
        let a = Column::from_datums(
            crate::value::DataType::Int64,
            [Datum::Int(3), Datum::Null, Datum::Int(-9)],
        );
        let b = Column::from_ints(vec![7, 8, 9]);
        let batch = Batch::from_columns(vec![a, b]);
        let (av, am) = batch.column(0).as_int_parts().unwrap();
        let (bv, bm) = batch.column(1).as_int_parts().unwrap();
        let dests = bucket_rows(&[(av, am), (bv, bm)], 5);
        for (row, &dest) in dests.iter().enumerate() {
            assert_eq!(dest as u64, hash_key(&batch, row, &[0, 1]) % 5);
        }
    }

    #[test]
    fn join_chains_traverse_in_ascending_row_order() {
        let build = build_join(&[7, 3, 7, 7], None);
        let (mut l, mut r) = (Vec::new(), Vec::new());
        probe_join(&build, &[7, 1], None, true, &mut l, &mut r);
        assert_eq!(l, vec![0, 0, 0, 1]);
        assert_eq!(r, vec![0, 2, 3, NO_ROW]);
    }

    #[test]
    fn null_keys_never_match() {
        let build_validity = vec![true, false];
        let build = build_join(&[5, 5], Some(&build_validity));
        let probe_validity = vec![true, false];
        let (mut l, mut r) = (Vec::new(), Vec::new());
        probe_join(&build, &[5, 5], Some(&probe_validity), false, &mut l, &mut r);
        assert_eq!((l, r), (vec![0], vec![0]));
    }

    #[test]
    fn groups_form_in_first_seen_order_with_one_null_group() {
        let validity = vec![true, false, true, false, true];
        let g = group_ids(&[4, 0, 9, 0, 4], Some(&validity));
        assert_eq!(g.row_groups, vec![0, 1, 2, 1, 0]);
        assert_eq!(g.null_group, Some(1));
        assert_eq!(g.keys.len(), 3);
        assert_eq!((g.keys[0], g.keys[2]), (4, 9));
    }

    #[test]
    fn distinct_pairs_normalises_null_storage() {
        // Rows 0 and 2 are logically identical (1, NULL) even though
        // the invalid slot stores different garbage.
        let a = vec![1, 1, 1];
        let b = vec![99, 2, -7];
        let b_validity = vec![false, true, false];
        assert_eq!(distinct_pairs(&a, None, &b, Some(&b_validity)), vec![0, 1]);
    }

    #[test]
    fn distinct_ints_keeps_first_occurrences() {
        let validity = vec![true, false, true, false, true];
        assert_eq!(distinct_ints(&[5, 0, 5, 0, 6], Some(&validity)), vec![0, 1, 4]);
    }

    #[test]
    fn stateful_dedup_grows_and_spans_calls() {
        // Incremental filtering across many small slices must equal one
        // stateless pass over the concatenation, growth included.
        let keys: Vec<i64> = (0..200).map(|i| (i * 37) % 50).collect();
        let whole = distinct_ints(&keys, None);
        let mut set = DistinctInts::for_rows(2);
        let mut got = Vec::new();
        for (chunk_idx, chunk) in keys.chunks(7).enumerate() {
            for &local in &set.filter(chunk, None) {
                got.push(chunk_idx as u32 * 7 + local);
            }
        }
        assert_eq!(got, whole);

        let a: Vec<i64> = (0..200).map(|i| i % 9).collect();
        let b: Vec<i64> = (0..200).map(|i| i % 11).collect();
        let b_validity: Vec<bool> = (0..200).map(|i| i % 4 != 0).collect();
        let whole = distinct_pairs(&a, None, &b, Some(&b_validity));
        let mut set = DistinctPairs::for_rows(2);
        let mut got = Vec::new();
        for start in (0..200).step_by(13) {
            let end = (start + 13).min(200);
            let keep = set.filter(&a[start..end], None, &b[start..end], Some(&b_validity[start..end]));
            for &local in &keep {
                got.push(start as u32 + local);
            }
        }
        assert_eq!(got, whole);
    }

    #[test]
    fn map_handles_collision_chains() {
        let mut m = I64Map::for_rows(64);
        for k in 0..64i64 {
            assert_eq!(m.get_or_insert(k * 1024, k as u32), None);
        }
        for k in 0..64i64 {
            assert_eq!(m.get(k * 1024), Some(k as u32));
        }
        assert_eq!(m.get(12345), None);
        assert_eq!(m.set(0, 99), Some(0));
        assert_eq!(m.get(0), Some(99));
    }
}
