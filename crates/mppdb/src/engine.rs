//! The [`SqlEngine`] abstraction: anything that can execute this
//! dialect of SQL.
//!
//! The paper's algorithms are pure SQL drivers — they only ever parse,
//! create, scan, drop and rename tables. Abstracting that surface into
//! a dyn-safe trait lets the same algorithm code run either directly on
//! a [`Cluster`] (single-tenant benchmarks, the original mode) or
//! through a [`Session`] (the service layer's multi-tenant mode, where
//! working tables are namespaced per session and statements honour the
//! session's cancel flag and timeout).

use crate::cluster::{Cluster, QueryOutput};
use crate::error::{DbError, DbResult};
use crate::session::Session;
use crate::stats::StatsSnapshot;
use crate::value::Datum;
use std::sync::Arc;

pub use crate::expr::ScalarUdf;

/// A SQL execution surface: the subset of [`Cluster`]'s API the CC
/// algorithms drive. Implemented by [`Cluster`] (global namespace,
/// never interrupted) and [`Session`] (per-session namespace, stats,
/// cancellation).
pub trait SqlEngine: Sync {
    /// Executes one SQL statement.
    fn run(&self, sql_text: &str) -> DbResult<QueryOutput>;

    /// Row count of a visible table.
    fn row_count(&self, name: &str) -> DbResult<usize>;

    /// Drops a table.
    fn drop_table(&self, name: &str) -> DbResult<()>;

    /// Renames a table.
    fn rename_table(&self, from: &str, to: &str) -> DbResult<()>;

    /// Replaces table `to` with table `from`, dropping any previous
    /// `to`. [`Cluster`] and [`Session`] perform the swap atomically
    /// under one catalog lock, so concurrent readers of `to` never see
    /// it missing — the publication primitive for rebuilt label
    /// tables. The default is the non-atomic drop-then-rename
    /// fallback for engines without a swap primitive.
    fn replace_table(&self, from: &str, to: &str) -> DbResult<()> {
        let _ = self.drop_table(to);
        self.rename_table(from, to)
    }

    /// Registers (or replaces) a scalar UDF callable from SQL.
    fn register_udf(&self, name: &str, udf: Arc<dyn ScalarUdf>);

    /// Removes a UDF registration.
    fn unregister_udf(&self, name: &str);

    /// Bulk-loads a two-column bigint edge list.
    fn load_pairs(
        &self,
        name: &str,
        col_a: &str,
        col_b: &str,
        pairs: &[(i64, i64)],
    ) -> DbResult<()>;

    /// Reads a two-integer-column table back as gathered pairs.
    fn scan_pairs(&self, name: &str) -> DbResult<Vec<(i64, i64)>>;

    /// Resource counters for this execution surface: cluster-wide for a
    /// [`Cluster`], session-scoped for a [`Session`].
    fn stats(&self) -> StatsSnapshot;

    /// Notes one statement retry (and the backoff pause that preceded
    /// it) on this engine's counters — called by recovery layers such
    /// as the service's retry loop. Default: no accounting.
    fn note_retry(&self, _backoff: std::time::Duration) {}

    /// Runs one engine-native CC primitive (see [`crate::native`]) —
    /// the SQL-free fast path behind the Liu–Tarjan algorithm. Engines
    /// without native support return an error; callers probe with a
    /// cheap op (e.g. [`crate::native::CcOp::Census`]) and fall back
    /// to the SQL algorithms.
    fn native_cc(&self, _op: &crate::native::CcOp<'_>) -> DbResult<crate::native::CcReport> {
        Err(DbError::Exec(
            "this engine does not support native CC primitives".into(),
        ))
    }

    /// Executes a `SELECT` and returns its rows.
    fn query(&self, sql_text: &str) -> DbResult<Vec<Vec<Datum>>> {
        match self.run(sql_text)? {
            QueryOutput::Rows(rows) => Ok(rows),
            other => Err(DbError::Plan(format!("expected a SELECT, got {other:?}"))),
        }
    }

    /// Executes a `SELECT` expected to return one integer.
    fn query_scalar_i64(&self, sql_text: &str) -> DbResult<i64> {
        let rows = self.query(sql_text)?;
        rows.first()
            .and_then(|r| r.first())
            .and_then(Datum::as_int)
            .ok_or_else(|| DbError::Exec("query did not return a scalar integer".into()))
    }
}

impl SqlEngine for Cluster {
    fn run(&self, sql_text: &str) -> DbResult<QueryOutput> {
        Cluster::run(self, sql_text)
    }

    fn row_count(&self, name: &str) -> DbResult<usize> {
        Cluster::row_count(self, name)
    }

    fn drop_table(&self, name: &str) -> DbResult<()> {
        Cluster::drop_table(self, name)
    }

    fn rename_table(&self, from: &str, to: &str) -> DbResult<()> {
        Cluster::rename_table(self, from, to)
    }

    fn replace_table(&self, from: &str, to: &str) -> DbResult<()> {
        Cluster::replace_table(self, from, to)
    }

    fn register_udf(&self, name: &str, udf: Arc<dyn ScalarUdf>) {
        Cluster::register_udf(self, name, udf)
    }

    fn unregister_udf(&self, name: &str) {
        Cluster::unregister_udf(self, name)
    }

    fn load_pairs(
        &self,
        name: &str,
        col_a: &str,
        col_b: &str,
        pairs: &[(i64, i64)],
    ) -> DbResult<()> {
        Cluster::load_pairs(self, name, col_a, col_b, pairs)
    }

    fn scan_pairs(&self, name: &str) -> DbResult<Vec<(i64, i64)>> {
        Cluster::scan_pairs(self, name)
    }

    fn stats(&self) -> StatsSnapshot {
        Cluster::stats(self)
    }

    fn note_retry(&self, backoff: std::time::Duration) {
        Cluster::note_retry(self, backoff)
    }

    fn native_cc(&self, op: &crate::native::CcOp<'_>) -> DbResult<crate::native::CcReport> {
        Cluster::native_cc(self, op)
    }
}

impl SqlEngine for Session {
    fn run(&self, sql_text: &str) -> DbResult<QueryOutput> {
        Session::run(self, sql_text)
    }

    fn row_count(&self, name: &str) -> DbResult<usize> {
        Session::row_count(self, name)
    }

    fn drop_table(&self, name: &str) -> DbResult<()> {
        Session::drop_table(self, name)
    }

    fn rename_table(&self, from: &str, to: &str) -> DbResult<()> {
        Session::rename_table(self, from, to)
    }

    fn replace_table(&self, from: &str, to: &str) -> DbResult<()> {
        Session::replace_table(self, from, to)
    }

    fn register_udf(&self, name: &str, udf: Arc<dyn ScalarUdf>) {
        self.cluster().register_udf(name, udf)
    }

    fn unregister_udf(&self, name: &str) {
        self.cluster().unregister_udf(name)
    }

    fn load_pairs(
        &self,
        name: &str,
        col_a: &str,
        col_b: &str,
        pairs: &[(i64, i64)],
    ) -> DbResult<()> {
        Session::load_pairs(self, name, col_a, col_b, pairs)
    }

    fn scan_pairs(&self, name: &str) -> DbResult<Vec<(i64, i64)>> {
        Session::scan_pairs(self, name)
    }

    fn stats(&self) -> StatsSnapshot {
        Session::stats(self)
    }

    fn note_retry(&self, backoff: std::time::Duration) {
        Session::note_retry(self, backoff)
    }

    fn native_cc(&self, op: &crate::native::CcOp<'_>) -> DbResult<crate::native::CcReport> {
        Session::native_cc(self, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    fn run_roundtrip(db: &dyn SqlEngine) {
        db.load_pairs("e", "a", "b", &[(1, 2), (3, 4)]).unwrap();
        assert_eq!(db.row_count("e").unwrap(), 2);
        db.run("create table f as select a from e").unwrap();
        db.rename_table("f", "g").unwrap();
        assert_eq!(
            db.query_scalar_i64("select count(*) as n from g").unwrap(),
            2
        );
        db.drop_table("g").unwrap();
        db.drop_table("e").unwrap();
    }

    #[test]
    fn replace_table_swaps_atomically_and_credits_space() {
        let c = Arc::new(Cluster::new(ClusterConfig::default()));
        c.load_pairs("a", "v", "w", &[(1, 2)]).unwrap();
        c.load_pairs("b", "v", "w", &[(3, 4), (5, 6)]).unwrap();
        let live = c.stats().live_bytes;
        c.replace_table("a", "b").unwrap();
        // The displaced table's space is credited back and the new
        // contents answer under the published name.
        assert!(c.stats().live_bytes < live);
        assert_eq!(c.scan_pairs("b").unwrap(), vec![(1, 2)]);
        assert!(c.row_count("a").is_err());
        assert!(c.replace_table("missing", "b").is_err());
        // Replace also works when the target does not exist yet.
        c.load_pairs("fresh", "v", "w", &[(9, 9)]).unwrap();
        c.replace_table("fresh", "published").unwrap();
        assert_eq!(c.scan_pairs("published").unwrap(), vec![(9, 9)]);
    }

    #[test]
    fn session_replace_table_resolves_the_namespace() {
        let c = Arc::new(Cluster::new(ClusterConfig::default()));
        let s = c.session();
        s.load_pairs("next", "v", "w", &[(1, 2)]).unwrap();
        s.load_pairs("cur", "v", "w", &[(7, 8)]).unwrap();
        SqlEngine::replace_table(&s, "next", "cur").unwrap();
        assert_eq!(s.scan_pairs("cur").unwrap(), vec![(1, 2)]);
        assert!(s.row_count("next").is_err());
        drop(s);
        assert!(c.table_names().is_empty());
    }

    #[test]
    fn cluster_and_session_share_the_engine_surface() {
        let c = Arc::new(Cluster::new(ClusterConfig::default()));
        run_roundtrip(c.as_ref());
        let s = c.session();
        run_roundtrip(&s);
        drop(s);
        assert!(c.table_names().is_empty());
    }
}
