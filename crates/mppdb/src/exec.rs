//! Execution utilities: row hashing and the generic-path key types.
//! (Per-partition parallelism lives in [`crate::pool`]; the vectorized
//! key kernels in [`crate::kernels`].)

use crate::batch::Batch;
use crate::value::Datum;
use incc_ffield::strategy::mix64;
use std::hash::{BuildHasherDefault, Hasher};

/// Hashes one datum for partition placement and hash tables.
#[inline]
pub fn hash_datum(d: &Datum) -> u64 {
    match d {
        Datum::Null => 0x6e75_6c6c_6e75_6c6c, // distinct NULL bucket
        Datum::Int(v) => mix64(*v as u64),
        Datum::Double(v) => mix64(v.to_bits() ^ 0x9e37_79b9),
    }
}

/// Hashes a row's key columns (given by index) into one value.
#[inline]
pub fn hash_key(batch: &Batch, row: usize, key_cols: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in key_cols {
        h = mix64(h ^ hash_datum(&batch.column(c).datum(row)));
    }
    h
}

/// A fast, non-cryptographic hasher for the engine's internal hash
/// tables (joins, group-by, distinct). Integer keys go through one
/// SplitMix64 round; byte streams fold FNV-style. Hash-flooding
/// resistance is irrelevant here — keys are the engine's own data.
#[derive(Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0 ^ 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        self.0 = mix64(h);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = mix64(self.0 ^ v);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
}

/// HashMap with the engine's fast hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;
/// HashSet with the engine's fast hasher.
pub type FastSet<K> = std::collections::HashSet<K, BuildHasherDefault<FastHasher>>;

/// A hashable, equatable key for group-by and join hash tables.
///
/// `f64` keys are compared by bit pattern — adequate for equality
/// grouping of values the engine itself produced.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyPart {
    /// NULL key part (groups together in GROUP BY; joins never match it).
    Null,
    /// Integer key part.
    Int(i64),
    /// Float key part by bit pattern.
    Bits(u64),
}

impl From<Datum> for KeyPart {
    fn from(d: Datum) -> KeyPart {
        match d {
            Datum::Null => KeyPart::Null,
            Datum::Int(v) => KeyPart::Int(v),
            Datum::Double(v) => KeyPart::Bits(v.to_bits()),
        }
    }
}

/// Extracts a multi-column key for the given row.
#[inline]
pub fn row_key(batch: &Batch, row: usize, key_cols: &[usize]) -> Vec<KeyPart> {
    key_cols.iter().map(|&c| KeyPart::from(batch.column(c).datum(row))).collect()
}

/// True when any key column is NULL at this row — SQL equi-joins never
/// match NULL keys.
#[inline]
pub fn key_has_null(batch: &Batch, row: usize, key_cols: &[usize]) -> bool {
    key_cols.iter().any(|&c| !batch.column(c).is_valid(row))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Column;
    use crate::value::DataType;

    #[test]
    fn datum_hash_distinguishes() {
        assert_ne!(hash_datum(&Datum::Int(1)), hash_datum(&Datum::Int(2)));
        assert_ne!(hash_datum(&Datum::Int(0)), hash_datum(&Datum::Null));
        assert_ne!(hash_datum(&Datum::Double(1.0)), hash_datum(&Datum::Int(1)));
    }

    #[test]
    fn row_keys() {
        let b = Batch::from_columns(vec![
            Column::from_ints(vec![1, 2]),
            Column::from_datums(DataType::Int64, [Datum::Null, Datum::Int(5)]),
        ]);
        assert_eq!(row_key(&b, 0, &[0, 1]), vec![KeyPart::Int(1), KeyPart::Null]);
        assert!(key_has_null(&b, 0, &[0, 1]));
        assert!(!key_has_null(&b, 1, &[0, 1]));
        assert_eq!(hash_key(&b, 0, &[0]), hash_key(&b, 0, &[0]));
        assert_ne!(hash_key(&b, 0, &[0]), hash_key(&b, 1, &[0]));
    }
}
