//! The cluster's persistent execution substrate: a fixed set of
//! segment worker threads shared by every operator invocation.
//!
//! The previous executor spawned fresh scoped OS threads for every
//! operator of every query — per round, per algorithm. This pool is
//! created once in [`crate::Cluster::new`] (one worker per segment) and
//! reused for the cluster's whole lifetime; an operator hands it one
//! closure per partition and gets the results back in input order.
//!
//! Two properties shape the design:
//!
//! * **No `unsafe`.** The crate forbids it, which rules out the classic
//!   lifetime-erased scoped pool. Instead every submitted task is fully
//!   `'static`: [`SegmentPool::run_parts`] moves the partition data and
//!   an `Arc` of the closure into each task, and collects results
//!   through a shared [`RunState`].
//! * **Caller help.** The calling thread drains the same pending queue
//!   as the workers. A `run_parts` call therefore always finishes even
//!   when every worker is busy — in particular when the caller *is* a
//!   pool worker (a service job running a query on the shared pool), so
//!   sharing the pool between operators and job execution cannot
//!   deadlock.
//!
//! Panic and error semantics match the old scoped executor: the first
//! panicking partition re-raises on the caller via
//! [`std::panic::resume_unwind`]; otherwise the first `Err` in
//! partition order wins.

use crate::error::DbResult;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A detached unit of work for the pool.
pub type Ticket = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Ticket>>,
    available: Condvar,
    stop: AtomicBool,
}

/// A fixed pool of segment worker threads (see the module docs).
pub struct SegmentPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    n_workers: usize,
}

/// Shared bookkeeping for one `run_parts` call: the unclaimed work, the
/// result slots, and a countdown the caller waits on.
struct RunState<T, U> {
    pending: Mutex<VecDeque<(usize, T)>>,
    results: Mutex<Vec<Option<TaskOutcome<U>>>>,
    remaining: Mutex<usize>,
    done: Condvar,
}

/// `Ok(task result)` or the payload of a panic.
type TaskOutcome<U> = Result<DbResult<U>, Box<dyn Any + Send>>;

impl SegmentPool {
    /// Starts `workers` threads (at least one), named
    /// `segment-worker-{i}`.
    pub fn new(workers: usize) -> SegmentPool {
        let n_workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let handles = (0..n_workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("segment-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn segment worker")
            })
            .collect();
        SegmentPool { shared, workers: Mutex::new(handles), n_workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.n_workers
    }

    /// Enqueues a detached task, or hands it back if the pool has shut
    /// down.
    pub fn spawn(&self, task: Ticket) -> Result<(), Ticket> {
        if self.shared.stop.load(Ordering::Relaxed) {
            return Err(task);
        }
        self.shared.queue.lock().unwrap().push_back(task);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Runs `f` over the items — one task per partition — on the pool
    /// workers *and* the calling thread, returning results in input
    /// order. Single-item and empty inputs run inline with no
    /// synchronisation at all.
    pub fn run_parts<T, U, F>(&self, items: Vec<T>, f: F) -> DbResult<Vec<U>>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: Fn(usize, T) -> DbResult<U> + Send + Sync + 'static,
    {
        let n = items.len();
        if n <= 1 {
            return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let state = Arc::new(RunState {
            pending: Mutex::new(items.into_iter().enumerate().collect()),
            results: Mutex::new((0..n).map(|_| None).collect()),
            remaining: Mutex::new(n),
            done: Condvar::new(),
        });
        let f: Arc<F> = Arc::new(f);
        // Wake at most one helper per remaining task; the caller covers
        // the rest. A failed spawn (pool shutting down) is fine — the
        // caller drains everything itself.
        for _ in 0..self.n_workers.min(n - 1) {
            let state = state.clone();
            let f = f.clone();
            let _ = self.spawn(Box::new(move || drain_tasks(&state, &*f)));
        }
        drain_tasks(&state, &*f);
        let mut remaining = state.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = state.done.wait(remaining).unwrap();
        }
        drop(remaining);
        let slots = std::mem::take(&mut *state.results.lock().unwrap());
        let mut out = Vec::with_capacity(n);
        let mut first_err = None;
        for slot in slots {
            match slot.expect("completed run left an empty result slot") {
                Ok(Ok(v)) => out.push(v),
                Ok(Err(e)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                Err(panic) => resume_unwind(panic),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

/// Claims and executes tasks from one run until its pending queue is
/// empty. Runs on workers and on the `run_parts` caller alike.
fn drain_tasks<T, U>(state: &RunState<T, U>, f: &(dyn Fn(usize, T) -> DbResult<U> + Sync)) {
    loop {
        let claimed = state.pending.lock().unwrap().pop_front();
        let Some((i, item)) = claimed else { return };
        let outcome = catch_unwind(AssertUnwindSafe(|| f(i, item)));
        state.results.lock().unwrap()[i] = Some(outcome);
        let mut remaining = state.remaining.lock().unwrap();
        *remaining -= 1;
        if *remaining == 0 {
            state.done.notify_all();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let ticket = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(t) = queue.pop_front() {
                    break t;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        // A run_parts task records its own panics into the run state;
        // this outer catch keeps the worker alive if a detached ticket
        // (or the bookkeeping itself) unwinds.
        let _ = catch_unwind(AssertUnwindSafe(ticket));
    }
}

impl Drop for SegmentPool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.available.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        // Unstarted tickets are dropped with the queue; any run_parts
        // caller drains its own pending work, so nothing is lost.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DbError;

    #[test]
    fn preserves_input_order() {
        let pool = SegmentPool::new(4);
        let out = pool
            .run_parts((0..64).collect::<Vec<i64>>(), |i, v| Ok(v * 100 + i as i64))
            .unwrap();
        assert_eq!(out, (0..64).map(|v| v * 100 + v).collect::<Vec<i64>>());
    }

    #[test]
    fn propagates_first_error_in_partition_order() {
        let pool = SegmentPool::new(2);
        let r: DbResult<Vec<i32>> = pool.run_parts(vec![1, 2, 3, 4], |i, v| {
            if v % 2 == 0 {
                Err(DbError::Exec(format!("part {i}")))
            } else {
                Ok(v)
            }
        });
        match r {
            Err(DbError::Exec(m)) => assert_eq!(m, "part 1"),
            other => panic!("expected Exec error, got {other:?}"),
        }
    }

    #[test]
    fn single_item_runs_inline() {
        let pool = SegmentPool::new(2);
        let caller = std::thread::current().id();
        let out = pool
            .run_parts(vec![7], move |_, v| {
                assert_eq!(std::thread::current().id(), caller);
                Ok(v * 2)
            })
            .unwrap();
        assert_eq!(out, vec![14]);
        assert_eq!(pool.run_parts(Vec::<i32>::new(), |_, v| Ok(v)).unwrap(), Vec::<i32>::new());
    }

    #[test]
    fn panics_resurface_on_the_caller() {
        let pool = SegmentPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.run_parts(vec![1, 2, 3], |_, v| {
                if v == 2 {
                    panic!("partition blew up");
                }
                Ok(v)
            });
        }));
        assert!(caught.is_err());
        // The pool survives the panic and keeps working.
        assert_eq!(pool.run_parts(vec![1, 2], |_, v| Ok(v)).unwrap(), vec![1, 2]);
    }

    #[test]
    fn usable_from_inside_a_worker() {
        // A detached task (like a service job) runs run_parts on the
        // same pool; caller-help keeps this deadlock-free even with a
        // single worker.
        let pool = Arc::new(SegmentPool::new(1));
        let (tx, rx) = std::sync::mpsc::channel();
        let inner = pool.clone();
        pool.spawn(Box::new(move || {
            let out = inner.run_parts(vec![1, 2, 3, 4], |_, v| Ok(v + 1)).unwrap();
            tx.send(out).unwrap();
        }))
        .ok()
        .unwrap();
        let out = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        assert_eq!(out, vec![2, 3, 4, 5]);
    }

    #[test]
    fn spawn_after_drop_is_rejected() {
        let pool = SegmentPool::new(1);
        pool.shared.stop.store(true, Ordering::Relaxed);
        assert!(pool.spawn(Box::new(|| {})).is_err());
    }
}
