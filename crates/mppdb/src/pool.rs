//! The cluster's persistent execution substrate: a fixed set of
//! segment worker threads shared by every operator invocation.
//!
//! The previous executor spawned fresh scoped OS threads for every
//! operator of every query — per round, per algorithm. This pool is
//! created once in [`crate::Cluster::new`] (one worker per segment) and
//! reused for the cluster's whole lifetime; an operator hands it one
//! closure per partition and gets the results back in input order.
//!
//! Three properties shape the design:
//!
//! * **No `unsafe`.** The crate forbids it, which rules out the classic
//!   lifetime-erased scoped pool. Instead every submitted task is fully
//!   `'static`: [`SegmentPool::run_parts`] moves the partition data and
//!   an `Arc` of the closure into each task, and collects results
//!   through a shared [`RunState`].
//! * **Caller help.** The calling thread drains the same pending queue
//!   as the workers. A `run_parts` call therefore always finishes even
//!   when every worker is busy — in particular when the caller *is* a
//!   pool worker (a service job running a query on the shared pool), so
//!   sharing the pool between operators and job execution cannot
//!   deadlock.
//! * **Panic safety.** A panicking partition task is caught, its
//!   `remaining` count still decremented and the caller's condvar still
//!   woken, and the panic surfaces as
//!   [`DbError::SegmentPanic`] — an ordinary, *retryable* error —
//!   rather than unwinding through the caller. Every lock acquisition
//!   recovers from mutex poisoning (the protected state is only ever
//!   mutated to completion-or-slot-filled, so a poisoned lock carries
//!   no torn data), and [`SegmentPool::respawn_dead`] replaces any
//!   worker thread that has died, so one bad task can never wedge or
//!   shrink the pool for unrelated sessions.
//!
//! Error precedence within one `run_parts`: the first failing partition
//! in *partition order* wins, whether it failed with `Err` or a panic.
//!
//! The pipelined executor schedules through [`SegmentPool::run_coop`]
//! instead: a [`PartitionTask`] exposes each partition as a sequence of
//! bounded *slices*, and every helper ticket runs one slice then
//! re-enqueues itself at the back of the shared queue. Slices from
//! concurrent statements therefore interleave at morsel granularity —
//! the realized form of `PollPush::Pending` backpressure — instead of
//! queueing behind whole operators.

use crate::error::{DbError, DbResult};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A detached unit of work for the pool.
pub type Ticket = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, recovering the guard if a previous holder panicked.
/// Everything the pool protects is valid at every lock release point
/// (slot writes and counter decrements are single statements), so the
/// poison flag carries no information here — recovery is always safe.
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Renders a panic payload for [`DbError::SegmentPanic`].
fn panic_payload(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct PoolShared {
    /// Pending tickets, each stamped with its enqueue instant so the
    /// dequeue can record how long it sat behind other statements.
    queue: Mutex<VecDeque<(std::time::Instant, Ticket)>>,
    available: Condvar,
    stop: AtomicBool,
    /// Time tickets spend queued before a worker claims them — the
    /// pool-level half of wait-time attribution (`\stats` wait lines,
    /// `incc_pool_queue_wait_nanos`).
    queue_wait: crate::trace::LatencyHistogram,
}

/// A fixed pool of segment worker threads (see the module docs).
pub struct SegmentPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    n_workers: usize,
}

/// Shared bookkeeping for one `run_parts` call: the unclaimed work, the
/// result slots, and a countdown the caller waits on.
struct RunState<T, U> {
    pending: Mutex<VecDeque<(usize, T)>>,
    results: Mutex<Vec<Option<TaskOutcome<U>>>>,
    remaining: Mutex<usize>,
    done: Condvar,
}

/// `Ok(task result)` or the payload of a panic.
type TaskOutcome<U> = Result<DbResult<U>, Box<dyn Any + Send>>;

impl SegmentPool {
    /// Starts `workers` threads (at least one), named
    /// `segment-worker-{i}`.
    pub fn new(workers: usize) -> SegmentPool {
        let n_workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            queue_wait: crate::trace::LatencyHistogram::new(),
        });
        let handles = (0..n_workers).map(|i| spawn_worker(&shared, i)).collect();
        SegmentPool { shared, workers: Mutex::new(handles), n_workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.n_workers
    }

    /// Snapshot of how long tickets waited in the shared queue before a
    /// worker claimed them.
    pub fn queue_wait_snapshot(&self) -> crate::trace::HistogramSnapshot {
        self.shared.queue_wait.snapshot()
    }

    /// Tickets currently waiting in the shared queue.
    pub fn queue_depth(&self) -> usize {
        lock_ok(&self.shared.queue).len()
    }

    /// Self-check: replaces any worker thread that has exited (a panic
    /// escaping `worker_loop`'s own bookkeeping — tasks themselves are
    /// caught). Returns how many workers were respawned. Called from
    /// [`SegmentPool::spawn`] and [`SegmentPool::run_parts`], so the
    /// pool heals itself on the next use rather than silently shrinking.
    pub fn respawn_dead(&self) -> usize {
        if self.shared.stop.load(Ordering::Relaxed) {
            return 0;
        }
        let mut workers = lock_ok(&self.workers);
        let mut respawned = 0;
        for (i, slot) in workers.iter_mut().enumerate() {
            if slot.is_finished() {
                let fresh = spawn_worker(&self.shared, i);
                let dead = std::mem::replace(slot, fresh);
                let _ = dead.join();
                respawned += 1;
            }
        }
        respawned
    }

    /// Enqueues a detached task, or hands it back if the pool has shut
    /// down.
    pub fn spawn(&self, task: Ticket) -> Result<(), Ticket> {
        if self.shared.stop.load(Ordering::Relaxed) {
            return Err(task);
        }
        self.respawn_dead();
        enqueue_shared(&self.shared, task)
    }

    /// [`SegmentPool::run_parts_labeled`] with the generic label
    /// `"task"` — for callers outside the operator layer.
    pub fn run_parts<T, U, F>(&self, items: Vec<T>, f: F) -> DbResult<Vec<U>>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: Fn(usize, T) -> DbResult<U> + Send + Sync + 'static,
    {
        self.run_parts_labeled("task", items, f)
    }

    /// Runs `f` over the items — one task per partition — on the pool
    /// workers *and* the calling thread, returning results in input
    /// order. Single-item and empty inputs run inline with no
    /// synchronisation at all. A panicking partition yields
    /// `Err(DbError::SegmentPanic { op, .. })` with this call's `op`
    /// label; the first failing partition in partition order wins.
    pub fn run_parts_labeled<T, U, F>(
        &self,
        op: &'static str,
        items: Vec<T>,
        f: F,
    ) -> DbResult<Vec<U>>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: Fn(usize, T) -> DbResult<U> + Send + Sync + 'static,
    {
        let n = items.len();
        if n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| match catch_unwind(AssertUnwindSafe(|| f(i, t))) {
                    Ok(r) => r,
                    Err(p) => Err(DbError::SegmentPanic {
                        segment: i,
                        op,
                        payload: panic_payload(&*p),
                    }),
                })
                .collect();
        }
        self.respawn_dead();
        let state = Arc::new(RunState {
            pending: Mutex::new(items.into_iter().enumerate().collect()),
            results: Mutex::new((0..n).map(|_| None).collect()),
            remaining: Mutex::new(n),
            done: Condvar::new(),
        });
        let f: Arc<F> = Arc::new(f);
        // Wake at most one helper per remaining task; the caller covers
        // the rest. A failed spawn (pool shutting down) is fine — the
        // caller drains everything itself.
        for _ in 0..self.n_workers.min(n - 1) {
            let state = state.clone();
            let f = f.clone();
            let _ = self.spawn(Box::new(move || drain_tasks(&state, &*f)));
        }
        drain_tasks(&state, &*f);
        let mut remaining = lock_ok(&state.remaining);
        while *remaining > 0 {
            remaining = state
                .done
                .wait(remaining)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        drop(remaining);
        let slots = std::mem::take(&mut *lock_ok(&state.results));
        collect_outcomes(slots, op)
    }

    /// Runs a [`PartitionTask`] over `n_parts` partitions, cooperatively
    /// sliced: each partition's [`PartitionTask::step`] is called until
    /// it reports completion, with every helper ticket yielding back to
    /// the shared queue between slices so concurrent statements
    /// interleave at slice (morsel) granularity. The calling thread
    /// helps drain, so the call finishes even from inside a worker.
    /// Results come back in partition order; error precedence matches
    /// [`SegmentPool::run_parts_labeled`]. A task that never finishes a
    /// partition (unbounded `Pending`) hangs the call — operators must
    /// guarantee progress.
    pub fn run_coop<T: PartitionTask>(
        &self,
        op: &'static str,
        n_parts: usize,
        task: Arc<T>,
    ) -> DbResult<Vec<T::Out>> {
        if n_parts == 0 {
            return Ok(Vec::new());
        }
        if n_parts == 1 {
            // Inline fast path, like single-item run_parts: no
            // synchronisation, panics still contained per slice.
            loop {
                match catch_unwind(AssertUnwindSafe(|| task.step(0))) {
                    Ok(Ok(Some(out))) => return Ok(vec![out]),
                    Ok(Ok(None)) => continue,
                    Ok(Err(e)) => return Err(e),
                    Err(p) => {
                        return Err(DbError::SegmentPanic {
                            segment: 0,
                            op,
                            payload: panic_payload(&*p),
                        })
                    }
                }
            }
        }
        self.respawn_dead();
        let state = Arc::new(CoopState {
            task,
            pending: Mutex::new((0..n_parts).collect()),
            results: Mutex::new((0..n_parts).map(|_| None).collect()),
            remaining: Mutex::new(n_parts),
            done: Condvar::new(),
        });
        for _ in 0..self.n_workers.min(n_parts - 1) {
            let shared = self.shared.clone();
            let st = state.clone();
            if self.spawn(Box::new(move || coop_tick(shared, st))).is_err() {
                break;
            }
        }
        loop {
            // The caller drains back-to-back: its own thread is not a
            // shared resource, so there is nothing to yield to.
            while coop_step(&state) {}
            let mut remaining = lock_ok(&state.remaining);
            loop {
                if *remaining == 0 {
                    drop(remaining);
                    let slots = std::mem::take(&mut *lock_ok(&state.results));
                    return collect_outcomes(slots, op);
                }
                if !lock_ok(&state.pending).is_empty() {
                    break; // a helper re-queued a slice — go claim it
                }
                remaining = state
                    .done
                    .wait(remaining)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
    }
}

/// A pipeline job scheduled through [`SegmentPool::run_coop`]: each
/// partition advances in bounded slices so the pool can interleave
/// work from concurrent statements between them.
pub trait PartitionTask: Send + Sync + 'static {
    /// Per-partition output produced when the partition completes.
    type Out: Send + 'static;

    /// Runs one bounded slice of work for `part`. `Ok(None)` means the
    /// partition has more work (it is re-queued behind other pending
    /// slices); `Ok(Some(out))` completes it. Called for one partition
    /// from one thread at a time, never concurrently for the same
    /// partition.
    fn step(&self, part: usize) -> DbResult<Option<Self::Out>>;
}

/// Shared bookkeeping for one `run_coop` call. `pending` holds
/// partition ids with claimable work (each id at most once).
struct CoopState<T: PartitionTask> {
    task: Arc<T>,
    pending: Mutex<VecDeque<usize>>,
    results: Mutex<Vec<Option<TaskOutcome<T::Out>>>>,
    remaining: Mutex<usize>,
    done: Condvar,
}

/// Claims one partition, runs one slice, and records the outcome.
/// Returns false when no work was claimable. Both re-queue and
/// completion notify the caller's condvar under the `remaining` lock,
/// so the caller can never sleep through claimable work.
fn coop_step<T: PartitionTask>(state: &CoopState<T>) -> bool {
    let claimed = lock_ok(&state.pending).pop_front();
    let Some(part) = claimed else { return false };
    match catch_unwind(AssertUnwindSafe(|| state.task.step(part))) {
        Ok(Ok(None)) => {
            lock_ok(&state.pending).push_back(part);
            let _guard = lock_ok(&state.remaining);
            state.done.notify_all();
        }
        outcome => {
            let slot = match outcome {
                Ok(Ok(Some(out))) => Ok(Ok(out)),
                Ok(Ok(None)) => unreachable!("handled above"),
                Ok(Err(e)) => Ok(Err(e)),
                Err(p) => Err(p),
            };
            lock_ok(&state.results)[part] = Some(slot);
            let mut remaining = lock_ok(&state.remaining);
            *remaining -= 1;
            if *remaining == 0 {
                state.done.notify_all();
            }
        }
    }
    true
}

/// One helper slice: claim a partition, run one step, then yield by
/// re-enqueueing a successor ticket at the *back* of the shared queue —
/// tickets from other concurrent `run_coop` calls (other statements)
/// run in between. If the pool is shutting down, finish the remaining
/// work inline so the caller is never stranded.
fn coop_tick<T: PartitionTask>(shared: Arc<PoolShared>, state: Arc<CoopState<T>>) {
    if !coop_step(&state) {
        return;
    }
    let next_shared = shared.clone();
    let next_state = state.clone();
    let successor: Ticket = Box::new(move || coop_tick(next_shared, next_state));
    if enqueue_shared(&shared, successor).is_err() {
        while coop_step(&state) {}
    }
}

/// Folds completed slots into results, with the first failing partition
/// in partition order winning (shared by `run_parts` and `run_coop`).
fn collect_outcomes<U>(
    slots: Vec<Option<TaskOutcome<U>>>,
    op: &'static str,
) -> DbResult<Vec<U>> {
    let mut out = Vec::with_capacity(slots.len());
    let mut first_err = None;
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.expect("completed run left an empty result slot") {
            Ok(Ok(v)) => out.push(v),
            Ok(Err(e)) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
            Err(panic) => {
                if first_err.is_none() {
                    first_err = Some(DbError::SegmentPanic {
                        segment: i,
                        op,
                        payload: panic_payload(&*panic),
                    });
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Queue-level enqueue shared by [`SegmentPool::spawn`] and the
/// self-rescheduling `run_coop` tickets (which hold no pool handle).
fn enqueue_shared(shared: &Arc<PoolShared>, task: Ticket) -> Result<(), Ticket> {
    if shared.stop.load(Ordering::Relaxed) {
        return Err(task);
    }
    lock_ok(&shared.queue).push_back((std::time::Instant::now(), task));
    shared.available.notify_one();
    Ok(())
}

fn spawn_worker(shared: &Arc<PoolShared>, i: usize) -> JoinHandle<()> {
    let shared = shared.clone();
    std::thread::Builder::new()
        .name(format!("segment-worker-{i}"))
        .spawn(move || worker_loop(&shared))
        .expect("spawn segment worker")
}

/// Claims and executes tasks from one run until its pending queue is
/// empty. Runs on workers and on the `run_parts` caller alike. Panics
/// are caught per task and recorded in the task's slot; `remaining` is
/// decremented and the caller woken on every path, so a panicking
/// partition can never leave `run_parts` waiting forever.
fn drain_tasks<T, U>(state: &RunState<T, U>, f: &(dyn Fn(usize, T) -> DbResult<U> + Sync)) {
    loop {
        let claimed = lock_ok(&state.pending).pop_front();
        let Some((i, item)) = claimed else { return };
        let outcome = catch_unwind(AssertUnwindSafe(|| f(i, item)));
        lock_ok(&state.results)[i] = Some(outcome);
        let mut remaining = lock_ok(&state.remaining);
        *remaining -= 1;
        if *remaining == 0 {
            state.done.notify_all();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let ticket = {
            let mut queue = lock_ok(&shared.queue);
            loop {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                if let Some((enqueued, t)) = queue.pop_front() {
                    shared.queue_wait.record(enqueued.elapsed().as_nanos() as u64);
                    break t;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        // A run_parts task records its own panics into the run state;
        // this outer catch keeps the worker alive if a detached ticket
        // (or the bookkeeping itself) unwinds.
        let _ = catch_unwind(AssertUnwindSafe(ticket));
    }
}

impl Drop for SegmentPool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.available.notify_all();
        let handles = std::mem::take(&mut *lock_ok(&self.workers));
        for h in handles {
            let _ = h.join();
        }
        // Unstarted tickets are dropped with the queue; any run_parts
        // caller drains its own pending work, so nothing is lost.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DbError;

    #[test]
    fn preserves_input_order() {
        let pool = SegmentPool::new(4);
        let out = pool
            .run_parts((0..64).collect::<Vec<i64>>(), |i, v| Ok(v * 100 + i as i64))
            .unwrap();
        assert_eq!(out, (0..64).map(|v| v * 100 + v).collect::<Vec<i64>>());
    }

    #[test]
    fn propagates_first_error_in_partition_order() {
        let pool = SegmentPool::new(2);
        let r: DbResult<Vec<i32>> = pool.run_parts(vec![1, 2, 3, 4], |i, v| {
            if v % 2 == 0 {
                Err(DbError::Exec(format!("part {i}")))
            } else {
                Ok(v)
            }
        });
        match r {
            Err(DbError::Exec(m)) => assert_eq!(m, "part 1"),
            other => panic!("expected Exec error, got {other:?}"),
        }
    }

    #[test]
    fn single_item_runs_inline() {
        let pool = SegmentPool::new(2);
        let caller = std::thread::current().id();
        let out = pool
            .run_parts(vec![7], move |_, v| {
                assert_eq!(std::thread::current().id(), caller);
                Ok(v * 2)
            })
            .unwrap();
        assert_eq!(out, vec![14]);
        assert_eq!(pool.run_parts(Vec::<i32>::new(), |_, v| Ok(v)).unwrap(), Vec::<i32>::new());
    }

    #[test]
    fn panic_returns_segment_panic_error_instead_of_hanging() {
        // Regression: a panicking partition used to re-raise on the
        // caller (and, before that, wedge `run_parts` forever). It now
        // surfaces as a retryable SegmentPanic naming the op and
        // segment, and the pool keeps working.
        let pool = SegmentPool::new(2);
        let r: DbResult<Vec<i32>> = pool.run_parts_labeled("hash_join", vec![1, 2, 3], |_, v| {
            if v == 2 {
                panic!("partition blew up");
            }
            Ok(v)
        });
        match r {
            Err(DbError::SegmentPanic { segment, op, payload }) => {
                assert_eq!(segment, 1);
                assert_eq!(op, "hash_join");
                assert!(payload.contains("partition blew up"));
            }
            other => panic!("expected SegmentPanic, got {other:?}"),
        }
        // The pool survives the panic and keeps working.
        assert_eq!(pool.run_parts(vec![1, 2], |_, v| Ok(v)).unwrap(), vec![1, 2]);
    }

    #[test]
    fn inline_single_item_panic_is_also_an_error() {
        let pool = SegmentPool::new(2);
        let r: DbResult<Vec<i32>> =
            pool.run_parts_labeled("filter", vec![1], |_, _| panic!("solo"));
        match r {
            Err(DbError::SegmentPanic { segment: 0, op: "filter", payload }) => {
                assert!(payload.contains("solo"));
            }
            other => panic!("expected SegmentPanic, got {other:?}"),
        }
    }

    #[test]
    fn panic_in_earliest_partition_wins_over_later_error() {
        let pool = SegmentPool::new(2);
        let r: DbResult<Vec<i32>> = pool.run_parts_labeled("agg", vec![0, 1, 2, 3], |i, v| {
            match i {
                1 => panic!("partition one"),
                2 => Err(DbError::Exec("partition two".into())),
                _ => Ok(v),
            }
        });
        match r {
            Err(DbError::SegmentPanic { segment: 1, .. }) => {}
            other => panic!("expected partition 1's panic to win, got {other:?}"),
        }
    }

    #[test]
    fn pool_stays_usable_after_a_poisoned_task() {
        // Poison the run-state mutexes deliberately: a panic *while the
        // closure holds no pool lock* is the common case, but poisoning
        // the shared queue itself must not kill later submissions
        // either. We simulate the worst case by panicking inside a
        // detached ticket (which runs under no pool lock) and inside
        // run_parts closures, then verifying every pool entry point
        // still works.
        let pool = SegmentPool::new(2);
        pool.spawn(Box::new(|| panic!("detached ticket panic"))).ok().unwrap();
        for _ in 0..4 {
            let _ = pool.run_parts_labeled("chaos", vec![1, 2, 3, 4], |i, v| {
                if i % 2 == 0 {
                    panic!("poison attempt");
                }
                Ok(v)
            });
        }
        // All entry points still function.
        assert_eq!(pool.run_parts(vec![5, 6, 7], |_, v| Ok(v)).unwrap(), vec![5, 6, 7]);
        assert!(pool.spawn(Box::new(|| {})).is_ok());
    }

    #[test]
    fn respawn_dead_replaces_finished_workers() {
        let pool = SegmentPool::new(2);
        // Healthy pool: nothing to respawn.
        assert_eq!(pool.respawn_dead(), 0);
        // Forge a dead worker by swapping in a handle to a thread that
        // exits immediately.
        {
            let mut workers = lock_ok(&pool.workers);
            let dead = std::thread::spawn(|| {});
            while !dead.is_finished() {
                std::thread::yield_now();
            }
            // The displaced real worker detaches; it exits at shutdown
            // when `stop` is raised and the condvar is notified.
            let _ = std::mem::replace(&mut workers[0], dead);
        }
        assert_eq!(pool.respawn_dead(), 1);
        assert_eq!(pool.respawn_dead(), 0);
        assert_eq!(pool.run_parts(vec![1, 2, 3, 4], |_, v| Ok(v * 2)).unwrap(), vec![2, 4, 6, 8]);
    }

    #[test]
    fn usable_from_inside_a_worker() {
        // A detached task (like a service job) runs run_parts on the
        // same pool; caller-help keeps this deadlock-free even with a
        // single worker.
        let pool = Arc::new(SegmentPool::new(1));
        let (tx, rx) = std::sync::mpsc::channel();
        let inner = pool.clone();
        pool.spawn(Box::new(move || {
            let out = inner.run_parts(vec![1, 2, 3, 4], |_, v| Ok(v + 1)).unwrap();
            tx.send(out).unwrap();
        }))
        .ok()
        .unwrap();
        let out = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        assert_eq!(out, vec![2, 3, 4, 5]);
    }

    #[test]
    fn spawn_after_drop_is_rejected() {
        let pool = SegmentPool::new(1);
        pool.shared.stop.store(true, Ordering::Relaxed);
        assert!(pool.spawn(Box::new(|| {})).is_err());
    }

    /// Counts down a per-partition fuse: each step burns one unit and
    /// completes only when the fuse hits zero, exercising the
    /// None-then-Some (Pending-style) path of `run_coop`.
    struct Fuse {
        left: Vec<std::sync::atomic::AtomicUsize>,
        steps: std::sync::atomic::AtomicUsize,
    }

    impl PartitionTask for Fuse {
        type Out = usize;
        fn step(&self, part: usize) -> DbResult<Option<usize>> {
            self.steps.fetch_add(1, Ordering::Relaxed);
            let prev = self.left[part].fetch_sub(1, Ordering::Relaxed);
            if prev <= 1 {
                Ok(Some(part * 10))
            } else {
                Ok(None)
            }
        }
    }

    #[test]
    fn run_coop_slices_until_each_partition_finishes() {
        let pool = SegmentPool::new(2);
        let fuses = [3usize, 1, 5, 2];
        let task = Arc::new(Fuse {
            left: fuses.iter().map(|&n| n.into()).collect(),
            steps: 0usize.into(),
        });
        let out = pool.run_coop("coop", fuses.len(), task.clone()).unwrap();
        assert_eq!(out, vec![0, 10, 20, 30]);
        assert_eq!(task.steps.load(Ordering::Relaxed), fuses.iter().sum::<usize>());
    }

    #[test]
    fn run_coop_single_partition_runs_inline() {
        let pool = SegmentPool::new(2);
        let task = Arc::new(Fuse {
            left: vec![4usize.into()],
            steps: 0usize.into(),
        });
        assert_eq!(pool.run_coop("coop", 1, task.clone()).unwrap(), vec![0]);
        assert_eq!(task.steps.load(Ordering::Relaxed), 4);
        assert_eq!(
            pool.run_coop("coop", 0, task).unwrap(),
            Vec::<usize>::new()
        );
    }

    struct FailAt(usize);

    impl PartitionTask for FailAt {
        type Out = usize;
        fn step(&self, part: usize) -> DbResult<Option<usize>> {
            if part == self.0 {
                panic!("partition {part} blew a slice");
            }
            if part == self.0 + 1 {
                return Err(DbError::Exec("coop task error".into()));
            }
            Ok(Some(part))
        }
    }

    #[test]
    fn run_coop_error_precedence_is_partition_order() {
        let pool = SegmentPool::new(2);
        // Partition 1 panics, partition 2 errors: the panic (earlier
        // partition) must win, matching run_parts precedence.
        let err = pool.run_coop("coop", 4, Arc::new(FailAt(1))).unwrap_err();
        match err {
            DbError::SegmentPanic { segment, op, .. } => {
                assert_eq!(segment, 1);
                assert_eq!(op, "coop");
            }
            other => panic!("expected SegmentPanic, got {other:?}"),
        }
    }

    #[test]
    fn run_coop_usable_from_inside_a_worker() {
        let pool = Arc::new(SegmentPool::new(1));
        let (tx, rx) = std::sync::mpsc::channel();
        let inner = pool.clone();
        pool.spawn(Box::new(move || {
            let task = Arc::new(Fuse {
                left: (0..4).map(|_| 2usize.into()).collect(),
                steps: 0usize.into(),
            });
            tx.send(inner.run_coop("coop", 4, task).unwrap()).unwrap();
        }))
        .ok()
        .unwrap();
        let out = rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        assert_eq!(out, vec![0, 10, 20, 30]);
    }
}
