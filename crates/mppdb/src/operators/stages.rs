//! Concrete push operators: streaming stages (filter, project, join
//! probe, dedup) and pipeline-breaker sinks (join build, aggregate,
//! exchange, buffer). All row work delegates to
//! [`crate::operators::compute`], which the materializing oracle also
//! uses — the stages only add state handling and metric accounting.

use super::compute::{self, AggState, DedupState, JoinBuildPart};
use super::{Finalize, Morsel, OpAccum, PartState, PollPush, PushCx, PushOperator, SinkPart, StateInner};
use crate::batch::Batch;
use crate::error::DbResult;
use crate::expr::Expr;
use crate::ops::AggExpr;
use crate::schema::{Field, Schema};
use crate::stats::{OpKind, Stats};
use std::sync::{Arc, Mutex, MutexGuard};

fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A materialization cell handing one pipeline's output to the next:
/// per destination partition, the batches produced for it, in a
/// deterministic order (source-partition order for exchanges, branch
/// order for unions).
#[derive(Default)]
pub(crate) struct BufCell {
    parts: Mutex<Vec<Vec<Batch>>>,
}

impl BufCell {
    /// Grows the cell to at least `n` partitions.
    pub(crate) fn ensure(&self, n: usize) {
        let mut g = lock_ok(&self.parts);
        if g.len() < n {
            g.resize_with(n, Vec::new);
        }
    }

    /// Appends batches to partition `p`.
    pub(crate) fn push_part(&self, p: usize, batches: Vec<Batch>) {
        let mut g = lock_ok(&self.parts);
        if g.len() <= p {
            g.resize_with(p + 1, Vec::new);
        }
        g[p].extend(batches);
    }

    /// Takes partition `p`'s batches (empty if none were produced).
    pub(crate) fn take_part(&self, p: usize) -> Vec<Batch> {
        let mut g = lock_ok(&self.parts);
        if p < g.len() {
            std::mem::take(&mut g[p])
        } else {
            Vec::new()
        }
    }
}

/// The hand-off cell for a hash-join build side.
#[derive(Default)]
pub(crate) struct BuildCell {
    inner: Mutex<Option<Arc<Vec<JoinBuildPart>>>>,
}

impl BuildCell {
    fn set(&self, parts: Vec<JoinBuildPart>) {
        *lock_ok(&self.inner) = Some(Arc::new(parts));
    }

    fn get(&self) -> Arc<Vec<JoinBuildPart>> {
        lock_ok(&self.inner).clone().expect("join build pipeline did not complete")
    }
}

/// Streaming predicate filter.
pub(crate) struct FilterOp {
    pub(crate) pred: Expr,
    pub(crate) accum: OpAccum,
}

impl PushOperator for FilterOp {
    fn kind(&self) -> Option<OpKind> {
        Some(OpKind::Filter)
    }
    fn accum(&self) -> &OpAccum {
        &self.accum
    }
    fn poll_push(&self, m: Morsel, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<PollPush> {
        if !cx.admit(self.kind(), st)? {
            return Ok(PollPush::Pending(m));
        }
        let base = st.seen;
        st.seen += m.rows();
        let out = compute::filter_part(m.as_batch(), &self.pred, cx.part, base)?;
        Ok(PollPush::Pushed(Some(out)))
    }
    fn poll_finalize(&self, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<Finalize> {
        cx.fire_fault(self.kind(), st)?;
        // The selection-vector tier always runs for filters.
        self.accum.add_part(true);
        Ok(Finalize::Stream(None))
    }
}

/// Streaming projection.
pub(crate) struct ProjectOp {
    pub(crate) exprs: Vec<(Expr, Field)>,
    pub(crate) accum: OpAccum,
}

impl PushOperator for ProjectOp {
    fn kind(&self) -> Option<OpKind> {
        Some(OpKind::Project)
    }
    fn accum(&self) -> &OpAccum {
        &self.accum
    }
    fn poll_push(&self, m: Morsel, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<PollPush> {
        if !cx.admit(self.kind(), st)? {
            return Ok(PollPush::Pending(m));
        }
        let base = st.seen;
        st.seen += m.rows();
        let out = compute::project_part(m.as_batch(), &self.exprs, cx.part, base)?;
        Ok(PollPush::Pushed(Some(out)))
    }
    fn poll_finalize(&self, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<Finalize> {
        cx.fire_fault(self.kind(), st)?;
        self.accum.add_part(false);
        Ok(Finalize::Stream(None))
    }
}

/// Streaming hash-join probe against a completed [`BuildCell`].
pub(crate) struct ProbeOp {
    pub(crate) l_keys: Vec<usize>,
    pub(crate) left_outer: bool,
    pub(crate) right_width: usize,
    /// Compile-time tier decision (single `Int64` key on both sides).
    pub(crate) use_vec: bool,
    pub(crate) build: Arc<BuildCell>,
    pub(crate) accum: OpAccum,
}

impl PushOperator for ProbeOp {
    fn kind(&self) -> Option<OpKind> {
        Some(OpKind::Join)
    }
    fn accum(&self) -> &OpAccum {
        &self.accum
    }
    fn poll_push(&self, m: Morsel, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<PollPush> {
        if !cx.admit(self.kind(), st)? {
            return Ok(PollPush::Pending(m));
        }
        st.seen += m.rows();
        let builds = self.build.get();
        let out = compute::probe_part(
            &builds[cx.part],
            m.as_batch(),
            &self.l_keys,
            self.left_outer,
            self.right_width,
        )?;
        Ok(PollPush::Pushed(Some(out)))
    }
    fn poll_finalize(&self, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<Finalize> {
        cx.fire_fault(self.kind(), st)?;
        self.accum.add_part(self.use_vec);
        Ok(Finalize::Stream(None))
    }
}

/// Streaming duplicate elimination (stateful, emits first occurrences
/// incrementally — identical survivors to concat-then-dedup).
pub(crate) struct DedupOp {
    pub(crate) dtypes: Vec<crate::value::DataType>,
    pub(crate) vectorized: bool,
    pub(crate) accum: OpAccum,
}

impl PushOperator for DedupOp {
    fn kind(&self) -> Option<OpKind> {
        Some(OpKind::Distinct)
    }
    fn accum(&self) -> &OpAccum {
        &self.accum
    }
    fn init_state(&self, rows_hint: usize) -> StateInner {
        StateInner::Dedup(DedupState::for_shape(&self.dtypes, self.vectorized, rows_hint))
    }
    fn poll_push(&self, m: Morsel, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<PollPush> {
        if !cx.admit(self.kind(), st)? {
            return Ok(PollPush::Pending(m));
        }
        st.seen += m.rows();
        let sel = match &mut st.inner {
            StateInner::Dedup(d) => d.keep(m.as_batch()),
            _ => unreachable!("dedup stage with non-dedup state"),
        };
        // No duplicates in the morsel: pass it through — owned morsels
        // move without a copy.
        let out = match sel {
            None => m.into_batch(),
            Some(sel) => m.as_batch().take_u32(&sel),
        };
        Ok(PollPush::Pushed(Some(out)))
    }
    fn poll_finalize(&self, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<Finalize> {
        cx.fire_fault(self.kind(), st)?;
        let vec_tier = match &st.inner {
            StateInner::Dedup(d) => d.is_vectorized(),
            _ => false,
        };
        self.accum.add_part(vec_tier);
        Ok(Finalize::Stream(None))
    }
}

fn acc_push(st: &mut PartState, m: Morsel) {
    match &mut st.inner {
        StateInner::Acc(v) => v.push(m.into_batch()),
        _ => unreachable!("accumulating sink with non-acc state"),
    }
}

fn acc_take(st: &mut PartState, schema: &Schema) -> Batch {
    match &mut st.inner {
        StateInner::Acc(v) => {
            let batches = std::mem::take(v);
            if batches.is_empty() {
                Batch::empty(schema)
            } else {
                Batch::concat_owned(batches)
            }
        }
        _ => unreachable!("accumulating sink with non-acc state"),
    }
}

/// Join build-side sink: buffers its partition, builds the hash table
/// at finalize, and publishes all partitions through a [`BuildCell`].
pub(crate) struct BuildSink {
    pub(crate) keys: Vec<usize>,
    /// Compile-time tier decision, shared with the probe stage.
    pub(crate) use_vec: bool,
    pub(crate) in_schema: Schema,
    pub(crate) cell: Arc<BuildCell>,
    pub(crate) accum: OpAccum,
}

impl PushOperator for BuildSink {
    fn kind(&self) -> Option<OpKind> {
        Some(OpKind::Join)
    }
    fn accum(&self) -> &OpAccum {
        &self.accum
    }
    fn init_state(&self, _rows_hint: usize) -> StateInner {
        StateInner::Acc(Vec::new())
    }
    fn poll_push(&self, m: Morsel, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<PollPush> {
        if !cx.admit(self.kind(), st)? {
            return Ok(PollPush::Pending(m));
        }
        st.seen += m.rows();
        acc_push(st, m);
        Ok(PollPush::Pushed(None))
    }
    fn poll_finalize(&self, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<Finalize> {
        cx.fire_fault(self.kind(), st)?;
        self.accum.add_part(self.use_vec);
        let batch = acc_take(st, &self.in_schema);
        let built = compute::build_join_part(batch, &self.keys, self.use_vec);
        Ok(Finalize::Sink(SinkPart::Build(built)))
    }
    fn complete(&self, parts: Vec<SinkPart>, _stats: &Stats) -> DbResult<()> {
        let builds: Vec<JoinBuildPart> = parts
            .into_iter()
            .map(|p| match p {
                SinkPart::Build(b) => b,
                _ => unreachable!("build sink produced non-build part"),
            })
            .collect();
        self.cell.set(builds);
        Ok(())
    }
}

/// Grouped-aggregate sink: buffers the (co-located) partition, runs
/// the aggregation at finalize, and hands the output to a [`BufCell`].
pub(crate) struct AggSink {
    pub(crate) group: Vec<usize>,
    pub(crate) aggs: Vec<AggExpr>,
    pub(crate) agg_types: Vec<crate::value::DataType>,
    pub(crate) in_schema: Schema,
    pub(crate) vectorized: bool,
    pub(crate) cell: Arc<BufCell>,
    pub(crate) accum: OpAccum,
}

impl PushOperator for AggSink {
    fn kind(&self) -> Option<OpKind> {
        Some(OpKind::Aggregate)
    }
    fn accum(&self) -> &OpAccum {
        &self.accum
    }
    fn init_state(&self, _rows_hint: usize) -> StateInner {
        StateInner::Acc(Vec::new())
    }
    fn poll_push(&self, m: Morsel, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<PollPush> {
        if !cx.admit(self.kind(), st)? {
            return Ok(PollPush::Pending(m));
        }
        st.seen += m.rows();
        acc_push(st, m);
        Ok(PollPush::Pushed(None))
    }
    fn poll_finalize(&self, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<Finalize> {
        cx.fire_fault(self.kind(), st)?;
        let batch = acc_take(st, &self.in_schema);
        let (out, used_vec) = compute::agg_partition(
            &batch,
            cx.part,
            &self.group,
            &self.aggs,
            &self.agg_types,
            self.vectorized,
        )?;
        self.accum.add_part(used_vec);
        Ok(Finalize::Sink(SinkPart::Batches(vec![out])))
    }
    fn complete(&self, parts: Vec<SinkPart>, _stats: &Stats) -> DbResult<()> {
        for (p, part) in parts.into_iter().enumerate() {
            if let SinkPart::Batches(bs) = part {
                self.cell.push_part(p, bs);
            }
        }
        Ok(())
    }
}

/// Global (ungrouped) aggregate sink: per-partition partial states,
/// merged once at `complete` into a single row in partition 0.
pub(crate) struct GlobalAggSink {
    pub(crate) aggs: Vec<AggExpr>,
    pub(crate) agg_types: Vec<crate::value::DataType>,
    pub(crate) in_schema: Schema,
    pub(crate) cell: Arc<BufCell>,
    pub(crate) accum: OpAccum,
}

impl PushOperator for GlobalAggSink {
    fn kind(&self) -> Option<OpKind> {
        Some(OpKind::Aggregate)
    }
    fn accum(&self) -> &OpAccum {
        &self.accum
    }
    fn init_state(&self, _rows_hint: usize) -> StateInner {
        StateInner::Acc(Vec::new())
    }
    fn poll_push(&self, m: Morsel, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<PollPush> {
        if !cx.admit(self.kind(), st)? {
            return Ok(PollPush::Pending(m));
        }
        st.seen += m.rows();
        acc_push(st, m);
        Ok(PollPush::Pushed(None))
    }
    fn poll_finalize(&self, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<Finalize> {
        cx.fire_fault(self.kind(), st)?;
        self.accum.add_part(false);
        let batch = acc_take(st, &self.in_schema);
        let partials = compute::global_agg_partial(&batch, cx.part, &self.aggs, &self.agg_types)?;
        Ok(Finalize::Sink(SinkPart::Partials(partials)))
    }
    fn complete(&self, parts: Vec<SinkPart>, _stats: &Stats) -> DbResult<()> {
        let partials: Vec<Vec<AggState>> = parts
            .into_iter()
            .map(|p| match p {
                SinkPart::Partials(s) => s,
                _ => unreachable!("global agg sink produced non-partial part"),
            })
            .collect();
        let out = compute::merge_partials(&partials, &self.aggs, &self.agg_types);
        self.accum.add_rows_out(out.rows() as u64);
        self.cell.push_part(0, vec![out]);
        Ok(())
    }
}

/// Hash-exchange sink: buckets every morsel as it arrives, keeps the
/// buckets per destination, and at `complete` routes each source's
/// buckets — never concatenated — to the destination partitions.
pub(crate) struct ExchangeSink {
    pub(crate) keys: Vec<usize>,
    pub(crate) n_dest: usize,
    /// Compile-time tier decision (all key columns `Int64`).
    pub(crate) use_vec: bool,
    pub(crate) cell: Arc<BufCell>,
    pub(crate) accum: OpAccum,
}

impl PushOperator for ExchangeSink {
    fn kind(&self) -> Option<OpKind> {
        Some(OpKind::Repartition)
    }
    fn accum(&self) -> &OpAccum {
        &self.accum
    }
    fn init_state(&self, _rows_hint: usize) -> StateInner {
        StateInner::Buckets { per_dest: (0..self.n_dest).map(|_| Vec::new()).collect(), moved: 0 }
    }
    fn poll_push(&self, m: Morsel, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<PollPush> {
        if !cx.admit(self.kind(), st)? {
            return Ok(PollPush::Pending(m));
        }
        st.seen += m.rows();
        let (bytes, buckets, _) =
            compute::bucket_part(m.as_batch(), &self.keys, self.n_dest, self.use_vec)?;
        match &mut st.inner {
            StateInner::Buckets { per_dest, moved } => {
                *moved += bytes;
                for (d, b) in buckets.into_iter().enumerate() {
                    if b.rows() > 0 {
                        per_dest[d].push(b);
                    }
                }
            }
            _ => unreachable!("exchange sink with non-bucket state"),
        }
        Ok(PollPush::Pushed(None))
    }
    fn poll_finalize(&self, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<Finalize> {
        cx.fire_fault(self.kind(), st)?;
        self.accum.add_part(self.use_vec);
        match std::mem::replace(&mut st.inner, StateInner::None) {
            StateInner::Buckets { per_dest, moved } => {
                Ok(Finalize::Sink(SinkPart::Buckets { per_dest, moved }))
            }
            _ => unreachable!("exchange sink with non-bucket state"),
        }
    }
    fn complete(&self, parts: Vec<SinkPart>, stats: &Stats) -> DbResult<()> {
        self.cell.ensure(self.n_dest);
        let mut total: u64 = 0;
        // Source-partition order keeps destination row order
        // deterministic and identical to the materializing executor.
        for part in parts {
            if let SinkPart::Buckets { per_dest, moved } = part {
                total += moved;
                for (d, batches) in per_dest.into_iter().enumerate() {
                    if !batches.is_empty() {
                        self.cell.push_part(d, batches);
                    }
                }
            }
        }
        stats.charge_network(total);
        self.accum.add_exchange_bytes(total);
        Ok(())
    }
}

/// Buffering sink for pipeline results and union branches.
pub(crate) struct BufferSink {
    /// `Some(UnionAll)` for union branches (fault site + op charge),
    /// `None` for the statement's final result buffer.
    pub(crate) op: Option<OpKind>,
    pub(crate) cell: Arc<BufCell>,
    pub(crate) accum: OpAccum,
}

impl PushOperator for BufferSink {
    fn kind(&self) -> Option<OpKind> {
        self.op
    }
    fn accum(&self) -> &OpAccum {
        &self.accum
    }
    fn init_state(&self, _rows_hint: usize) -> StateInner {
        StateInner::Acc(Vec::new())
    }
    fn poll_push(&self, m: Morsel, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<PollPush> {
        if !cx.admit(self.kind(), st)? {
            return Ok(PollPush::Pending(m));
        }
        st.seen += m.rows();
        acc_push(st, m);
        Ok(PollPush::Pushed(None))
    }
    fn poll_finalize(&self, st: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<Finalize> {
        cx.fire_fault(self.kind(), st)?;
        self.accum.add_part(false);
        let batches = match &mut st.inner {
            StateInner::Acc(v) => std::mem::take(v),
            _ => unreachable!("buffer sink with non-acc state"),
        };
        Ok(Finalize::Sink(SinkPart::Batches(batches)))
    }
    fn complete(&self, parts: Vec<SinkPart>, _stats: &Stats) -> DbResult<()> {
        for (p, part) in parts.into_iter().enumerate() {
            if let SinkPart::Batches(bs) = part {
                if !bs.is_empty() {
                    self.cell.push_part(p, bs);
                }
            }
        }
        Ok(())
    }
}
