//! Per-partition operator compute, shared between the materializing
//! oracle ([`crate::ops`]) and the push-based pipeline stages
//! ([`crate::operators::stages`]).
//!
//! Both executors call these exact functions for the actual row work —
//! tier dispatch (vectorized i64 kernels vs the generic row-at-a-time
//! path), hashing, grouping, dedup, build/probe — so the pipelined
//! path is byte-identical to the oracle by construction: the only
//! differences between the two executors are scheduling and where the
//! intermediate batches live.

use crate::batch::{Batch, Column, SelVec};
use crate::error::{DbError, DbResult};
use crate::exec::{hash_key, key_has_null, row_key, FastMap, FastSet, KeyPart};
use crate::expr::Expr;
use crate::kernels;
use crate::ops::{AggExpr, AggFunc};
use crate::schema::{Field, Schema};
use crate::table::Distribution;
use crate::value::{DataType, Datum};
use std::collections::hash_map::Entry;

/// Accumulator for one aggregate within one group.
#[derive(Debug, Clone)]
pub(crate) enum AggState {
    /// Running min/max (`keep_less` = min).
    MinMax {
        /// Best value so far (NULL until a non-NULL arrives).
        best: Datum,
        /// True for min, false for max.
        keep_less: bool,
    },
    /// Non-null count.
    Count(i64),
    /// Integer sum plus a "saw any value" flag (empty sum is NULL).
    SumInt(i64, bool),
    /// Float sum plus a "saw any value" flag.
    SumFloat(f64, bool),
}

impl AggState {
    pub(crate) fn new(func: AggFunc, dtype: DataType) -> AggState {
        match func {
            AggFunc::Min => AggState::MinMax { best: Datum::Null, keep_less: true },
            AggFunc::Max => AggState::MinMax { best: Datum::Null, keep_less: false },
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => match dtype {
                DataType::Int64 => AggState::SumInt(0, false),
                DataType::Float64 => AggState::SumFloat(0.0, false),
            },
        }
    }

    pub(crate) fn update(&mut self, d: Datum) {
        match self {
            AggState::MinMax { best, keep_less } => {
                if d.is_null() {
                    return;
                }
                let replace = match best.sql_cmp(&d) {
                    None => true, // best is NULL
                    Some(ord) => {
                        if *keep_less {
                            ord == std::cmp::Ordering::Greater
                        } else {
                            ord == std::cmp::Ordering::Less
                        }
                    }
                };
                if replace {
                    *best = d;
                }
            }
            AggState::Count(n) => {
                if !d.is_null() {
                    *n += 1;
                }
            }
            AggState::SumInt(s, any) => {
                if let Datum::Int(v) = d {
                    *s = s.wrapping_add(v);
                    *any = true;
                }
            }
            AggState::SumFloat(s, any) => {
                if let Some(v) = d.as_double() {
                    *s += v;
                    *any = true;
                }
            }
        }
    }

    /// Merges another state of the same shape (for global aggregates).
    pub(crate) fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (s @ AggState::MinMax { .. }, AggState::MinMax { best, .. }) => s.update(*best),
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::SumInt(a, aa), AggState::SumInt(b, ba)) => {
                *a = a.wrapping_add(*b);
                *aa |= ba;
            }
            (AggState::SumFloat(a, aa), AggState::SumFloat(b, ba)) => {
                *a += b;
                *aa |= ba;
            }
            _ => unreachable!("merging mismatched aggregate states"),
        }
    }

    pub(crate) fn finish(&self) -> Datum {
        match self {
            AggState::MinMax { best, .. } => *best,
            AggState::Count(n) => Datum::Int(*n),
            AggState::SumInt(s, any) => {
                if *any {
                    Datum::Int(*s)
                } else {
                    Datum::Null
                }
            }
            AggState::SumFloat(s, any) => {
                if *any {
                    Datum::Double(*s)
                } else {
                    Datum::Null
                }
            }
        }
    }
}

/// Filters one batch by the predicate, with `base` the batch's row
/// offset within its partition (for `random()` reproducibility under
/// morsel splitting).
pub(crate) fn filter_part(
    batch: &Batch,
    pred: &Expr,
    part: usize,
    base: usize,
) -> DbResult<Batch> {
    let mask = pred.eval_predicate_at(batch, part, base)?;
    let sel: SelVec = mask
        .iter()
        .enumerate()
        .filter_map(|(i, &keep)| keep.then_some(i as u32))
        .collect();
    Ok(batch.take_u32(&sel))
}

/// Projects one batch through the expressions.
pub(crate) fn project_part(
    batch: &Batch,
    exprs: &[(Expr, Field)],
    part: usize,
    base: usize,
) -> DbResult<Batch> {
    let mut cols = Vec::with_capacity(exprs.len());
    for (e, _) in exprs {
        cols.push(e.eval_at(batch, part, base)?);
    }
    // A projection of zero columns is impossible through SQL.
    Ok(Batch::from_columns(cols))
}

/// Whether a hash distribution survives a projection: every
/// distribution column must pass through as a bare column reference.
pub(crate) fn projected_dist(exprs: &[(Expr, Field)], dist: &Distribution) -> Distribution {
    match dist {
        Distribution::Hash(cols) => {
            let mapped: Option<Vec<usize>> = cols
                .iter()
                .map(|&c| {
                    exprs.iter().position(|(e, _)| matches!(e, Expr::Column(i) if *i == c))
                })
                .collect();
            match mapped {
                Some(m) => Distribution::Hash(m),
                None => Distribution::Arbitrary,
            }
        }
        Distribution::Arbitrary => Distribution::Arbitrary,
    }
}

/// Buckets one batch's rows by key hash into `n` destination batches.
/// Returns the moved byte volume, the per-destination batches, and
/// whether the vectorized tier ran.
pub(crate) fn bucket_part(
    batch: &Batch,
    keys: &[usize],
    n: usize,
    vectorized: bool,
) -> DbResult<(u64, Vec<Batch>, bool)> {
    let int_keys = if vectorized {
        keys.iter().map(|&c| batch.column(c).as_int_parts()).collect::<Option<Vec<_>>>()
    } else {
        None
    };
    let was_vec = int_keys.is_some();
    let dests: SelVec = match int_keys {
        Some(cols) => kernels::bucket_rows(&cols, n as u64),
        None => (0..batch.rows())
            .map(|row| (hash_key(batch, row, keys) % n as u64) as u32)
            .collect(),
    };
    let mut sels: Vec<SelVec> = vec![Vec::new(); n];
    for (row, &d) in dests.iter().enumerate() {
        sels[d as usize].push(row as u32);
    }
    let out: Vec<Batch> = sels.iter().map(|sel| batch.take_u32(sel)).collect();
    let moved: u64 = out.iter().map(Batch::byte_size).sum();
    Ok((moved, out, was_vec))
}

/// A hash-join build side for one partition: the buffered build batch
/// plus its hash table (tier chosen by `use_vec`).
pub(crate) struct JoinBuildPart {
    /// The build-side partition rows.
    pub batch: Batch,
    /// The table built over them.
    pub built: BuiltJoin,
}

/// The two build-table tiers.
pub(crate) enum BuiltJoin {
    /// Vectorized single-i64-key build.
    Vec(kernels::JoinBuild),
    /// Generic row-at-a-time build: key → matching row indices.
    Gen(FastMap<Vec<KeyPart>, Vec<usize>>),
}

/// Builds the join table over one build-side partition. `use_vec` must
/// only be true for a single `Int64` key (the caller decides from the
/// schema or the batch, identically on both executors).
pub(crate) fn build_join_part(batch: Batch, keys: &[usize], use_vec: bool) -> JoinBuildPart {
    let built = if use_vec {
        match batch.column(keys[0]).as_int_parts() {
            Some((vals, valid)) => BuiltJoin::Vec(kernels::build_join(vals, valid)),
            None => BuiltJoin::Gen(generic_build(&batch, keys)),
        }
    } else {
        BuiltJoin::Gen(generic_build(&batch, keys))
    };
    JoinBuildPart { batch, built }
}

fn generic_build(batch: &Batch, keys: &[usize]) -> FastMap<Vec<KeyPart>, Vec<usize>> {
    let mut table: FastMap<Vec<KeyPart>, Vec<usize>> = FastMap::default();
    for row in 0..batch.rows() {
        if key_has_null(batch, row, keys) {
            continue;
        }
        table.entry(row_key(batch, row, keys)).or_default().push(row);
    }
    table
}

/// Probes one build table with one probe-side batch, producing joined
/// output (left columns then `right_width` right columns, NULL-padded
/// for unmatched left-outer rows).
pub(crate) fn probe_part(
    build: &JoinBuildPart,
    lb: &Batch,
    l_keys: &[usize],
    left_outer: bool,
    right_width: usize,
) -> DbResult<Batch> {
    let rb = &build.batch;
    match &build.built {
        BuiltJoin::Vec(jb) => {
            let (l_vals, l_valid) = lb.column(l_keys[0]).as_int_parts().ok_or_else(|| {
                DbError::Exec("vectorized join probe over non-integer key".into())
            })?;
            let mut l_sel: SelVec = Vec::new();
            let mut r_sel: SelVec = Vec::new();
            kernels::probe_join(jb, l_vals, l_valid, left_outer, &mut l_sel, &mut r_sel);
            let mut cols: Vec<Column> = Vec::with_capacity(lb.width() + right_width);
            for c in lb.columns() {
                cols.push(c.take_u32(&l_sel));
            }
            for ci in 0..right_width {
                cols.push(rb.column(ci).take_u32_padded(&r_sel));
            }
            Ok(Batch::from_columns(cols))
        }
        BuiltJoin::Gen(table) => {
            let mut l_idx: Vec<usize> = Vec::new();
            let mut r_idx: Vec<Option<usize>> = Vec::new();
            for row in 0..lb.rows() {
                let matched = if key_has_null(lb, row, l_keys) {
                    None
                } else {
                    table.get(&row_key(lb, row, l_keys))
                };
                match matched {
                    Some(rows) => {
                        for &r in rows {
                            l_idx.push(row);
                            r_idx.push(Some(r));
                        }
                    }
                    None => {
                        if left_outer {
                            l_idx.push(row);
                            r_idx.push(None);
                        }
                    }
                }
            }
            let mut cols: Vec<Column> = Vec::with_capacity(lb.width() + right_width);
            for c in lb.columns() {
                cols.push(c.take(&l_idx));
            }
            for ci in 0..right_width {
                let src = rb.column(ci);
                let mut out = Column::empty(src.data_type());
                for r in &r_idx {
                    match r {
                        Some(row) => out.push_from(src, *row),
                        None => out.push(Datum::Null),
                    }
                }
                cols.push(out);
            }
            Ok(Batch::from_columns(cols))
        }
    }
}

/// The output schema and per-aggregate output types of an aggregation
/// over `schema`.
pub(crate) fn agg_output(
    schema: &Schema,
    group_cols: &[usize],
    aggs: &[AggExpr],
) -> DbResult<(Schema, Vec<DataType>)> {
    let in_types: Vec<DataType> = schema.fields().iter().map(|f| f.dtype).collect();
    let agg_types: Vec<DataType> = aggs
        .iter()
        .map(|a| Ok(a.func.output_type(a.input.output_type(&in_types)?)))
        .collect::<DbResult<_>>()?;
    let mut out_fields: Vec<Field> =
        group_cols.iter().map(|&c| schema.field(c).clone()).collect();
    for (i, (a, ty)) in aggs.iter().zip(&agg_types).enumerate() {
        let name = format!("agg{i}");
        let mut f = Field::new(name, *ty);
        f.nullable = !matches!(a.func, AggFunc::Count);
        out_fields.push(f);
    }
    Ok((crate::ops::build_schema_allow_dups(out_fields), agg_types))
}

/// Grouped aggregation over one (already co-located) partition,
/// emitting groups in first-seen order. Returns the output batch and
/// whether the vectorized tier ran.
pub(crate) fn agg_partition(
    batch: &Batch,
    part: usize,
    group: &[usize],
    aggs: &[AggExpr],
    agg_types: &[DataType],
    vectorized: bool,
) -> DbResult<(Batch, bool)> {
    // Evaluate agg inputs once per partition.
    let mut agg_inputs = Vec::with_capacity(aggs.len());
    for a in aggs {
        agg_inputs.push(a.input.eval(batch, part)?);
    }
    let new_states = || -> Vec<AggState> {
        aggs.iter()
            .zip(agg_types.iter())
            .map(|(a, ty)| AggState::new(a.func, *ty))
            .collect()
    };
    // Vectorized tier: a single Int64 group key (NULLs included) goes
    // through the group_ids kernel — one slice pass, no per-row key
    // vectors.
    let int_key = if vectorized {
        if let &[g] = group {
            batch.column(g).as_int_parts()
        } else {
            None
        }
    } else {
        None
    };
    if let Some((keys, validity)) = int_key {
        let gi = kernels::group_ids(keys, validity);
        let mut states: Vec<Vec<AggState>> = (0..gi.keys.len()).map(|_| new_states()).collect();
        for (row, &g) in gi.row_groups.iter().enumerate() {
            for (st, col) in states[g as usize].iter_mut().zip(&agg_inputs) {
                st.update(col.datum(row));
            }
        }
        let mut gcol = Column::empty(DataType::Int64);
        for (i, &k) in gi.keys.iter().enumerate() {
            if gi.null_group == Some(i as u32) {
                gcol.push(Datum::Null);
            } else {
                gcol.push(Datum::Int(k));
            }
        }
        let mut cols = Vec::with_capacity(1 + agg_types.len());
        cols.push(gcol);
        let mut agg_cols: Vec<Column> = agg_types.iter().map(|&t| Column::empty(t)).collect();
        for group_states in states {
            for (c, st) in agg_cols.iter_mut().zip(&group_states) {
                c.push(st.finish());
            }
        }
        cols.extend(agg_cols);
        return Ok((Batch::from_columns(cols), true));
    }
    // Generic tier: multi-column or non-integer keys.
    let mut order: Vec<Vec<Datum>> = Vec::new();
    let mut groups: FastMap<Vec<KeyPart>, (usize, Vec<AggState>)> = FastMap::default();
    for row in 0..batch.rows() {
        let key = row_key(batch, row, group);
        let entry = match groups.entry(key) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                order.push(group.iter().map(|&c| batch.column(c).datum(row)).collect());
                e.insert((order.len() - 1, new_states()))
            }
        };
        for (st, col) in entry.1.iter_mut().zip(&agg_inputs) {
            st.update(col.datum(row));
        }
    }
    // Emit groups in first-seen order for determinism.
    let mut finished: Vec<(usize, Vec<AggState>)> = groups.into_values().collect();
    finished.sort_by_key(|(ord, _)| *ord);
    let mut cols: Vec<Column> =
        group.iter().map(|&c| Column::empty(batch.column(c).data_type())).collect();
    let mut agg_cols: Vec<Column> = agg_types.iter().map(|&t| Column::empty(t)).collect();
    for (ord, states) in finished {
        for (c, d) in cols.iter_mut().zip(&order[ord]) {
            c.push(*d);
        }
        for (c, st) in agg_cols.iter_mut().zip(&states) {
            c.push(st.finish());
        }
    }
    cols.extend(agg_cols);
    Ok((Batch::from_columns(cols), false))
}

/// One partition's partial states for a global (ungrouped) aggregate.
pub(crate) fn global_agg_partial(
    batch: &Batch,
    part: usize,
    aggs: &[AggExpr],
    agg_types: &[DataType],
) -> DbResult<Vec<AggState>> {
    let mut states: Vec<AggState> = aggs
        .iter()
        .zip(agg_types.iter())
        .map(|(a, ty)| AggState::new(a.func, *ty))
        .collect();
    for (a, st) in aggs.iter().zip(states.iter_mut()) {
        let col = a.input.eval(batch, part)?;
        for row in 0..batch.rows() {
            st.update(col.datum(row));
        }
    }
    Ok(states)
}

/// Merges per-partition partials into the single global output row.
pub(crate) fn merge_partials(
    partials: &[Vec<AggState>],
    aggs: &[AggExpr],
    agg_types: &[DataType],
) -> Batch {
    let mut merged: Vec<AggState> = aggs
        .iter()
        .zip(agg_types)
        .map(|(a, ty)| AggState::new(a.func, *ty))
        .collect();
    for p in partials {
        for (m, s) in merged.iter_mut().zip(p) {
            m.merge(s);
        }
    }
    let mut cols: Vec<Column> = agg_types.iter().map(|&t| Column::empty(t)).collect();
    for (c, st) in cols.iter_mut().zip(&merged) {
        c.push(st.finish());
    }
    Batch::from_columns(cols)
}

/// Stateful per-partition duplicate elimination, usable one morsel at a
/// time: survivors are exactly the first occurrences across all pushes,
/// so incremental dedup equals concat-then-dedup.
pub(crate) enum DedupState {
    /// Vectorized single Int64 column.
    Ints(kernels::DistinctInts),
    /// Vectorized Int64 pair — the contraction rounds' edge shape.
    Pairs(kernels::DistinctPairs),
    /// Generic row keys over all columns.
    Gen {
        /// Keys seen so far.
        seen: FastSet<Vec<KeyPart>>,
        /// All column indices (dedup keys on the whole row).
        cols: Vec<usize>,
    },
}

impl DedupState {
    /// Picks the tier for a relation shape. The decision depends only
    /// on column count and dtypes, so the oracle (deciding per batch)
    /// and the pipeline compiler (deciding per schema) always agree.
    /// `rows` is an upper bound on total inserts (the partition's
    /// queued row count, or the batch size on the oracle path) so the
    /// table is sized once up front instead of rehashing as it grows.
    pub(crate) fn for_shape(dtypes: &[DataType], vectorized: bool, rows: usize) -> DedupState {
        let rows = rows.max(16);
        if vectorized {
            match dtypes {
                [DataType::Int64] => {
                    return DedupState::Ints(kernels::DistinctInts::for_rows(rows))
                }
                [DataType::Int64, DataType::Int64] => {
                    return DedupState::Pairs(kernels::DistinctPairs::for_rows(rows))
                }
                _ => {}
            }
        }
        DedupState::Gen { seen: FastSet::default(), cols: (0..dtypes.len()).collect() }
    }

    /// True when this state runs the vectorized tier.
    pub(crate) fn is_vectorized(&self) -> bool {
        !matches!(self, DedupState::Gen { .. })
    }

    /// Registers one batch and returns the selection of its
    /// globally-first-seen rows — `None` when every row survives, so
    /// callers that own the batch can pass it through without a copy
    /// (the common case: post-exchange morsels rarely carry dups).
    pub(crate) fn keep(&mut self, batch: &Batch) -> Option<SelVec> {
        let keep: SelVec = match self {
            DedupState::Ints(set) => {
                let (v, m) = batch.column(0).as_int_parts().expect("Ints tier needs i64");
                set.reserve(v.len());
                set.filter(v, m)
            }
            DedupState::Pairs(set) => {
                let (a, am) = batch.column(0).as_int_parts().expect("Pairs tier needs i64");
                let (b, bm) = batch.column(1).as_int_parts().expect("Pairs tier needs i64");
                set.reserve(a.len());
                set.filter(a, am, b, bm)
            }
            DedupState::Gen { seen, cols } => {
                let mut keep: SelVec = Vec::new();
                seen.reserve(batch.rows());
                for row in 0..batch.rows() {
                    if seen.insert(row_key(batch, row, cols)) {
                        keep.push(row as u32);
                    }
                }
                keep
            }
        };
        if keep.len() == batch.rows() {
            None
        } else {
            Some(keep)
        }
    }

    /// Filters one batch down to its globally-first-seen rows.
    pub(crate) fn push(&mut self, batch: Batch) -> Batch {
        match self.keep(&batch) {
            None => batch,
            Some(sel) => batch.take_u32(&sel),
        }
    }
}
