//! Push-based physical operators.
//!
//! A pipeline is a chain of [`PushOperator`]s ending in a sink.
//! Morsels (batches, or zero-copy references into a scanned table)
//! are pushed through the chain one partition at a time via
//! [`PushOperator::poll_push`]; when a partition's input is exhausted
//! the driver walks the chain with [`PushOperator::poll_finalize`].
//! Streaming stages (filter, project, join probe, dedup) transform and
//! forward; pipeline breakers (join build, aggregate, exchange, result
//! buffer) accumulate into a [`SinkPart`] that the pipeline's
//! [`PushOperator::complete`] hands to the next pipeline.
//!
//! Backpressure: every push spends fuel from [`PushCx`]. When fuel
//! runs out an operator answers [`PollPush::Pending`], the partition
//! driver parks its position, and the cooperative scheduler
//! ([`crate::pool::SegmentPool::run_coop`]) rotates to another
//! partition or another statement before resuming.

pub(crate) mod compute;
pub(crate) mod stages;

use crate::batch::Batch;
use crate::error::DbResult;
use crate::fault::FaultContext;
use crate::plan::QueryGuard;
use crate::stats::{OpKind, OpMetrics, Stats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One unit of data flowing through a pipeline: either an owned batch
/// or a zero-copy reference into a shared (scanned) partition list.
pub(crate) enum Morsel {
    /// An owned batch produced by an upstream stage.
    Owned(Batch),
    /// A borrowed view of partition `index` in a shared table.
    Shared {
        /// The table's partitions, shared with the catalog.
        parts: Arc<Vec<Batch>>,
        /// Which partition this morsel is.
        index: usize,
    },
}

impl Morsel {
    /// Borrows the underlying batch.
    pub(crate) fn as_batch(&self) -> &Batch {
        match self {
            Morsel::Owned(b) => b,
            Morsel::Shared { parts, index } => &parts[*index],
        }
    }

    /// Takes the batch, cloning only when it is shared.
    pub(crate) fn into_batch(self) -> Batch {
        match self {
            Morsel::Owned(b) => b,
            Morsel::Shared { parts, index } => parts[index].clone(),
        }
    }

    /// Row count.
    pub(crate) fn rows(&self) -> usize {
        self.as_batch().rows()
    }
}

/// Result of pushing one morsel into an operator.
pub(crate) enum PollPush {
    /// The morsel was consumed; streaming stages yield their output
    /// batch, sinks yield `None`.
    Pushed(Option<Batch>),
    /// Out of fuel — the morsel is handed back untouched and the
    /// partition driver must yield and retry later.
    Pending(Morsel),
}

/// Result of finalizing one partition of an operator.
pub(crate) enum Finalize {
    /// Streaming stage: optionally flush a final batch downstream.
    Stream(Option<Batch>),
    /// Sink: the partition's accumulated output for `complete`.
    Sink(SinkPart),
}

/// One partition's worth of sink output.
pub(crate) enum SinkPart {
    /// Buffered batches (result / union / aggregate output).
    Batches(Vec<Batch>),
    /// A hash-join build side.
    Build(compute::JoinBuildPart),
    /// Partial states of a global aggregate.
    Partials(Vec<compute::AggState>),
    /// Exchange output: for each destination partition, this source's
    /// bucketed batches in arrival order, plus moved byte volume.
    Buckets {
        /// `per_dest[d]` = batches bound for destination `d`.
        per_dest: Vec<Vec<Batch>>,
        /// Total bytes leaving this source partition.
        moved: u64,
    },
}

impl SinkPart {
    /// Output row count attributed to the owning stage.
    pub(crate) fn rows(&self) -> u64 {
        match self {
            SinkPart::Batches(bs) => bs.iter().map(|b| b.rows() as u64).sum(),
            // Build rows are charged by the probe stage; global-agg
            // output (one row) is charged at merge time in `complete`.
            SinkPart::Build(_) | SinkPart::Partials(_) => 0,
            SinkPart::Buckets { per_dest, .. } => {
                per_dest.iter().flatten().map(|b| b.rows() as u64).sum()
            }
        }
    }
}

/// Per-(operator, partition) mutable state.
pub(crate) struct PartState {
    /// Whether this operator already hit its fault-injection site for
    /// this partition (faults fire once per operator per partition,
    /// mirroring the materializing executor).
    pub fired: bool,
    /// Cumulative input rows seen — the row-offset base that keeps
    /// `random()` stable under morsel splitting.
    pub seen: usize,
    /// Operator-specific accumulation.
    pub inner: StateInner,
}

impl PartState {
    pub(crate) fn new(inner: StateInner) -> PartState {
        PartState { fired: false, seen: 0, inner }
    }
}

/// Operator-specific partition state.
pub(crate) enum StateInner {
    /// Stateless streaming stage.
    None,
    /// Buffered input batches (breakers that need the whole partition).
    Acc(Vec<Batch>),
    /// Streaming dedup survivors-so-far.
    Dedup(compute::DedupState),
    /// Exchange buckets accumulated per destination.
    Buckets {
        /// `per_dest[d]` = batches bound for destination `d` so far.
        per_dest: Vec<Vec<Batch>>,
        /// Bytes bucketed so far.
        moved: u64,
    },
}

/// Immutable per-query execution environment shared by all pipelines.
pub(crate) struct ExecEnv {
    /// Cancellation / deadline guard, checked every scheduler slice.
    pub guard: QueryGuard,
    /// Optional fault-injection context (chaos testing).
    pub faults: Option<FaultContext>,
}

/// Per-slice push context: partition id, environment, and the fuel
/// budget realizing `PollPush::Pending` backpressure.
pub(crate) struct PushCx<'a> {
    /// Partition being driven.
    pub part: usize,
    /// Query environment.
    pub env: &'a ExecEnv,
    /// Morsels this slice may still process before yielding.
    pub fuel: u32,
}

impl PushCx<'_> {
    /// Gatekeeper called by every `poll_push`: spends one fuel unit and
    /// runs the operator's fault-injection site once per partition.
    /// Returns `false` (yield) when fuel is exhausted.
    pub(crate) fn admit(&mut self, kind: Option<OpKind>, state: &mut PartState) -> DbResult<bool> {
        if self.fuel == 0 {
            return Ok(false);
        }
        self.fuel -= 1;
        self.fire_fault(kind, state)?;
        Ok(true)
    }

    /// Runs the fault site if it has not fired for this partition yet.
    /// Also used by `poll_finalize` so empty partitions still pass
    /// through injection, like the materializing executor.
    pub(crate) fn fire_fault(&self, kind: Option<OpKind>, state: &mut PartState) -> DbResult<()> {
        if !state.fired {
            state.fired = true;
            if let (Some(k), Some(f)) = (kind, &self.env.faults) {
                f.check(k, self.part)?;
            }
        }
        Ok(())
    }
}

/// Lock-free metric accumulator for one pipeline stage. The driver
/// folds it into exactly one [`OpMetrics`], which is charged to
/// [`Stats`] and recorded in the profile — the same numbers in both
/// places, so profile/op-stats reconciliation holds by construction.
#[derive(Default)]
pub(crate) struct OpAccum {
    rows_in: AtomicU64,
    rows_out: AtomicU64,
    nanos: AtomicU64,
    vec_parts: AtomicU64,
    gen_parts: AtomicU64,
    exchange_bytes: AtomicU64,
}

impl OpAccum {
    pub(crate) fn add_rows_in(&self, n: u64) {
        self.rows_in.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_rows_out(&self, n: u64) {
        self.rows_out.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_nanos(&self, n: u64) {
        self.nanos.fetch_add(n, Ordering::Relaxed);
    }
    /// Counts one partition against the vectorized or generic tier.
    pub(crate) fn add_part(&self, vectorized: bool) {
        if vectorized {
            self.vec_parts.fetch_add(1, Ordering::Relaxed);
        } else {
            self.gen_parts.fetch_add(1, Ordering::Relaxed);
        }
    }
    pub(crate) fn add_exchange_bytes(&self, n: u64) {
        self.exchange_bytes.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn exchange_bytes(&self) -> u64 {
        self.exchange_bytes.load(Ordering::Relaxed)
    }
    /// Snapshot as the metrics struct charged to [`Stats`].
    pub(crate) fn metrics(&self) -> OpMetrics {
        OpMetrics {
            vectorized_parts: self.vec_parts.load(Ordering::Relaxed),
            generic_parts: self.gen_parts.load(Ordering::Relaxed),
            rows_in: self.rows_in.load(Ordering::Relaxed),
            rows_out: self.rows_out.load(Ordering::Relaxed),
            nanos: self.nanos.load(Ordering::Relaxed),
        }
    }
}

/// A push-based physical operator. One instance serves every partition
/// of its pipeline; per-partition mutation lives in [`PartState`],
/// which the driver guarantees is touched by one thread at a time.
pub(crate) trait PushOperator: Send + Sync {
    /// Which op-stats family this stage charges, if any.
    fn kind(&self) -> Option<OpKind>;
    /// The stage's metric accumulator.
    fn accum(&self) -> &OpAccum;
    /// Fresh state for one partition. `rows_hint` is the total row
    /// count queued for the partition at pipeline start — an upper
    /// bound on what this stage will see, letting stateful stages
    /// (dedup) size hash tables once instead of growing per morsel.
    fn init_state(&self, rows_hint: usize) -> StateInner {
        let _ = rows_hint;
        StateInner::None
    }
    /// Pushes one morsel into this operator for `cx.part`.
    fn poll_push(
        &self,
        morsel: Morsel,
        state: &mut PartState,
        cx: &mut PushCx<'_>,
    ) -> DbResult<PollPush>;
    /// Called once per partition after its last push.
    fn poll_finalize(&self, state: &mut PartState, cx: &mut PushCx<'_>) -> DbResult<Finalize>;
    /// Called once per pipeline (sinks only), with every partition's
    /// [`SinkPart`] in partition order, after all partitions finish.
    fn complete(&self, parts: Vec<SinkPart>, stats: &Stats) -> DbResult<()> {
        let _ = (parts, stats);
        Ok(())
    }
}
