//! Logical query plans and their execution.
//!
//! The SQL planner lowers statements into this small algebra; the
//! executor walks it bottom-up, producing partitioned data. There is no
//! cost-based optimisation — plans follow the query's structure, with
//! the one distribution-awareness HAWQ-style optimisation handled
//! inside the operators (exchange elision for co-located inputs).

use crate::error::{DbError, DbResult};
use crate::expr::Expr;
use crate::ops::{self, AggExpr, JoinType, PData};
use crate::schema::Field;
use crate::stats::Stats;
use crate::table::Table;
use crate::trace::{ProfileNode, SpanSink};

/// A logical plan node.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Scan a stored table.
    Scan {
        /// Table name.
        table: String,
    },
    /// A single row with one dummy integer column — the base of a
    /// FROM-less `SELECT <literals>`.
    OneRow,
    /// Compute expressions over the input.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output expressions with their fields.
        exprs: Vec<(Expr, Field)>,
    },
    /// Keep rows satisfying the predicate.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Boolean predicate.
        pred: Expr,
    },
    /// Hash equi-join.
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Left key column indices.
        l_keys: Vec<usize>,
        /// Right key column indices.
        r_keys: Vec<usize>,
        /// Inner or left outer.
        join_type: JoinType,
    },
    /// Grouped or global aggregation.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Group-by column indices (empty = global).
        group_cols: Vec<usize>,
        /// Aggregate computations.
        aggs: Vec<AggExpr>,
    },
    /// Remove duplicate rows.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Concatenate same-arity inputs.
    UnionAll {
        /// The inputs, at least one.
        inputs: Vec<Plan>,
    },
}

/// Executes a plan while profiling every node, returning the data plus
/// the annotated [`ProfileNode`] tree — the spine of `EXPLAIN ANALYZE`
/// and of `QueryProfile` capture.
///
/// Each plan node gets a fresh [`SpanSink`]; the operators it invokes
/// (including any internal exchanges a join or aggregate inserts)
/// flush their [`crate::OpProfile`] records there, and the output's
/// per-segment row counts are read straight off the produced
/// partitions, so distribution skew is visible per node. Node wall
/// times are inclusive of children, like real EXPLAIN ANALYZE's
/// actual-time figures.
pub fn execute_profiled(plan: &Plan, ctx: &ExecContext<'_>) -> DbResult<(PData, ProfileNode)> {
    ctx.guard.check()?;
    let label = node_label(plan);
    let sink = std::sync::Arc::new(SpanSink::default());
    let op_ctx = || {
        let mut c = ctx.op_ctx();
        c.trace = Some(sink.clone());
        c
    };
    let start = std::time::Instant::now();
    let mut children = Vec::new();
    let mut run_child = |p: &Plan| -> DbResult<PData> {
        let (data, node) = execute_profiled(p, ctx)?;
        children.push(node);
        Ok(data)
    };
    let data = match plan {
        Plan::Scan { .. } | Plan::OneRow => execute(plan, ctx)?,
        Plan::Project { input, exprs } => {
            let child = run_child(input)?;
            ops::project(child, exprs, &op_ctx())?
        }
        Plan::Filter { input, pred } => {
            let child = run_child(input)?;
            ops::filter(child, pred, &op_ctx())?
        }
        Plan::Join { left, right, l_keys, r_keys, join_type } => {
            let l = run_child(left)?;
            let r = run_child(right)?;
            ops::hash_join(l, r, l_keys, r_keys, *join_type, &op_ctx())?
        }
        Plan::Aggregate { input, group_cols, aggs } => {
            let child = run_child(input)?;
            ops::aggregate(child, group_cols, aggs, &op_ctx())?
        }
        Plan::Distinct { input } => {
            let child = run_child(input)?;
            ops::distinct(child, &op_ctx())?
        }
        Plan::UnionAll { inputs } => {
            // All branches concatenate in a single n-ary pass; folding
            // pairwise would re-copy the accumulator once per branch.
            let mut branches = Vec::with_capacity(inputs.len());
            for p in inputs {
                branches.push(run_child(p)?);
            }
            ops::union_all_n(branches, &op_ctx())?
        }
    };
    let node = ProfileNode {
        label,
        rows_out: data.row_count() as u64,
        seg_rows: data.parts.iter().map(|b| b.rows() as u64).collect(),
        nanos: start.elapsed().as_nanos() as u64,
        ops: sink.take(),
        children,
    };
    Ok((data, node))
}

fn node_label(plan: &Plan) -> String {
    match plan {
        Plan::Scan { table } => format!("Scan: {table}"),
        Plan::OneRow => "OneRow".into(),
        Plan::Project { exprs, .. } => format!("Project: {} columns", exprs.len()),
        Plan::Filter { pred, .. } => format!("Filter: {pred:?}"),
        Plan::Join { join_type, l_keys, r_keys, .. } => {
            format!("{join_type:?}Join: left{l_keys:?} = right{r_keys:?}")
        }
        Plan::Aggregate { group_cols, aggs, .. } => {
            format!("Aggregate: group by {group_cols:?}, {} aggregates", aggs.len())
        }
        Plan::Distinct { .. } => "Distinct".into(),
        Plan::UnionAll { inputs } => format!("UnionAll ({} branches)", inputs.len()),
    }
}

/// Renders a plan as an indented tree — the `EXPLAIN` output.
pub fn explain(plan: &Plan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn render(plan: &Plan, depth: usize, out: &mut String) {
    use std::fmt::Write as _;
    let pad = "  ".repeat(depth);
    match plan {
        Plan::Scan { table } => {
            let _ = writeln!(out, "{pad}Scan: {table}");
        }
        Plan::OneRow => {
            let _ = writeln!(out, "{pad}OneRow");
        }
        Plan::Project { input, exprs } => {
            let cols: Vec<String> =
                exprs.iter().map(|(e, f)| format!("{e:?} as {}", f.name)).collect();
            let _ = writeln!(out, "{pad}Project: {}", cols.join(", "));
            render(input, depth + 1, out);
        }
        Plan::Filter { input, pred } => {
            let _ = writeln!(out, "{pad}Filter: {pred:?}");
            render(input, depth + 1, out);
        }
        Plan::Join { left, right, l_keys, r_keys, join_type } => {
            let _ = writeln!(
                out,
                "{pad}{join_type:?}Join: left{l_keys:?} = right{r_keys:?}"
            );
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        Plan::Aggregate { input, group_cols, aggs } => {
            let fns: Vec<String> =
                aggs.iter().map(|a| format!("{:?}({:?})", a.func, a.input)).collect();
            let _ = writeln!(
                out,
                "{pad}Aggregate: group by {group_cols:?}, [{}]",
                fns.join(", ")
            );
            render(input, depth + 1, out);
        }
        Plan::Distinct { input } => {
            let _ = writeln!(out, "{pad}Distinct");
            render(input, depth + 1, out);
        }
        Plan::UnionAll { inputs } => {
            let _ = writeln!(out, "{pad}UnionAll ({} branches)", inputs.len());
            for i in inputs {
                render(i, depth + 1, out);
            }
        }
    }
}

/// Interrupt state threaded through the executor: a cooperative cancel
/// flag and an optional deadline. The executor calls [`QueryGuard::check`]
/// on entry to every plan node — and each operator re-checks at the
/// start of every partition task on the segment pool — so a cancelled
/// session or an expired statement timeout stops a long multi-join
/// round at the next operator boundary, before any result is stored,
/// keeping the catalog clean. Owned (the flag is an `Arc`) so it can be
/// cloned into `'static` pool tasks.
#[derive(Debug, Default, Clone)]
pub struct QueryGuard {
    /// When set and true, the statement aborts with
    /// [`DbError::Cancelled`].
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// When set and in the past, the statement aborts with
    /// [`DbError::Cancelled`].
    pub deadline: Option<std::time::Instant>,
}

impl QueryGuard {
    /// Returns `Err(DbError::Cancelled)` if the cancel flag is raised
    /// or the deadline has passed; otherwise `Ok(())`.
    pub fn check(&self) -> DbResult<()> {
        if let Some(flag) = &self.cancel {
            if flag.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(DbError::Cancelled("query cancelled".into()));
            }
        }
        if let Some(deadline) = self.deadline {
            if std::time::Instant::now() >= deadline {
                return Err(DbError::Timeout("statement deadline exceeded".into()));
            }
        }
        Ok(())
    }
}

/// Everything the executor needs from the cluster.
pub struct ExecContext<'a> {
    /// Table lookup.
    pub lookup: &'a dyn Fn(&str) -> DbResult<Table>,
    /// Whether co-located inputs may skip exchanges
    /// (false under [`crate::ExecutionProfile::External`]).
    pub allow_colocated: bool,
    /// Resource counters.
    pub stats: &'a Stats,
    /// The cluster's segment worker pool.
    pub pool: &'a crate::pool::SegmentPool,
    /// Number of segments — every operator produces this many
    /// partitions, keeping partition counts uniform across the plan.
    pub segments: usize,
    /// Cancellation / deadline checkpoints (default: never interrupts).
    pub guard: QueryGuard,
    /// Whether operators may dispatch to the vectorized i64 kernels
    /// (false forces the generic row-at-a-time path — the parity
    /// suite's oracle mode).
    pub vectorized: bool,
    /// Fault injection for this statement (None ⇒ no faults — the
    /// common path costs one branch per partition).
    pub faults: Option<crate::fault::FaultContext>,
    /// Span collector for the active statement trace (None ⇒ tracing
    /// off — the common path costs one branch per operator).
    pub spans: Option<std::sync::Arc<crate::span::ActiveTrace>>,
}

impl<'a> ExecContext<'a> {
    /// The operator-facing slice of this context.
    pub fn op_ctx(&self) -> ops::OpCtx<'a> {
        ops::OpCtx {
            stats: self.stats,
            pool: self.pool,
            segments: self.segments,
            allow_colocated: self.allow_colocated,
            guard: self.guard.clone(),
            vectorized: self.vectorized,
            trace: None,
            faults: self.faults.clone(),
            spans: self.spans.clone(),
        }
    }
}

/// Executes a plan to partitioned data.
pub fn execute(plan: &Plan, ctx: &ExecContext<'_>) -> DbResult<PData> {
    ctx.guard.check()?;
    match plan {
        Plan::Scan { table } => {
            let t = (ctx.lookup)(table)?;
            Ok(PData {
                schema: t.schema.clone(),
                parts: t.partitions.as_ref().clone(),
                dist: t.distribution.clone(),
            })
        }
        Plan::OneRow => {
            use crate::batch::{Batch, Column};
            use crate::schema::Schema;
            use crate::value::DataType;
            let schema = Schema::new(vec![Field::new("__one", DataType::Int64)]);
            let mut parts = vec![Batch::from_columns(vec![Column::from_ints(vec![0])])];
            for _ in 1..ctx.segments {
                parts.push(Batch::empty(&schema));
            }
            Ok(PData { schema, parts, dist: crate::table::Distribution::Arbitrary })
        }
        Plan::Project { input, exprs } => {
            let data = execute(input, ctx)?;
            ops::project(data, exprs, &ctx.op_ctx())
        }
        Plan::Filter { input, pred } => {
            let data = execute(input, ctx)?;
            ops::filter(data, pred, &ctx.op_ctx())
        }
        Plan::Join { left, right, l_keys, r_keys, join_type } => {
            let l = execute(left, ctx)?;
            let r = execute(right, ctx)?;
            ops::hash_join(l, r, l_keys, r_keys, *join_type, &ctx.op_ctx())
        }
        Plan::Aggregate { input, group_cols, aggs } => {
            let data = execute(input, ctx)?;
            ops::aggregate(data, group_cols, aggs, &ctx.op_ctx())
        }
        Plan::Distinct { input } => {
            let data = execute(input, ctx)?;
            ops::distinct(data, &ctx.op_ctx())
        }
        Plan::UnionAll { inputs } => {
            let mut branches = Vec::with_capacity(inputs.len());
            for p in inputs {
                branches.push(execute(p, ctx)?);
            }
            ops::union_all_n(branches, &ctx.op_ctx())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{Batch, Column};
    use crate::expr::CmpOp;
    use crate::schema::Schema;
    use crate::table::Distribution;
    use crate::value::{DataType, Datum};

    fn test_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("v", DataType::Int64),
            Field::new("w", DataType::Int64),
        ]);
        let parts = vec![
            Batch::from_columns(vec![
                Column::from_ints(vec![1, 2]),
                Column::from_ints(vec![10, 20]),
            ]),
            Batch::from_columns(vec![
                Column::from_ints(vec![3]),
                Column::from_ints(vec![30]),
            ]),
        ];
        Table::new(schema, parts, Distribution::Arbitrary)
    }

    fn ctx_eval(plan: &Plan) -> DbResult<PData> {
        let stats = Stats::new();
        let pool = crate::pool::SegmentPool::new(2);
        let lookup = |name: &str| -> DbResult<Table> {
            if name == "t" {
                Ok(test_table())
            } else {
                Err(DbError::Catalog(format!("no table {name}")))
            }
        };
        execute(
            plan,
            &ExecContext {
                lookup: &lookup,
                allow_colocated: true,
                stats: &stats,
                pool: &pool,
                segments: 2,
                guard: QueryGuard::default(),
                vectorized: true,
                faults: None,
                spans: None,
            },
        )
    }

    #[test]
    fn guard_cancels_execution() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let stats = Stats::new();
        let pool = crate::pool::SegmentPool::new(2);
        let lookup = |_: &str| -> DbResult<Table> { Ok(test_table()) };
        let flag = Arc::new(AtomicBool::new(true));
        let ctx = ExecContext {
            lookup: &lookup,
            allow_colocated: true,
            stats: &stats,
            pool: &pool,
            segments: 2,
            guard: QueryGuard { cancel: Some(flag), deadline: None },
            vectorized: true,
            faults: None,
            spans: None,
        };
        let err = execute(&Plan::Scan { table: "t".into() }, &ctx).unwrap_err();
        assert!(err.is_cancelled());
    }

    #[test]
    fn guard_enforces_deadline() {
        let stats = Stats::new();
        let pool = crate::pool::SegmentPool::new(2);
        let lookup = |_: &str| -> DbResult<Table> { Ok(test_table()) };
        let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
        let ctx = ExecContext {
            lookup: &lookup,
            allow_colocated: true,
            stats: &stats,
            pool: &pool,
            segments: 2,
            guard: QueryGuard { cancel: None, deadline: Some(past) },
            vectorized: true,
            faults: None,
            spans: None,
        };
        let err = execute(&Plan::Scan { table: "t".into() }, &ctx).unwrap_err();
        assert!(err.is_cancelled());
    }

    #[test]
    fn scan_project_filter_pipeline() {
        let plan = Plan::Filter {
            input: Box::new(Plan::Project {
                input: Box::new(Plan::Scan { table: "t".into() }),
                exprs: vec![(Expr::Column(1), Field::new("w", DataType::Int64))],
            }),
            pred: Expr::Cmp {
                op: CmpOp::Ge,
                left: Box::new(Expr::Column(0)),
                right: Box::new(Expr::LitInt(20)),
            },
        };
        let out = ctx_eval(&plan).unwrap();
        assert_eq!(out.row_count(), 2);
    }

    #[test]
    fn unknown_table_errors() {
        let plan = Plan::Scan { table: "missing".into() };
        assert!(matches!(ctx_eval(&plan), Err(DbError::Catalog(_))));
    }

    #[test]
    fn union_all_of_three() {
        let scan = Plan::Scan { table: "t".into() };
        let plan = Plan::UnionAll { inputs: vec![scan.clone(), scan.clone(), scan] };
        assert_eq!(ctx_eval(&plan).unwrap().row_count(), 9);
    }

    #[test]
    fn empty_union_rejected() {
        assert!(matches!(
            ctx_eval(&Plan::UnionAll { inputs: vec![] }),
            Err(DbError::Plan(_))
        ));
    }

    #[test]
    fn self_join_counts() {
        let scan = || Box::new(Plan::Scan { table: "t".into() });
        let plan = Plan::Join {
            left: scan(),
            right: scan(),
            l_keys: vec![0],
            r_keys: vec![0],
            join_type: JoinType::Inner,
        };
        let out = ctx_eval(&plan).unwrap();
        assert_eq!(out.row_count(), 3);
        assert_eq!(out.schema.len(), 4);
    }

    #[test]
    fn aggregate_over_scan() {
        use crate::ops::AggFunc;
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Scan { table: "t".into() }),
            group_cols: vec![],
            aggs: vec![AggExpr { func: AggFunc::Count, input: Expr::LitInt(1) }],
        };
        let out = ctx_eval(&plan).unwrap();
        assert_eq!(out.parts[0].row(0), vec![Datum::Int(3)]);
    }
}
