//! Sessions: per-connection state on a shared cluster.
//!
//! A [`Session`] is a lightweight handle over an `Arc<Cluster>` that
//! adds everything a concurrent query service needs and the bare
//! cluster deliberately does not have:
//!
//! * **A temporary-table namespace.** The paper's algorithms hardcode
//!   working-table names (`ccgraph`, `ccreps1`, `hmcc`, …), so two
//!   concurrent runs on one cluster would collide. A session rewrites
//!   table names at the AST level: creates are prefixed with
//!   `__sess{id}__`, and reads resolve the prefixed name first, falling
//!   back to the shared catalog. Algorithms keep their literal SQL;
//!   isolation is transparent.
//! * **Session-scoped transactions.** `begin_transaction`/`commit`
//!   defer space credits on the *session's* counters only, so one
//!   session's transaction no longer changes global accounting
//!   semantics for everyone (the old cluster-level footgun).
//! * **Interruption.** Each session carries a cancel flag and an
//!   optional per-statement timeout; the executor checks them between
//!   operators ([`crate::plan::QueryGuard`]).
//! * **Attribution.** Charges roll up through a per-session
//!   [`Stats`] into the cluster-wide counters, so a service can report
//!   rows/bytes/network per session as well as globally.

use crate::cluster::{Cluster, QueryOutput};
use crate::error::{DbError, DbResult};
use crate::span::ActiveTrace;
use crate::sql::{Query, Statement, TableRel};
use crate::stats::{Stats, StatsSnapshot};
use crate::trace::{HistogramSnapshot, LatencyHistogram, QueryProfile};
use crate::value::Datum;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How many completed [`QueryProfile`]s a session retains (ring
/// buffer, oldest evicted first).
pub(crate) const PROFILE_RING_CAPACITY: usize = 256;

/// The id of the cluster's built-in default session, which performs no
/// name mangling (full backwards compatibility for direct
/// [`Cluster::run`] callers).
pub(crate) const DEFAULT_SESSION_ID: u64 = 0;

/// Per-session state shared between [`Session`] and the cluster's
/// dispatch path. The cluster owns one (the default session); every
/// [`Session`] handle owns its own.
pub(crate) struct SessionCore {
    /// Unique id; 0 is the default session (no namespace).
    pub(crate) id: u64,
    /// Session-scoped counters, parented to the cluster's.
    pub(crate) stats: Arc<Stats>,
    /// When true (the default for real sessions), unqualified creates
    /// land in the session namespace.
    temp_ns: AtomicBool,
    /// Cooperative cancel flag, checked between operators.
    interrupt: Arc<AtomicBool>,
    /// Per-statement timeout; the deadline is computed when each
    /// statement starts.
    timeout: Mutex<Option<Duration>>,
    /// Total wall time spent executing statements.
    exec_nanos: AtomicU64,
    /// Wall time of the most recent statement.
    last_nanos: AtomicU64,
    /// When true, every statement captures a [`QueryProfile`]
    /// (off by default — the executor then pays only a branch).
    profiling: AtomicBool,
    /// The most recent captured profiles, newest last.
    profiles: Mutex<VecDeque<Arc<QueryProfile>>>,
    /// Per-statement latency distribution for this session.
    pub(crate) latency: LatencyHistogram,
    /// Span trace installed for statements run in this session (None —
    /// the default — costs one branch per recording site).
    trace: Mutex<Option<Arc<ActiveTrace>>>,
}

impl SessionCore {
    /// The cluster's built-in session: shares the global `Stats`
    /// instance (no parent, so nothing is double-counted) and never
    /// rewrites names.
    pub(crate) fn default_core(stats: Arc<Stats>) -> SessionCore {
        SessionCore {
            id: DEFAULT_SESSION_ID,
            stats,
            temp_ns: AtomicBool::new(false),
            interrupt: Arc::new(AtomicBool::new(false)),
            timeout: Mutex::new(None),
            exec_nanos: AtomicU64::new(0),
            last_nanos: AtomicU64::new(0),
            profiling: AtomicBool::new(false),
            profiles: Mutex::new(VecDeque::new()),
            latency: LatencyHistogram::new(),
            trace: Mutex::new(None),
        }
    }

    /// A fresh session core parented to the cluster's counters.
    pub(crate) fn fresh(id: u64, global: Arc<Stats>) -> SessionCore {
        assert_ne!(id, DEFAULT_SESSION_ID);
        SessionCore {
            id,
            stats: Arc::new(Stats::with_parent(global)),
            temp_ns: AtomicBool::new(true),
            interrupt: Arc::new(AtomicBool::new(false)),
            timeout: Mutex::new(None),
            exec_nanos: AtomicU64::new(0),
            last_nanos: AtomicU64::new(0),
            profiling: AtomicBool::new(false),
            profiles: Mutex::new(VecDeque::new()),
            latency: LatencyHistogram::new(),
            trace: Mutex::new(None),
        }
    }

    /// An owned handle to this session's interrupt flag — cloned into
    /// each statement's [`crate::QueryGuard`] so partition tasks on the
    /// segment pool can observe cancellation.
    pub(crate) fn interrupt_handle(&self) -> Arc<AtomicBool> {
        self.interrupt.clone()
    }

    pub(crate) fn timeout(&self) -> Option<Duration> {
        *self.timeout.lock()
    }

    /// Installs (or clears) the span trace statements record into.
    pub(crate) fn set_trace(&self, trace: Option<Arc<ActiveTrace>>) -> Option<Arc<ActiveTrace>> {
        std::mem::replace(&mut *self.trace.lock(), trace)
    }

    /// The currently installed span trace, if any.
    pub(crate) fn trace(&self) -> Option<Arc<ActiveTrace>> {
        self.trace.lock().clone()
    }

    pub(crate) fn note_statement(&self, elapsed: Duration) {
        let nanos = elapsed.as_nanos() as u64;
        self.exec_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.last_nanos.store(nanos, Ordering::Relaxed);
        self.latency.record(nanos);
    }

    /// Whether statements should capture a [`QueryProfile`].
    pub(crate) fn profiling(&self) -> bool {
        self.profiling.load(Ordering::Relaxed)
    }

    pub(crate) fn set_profiling(&self, on: bool) {
        self.profiling.store(on, Ordering::Relaxed);
    }

    /// Stores a completed profile, evicting the oldest past capacity.
    pub(crate) fn push_profile(&self, profile: Arc<QueryProfile>) {
        let mut ring = self.profiles.lock();
        if ring.len() >= PROFILE_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(profile);
    }

    /// The most recently captured profile.
    pub(crate) fn last_profile(&self) -> Option<Arc<QueryProfile>> {
        self.profiles.lock().back().cloned()
    }

    /// All retained profiles, oldest first.
    pub(crate) fn profiles(&self) -> Vec<Arc<QueryProfile>> {
        self.profiles.lock().iter().cloned().collect()
    }

    /// Drains the retained profiles, leaving the ring empty.
    pub(crate) fn take_profiles(&self) -> Vec<Arc<QueryProfile>> {
        self.profiles.lock().drain(..).collect()
    }

    /// The session-namespace name for `name` (lowercased like every
    /// catalog key).
    pub(crate) fn mangled(&self, name: &str) -> String {
        format!("__sess{}__{}", self.id, name.to_ascii_lowercase())
    }

    /// Namespace prefix of this session's temporary tables.
    pub(crate) fn ns_prefix(&self) -> String {
        format!("__sess{}__", self.id)
    }

    /// Name to use when *creating* `name` in this session. Computed per
    /// execution (not captured in cached plans) so `set_temp_namespace`
    /// toggles take effect on cache hits too.
    pub(crate) fn create_name(&self, name: &str) -> String {
        if self.id != DEFAULT_SESSION_ID && self.temp_ns.load(Ordering::Relaxed) {
            self.mangled(name)
        } else {
            name.to_ascii_lowercase()
        }
    }

    /// Name to use when *reading* (or dropping/renaming-from) `name`:
    /// the session's own table shadows a same-named shared one.
    pub(crate) fn resolve(&self, cluster: &Cluster, name: &str) -> String {
        if self.id != DEFAULT_SESSION_ID {
            let m = self.mangled(name);
            if cluster.has_table(&m) {
                return m;
            }
        }
        name.to_ascii_lowercase()
    }

    /// Rewrites every table name in `stmt` into this session's
    /// namespace: creates are mangled, reads resolved (session table
    /// first, then shared). No-op for the default session.
    pub(crate) fn rewrite(&self, cluster: &Cluster, stmt: &mut Statement) {
        if self.id == DEFAULT_SESSION_ID {
            return;
        }
        match stmt {
            Statement::Select(q) => self.rewrite_query(cluster, q),
            Statement::Explain { query, .. } => self.rewrite_query(cluster, query),
            Statement::CreateTableAs { name, query, .. } => {
                self.rewrite_query(cluster, query);
                *name = self.create_name(name);
            }
            Statement::CreateTable { name, .. } => *name = self.create_name(name),
            Statement::Insert { name, .. } => *name = self.resolve(cluster, name),
            Statement::DropTable { name, .. } => *name = self.resolve(cluster, name),
            Statement::RenameTable { from, to } => {
                *from = self.resolve(cluster, from);
                *to = self.create_name(to);
            }
        }
    }

    fn rewrite_query(&self, cluster: &Cluster, q: &mut Query) {
        for core in &mut q.selects {
            for item in &mut core.from {
                match &mut item.rel {
                    TableRel::Table(name) => {
                        // Qualified column references (`ccgraph.v1`) bind
                        // to the alias when one is present, else to the
                        // written table name — pin the original name as
                        // the alias so qualifiers survive the rename.
                        if item.alias.is_none() {
                            item.alias = Some(name.clone());
                        }
                        *name = self.resolve(cluster, name);
                    }
                    TableRel::Subquery(sub) => self.rewrite_query(cluster, sub),
                }
            }
        }
    }
}

/// A session handle: the unit of multi-tenancy on a [`Cluster`].
///
/// Created with [`Cluster::session`]. All SQL run through a session is
/// transparently isolated in a per-session temporary-table namespace,
/// attributed to per-session counters, and interruptible via
/// [`Session::cancel_flag`] or [`Session::set_timeout`]. Dropping (or
/// [`Session::close`]-ing) the session drops its temporary tables and
/// releases their space.
///
/// ```
/// use incc_mppdb::{Cluster, ClusterConfig};
/// use std::sync::Arc;
///
/// let cluster = Arc::new(Cluster::new(ClusterConfig::default()));
/// let a = cluster.session();
/// let b = cluster.session();
/// a.run("create table t as select 1 as x").unwrap();
/// b.run("create table t as select 2 as x").unwrap(); // no collision
/// assert_eq!(a.query_scalar_i64("select x from t").unwrap(), 1);
/// assert_eq!(b.query_scalar_i64("select x from t").unwrap(), 2);
/// drop(a);
/// drop(b);
/// assert!(cluster.table_names().is_empty());
/// ```
pub struct Session {
    cluster: Arc<Cluster>,
    core: SessionCore,
    closed: AtomicBool,
}

impl Session {
    pub(crate) fn new(cluster: Arc<Cluster>, core: SessionCore) -> Session {
        Session {
            cluster,
            core,
            closed: AtomicBool::new(false),
        }
    }

    /// This session's unique id.
    pub fn id(&self) -> u64 {
        self.core.id
    }

    /// The cluster this session runs on.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Executes one SQL statement in this session's namespace.
    ///
    /// If the statement is interrupted (cancel flag or timeout) while
    /// the session is mid-transaction, the transaction is aborted:
    /// namespace temp tables are dropped and deferred space credits
    /// reclaimed, instead of leaking in the catalog until the session
    /// closes. Ordinary errors leave tables alone — statements are
    /// atomic, and a recovery layer may retry them.
    pub fn run(&self, sql_text: &str) -> DbResult<QueryOutput> {
        let result = self.cluster.run_in(&self.core, sql_text);
        if let Err(e) = &result {
            if e.is_cancelled() && self.core.stats.is_transactional() {
                self.abort_transaction();
            }
        }
        result
    }

    /// Aborts an open transaction after an interrupt: drops this
    /// session's namespace temps, reclaims deferred space, and leaves
    /// transaction mode. The session stays usable.
    fn abort_transaction(&self) {
        self.core.stats.set_transactional(false);
        self.core.stats.commit();
        let prefix = self.core.ns_prefix();
        for name in self.cluster.table_names() {
            if name.starts_with(&prefix) {
                let _ = self.cluster.drop_table_with(&self.core.stats, &name);
            }
        }
    }

    /// Executes a `SELECT` and returns its rows.
    pub fn query(&self, sql_text: &str) -> DbResult<Vec<Vec<Datum>>> {
        match self.run(sql_text)? {
            QueryOutput::Rows(rows) => Ok(rows),
            other => Err(DbError::Plan(format!("expected a SELECT, got {other:?}"))),
        }
    }

    /// Executes a `SELECT` expected to return one integer.
    pub fn query_scalar_i64(&self, sql_text: &str) -> DbResult<i64> {
        let rows = self.query(sql_text)?;
        rows.first()
            .and_then(|r| r.first())
            .and_then(Datum::as_int)
            .ok_or_else(|| DbError::Exec("query did not return a scalar integer".into()))
    }

    /// Enters transaction mode for this session only: its dropped
    /// tables' space stays charged (here and in the global roll-up)
    /// until [`Session::commit`].
    pub fn begin_transaction(&self) {
        self.core.stats.set_transactional(true);
    }

    /// Leaves transaction mode and reclaims this session's deferred
    /// space.
    pub fn commit(&self) {
        self.core.stats.set_transactional(false);
        self.core.stats.commit();
    }

    /// When `on` (the default), unqualified `CREATE` statements land in
    /// the session namespace. Turn off to create shared tables — e.g. a
    /// graph several sessions will analyse.
    pub fn set_temp_namespace(&self, on: bool) {
        self.core.temp_ns.store(on, Ordering::Relaxed);
    }

    /// The catalog name a table called `name` gets when created in this
    /// session's namespace — useful for tests and diagnostics.
    pub fn temp_table_name(&self, name: &str) -> String {
        self.core.mangled(name)
    }

    /// The shared cancel flag. A controller stores `true` to interrupt
    /// the statement currently executing in this session (and every
    /// later one, until [`Session::clear_interrupt`]).
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        self.core.interrupt.clone()
    }

    /// Raises the cancel flag.
    pub fn cancel(&self) {
        self.core.interrupt.store(true, Ordering::Relaxed);
    }

    /// Lowers the cancel flag so the session can run statements again.
    pub fn clear_interrupt(&self) {
        self.core.interrupt.store(false, Ordering::Relaxed);
    }

    /// Sets (or clears) the per-statement timeout. Each statement's
    /// deadline is computed when it starts executing.
    pub fn set_timeout(&self, timeout: Option<Duration>) {
        *self.core.timeout.lock() = timeout;
    }

    /// Session-scoped counters (rows/bytes written, network bytes,
    /// statements). These cover only work done through this session.
    pub fn stats(&self) -> StatsSnapshot {
        self.core.stats.snapshot()
    }

    /// Charges one statement retry and its backoff pause to this
    /// session's counters (rolled up into the cluster's).
    pub fn note_retry(&self, backoff: Duration) {
        self.core.stats.count_retry(backoff);
    }

    /// Per-operator execution counters attributed to this session.
    pub fn op_stats(&self) -> Vec<crate::stats::OpStats> {
        self.core.stats.op_stats()
    }

    /// Enables or disables per-statement [`QueryProfile`] capture.
    /// Off by default; when off, execution pays only a branch.
    pub fn set_profiling(&self, on: bool) {
        self.core.set_profiling(on);
    }

    /// The profile of the most recent statement executed with
    /// profiling enabled (or via `EXPLAIN ANALYZE`).
    pub fn last_profile(&self) -> Option<Arc<QueryProfile>> {
        self.core.last_profile()
    }

    /// All retained profiles, oldest first (ring buffer of the last
    /// 256 profiled statements).
    pub fn profiles(&self) -> Vec<Arc<QueryProfile>> {
        self.core.profiles()
    }

    /// Drains the retained profiles, leaving the ring empty — how a
    /// long-running job collects its statement profiles per round
    /// without unbounded growth.
    pub fn take_profiles(&self) -> Vec<Arc<QueryProfile>> {
        self.core.take_profiles()
    }

    /// This session's per-statement latency distribution.
    pub fn latency_histogram(&self) -> HistogramSnapshot {
        self.core.latency.snapshot()
    }

    /// Installs a span trace: every statement run in this session
    /// records its lifecycle spans (parse/plan/exec, stage detail,
    /// parked gaps) into it until [`Session::take_trace`]. Replaces
    /// (and returns) any previously installed trace.
    pub fn install_trace(&self, trace: Arc<ActiveTrace>) -> Option<Arc<ActiveTrace>> {
        self.core.set_trace(Some(trace))
    }

    /// Removes and returns the installed span trace.
    pub fn take_trace(&self) -> Option<Arc<ActiveTrace>> {
        self.core.set_trace(None)
    }

    /// Total wall time spent executing this session's statements.
    pub fn exec_time(&self) -> Duration {
        Duration::from_nanos(self.core.exec_nanos.load(Ordering::Relaxed))
    }

    /// Wall time of the most recently executed statement.
    pub fn last_statement_time(&self) -> Duration {
        Duration::from_nanos(self.core.last_nanos.load(Ordering::Relaxed))
    }

    /// Loads an edge list into this session's namespace (see
    /// [`Cluster::load_pairs`]).
    pub fn load_pairs(
        &self,
        name: &str,
        col_a: &str,
        col_b: &str,
        pairs: &[(i64, i64)],
    ) -> DbResult<()> {
        let target = self.core.create_name(name);
        self.cluster
            .load_pairs_with(&self.core.stats, &target, col_a, col_b, pairs)
    }

    /// Reads a two-column table back as pairs, resolving the session
    /// namespace first.
    pub fn scan_pairs(&self, name: &str) -> DbResult<Vec<(i64, i64)>> {
        self.cluster
            .scan_pairs(&self.core.resolve(&self.cluster, name))
    }

    /// Row count of a table visible to this session.
    pub fn row_count(&self, name: &str) -> DbResult<usize> {
        self.cluster
            .row_count(&self.core.resolve(&self.cluster, name))
    }

    /// Drops a table visible to this session, crediting its space to
    /// this session's counters.
    pub fn drop_table(&self, name: &str) -> DbResult<()> {
        self.cluster
            .drop_table_with(&self.core.stats, &self.core.resolve(&self.cluster, name))
    }

    /// Runs one engine-native CC primitive (see [`crate::native`])
    /// with this session's name resolution, stat attribution, cancel
    /// flag and statement timeout. Relations a primitive *creates*
    /// land in the session namespace; ones it reads or replaces
    /// resolve through it — mirroring the SQL rewriting rules.
    pub fn native_cc(&self, op: &crate::native::CcOp<'_>) -> DbResult<crate::native::CcReport> {
        use crate::native::CcOp;
        let guard = crate::QueryGuard {
            cancel: Some(self.core.interrupt_handle()),
            deadline: self.core.timeout().map(|t| std::time::Instant::now() + t),
        };
        let resolve = |name: &str| self.core.resolve(&self.cluster, name);
        let resolved = match op {
            CcOp::Init { input, edges, labels, seed_connect } => (
                resolve(input),
                self.core.create_name(edges),
                self.core.create_name(labels),
                *seed_connect,
            ),
            CcOp::Connect { edges, labels } => {
                (resolve(edges), resolve(labels), String::new(), false)
            }
            CcOp::Shortcut { labels } => (resolve(labels), String::new(), String::new(), false),
            CcOp::Alter { edges, labels } => {
                (resolve(edges), resolve(labels), String::new(), false)
            }
            CcOp::Census { input, per_part } => {
                let op = CcOp::Census { input: &resolve(input), per_part: *per_part };
                return crate::native::run_native_cc(&self.cluster, &self.core.stats, guard, &op);
            }
        };
        let op = match op {
            CcOp::Init { .. } => CcOp::Init {
                input: &resolved.0,
                edges: &resolved.1,
                labels: &resolved.2,
                seed_connect: resolved.3,
            },
            CcOp::Connect { .. } => CcOp::Connect { edges: &resolved.0, labels: &resolved.1 },
            CcOp::Shortcut { .. } => CcOp::Shortcut { labels: &resolved.0 },
            CcOp::Alter { .. } => CcOp::Alter { edges: &resolved.0, labels: &resolved.1 },
            CcOp::Census { .. } => unreachable!("handled above"),
        };
        crate::native::run_native_cc(&self.cluster, &self.core.stats, guard, &op)
    }

    /// Renames a table: the source resolves through the session
    /// namespace, the target is created in it.
    pub fn rename_table(&self, from: &str, to: &str) -> DbResult<()> {
        let from = self.core.resolve(&self.cluster, from);
        let to = self.core.create_name(to);
        self.cluster.rename_table(&from, &to)
    }

    /// Atomically replaces table `to` with table `from` (both resolved
    /// through the session namespace), dropping any previous `to` under
    /// the same catalog lock — see [`Cluster::replace_table`].
    pub fn replace_table(&self, from: &str, to: &str) -> DbResult<()> {
        let from = self.core.resolve(&self.cluster, from);
        let to = self.core.create_name(to);
        self.cluster
            .replace_table_with(&self.core.stats, &from, &to)
    }

    /// Drops every temporary table this session created and releases
    /// their space. Idempotent; also runs on drop.
    pub fn close(&self) {
        if self.closed.swap(true, Ordering::Relaxed) {
            return;
        }
        self.cluster.plan_cache_drop_session(self.core.id);
        // A closing session must actually release space even if it died
        // mid-transaction.
        self.core.stats.set_transactional(false);
        self.core.stats.commit();
        let prefix = self.core.ns_prefix();
        for name in self.cluster.table_names() {
            if name.starts_with(&prefix) {
                let _ = self.cluster.drop_table_with(&self.core.stats, &name);
            }
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.close();
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.core.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::cluster::{Cluster, ClusterConfig};
    use std::sync::Arc;
    use std::time::Duration;

    fn cluster() -> Arc<Cluster> {
        Arc::new(Cluster::new(ClusterConfig::default()))
    }

    #[test]
    fn namespaces_isolate_same_named_tables() {
        let c = cluster();
        let a = c.session();
        let b = c.session();
        a.run("create table work as select 1 as v").unwrap();
        b.run("create table work as select 2 as v union all select 3 as v")
            .unwrap();
        assert_eq!(a.row_count("work").unwrap(), 1);
        assert_eq!(b.row_count("work").unwrap(), 2);
        // The catalog holds both, under mangled names.
        assert_eq!(c.table_names().len(), 2);
        assert!(c.has_table(&a.temp_table_name("work")));
    }

    #[test]
    fn session_reads_fall_back_to_shared_tables() {
        let c = cluster();
        c.load_pairs("shared", "v", "w", &[(1, 10), (2, 20)])
            .unwrap();
        let s = c.session();
        assert_eq!(
            s.query_scalar_i64("select count(*) as n from shared")
                .unwrap(),
            2
        );
        // A session table with the same name shadows the shared one.
        s.run("create table shared as select 7 as v").unwrap();
        assert_eq!(
            s.query_scalar_i64("select count(*) as n from shared")
                .unwrap(),
            1
        );
        s.drop_table("shared").unwrap();
        // After the shadow is gone the shared table is visible again.
        assert_eq!(
            s.query_scalar_i64("select count(*) as n from shared")
                .unwrap(),
            2
        );
        drop(s);
        assert_eq!(c.table_names(), vec!["shared".to_string()]);
    }

    #[test]
    fn qualified_references_survive_rewriting() {
        let c = cluster();
        let s = c.session();
        s.load_pairs("ccgraph", "v1", "v2", &[(1, 2), (2, 3)])
            .unwrap();
        s.load_pairs("reps", "v", "r", &[(1, 1), (2, 1), (3, 1)])
            .unwrap();
        // The implicit-alias shape RC's contract step uses.
        let n = s
            .query_scalar_i64(
                "select count(*) as n from ccgraph, reps as r1 \
                 where ccgraph.v1 = r1.v",
            )
            .unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn close_releases_space_and_tables() {
        let c = cluster();
        let s = c.session();
        s.load_pairs("t1", "a", "b", &[(1, 1), (2, 2)]).unwrap();
        s.run("create table t2 as select a from t1").unwrap();
        assert!(c.stats().live_bytes > 0);
        assert_eq!(c.table_names().len(), 2);
        s.close();
        assert_eq!(c.table_names().len(), 0);
        assert_eq!(c.stats().live_bytes, 0);
    }

    #[test]
    fn session_transaction_defers_only_its_own_credits() {
        let c = cluster();
        let s = c.session();
        let t = c.session();
        s.load_pairs("x", "a", "b", &[(1, 1)]).unwrap();
        t.load_pairs("y", "a", "b", &[(2, 2)]).unwrap();
        let full = c.stats().live_bytes;
        s.begin_transaction();
        s.drop_table("x").unwrap();
        // Deferred: both the session and the global roll-up stay charged.
        assert_eq!(c.stats().live_bytes, full);
        assert_eq!(s.stats().live_bytes, full / 2);
        // Another session's drop is unaffected by s's transaction.
        t.drop_table("y").unwrap();
        assert_eq!(c.stats().live_bytes, full / 2);
        s.commit();
        assert_eq!(c.stats().live_bytes, 0);
        assert_eq!(s.stats().live_bytes, 0);
    }

    #[test]
    fn cancel_interrupts_statement() {
        let c = cluster();
        let s = c.session();
        s.load_pairs("t", "a", "b", &[(1, 1)]).unwrap();
        s.cancel();
        let err = s.run("select count(*) as n from t").unwrap_err();
        assert!(err.is_cancelled());
        s.clear_interrupt();
        assert_eq!(
            s.query_scalar_i64("select count(*) as n from t").unwrap(),
            1
        );
    }

    #[test]
    fn cancelled_ctas_mid_transaction_drops_namespace_temps() {
        let c = cluster();
        let s = c.session();
        c.load_pairs("edges", "a", "b", &[(1, 2), (2, 3), (4, 5)])
            .unwrap();
        let shared = c.stats().live_bytes;
        s.begin_transaction();
        s.run("create table work as select a, b from edges").unwrap();
        assert!(c.has_table(&s.temp_table_name("work")));
        // A cancellation lands mid-transaction; the next statement (a
        // CTAS over the temp) fails, and the aborted transaction must
        // not leak `__sess…__` temps or their space in the catalog.
        s.cancel();
        let err = s
            .run("create table work2 as select a from work")
            .unwrap_err();
        assert!(err.is_cancelled());
        assert!(!c.has_table(&s.temp_table_name("work")));
        assert!(!c.has_table(&s.temp_table_name("work2")));
        assert_eq!(c.stats().live_bytes, shared);
        assert_eq!(s.stats().live_bytes, 0);
        // The session itself stays usable once the flag clears.
        s.clear_interrupt();
        assert_eq!(
            s.query_scalar_i64("select count(*) as n from edges")
                .unwrap(),
            3
        );
        s.run("create table work as select a from edges").unwrap();
        assert_eq!(s.row_count("work").unwrap(), 3);
    }

    #[test]
    fn ordinary_errors_leave_session_temps_alone() {
        let c = cluster();
        let s = c.session();
        s.run("create table keep as select 1 as v").unwrap();
        // A fatal statement error (unknown table) must not trigger
        // transaction-abort cleanup — statements are atomic and a
        // recovery layer may retry them.
        assert!(s.run("select v from nowhere").is_err());
        assert_eq!(s.row_count("keep").unwrap(), 1);
    }

    #[test]
    fn zero_timeout_trips_immediately() {
        let c = cluster();
        let s = c.session();
        s.load_pairs("t", "a", "b", &[(1, 1)]).unwrap();
        s.set_timeout(Some(Duration::ZERO));
        let err = s.run("select count(*) as n from t").unwrap_err();
        assert!(err.is_cancelled());
        s.set_timeout(None);
        assert_eq!(
            s.query_scalar_i64("select count(*) as n from t").unwrap(),
            1
        );
    }

    #[test]
    fn stats_attribute_to_the_issuing_session() {
        let c = cluster();
        let a = c.session();
        let b = c.session();
        a.load_pairs("t", "x", "y", &[(1, 1), (2, 2)]).unwrap();
        let sa = a.stats();
        let sb = b.stats();
        assert!(sa.bytes_written > 0);
        assert_eq!(sb.bytes_written, 0);
        assert_eq!(c.stats().bytes_written, sa.bytes_written);
        assert!(a.exec_time() >= Duration::ZERO);
    }

    #[test]
    fn shared_table_creation_with_namespace_off() {
        let c = cluster();
        let s = c.session();
        s.set_temp_namespace(false);
        s.run("create table g as select 1 as v").unwrap();
        assert_eq!(c.table_names(), vec!["g".to_string()]);
        // Visible to other sessions and to the bare cluster.
        assert_eq!(c.row_count("g").unwrap(), 1);
        drop(s); // shared tables are NOT dropped on close
        assert_eq!(c.table_names(), vec!["g".to_string()]);
    }
}
