//! Deterministic, seedable fault injection for the executor.
//!
//! A [`FaultPlan`] (installed via `ClusterConfig::faults`) makes any
//! operator on any segment panic, return a transient error, or stall
//! for a fixed number of milliseconds. Decisions are keyed by
//! `(query ordinal, op kind, segment id)` through a splitmix64-style
//! hash of the plan's seed, so a given plan injects exactly the same
//! faults at the same sites on every run — failures found by the chaos
//! harness are reproducible by re-running with the same seed.
//!
//! Termination under retry is guaranteed two ways: each retry executes
//! under a fresh query ordinal (so the same site is re-keyed), and the
//! plan carries a `max_faults` budget after which injection stops
//! entirely. With the budget exhausted every statement runs clean.
//!
//! When no plan is configured the per-partition hook is a single
//! `Option` branch — the disabled cost the benchmarks hold to.

use crate::error::{DbError, DbResult};
use crate::stats::OpKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What an injected fault does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic the partition task (exercises the pool's unwind path).
    Panic,
    /// Return [`DbError::TransientFailure`] from the partition task.
    Error,
    /// Sleep for the plan's `stall_ms` before proceeding normally.
    Stall,
}

/// A deterministic plan of injected faults.
///
/// Probabilities are per mille (0–1000) and are evaluated per fault
/// site — one (query ordinal, op kind, segment) triple. They are
/// checked in order panic → error → stall over one hash draw, so the
/// three must sum to ≤ 1000.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the site hash; same seed ⇒ same fault schedule.
    pub seed: u64,
    /// Per-mille probability a site panics.
    pub panic_per_mille: u32,
    /// Per-mille probability a site returns a transient error.
    pub error_per_mille: u32,
    /// Per-mille probability a site stalls for `stall_ms`.
    pub stall_per_mille: u32,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// Total faults injected before the plan goes quiet. Bounds the
    /// damage so retried work always terminates.
    pub max_faults: u64,
}

impl FaultPlan {
    /// A plan injecting only panics.
    pub fn panics(seed: u64, per_mille: u32, max_faults: u64) -> FaultPlan {
        FaultPlan {
            seed,
            panic_per_mille: per_mille,
            error_per_mille: 0,
            stall_per_mille: 0,
            stall_ms: 0,
            max_faults,
        }
    }

    /// A plan injecting only transient errors.
    pub fn errors(seed: u64, per_mille: u32, max_faults: u64) -> FaultPlan {
        FaultPlan {
            seed,
            panic_per_mille: 0,
            error_per_mille: per_mille,
            stall_per_mille: 0,
            stall_ms: 0,
            max_faults,
        }
    }

    /// A plan injecting only stalls of `stall_ms` milliseconds.
    pub fn stalls(seed: u64, per_mille: u32, stall_ms: u64, max_faults: u64) -> FaultPlan {
        FaultPlan {
            seed,
            panic_per_mille: 0,
            error_per_mille: 0,
            stall_per_mille: per_mille,
            stall_ms,
            max_faults,
        }
    }

    /// Parses the `INCC_FAULT_PLAN` spec string: comma-separated
    /// `key=value` pairs with keys `seed`, `panic`, `error`, `stall`
    /// (per-mille probabilities), `stall_ms`, and `max` (fault budget).
    ///
    /// ```
    /// use incc_mppdb::fault::FaultPlan;
    /// let p = FaultPlan::parse("seed=7,panic=20,error=30,max=10").unwrap();
    /// assert_eq!(p.seed, 7);
    /// assert_eq!(p.panic_per_mille, 20);
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            seed: 0,
            panic_per_mille: 0,
            error_per_mille: 0,
            stall_per_mille: 0,
            stall_ms: 1,
            max_faults: u64::MAX,
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault plan: expected key=value, got {part:?}"))?;
            let parse_u64 =
                |v: &str| v.trim().parse::<u64>().map_err(|_| format!("fault plan: bad number in {part:?}"));
            match key.trim() {
                "seed" => plan.seed = parse_u64(value)?,
                "panic" => plan.panic_per_mille = parse_u64(value)? as u32,
                "error" => plan.error_per_mille = parse_u64(value)? as u32,
                "stall" => plan.stall_per_mille = parse_u64(value)? as u32,
                "stall_ms" => plan.stall_ms = parse_u64(value)?,
                "max" => plan.max_faults = parse_u64(value)?,
                other => return Err(format!("fault plan: unknown key {other:?}")),
            }
        }
        if plan.panic_per_mille + plan.error_per_mille + plan.stall_per_mille > 1000 {
            return Err("fault plan: probabilities sum over 1000 per mille".into());
        }
        Ok(plan)
    }
}

/// The shared, run-scoped side of a plan: the per-statement ordinal
/// and the remaining fault budget. One per cluster.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    query_seq: AtomicU64,
    injected: AtomicU64,
}

/// splitmix64 finalizer — a cheap, well-mixed 64-bit hash.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// Wraps a plan for injection.
    pub fn new(plan: FaultPlan) -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            plan,
            query_seq: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        })
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Claims the next statement ordinal. Called once per executed
    /// statement (retries claim fresh ordinals, re-keying their sites).
    pub fn begin_statement(self: &Arc<Self>) -> FaultContext {
        FaultContext {
            injector: self.clone(),
            query: self.query_seq.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The deterministic decision for one site, honouring the budget.
    fn decide(&self, query: u64, op: OpKind, segment: usize) -> Option<FaultAction> {
        let p = &self.plan;
        let total = p.panic_per_mille + p.error_per_mille + p.stall_per_mille;
        if total == 0 {
            return None;
        }
        let h = mix(
            p.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(mix(query))
                .wrapping_add(mix(((op as u64) << 32) | segment as u64)),
        );
        let draw = (h % 1000) as u32;
        let action = if draw < p.panic_per_mille {
            FaultAction::Panic
        } else if draw < p.panic_per_mille + p.error_per_mille {
            FaultAction::Error
        } else if draw < total {
            FaultAction::Stall
        } else {
            return None;
        };
        // Claim a unit of budget; sites past the budget run clean, so
        // retried statements eventually complete no matter the odds.
        let claimed = self
            .injected
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < p.max_faults).then_some(n + 1)
            })
            .is_ok();
        claimed.then_some(action)
    }
}

/// One statement's view of the injector, cloned into `'static`
/// partition closures. [`FaultContext::check`] is called at the top of
/// every partition task, right after the cancellation guard.
#[derive(Debug, Clone)]
pub struct FaultContext {
    injector: Arc<FaultInjector>,
    query: u64,
}

impl FaultContext {
    /// Fires the planned fault for this site, if any: returns a
    /// transient error, panics, or stalls then returns `Ok`.
    pub fn check(&self, op: OpKind, segment: usize) -> DbResult<()> {
        match self.injector.decide(self.query, op, segment) {
            None => Ok(()),
            Some(FaultAction::Stall) => {
                std::thread::sleep(std::time::Duration::from_millis(self.injector.plan.stall_ms));
                Ok(())
            }
            Some(FaultAction::Error) => Err(DbError::TransientFailure(format!(
                "injected fault at query {} op {} segment {segment}",
                self.query,
                op.name()
            ))),
            Some(FaultAction::Panic) => panic!(
                "injected fault at query {} op {} segment {segment}",
                self.query,
                op.name()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_site() {
        let a = FaultInjector::new(FaultPlan::errors(42, 500, u64::MAX));
        let b = FaultInjector::new(FaultPlan::errors(42, 500, u64::MAX));
        for query in 0..8 {
            for seg in 0..8 {
                assert_eq!(
                    a.decide(query, OpKind::Join, seg),
                    b.decide(query, OpKind::Join, seg),
                );
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultInjector::new(FaultPlan::errors(1, 500, u64::MAX));
        let b = FaultInjector::new(FaultPlan::errors(2, 500, u64::MAX));
        let schedule = |inj: &FaultInjector| -> Vec<bool> {
            (0..64)
                .map(|q| inj.decide(q, OpKind::Filter, (q % 8) as usize).is_some())
                .collect()
        };
        assert_ne!(schedule(&a), schedule(&b));
    }

    #[test]
    fn budget_caps_total_injections() {
        let inj = FaultInjector::new(FaultPlan::errors(7, 1000, 3));
        let mut fired = 0;
        for q in 0..100 {
            if inj.decide(q, OpKind::Project, 0).is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 3);
        assert_eq!(inj.injected(), 3);
    }

    #[test]
    fn probabilities_partition_the_draw() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 9,
            panic_per_mille: 300,
            error_per_mille: 300,
            stall_per_mille: 300,
            stall_ms: 1,
            max_faults: u64::MAX,
        });
        let mut counts = [0usize; 4];
        for q in 0..2000 {
            match inj.decide(q, OpKind::Distinct, 3) {
                Some(FaultAction::Panic) => counts[0] += 1,
                Some(FaultAction::Error) => counts[1] += 1,
                Some(FaultAction::Stall) => counts[2] += 1,
                None => counts[3] += 1,
            }
        }
        // ~30% each with a well-mixed hash; just require all occur.
        assert!(counts.iter().all(|&c| c > 0), "counts {counts:?}");
    }

    #[test]
    fn spec_string_round_trips() {
        let p = FaultPlan::parse("seed=11, panic=5, error=10, stall=15, stall_ms=2, max=8").unwrap();
        assert_eq!(
            p,
            FaultPlan {
                seed: 11,
                panic_per_mille: 5,
                error_per_mille: 10,
                stall_per_mille: 15,
                stall_ms: 2,
                max_faults: 8,
            }
        );
        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
        assert!(FaultPlan::parse("panic=600,error=600").is_err());
    }

    #[test]
    fn check_returns_transient_error() {
        let inj = FaultInjector::new(FaultPlan::errors(3, 1000, u64::MAX));
        let ctx = inj.begin_statement();
        let err = ctx.check(OpKind::Repartition, 0).unwrap_err();
        assert!(err.is_retryable(), "{err}");
    }
}
