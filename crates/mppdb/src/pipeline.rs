//! Push-based pipelined executor.
//!
//! [`compile`]s a [`Plan`] into a tree of pipelines and runs them
//! bottom-up. A pipeline is a morsel source (a scanned table or the
//! output cell of an upstream pipeline), a chain of streaming
//! [`PushOperator`] stages, and one sink. Within a pipeline, batches
//! stream through the whole chain partition-by-partition with no
//! intermediate [`PData`]: a filter → project → join-probe chain is a
//! single pass over each morsel, scheduled as one cooperative task per
//! partition on the segment pool ([`crate::pool::SegmentPool::run_coop`]).
//! Only genuine pipeline breakers — join build, aggregate, distinct's
//! pre-exchange, exchange itself — materialize, and each breaker ends
//! its pipeline and sources the next one.
//!
//! Backpressure is fuel-based: every partition slice gets
//! [`FUEL_PER_SLICE`] morsel pushes; when an operator answers
//! [`PollPush::Pending`] the driver parks its mid-chain position and
//! yields the worker, so concurrent statements interleave at operator
//! granularity rather than queueing behind whole operators.
//!
//! The materializing executor ([`crate::plan::execute`]) stays on as
//! the property-tested correctness oracle behind
//! `ClusterConfig::pipelined = false`. Both executors call the same
//! per-partition compute kernels ([`crate::operators::compute`]), and
//! the pipelined driver preserves morsel order everywhere, so results
//! are byte-identical by construction.

use crate::batch::{Batch, Column};
use crate::error::{DbError, DbResult};
use crate::operators::stages::{
    AggSink, BufCell, BufferSink, BuildCell, BuildSink, DedupOp, ExchangeSink, FilterOp,
    GlobalAggSink, ProbeOp, ProjectOp,
};
use crate::operators::{
    compute, ExecEnv, Finalize, Morsel, PartState, PollPush, PushCx, PushOperator, SinkPart,
};
use crate::ops::{self, JoinType, PData};
use crate::plan::{ExecContext, Plan};
use crate::pool::PartitionTask;
use crate::schema::{Field, Schema};
use crate::span::{ActiveTrace, PartClock, SpanKind};
use crate::stats::OpKind;
use crate::table::Distribution;
use crate::trace::{OpProfile, ProfileNode};
use crate::value::DataType;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Morsel pushes allowed per cooperative slice before a partition
/// driver yields its worker back to the shared queue.
const FUEL_PER_SLICE: u32 = 4;

/// Where a pipeline's morsels come from.
enum Source {
    /// Zero-copy scan over a stored table's partitions.
    Table(Arc<Vec<Batch>>),
    /// The output cell of one or more upstream pipelines.
    Cell(Arc<BufCell>),
}

/// One compiled pipeline: upstream pipelines to run first, a source,
/// and an operator chain whose last element is the sink.
struct PipeNode {
    children: Vec<PipeNode>,
    source: Source,
    chain: Vec<Arc<dyn PushOperator>>,
    n_parts: usize,
    label: String,
}

/// A pipeline under construction: its stages so far plus the schema,
/// distribution, and partition count of the stream at this point.
struct StreamState {
    children: Vec<PipeNode>,
    source: Source,
    stages: Vec<Arc<dyn PushOperator>>,
    desc: Vec<String>,
    schema: Schema,
    dist: Distribution,
    n_parts: usize,
}

impl StreamState {
    /// Closes this stream into a pipeline by appending its sink.
    fn close(mut self, sink: Arc<dyn PushOperator>, sink_label: String) -> PipeNode {
        self.stages.push(sink);
        self.desc.push(sink_label);
        PipeNode {
            children: self.children,
            source: self.source,
            chain: self.stages,
            n_parts: self.n_parts,
            label: format!("Pipeline: {}", self.desc.join(" -> ")),
        }
    }
}

struct Compiler<'a, 'b> {
    ctx: &'b ExecContext<'a>,
}

impl Compiler<'_, '_> {
    fn compile(&self, plan: &Plan) -> DbResult<StreamState> {
        match plan {
            Plan::Scan { table } => {
                let t = (self.ctx.lookup)(table)?;
                Ok(StreamState {
                    children: Vec::new(),
                    n_parts: t.partitions.len(),
                    source: Source::Table(t.partitions.clone()),
                    stages: Vec::new(),
                    desc: vec![format!("Scan: {table}")],
                    schema: t.schema.clone(),
                    dist: t.distribution.clone(),
                })
            }
            Plan::OneRow => {
                let schema = Schema::new(vec![Field::new("__one", DataType::Int64)]);
                let n = self.ctx.segments.max(1);
                let cell = Arc::new(BufCell::default());
                cell.ensure(n);
                cell.push_part(0, vec![Batch::from_columns(vec![Column::from_ints(vec![0])])]);
                Ok(StreamState {
                    children: Vec::new(),
                    source: Source::Cell(cell),
                    stages: Vec::new(),
                    desc: vec!["OneRow".into()],
                    schema,
                    dist: Distribution::Arbitrary,
                    n_parts: n,
                })
            }
            Plan::Project { input, exprs } => {
                let mut s = self.compile(input)?;
                s.dist = compute::projected_dist(exprs, &s.dist);
                s.schema = ops::build_schema_allow_dups(
                    exprs.iter().map(|(_, f)| f.clone()).collect(),
                );
                s.stages.push(Arc::new(ProjectOp {
                    exprs: exprs.clone(),
                    accum: Default::default(),
                }));
                s.desc.push("Project".into());
                Ok(s)
            }
            Plan::Filter { input, pred } => {
                let mut s = self.compile(input)?;
                s.stages.push(Arc::new(FilterOp {
                    pred: pred.clone(),
                    accum: Default::default(),
                }));
                s.desc.push("Filter".into());
                Ok(s)
            }
            Plan::Distinct { input } => {
                let s = self.compile(input)?;
                let all_cols: Vec<usize> = (0..s.schema.len()).collect();
                let mut s = self.ensure(s, &all_cols);
                let dtypes: Vec<DataType> =
                    s.schema.fields().iter().map(|f| f.dtype).collect();
                s.stages.push(Arc::new(DedupOp {
                    dtypes,
                    vectorized: self.ctx.vectorized,
                    accum: Default::default(),
                }));
                s.desc.push("Distinct".into());
                Ok(s)
            }
            Plan::Join { left, right, l_keys, r_keys, join_type } => {
                if l_keys.len() != r_keys.len() {
                    return Err(DbError::Plan("join key arity mismatch".into()));
                }
                let left_outer = matches!(join_type, JoinType::LeftOuter);
                let r = self.compile(right)?;
                let r = self.ensure(r, r_keys);
                let l = self.compile(left)?;
                let mut l = self.ensure(l, l_keys);
                // Tier decision is schema-driven so build and probe
                // always agree: a single Int64 key on both sides.
                let use_vec = self.ctx.vectorized
                    && l_keys.len() == 1
                    && l.schema.field(l_keys[0]).dtype == DataType::Int64
                    && r.schema.field(r_keys[0]).dtype == DataType::Int64;
                let out_schema = l.schema.join(&r.schema, left_outer);
                let right_width = r.schema.len();
                let cell = Arc::new(BuildCell::default());
                let build_node = {
                    let in_schema = r.schema.clone();
                    r.close(
                        Arc::new(BuildSink {
                            keys: r_keys.clone(),
                            use_vec,
                            in_schema,
                            cell: cell.clone(),
                            accum: Default::default(),
                        }),
                        format!("JoinBuild{r_keys:?}"),
                    )
                };
                l.children.push(build_node);
                l.stages.push(Arc::new(ProbeOp {
                    l_keys: l_keys.clone(),
                    left_outer,
                    right_width,
                    use_vec,
                    build: cell,
                    accum: Default::default(),
                }));
                l.desc.push(format!("JoinProbe{l_keys:?}"));
                l.schema = out_schema;
                // The join output keeps the left side's key placement
                // (post-exchange, the left stream is always hashed).
                Ok(l)
            }
            Plan::Aggregate { input, group_cols, aggs } => {
                let s = self.compile(input)?;
                let (out_schema, agg_types) =
                    compute::agg_output(&s.schema, group_cols, aggs)?;
                if group_cols.is_empty() {
                    let n_parts = s.n_parts;
                    let cell = Arc::new(BufCell::default());
                    let in_schema = s.schema.clone();
                    let node = s.close(
                        Arc::new(GlobalAggSink {
                            aggs: aggs.clone(),
                            agg_types,
                            in_schema,
                            cell: cell.clone(),
                            accum: Default::default(),
                        }),
                        "Aggregate (global)".into(),
                    );
                    return Ok(StreamState {
                        children: vec![node],
                        source: Source::Cell(cell),
                        stages: Vec::new(),
                        desc: vec!["AggRead".into()],
                        schema: out_schema,
                        dist: Distribution::Arbitrary,
                        n_parts,
                    });
                }
                let s = self.ensure(s, group_cols);
                let n_parts = s.n_parts;
                let cell = Arc::new(BufCell::default());
                let in_schema = s.schema.clone();
                let node = s.close(
                    Arc::new(AggSink {
                        group: group_cols.clone(),
                        aggs: aggs.clone(),
                        agg_types,
                        in_schema,
                        vectorized: self.ctx.vectorized,
                        cell: cell.clone(),
                        accum: Default::default(),
                    }),
                    format!("Aggregate group by {group_cols:?}"),
                );
                Ok(StreamState {
                    children: vec![node],
                    source: Source::Cell(cell),
                    stages: Vec::new(),
                    desc: vec!["AggRead".into()],
                    schema: out_schema,
                    // Group columns keep their hash placement.
                    dist: Distribution::Hash((0..group_cols.len()).collect()),
                    n_parts,
                })
            }
            Plan::UnionAll { inputs } => {
                if inputs.is_empty() {
                    return Err(DbError::Plan("empty UNION ALL".into()));
                }
                let cell = Arc::new(BufCell::default());
                let mut nodes = Vec::with_capacity(inputs.len());
                let mut schema: Option<Schema> = None;
                let mut dist: Option<Distribution> = None;
                let mut n_parts = 0usize;
                for p in inputs {
                    let b = self.compile(p)?;
                    if let Some(first) = &schema {
                        if b.schema.len() != first.len() {
                            return Err(DbError::Plan(format!(
                                "UNION ALL arity mismatch: {} vs {}",
                                first.len(),
                                b.schema.len()
                            )));
                        }
                        if dist.as_ref() != Some(&b.dist) {
                            dist = Some(Distribution::Arbitrary);
                        }
                    } else {
                        schema = Some(b.schema.clone());
                        dist = Some(b.dist.clone());
                    }
                    n_parts = n_parts.max(b.n_parts);
                    // Branch pipelines share one cell and run in branch
                    // order, so each partition concatenates branch-major
                    // — the materializing executor's order.
                    nodes.push(b.close(
                        Arc::new(BufferSink {
                            op: Some(OpKind::UnionAll),
                            cell: cell.clone(),
                            accum: Default::default(),
                        }),
                        "UnionBranch".into(),
                    ));
                }
                Ok(StreamState {
                    children: nodes,
                    source: Source::Cell(cell),
                    stages: Vec::new(),
                    desc: vec![format!("UnionRead ({} branches)", inputs.len())],
                    schema: schema.expect("non-empty union"),
                    dist: dist.expect("non-empty union"),
                    n_parts,
                })
            }
        }
    }

    /// Ensures the stream is hash-distributed on `keys`, closing it
    /// into an exchange pipeline if not (mirrors
    /// [`ops::ensure_distribution`], including elision).
    fn ensure(&self, s: StreamState, keys: &[usize]) -> StreamState {
        if self.ctx.allow_colocated
            && s.dist.is_hash_on(keys)
            && s.n_parts == self.ctx.segments
        {
            return s;
        }
        let n = self.ctx.segments.max(1);
        let use_vec = self.ctx.vectorized
            && keys.iter().all(|&k| s.schema.field(k).dtype == DataType::Int64);
        let cell = Arc::new(BufCell::default());
        let schema = s.schema.clone();
        let node = s.close(
            Arc::new(ExchangeSink {
                keys: keys.to_vec(),
                n_dest: n,
                use_vec,
                cell: cell.clone(),
                accum: Default::default(),
            }),
            format!("Exchange{keys:?}"),
        );
        StreamState {
            children: vec![node],
            source: Source::Cell(cell),
            stages: Vec::new(),
            desc: vec!["ShuffleRead".into()],
            schema,
            dist: Distribution::Hash(keys.to_vec()),
            n_parts: n,
        }
    }
}

/// One partition's driver position: pending morsels, a parked
/// mid-chain morsel from a fuel yield, per-stage state, and how far
/// finalization has advanced.
struct PartDriver {
    queue: VecDeque<Morsel>,
    resume: Option<(usize, Morsel)>,
    states: Vec<PartState>,
    fin_stage: usize,
    /// Running/parked wall-time ledger for this partition; every gap
    /// between cooperative slices counts as parked, so
    /// `running + parked == wall` telescopes exactly.
    clock: PartClock,
    /// Set when the previous slice ended in a fuel yield — the next
    /// slice's entry gap is then a backpressure park worth a `Parked`
    /// span and a `Stats::charge_parked` tick, not mere queueing.
    parked_pending: bool,
}

/// The cooperative task driving every partition of one pipeline.
struct PipeTask {
    chain: Vec<Arc<dyn PushOperator>>,
    drivers: Vec<Mutex<PartDriver>>,
    env: ExecEnv,
    /// Active statement trace (tasks must be `'static`, so the trace
    /// rides in the task rather than borrowing the exec context).
    spans: Option<Arc<ActiveTrace>>,
    /// Task-local time base for the partition clocks when tracing is
    /// off (with a trace, its anchor is used so spans line up).
    epoch: Instant,
    /// Fuel-yield parks across all partitions, drained into
    /// `Stats::charge_parked` after the pool run completes.
    parked_total: AtomicU64,
    /// Total parked nanoseconds across all partitions.
    parked_nanos: AtomicU64,
}

impl PipeTask {
    /// Pushes a morsel into stage `idx` and walks it down the chain.
    /// Returns the parked position if an operator ran out of fuel.
    fn push_from(
        &self,
        idx: usize,
        morsel: Morsel,
        states: &mut [PartState],
        cx: &mut PushCx<'_>,
    ) -> DbResult<Option<(usize, Morsel)>> {
        let mut i = idx;
        let mut m = morsel;
        loop {
            let stage = &self.chain[i];
            let rows_in = m.rows() as u64;
            let started = Instant::now();
            let polled = stage.poll_push(m, &mut states[i], cx);
            stage.accum().add_nanos(started.elapsed().as_nanos() as u64);
            match polled? {
                PollPush::Pending(back) => return Ok(Some((i, back))),
                PollPush::Pushed(out) => {
                    stage.accum().add_rows_in(rows_in);
                    match out {
                        Some(b) => {
                            stage.accum().add_rows_out(b.rows() as u64);
                            if b.rows() == 0 {
                                return Ok(None);
                            }
                            i += 1;
                            m = Morsel::Owned(b);
                        }
                        // A sink consumed the morsel.
                        None => return Ok(None),
                    }
                }
            }
        }
    }
}

impl PipeTask {
    /// Nanoseconds on the clock the partition ledgers use: the trace's
    /// anchor when tracing, a task-local epoch otherwise.
    fn now_ns(&self) -> u64 {
        match &self.spans {
            Some(t) => t.now_ns(),
            None => self.epoch.elapsed().as_nanos() as u64,
        }
    }
}

impl PartitionTask for PipeTask {
    type Out = SinkPart;

    fn step(&self, part: usize) -> DbResult<Option<SinkPart>> {
        let mut guard = self.drivers[part].lock().unwrap_or_else(|e| e.into_inner());
        let d = &mut *guard;
        let entered = self.now_ns();
        let gap = d.clock.enter(entered);
        if d.parked_pending {
            d.parked_pending = false;
            self.parked_total.fetch_add(1, Ordering::Relaxed);
            self.parked_nanos.fetch_add(gap, Ordering::Relaxed);
            if let Some(spans) = &self.spans {
                spans.record(
                    SpanKind::Parked,
                    "fuel backpressure",
                    entered.saturating_sub(gap),
                    gap,
                    (part + 1) as u32,
                );
            }
        }
        let out = self.drive(part, d);
        d.clock.exit(entered, self.now_ns());
        if matches!(out, Ok(None)) {
            d.parked_pending = true;
        }
        out
    }
}

impl PipeTask {
    /// One cooperative slice over a partition: resume a parked morsel,
    /// drain queued input, then finalize. `Ok(None)` always means a
    /// fuel yield — the park sites are the only early returns.
    fn drive(&self, part: usize, d: &mut PartDriver) -> DbResult<Option<SinkPart>> {
        self.env.guard.check()?;
        let mut cx = PushCx { part, env: &self.env, fuel: FUEL_PER_SLICE };
        loop {
            if let Some((idx, m)) = d.resume.take() {
                if let Some(parked) = self.push_from(idx, m, &mut d.states, &mut cx)? {
                    d.resume = Some(parked);
                    return Ok(None);
                }
                continue;
            }
            if let Some(m) = d.queue.pop_front() {
                // Selection vectors index rows with u32.
                if m.rows() >= u32::MAX as usize {
                    return Err(DbError::Exec("partition exceeds u32 row capacity".into()));
                }
                if let Some(parked) = self.push_from(0, m, &mut d.states, &mut cx)? {
                    d.resume = Some(parked);
                    return Ok(None);
                }
                continue;
            }
            // Input drained: finalize stages front to back; a streaming
            // stage's flush batch continues through the rest of the
            // chain before the next stage finalizes.
            let i = d.fin_stage;
            let stage = &self.chain[i];
            let started = Instant::now();
            let fin = stage.poll_finalize(&mut d.states[i], &mut cx);
            stage.accum().add_nanos(started.elapsed().as_nanos() as u64);
            match fin? {
                Finalize::Stream(out) => {
                    d.fin_stage += 1;
                    if let Some(b) = out {
                        if b.rows() > 0 {
                            stage.accum().add_rows_out(b.rows() as u64);
                            if let Some(parked) =
                                self.push_from(d.fin_stage, Morsel::Owned(b), &mut d.states, &mut cx)?
                            {
                                d.resume = Some(parked);
                                return Ok(None);
                            }
                        }
                    }
                }
                Finalize::Sink(out) => {
                    stage.accum().add_rows_out(out.rows());
                    return Ok(Some(out));
                }
            }
        }
    }
}

/// Runs one pipeline node (children first), charges its stages' op
/// metrics, and — under capture — returns its profile subtree.
fn run_node(
    node: PipeNode,
    ctx: &ExecContext<'_>,
    capture: bool,
) -> DbResult<Option<ProfileNode>> {
    let started = Instant::now();
    let mut children = Vec::new();
    for child in node.children {
        if let Some(p) = run_node(child, ctx, capture)? {
            children.push(p);
        }
    }
    let mut drivers = Vec::with_capacity(node.n_parts);
    for p in 0..node.n_parts {
        let mut queue = VecDeque::new();
        match &node.source {
            Source::Table(parts) => {
                if p < parts.len() && parts[p].rows() > 0 {
                    queue.push_back(Morsel::Shared { parts: parts.clone(), index: p });
                }
            }
            Source::Cell(cell) => {
                for b in cell.take_part(p) {
                    if b.rows() > 0 {
                        queue.push_back(Morsel::Owned(b));
                    }
                }
            }
        }
        let rows_hint: usize = queue.iter().map(Morsel::rows).sum();
        let states: Vec<PartState> =
            node.chain.iter().map(|s| PartState::new(s.init_state(rows_hint))).collect();
        drivers.push(Mutex::new(PartDriver {
            queue,
            resume: None,
            states,
            fin_stage: 0,
            clock: PartClock::default(),
            parked_pending: false,
        }));
    }
    let chain = node.chain;
    let task = Arc::new(PipeTask {
        chain: chain.clone(),
        drivers,
        env: ExecEnv { guard: ctx.guard.clone(), faults: ctx.faults.clone() },
        spans: ctx.spans.clone(),
        epoch: Instant::now(),
        parked_total: AtomicU64::new(0),
        parked_nanos: AtomicU64::new(0),
    });
    let outs = ctx.pool.run_coop("pipeline", node.n_parts, task.clone())?;
    ctx.stats.charge_parked(
        task.parked_total.load(Ordering::Relaxed),
        task.parked_nanos.load(Ordering::Relaxed),
    );
    let seg_rows: Vec<u64> = outs.iter().map(SinkPart::rows).collect();
    let sink = chain.last().expect("pipeline chain always ends in a sink");
    sink.complete(outs, ctx.stats)?;
    // Each stage belongs to exactly one pipeline, so its accumulator is
    // charged exactly once — and the profile record carries the same
    // numbers, keeping profile / op-stats reconciliation exact.
    let mut ops_profiles = Vec::new();
    for stage in &chain {
        if let Some(kind) = stage.kind() {
            let m = stage.accum().metrics();
            ctx.stats.charge_op(kind, m);
            if let Some(spans) = &ctx.spans {
                // Same nanos as the `charge_op` above, so the trace's
                // stage spans reconcile exactly with `op_stats()`.
                let end = spans.now_ns();
                spans.record(
                    SpanKind::Stage,
                    kind.name(),
                    end.saturating_sub(m.nanos),
                    m.nanos,
                    0,
                );
            }
            if capture {
                ops_profiles.push(OpProfile {
                    kind,
                    vectorized_parts: m.vectorized_parts,
                    generic_parts: m.generic_parts,
                    rows_in: m.rows_in,
                    rows_out: m.rows_out,
                    nanos: m.nanos,
                    exchange_bytes: stage.accum().exchange_bytes(),
                });
            }
        }
    }
    if capture {
        Ok(Some(ProfileNode {
            label: node.label,
            rows_out: seg_rows.iter().sum(),
            seg_rows,
            nanos: started.elapsed().as_nanos() as u64,
            ops: ops_profiles,
            children,
        }))
    } else {
        Ok(None)
    }
}

fn run(
    plan: &Plan,
    ctx: &ExecContext<'_>,
    capture: bool,
) -> DbResult<(PData, Option<ProfileNode>)> {
    ctx.guard.check()?;
    let compiler = Compiler { ctx };
    let s = compiler.compile(plan)?;
    let schema = s.schema.clone();
    let dist = s.dist.clone();
    let n_parts = s.n_parts;
    let result_cell = Arc::new(BufCell::default());
    let root = s.close(
        Arc::new(BufferSink { op: None, cell: result_cell.clone(), accum: Default::default() }),
        "Result".into(),
    );
    let profile = run_node(root, ctx, capture)?;
    let mut parts = Vec::with_capacity(n_parts);
    for p in 0..n_parts {
        let batches = result_cell.take_part(p);
        parts.push(if batches.is_empty() {
            Batch::empty(&schema)
        } else {
            Batch::concat_owned(batches)
        });
    }
    Ok((PData { schema, parts, dist }, profile))
}

/// Executes a plan through the pipelined executor.
pub(crate) fn execute(plan: &Plan, ctx: &ExecContext<'_>) -> DbResult<PData> {
    run(plan, ctx, false).map(|(data, _)| data)
}

/// Executes a plan through the pipelined executor while capturing a
/// per-pipeline [`ProfileNode`] tree (the `EXPLAIN ANALYZE` spine).
pub(crate) fn execute_profiled(
    plan: &Plan,
    ctx: &ExecContext<'_>,
) -> DbResult<(PData, ProfileNode)> {
    let (data, profile) = run(plan, ctx, true)?;
    Ok((data, profile.expect("capture mode always builds a profile")))
}
