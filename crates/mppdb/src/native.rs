//! Engine-native connected-components primitives.
//!
//! The Liu–Tarjan framework (arXiv 1812.06177) phrases CC as rounds of
//! three bulk primitives over a label relation and an edge relation:
//! *connect* (each vertex grabs the smallest neighbouring label),
//! *shortcut* (one pointer-jumping pass, `r(v) ← r(r(v))`) and *alter*
//! (rewrite every edge onto current labels, dropping loops). Each maps
//! onto the same per-partition hash kernels the SQL operators use —
//! but invoked directly, with no parsing, planning or statement
//! bookkeeping in the loop. This module is that direct path: every
//! [`CcOp`] runs as a handful of partition-parallel passes on the
//! cluster's [`crate::pool::SegmentPool`], exchanges rows between
//! partitions with the engine's placement hash, and publishes results
//! by atomically swapping whole tables, so an injected fault or a
//! cancellation mid-primitive leaves no partial state behind — a
//! retried primitive starts from the last published tables.
//!
//! Placement: both relations are hash-distributed with the same
//! function the storage layer uses for `load_pairs` /
//! `DISTRIBUTED BY` (`mix64(v) % segments`) — labels on the vertex,
//! edges on their smaller endpoint. That co-location lets *alter*
//! resolve the smaller endpoint's label without any exchange.

use crate::batch::{Batch, Column};
use crate::cluster::Cluster;
use crate::error::{DbError, DbResult};
use crate::fault::FaultContext;
use crate::kernels::{DistinctInts, DistinctPairs, I64Map};
use crate::ops::PData;
use crate::plan::QueryGuard;
use crate::schema::{Field, Schema};
use crate::stats::{OpKind, OpMetrics, Stats};
use crate::table::Distribution;
use crate::value::DataType;
use incc_ffield::strategy::mix64;
use std::sync::Arc;
use std::time::Instant;

/// One engine-native CC primitive invocation. Table names are already
/// resolved into the catalog namespace by the engine that dispatches
/// the op ([`crate::SqlEngine::native_cc`]).
#[derive(Debug, Clone)]
pub enum CcOp<'a> {
    /// Builds the working relations from an edge table (columns
    /// `v1, v2`, loops marking isolated vertices): `labels` gets one
    /// `(v, r)` row per distinct vertex and `edges` the deduplicated
    /// loop-free `(lo, hi)` pairs. With `seed_connect`, the initial
    /// labels already absorb the first *connect*
    /// (`r(v) = min(v, smallest smaller neighbour)`) in the same
    /// passes — one fewer exchange over the edge relation.
    Init {
        /// Source edge table.
        input: &'a str,
        /// Edge relation to create.
        edges: &'a str,
        /// Label relation to create.
        labels: &'a str,
        /// Fuse the first connect into initialisation.
        seed_connect: bool,
    },
    /// Connect: `r(hi) ← min(r(hi), lo)` over all edges, after a local
    /// per-partition min pre-aggregation. Both endpoints of every live
    /// edge are label roots (guaranteed by running [`CcOp::Shortcut`]
    /// to a fixpoint before each [`CcOp::Alter`]), so the min-update
    /// never severs an existing parent link.
    Connect {
        /// Edge relation.
        edges: &'a str,
        /// Label relation, replaced in place.
        labels: &'a str,
    },
    /// One pointer-jumping pass: `r(v) ← r(r(v))`. `changed` counts
    /// rows whose label moved; callers loop until it reaches zero.
    Shortcut {
        /// Label relation, replaced in place.
        labels: &'a str,
    },
    /// Rewrites every edge `(lo, hi)` to `(min(r(lo), r(hi)),
    /// max(r(lo), r(hi)))`, dropping loops and duplicates, and
    /// re-distributes on the new smaller endpoint.
    Alter {
        /// Edge relation, replaced in place.
        edges: &'a str,
        /// Label relation (read only).
        labels: &'a str,
    },
    /// Reads a deterministic stride sample of an edge table (up to
    /// `per_part` rows from each partition) for the adaptive driver's
    /// census, without gathering the full relation.
    Census {
        /// Source edge table.
        input: &'a str,
        /// Sample-size cap per partition.
        per_part: usize,
    },
}

/// What a [`CcOp`] reports back.
#[derive(Debug, Clone, Default)]
pub struct CcReport {
    /// Rows in the op's output relation (edge rows for
    /// [`CcOp::Init`]/[`CcOp::Alter`], label rows otherwise).
    pub rows_out: usize,
    /// Rows whose label changed ([`CcOp::Connect`]/[`CcOp::Shortcut`];
    /// for a seeding [`CcOp::Init`], labels seeded below their vertex).
    pub changed: usize,
    /// The gathered sample ([`CcOp::Census`] only, empty otherwise).
    pub sample: Vec<(i64, i64)>,
    /// Exact count of distinct source vertices ([`CcOp::Census`] only,
    /// 0 otherwise). Storage hashes rows by `v1`, so each distinct
    /// source lives in exactly one partition and the per-partition
    /// counts sum without double-counting — one O(rows) hash pass
    /// buys the scale-invariant edges-per-source density feature the
    /// adaptive driver keys its algorithm choice on.
    pub src_verts: usize,
}

/// The storage placement hash: must agree with
/// [`crate::exec::hash_datum`] on integers so natively-built tables are
/// co-located with `load_pairs` output and honest about their
/// `Distribution::Hash` metadata.
#[inline]
fn part_of(v: i64, n: u64) -> usize {
    (mix64(v as u64) % n) as usize
}

/// Per-partition pair storage: two parallel i64 vectors.
type PairPart = (Vec<i64>, Vec<i64>);

/// Reads a table's partitions as NULL-free i64 pairs (columns 0, 1).
fn read_pairs(cluster: &Cluster, name: &str) -> DbResult<Vec<PairPart>> {
    let t = cluster.table(name)?;
    if t.schema.len() < 2 {
        return Err(DbError::Exec(format!(
            "native cc: table {name:?} has {} columns, need 2",
            t.schema.len()
        )));
    }
    let mut parts = Vec::with_capacity(t.partitions.len());
    for b in t.partitions.iter() {
        let (a, av) = int_column(b, 0, name)?;
        let (c, cv) = int_column(b, 1, name)?;
        if has_null(av) || has_null(cv) {
            return Err(DbError::Exec(format!(
                "native cc: NULL value in table {name:?}"
            )));
        }
        parts.push((a.to_vec(), c.to_vec()));
    }
    Ok(parts)
}

fn int_column<'b>(
    b: &'b Batch,
    idx: usize,
    name: &str,
) -> DbResult<(&'b [i64], Option<&'b [bool]>)> {
    b.column(idx).as_int_parts().ok_or_else(|| {
        DbError::Exec(format!(
            "native cc: column {idx} of table {name:?} is not bigint"
        ))
    })
}

fn has_null(validity: Option<&[bool]>) -> bool {
    validity.is_some_and(|m| m.iter().any(|ok| !ok))
}

/// Routes per-source bucket lists to their destination partitions
/// (concatenating in source order, so placement is deterministic) and
/// charges the cross-partition volume as network traffic.
fn exchange(buckets: Vec<Vec<Vec<(i64, i64)>>>, n: usize, stats: &Stats) -> Vec<Vec<(i64, i64)>> {
    let mut out: Vec<Vec<(i64, i64)>> = (0..n).map(|_| Vec::new()).collect();
    let mut moved = 0u64;
    for (src, per_dest) in buckets.into_iter().enumerate() {
        for (dest, rows) in per_dest.into_iter().enumerate() {
            if dest != src {
                moved += rows.len() as u64 * 16;
            }
            out[dest].extend(rows);
        }
    }
    stats.charge_network(moved);
    out
}

fn pair_data(parts: Vec<PairPart>, col_a: &str, col_b: &str) -> PData {
    let schema = Schema::new(vec![
        Field::new(col_a.to_string(), DataType::Int64),
        Field::new(col_b.to_string(), DataType::Int64),
    ]);
    let parts = parts
        .into_iter()
        .map(|(a, b)| Batch::from_columns(vec![Column::from_ints(a), Column::from_ints(b)]))
        .collect();
    PData { schema, parts, dist: Distribution::Hash(vec![0]) }
}

/// Publishes freshly computed partitions under `name` via an atomic
/// swap: stores them as `{name}__swap`, then replaces. All compute and
/// fault sites run before this point, so a failed primitive never
/// leaves partial state.
fn publish(
    cluster: &Cluster,
    stats: &Stats,
    name: &str,
    parts: Vec<PairPart>,
    col_a: &str,
    col_b: &str,
) -> DbResult<()> {
    let tmp = format!("{name}__swap");
    let _ = cluster.drop_table_with(stats, &tmp);
    cluster.store_with(stats, &tmp, pair_data(parts, col_a, col_b), None)?;
    cluster.replace_table_with(stats, &tmp, name)
}

/// The shared per-closure preamble: cancellation, then fault injection.
#[derive(Clone)]
struct SiteCheck {
    guard: QueryGuard,
    faults: Option<FaultContext>,
}

impl SiteCheck {
    fn check(&self, segment: usize) -> DbResult<()> {
        self.guard.check()?;
        if let Some(f) = &self.faults {
            f.check(OpKind::NativeCc, segment)?;
        }
        Ok(())
    }
}

/// An `i64 → i64` min-aggregation map built from an [`I64Map`] index.
struct MinAgg {
    idx: I64Map,
    keys: Vec<i64>,
    mins: Vec<i64>,
}

impl MinAgg {
    fn for_rows(rows: usize) -> MinAgg {
        MinAgg { idx: I64Map::for_rows(rows), keys: Vec::new(), mins: Vec::new() }
    }

    #[inline]
    fn update(&mut self, key: i64, value: i64) {
        match self.idx.get_or_insert(key, self.keys.len() as u32) {
            Some(slot) => {
                let m = &mut self.mins[slot as usize];
                if value < *m {
                    *m = value;
                }
            }
            None => {
                self.keys.push(key);
                self.mins.push(value);
            }
        }
    }

    fn drain_into(self, buckets: &mut [Vec<(i64, i64)>], n: u64) {
        for (k, m) in self.keys.into_iter().zip(self.mins) {
            buckets[part_of(k, n)].push((k, m));
        }
    }
}

/// A label partition with an index from vertex to row.
struct LabelPart {
    v: Vec<i64>,
    r: Vec<i64>,
    idx: I64Map,
}

impl LabelPart {
    fn build(part: PairPart) -> LabelPart {
        let (v, r) = part;
        let mut idx = I64Map::for_rows(v.len());
        for (row, &vertex) in v.iter().enumerate() {
            idx.set(vertex, row as u32);
        }
        LabelPart { v, r, idx }
    }

    #[inline]
    fn label_of(&self, vertex: i64) -> DbResult<i64> {
        self.idx
            .get(vertex)
            .map(|row| self.r[row as usize])
            .ok_or_else(|| {
                DbError::Exec(format!("native cc: vertex {vertex} missing from label relation"))
            })
    }
}

fn build_label_parts(
    cluster: &Cluster,
    pool: &crate::pool::SegmentPool,
    site: &SiteCheck,
    labels: &str,
) -> DbResult<Arc<Vec<LabelPart>>> {
    let parts = read_pairs(cluster, labels)?;
    let site = site.clone();
    let built = pool.run_parts_labeled("native_cc", parts, move |seg, part| {
        site.check(seg)?;
        Ok(LabelPart::build(part))
    })?;
    Ok(Arc::new(built))
}

/// Runs one native CC primitive against the cluster, attributing
/// resource usage to `stats` (a session's counters or the global
/// instance) and checking `guard` at every partition task.
pub(crate) fn run_native_cc(
    cluster: &Cluster,
    stats: &Arc<Stats>,
    guard: QueryGuard,
    op: &CcOp<'_>,
) -> DbResult<CcReport> {
    let start = Instant::now();
    let site = SiteCheck {
        guard,
        faults: cluster.fault_injector().map(|i| i.begin_statement()),
    };
    let pool = cluster.worker_pool().clone();
    let (report, rows_in, parts_run) = match op {
        CcOp::Init { input, edges, labels, seed_connect } => {
            init(cluster, stats, &pool, &site, input, edges, labels, *seed_connect)?
        }
        CcOp::Connect { edges, labels } => connect(cluster, stats, &pool, &site, edges, labels)?,
        CcOp::Shortcut { labels } => shortcut(cluster, stats, &pool, &site, labels)?,
        CcOp::Alter { edges, labels } => alter(cluster, stats, &pool, &site, edges, labels)?,
        CcOp::Census { input, per_part } => census(cluster, &pool, &site, input, *per_part)?,
    };
    stats.charge_op(
        OpKind::NativeCc,
        OpMetrics {
            vectorized_parts: parts_run,
            generic_parts: 0,
            rows_in,
            rows_out: report.rows_out as u64,
            nanos: start.elapsed().as_nanos() as u64,
        },
    );
    Ok(report)
}

#[allow(clippy::too_many_arguments)]
fn init(
    cluster: &Cluster,
    stats: &Arc<Stats>,
    pool: &crate::pool::SegmentPool,
    site: &SiteCheck,
    input: &str,
    edges: &str,
    labels: &str,
    seed_connect: bool,
) -> DbResult<(CcReport, u64, u64)> {
    let parts = read_pairs(cluster, input)?;
    let n = parts.len().max(1);
    let rows_in: u64 = parts.iter().map(|(a, _)| a.len() as u64).sum();

    // Pass 1: route vertices to their label partition, loop-free edges
    // to their smaller endpoint's partition, and (when seeding) each
    // edge's smaller endpoint to the larger one's partition as a
    // connect candidate — all locally pre-deduplicated/aggregated.
    let s = site.clone();
    let routed = pool.run_parts_labeled("native_cc", parts, move |seg, (xs, ys)| {
        s.check(seg)?;
        let nn = n as u64;
        let mut vseen = DistinctInts::for_rows(xs.len() * 2);
        let mut eseen = DistinctPairs::for_rows(xs.len());
        let mut vbuck: Vec<Vec<(i64, i64)>> = (0..n).map(|_| Vec::new()).collect();
        let mut ebuck: Vec<Vec<(i64, i64)>> = (0..n).map(|_| Vec::new()).collect();
        let mut cands = MinAgg::for_rows(xs.len());
        for (&x, &y) in xs.iter().zip(&ys) {
            for v in [x, y] {
                if vseen.filter(&[v], None).len() == 1 {
                    vbuck[part_of(v, nn)].push((v, v));
                }
            }
            if x != y {
                let (lo, hi) = (x.min(y), x.max(y));
                if eseen.filter(&[lo], None, &[hi], None).len() == 1 {
                    ebuck[part_of(lo, nn)].push((lo, hi));
                    if seed_connect {
                        cands.update(hi, lo);
                    }
                }
            }
        }
        let mut cbuck: Vec<Vec<(i64, i64)>> = (0..n).map(|_| Vec::new()).collect();
        cands.drain_into(&mut cbuck, nn);
        Ok((vbuck, ebuck, cbuck))
    })?;
    let mut vbuckets = Vec::with_capacity(n);
    let mut ebuckets = Vec::with_capacity(n);
    let mut cbuckets = Vec::with_capacity(n);
    for (v, e, c) in routed {
        vbuckets.push(v);
        ebuckets.push(e);
        cbuckets.push(c);
    }
    let vparts = exchange(vbuckets, n, stats);
    let eparts = exchange(ebuckets, n, stats);
    let cparts = exchange(cbuckets, n, stats);

    // Pass 2: per-partition global dedup; seeded labels take the min
    // of the vertex and its aggregated candidates.
    let s = site.clone();
    let items: Vec<_> = vparts.into_iter().zip(eparts).zip(cparts).collect();
    let built = pool.run_parts_labeled(
        "native_cc",
        items,
        move |seg, ((vrows, erows), crows)| {
            s.check(seg)?;
            let mut vseen = DistinctInts::for_rows(vrows.len());
            let mut v: Vec<i64> = Vec::new();
            for (vertex, _) in vrows {
                if vseen.filter(&[vertex], None).len() == 1 {
                    v.push(vertex);
                }
            }
            let mut cands = MinAgg::for_rows(crows.len());
            for (k, m) in crows {
                cands.update(k, m);
            }
            let mut changed = 0usize;
            let r: Vec<i64> = v
                .iter()
                .map(|&vertex| {
                    match cands.idx.get(vertex) {
                        Some(slot) if cands.mins[slot as usize] < vertex => {
                            changed += 1;
                            cands.mins[slot as usize]
                        }
                        _ => vertex,
                    }
                })
                .collect();
            let mut eseen = DistinctPairs::for_rows(erows.len());
            let mut lo: Vec<i64> = Vec::new();
            let mut hi: Vec<i64> = Vec::new();
            for (a, b) in erows {
                if eseen.filter(&[a], None, &[b], None).len() == 1 {
                    lo.push(a);
                    hi.push(b);
                }
            }
            Ok(((v, r), (lo, hi), changed))
        },
    )?;
    let mut lparts = Vec::with_capacity(n);
    let mut eparts = Vec::with_capacity(n);
    let mut changed = 0usize;
    for (l, e, c) in built {
        lparts.push(l);
        eparts.push(e);
        changed += c;
    }
    let edge_rows: usize = eparts.iter().map(|(a, _)| a.len()).sum();
    publish(cluster, stats, labels, lparts, "v", "r")?;
    publish(cluster, stats, edges, eparts, "lo", "hi")?;
    Ok((
        CcReport { rows_out: edge_rows, changed, sample: Vec::new(), src_verts: 0 },
        rows_in,
        2 * n as u64,
    ))
}

fn connect(
    cluster: &Cluster,
    stats: &Arc<Stats>,
    pool: &crate::pool::SegmentPool,
    site: &SiteCheck,
    edges: &str,
    labels: &str,
) -> DbResult<(CcReport, u64, u64)> {
    let eparts = read_pairs(cluster, edges)?;
    let n = eparts.len().max(1);
    let rows_in: u64 = eparts.iter().map(|(a, _)| a.len() as u64).sum();

    // Pass 1: local min pre-aggregation of candidates, routed to the
    // larger endpoint's label partition.
    let s = site.clone();
    let routed = pool.run_parts_labeled("native_cc", eparts, move |seg, (lo, hi)| {
        s.check(seg)?;
        let mut cands = MinAgg::for_rows(lo.len());
        for (&l, &h) in lo.iter().zip(&hi) {
            cands.update(h, l);
        }
        let mut buck: Vec<Vec<(i64, i64)>> = (0..n).map(|_| Vec::new()).collect();
        cands.drain_into(&mut buck, n as u64);
        Ok(buck)
    })?;
    let cparts = exchange(routed, n, stats);

    // Pass 2: apply the aggregated minimum onto each label partition.
    let lparts = build_label_parts(cluster, pool, site, labels)?;
    let s = site.clone();
    let shared = lparts.clone();
    let items: Vec<_> = cparts.into_iter().enumerate().collect();
    let updated = pool.run_parts_labeled("native_cc", items, move |seg, (part, crows)| {
        s.check(seg)?;
        let lp = &shared[part];
        let mut r = lp.r.clone();
        let mut changed = 0usize;
        for (b, m) in crows {
            let row = lp.idx.get(b).ok_or_else(|| {
                DbError::Exec(format!("native cc: vertex {b} missing from label relation"))
            })? as usize;
            if m < r[row] {
                r[row] = m;
                changed += 1;
            }
        }
        Ok(((lp.v.clone(), r), changed))
    })?;
    let mut parts = Vec::with_capacity(n);
    let mut changed = 0usize;
    for (p, c) in updated {
        parts.push(p);
        changed += c;
    }
    let rows_out: usize = parts.iter().map(|(v, _)| v.len()).sum();
    publish(cluster, stats, labels, parts, "v", "r")?;
    Ok((
        CcReport { rows_out, changed, sample: Vec::new(), src_verts: 0 },
        rows_in,
        3 * n as u64,
    ))
}

fn shortcut(
    cluster: &Cluster,
    stats: &Arc<Stats>,
    pool: &crate::pool::SegmentPool,
    site: &SiteCheck,
    labels: &str,
) -> DbResult<(CcReport, u64, u64)> {
    let lparts = build_label_parts(cluster, pool, site, labels)?;
    let n = lparts.len().max(1);
    let rows_in: u64 = lparts.iter().map(|p| p.v.len() as u64).sum();

    // Pass 1: each partition requests the label of every distinct
    // non-root label value it holds, from that value's home partition.
    let s = site.clone();
    let shared = lparts.clone();
    let items: Vec<usize> = (0..n).collect();
    let routed = pool.run_parts_labeled("native_cc", items, move |seg, part| {
        s.check(seg)?;
        let lp = &shared[part];
        let mut seen = DistinctInts::for_rows(lp.r.len());
        let mut buck: Vec<Vec<(i64, i64)>> = (0..n).map(|_| Vec::new()).collect();
        for (&v, &r) in lp.v.iter().zip(&lp.r) {
            if r != v && seen.filter(&[r], None).len() == 1 {
                buck[part_of(r, n as u64)].push((r, part as i64));
            }
        }
        Ok(buck)
    })?;
    let reqs = exchange(routed, n, stats);

    // Pass 2: answer each request with the key's current label, routed
    // back to the asking partition.
    let s = site.clone();
    let shared = lparts.clone();
    let items: Vec<_> = reqs.into_iter().enumerate().collect();
    let routed = pool.run_parts_labeled("native_cc", items, move |seg, (part, rows)| {
        s.check(seg)?;
        let lp = &shared[part];
        let mut buck: Vec<Vec<(i64, i64)>> = (0..n).map(|_| Vec::new()).collect();
        for (key, origin) in rows {
            buck[origin as usize].push((key, lp.label_of(key)?));
        }
        Ok(buck)
    })?;
    let replies = exchange(routed, n, stats);

    // Pass 3: rewrite each partition's labels through the answers.
    let s = site.clone();
    let shared = lparts.clone();
    let items: Vec<_> = replies.into_iter().enumerate().collect();
    let jumped = pool.run_parts_labeled("native_cc", items, move |seg, (part, rows)| {
        s.check(seg)?;
        let lp = &shared[part];
        let mut map = MinAgg::for_rows(rows.len());
        for (key, val) in rows {
            map.update(key, val);
        }
        let mut changed = 0usize;
        let r: Vec<i64> = lp
            .v
            .iter()
            .zip(&lp.r)
            .map(|(&v, &r)| {
                if r == v {
                    r
                } else {
                    let next = map
                        .idx
                        .get(r)
                        .map(|slot| map.mins[slot as usize])
                        .unwrap_or(r);
                    if next != r {
                        changed += 1;
                    }
                    next
                }
            })
            .collect();
        Ok(((lp.v.clone(), r), changed))
    })?;
    let mut parts = Vec::with_capacity(n);
    let mut changed = 0usize;
    for (p, c) in jumped {
        parts.push(p);
        changed += c;
    }
    let rows_out: usize = parts.iter().map(|(v, _)| v.len()).sum();
    publish(cluster, stats, labels, parts, "v", "r")?;
    Ok((
        CcReport { rows_out, changed, sample: Vec::new(), src_verts: 0 },
        rows_in,
        4 * n as u64,
    ))
}

fn alter(
    cluster: &Cluster,
    stats: &Arc<Stats>,
    pool: &crate::pool::SegmentPool,
    site: &SiteCheck,
    edges: &str,
    labels: &str,
) -> DbResult<(CcReport, u64, u64)> {
    let eparts = read_pairs(cluster, edges)?;
    let n = eparts.len().max(1);
    let rows_in: u64 = eparts.iter().map(|(a, _)| a.len() as u64).sum();
    let lparts = build_label_parts(cluster, pool, site, labels)?;
    if lparts.len() != n {
        return Err(DbError::Exec(format!(
            "native cc: partition counts differ ({} edge, {} label)",
            n,
            lparts.len()
        )));
    }

    // Pass 1: resolve the smaller endpoint's label locally (edges are
    // distributed on it, co-located with its label row) and route the
    // half-relabelled edge to the larger endpoint's partition.
    let s = site.clone();
    let shared = lparts.clone();
    let items: Vec<_> = eparts.into_iter().enumerate().collect();
    let routed = pool.run_parts_labeled("native_cc", items, move |seg, (part, (lo, hi))| {
        s.check(seg)?;
        let lp = &shared[part];
        let mut buck: Vec<Vec<(i64, i64)>> = (0..n).map(|_| Vec::new()).collect();
        for (&l, &h) in lo.iter().zip(&hi) {
            buck[part_of(h, n as u64)].push((h, lp.label_of(l)?));
        }
        Ok(buck)
    })?;
    let half = exchange(routed, n, stats);

    // Pass 2: resolve the larger endpoint's label, drop loops, locally
    // dedup, and route the rewritten edge to its new home partition.
    let s = site.clone();
    let shared = lparts.clone();
    let items: Vec<_> = half.into_iter().enumerate().collect();
    let routed = pool.run_parts_labeled("native_cc", items, move |seg, (part, rows)| {
        s.check(seg)?;
        let lp = &shared[part];
        let mut seen = DistinctPairs::for_rows(rows.len());
        let mut buck: Vec<Vec<(i64, i64)>> = (0..n).map(|_| Vec::new()).collect();
        for (h, ra) in rows {
            let rb = lp.label_of(h)?;
            if ra == rb {
                continue;
            }
            let (lo2, hi2) = (ra.min(rb), ra.max(rb));
            if seen.filter(&[lo2], None, &[hi2], None).len() == 1 {
                buck[part_of(lo2, n as u64)].push((lo2, hi2));
            }
        }
        Ok(buck)
    })?;
    let rewritten = exchange(routed, n, stats);

    // Pass 3: global dedup per destination partition.
    let s = site.clone();
    let items: Vec<_> = rewritten.into_iter().enumerate().collect();
    let deduped = pool.run_parts_labeled("native_cc", items, move |seg, (_part, rows)| {
        s.check(seg)?;
        let mut seen = DistinctPairs::for_rows(rows.len());
        let mut lo: Vec<i64> = Vec::new();
        let mut hi: Vec<i64> = Vec::new();
        for (a, b) in rows {
            if seen.filter(&[a], None, &[b], None).len() == 1 {
                lo.push(a);
                hi.push(b);
            }
        }
        Ok((lo, hi))
    })?;
    let rows_out: usize = deduped.iter().map(|(a, _)| a.len()).sum();
    publish(cluster, stats, edges, deduped, "lo", "hi")?;
    Ok((
        CcReport { rows_out, changed: 0, sample: Vec::new(), src_verts: 0 },
        rows_in,
        4 * n as u64,
    ))
}

fn census(
    cluster: &Cluster,
    pool: &crate::pool::SegmentPool,
    site: &SiteCheck,
    input: &str,
    per_part: usize,
) -> DbResult<(CcReport, u64, u64)> {
    let parts = read_pairs(cluster, input)?;
    let n = parts.len().max(1);
    let rows_in: u64 = parts.iter().map(|(a, _)| a.len() as u64).sum();
    let cap = per_part.max(1);
    let s = site.clone();
    let sampled = pool.run_parts_labeled("native_cc", parts, move |seg, (a, b)| {
        s.check(seg)?;
        let stride = a.len().div_ceil(cap).max(1);
        let picked: Vec<(i64, i64)> = a
            .iter()
            .zip(&b)
            .step_by(stride)
            .take(cap)
            .map(|(&x, &y)| (x, y))
            .collect();
        // Exact distinct sources: rows are placed by hash(v1), so each
        // distinct v1 value lives in exactly one partition and the
        // per-partition counts sum to the global count.
        let mut set = DistinctInts::for_rows(a.len());
        let srcs = set.filter(&a, None).len();
        Ok((picked, srcs))
    })?;
    let mut sample: Vec<(i64, i64)> = Vec::new();
    let mut src_verts = 0usize;
    for (picked, srcs) in sampled {
        sample.extend(picked);
        src_verts += srcs;
    }
    Ok((
        CcReport { rows_out: sample.len(), changed: rows_in as usize, sample, src_verts },
        rows_in,
        n as u64,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::exec::hash_datum;
    use crate::value::Datum;

    #[test]
    fn placement_hash_matches_storage() {
        for v in [0i64, 1, -7, 42, i64::MAX, i64::MIN] {
            for n in [1u64, 2, 8, 13] {
                assert_eq!(part_of(v, n) as u64, hash_datum(&Datum::Int(v)) % n);
            }
        }
    }

    fn run(cluster: &Arc<Cluster>, op: &CcOp<'_>) -> CcReport {
        cluster.native_cc(op).unwrap()
    }

    /// Drives the full primitive cycle by hand over a small graph and
    /// checks labels converge to per-component minima.
    #[test]
    fn primitive_cycle_converges() {
        let cluster = Arc::new(Cluster::new(ClusterConfig { segments: 4, ..Default::default() }));
        // Components {1,2,3,4}, {10,11}, {20} (isolated via loop).
        cluster
            .load_pairs(
                "g",
                "v1",
                "v2",
                &[(3, 4), (1, 2), (2, 3), (10, 11), (20, 20), (2, 1), (4, 4)],
            )
            .unwrap();
        let init = run(
            &cluster,
            &CcOp::Init { input: "g", edges: "e", labels: "l", seed_connect: false },
        );
        assert_eq!(init.rows_out, 4, "deduped loop-free edges");
        assert_eq!(cluster.row_count("l").unwrap(), 7);
        let mut edge_rows = init.rows_out;
        let mut rounds = 0;
        while edge_rows > 0 {
            rounds += 1;
            assert!(rounds < 16, "did not converge");
            run(&cluster, &CcOp::Connect { edges: "e", labels: "l" });
            while run(&cluster, &CcOp::Shortcut { labels: "l" }).changed > 0 {}
            edge_rows = run(&cluster, &CcOp::Alter { edges: "e", labels: "l" }).rows_out;
        }
        while run(&cluster, &CcOp::Shortcut { labels: "l" }).changed > 0 {}
        let mut labels: Vec<(i64, i64)> = cluster.scan_pairs("l").unwrap();
        labels.sort_unstable();
        assert_eq!(
            labels,
            vec![(1, 1), (2, 1), (3, 1), (4, 1), (10, 10), (11, 10), (20, 20)]
        );
    }

    #[test]
    fn seeded_init_matches_plain_init_plus_connect() {
        let cluster = Arc::new(Cluster::new(ClusterConfig { segments: 4, ..Default::default() }));
        let pairs: Vec<(i64, i64)> = (0..40).map(|i| (i, (i * 7 + 3) % 40)).collect();
        cluster.load_pairs("g", "v1", "v2", &pairs).unwrap();
        run(&cluster, &CcOp::Init { input: "g", edges: "e1", labels: "l1", seed_connect: false });
        run(&cluster, &CcOp::Connect { edges: "e1", labels: "l1" });
        run(&cluster, &CcOp::Init { input: "g", edges: "e2", labels: "l2", seed_connect: true });
        let mut a = cluster.scan_pairs("l1").unwrap();
        let mut b = cluster.scan_pairs("l2").unwrap();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(
            cluster.scan_pairs("e1").unwrap().len(),
            cluster.scan_pairs("e2").unwrap().len()
        );
    }

    #[test]
    fn census_samples_are_bounded_and_deterministic() {
        let cluster = Arc::new(Cluster::new(ClusterConfig { segments: 4, ..Default::default() }));
        let pairs: Vec<(i64, i64)> = (0..500).map(|i| (i, i + 1)).collect();
        cluster.load_pairs("g", "v1", "v2", &pairs).unwrap();
        let a = run(&cluster, &CcOp::Census { input: "g", per_part: 16 });
        let b = run(&cluster, &CcOp::Census { input: "g", per_part: 16 });
        assert_eq!(a.changed, 500, "total edge rows travel in `changed`");
        assert!(a.rows_out <= 64 && a.rows_out > 0);
        assert_eq!(a.sample, b.sample);
        assert_eq!(a.src_verts, 500, "distinct sources counted exactly");
    }

    #[test]
    fn null_input_is_rejected() {
        let cluster = Arc::new(Cluster::new(ClusterConfig { segments: 2, ..Default::default() }));
        cluster.run("create table g (v1 bigint, v2 bigint)").unwrap();
        cluster.run("insert into g values (1, null)").unwrap();
        let err = cluster
            .native_cc(&CcOp::Init { input: "g", edges: "e", labels: "l", seed_connect: false })
            .unwrap_err();
        assert!(matches!(err, DbError::Exec(_)), "{err:?}");
    }
}
