//! Recursive-descent parser.

use super::ast::*;
use super::lexer::{tokenize, Token};
use crate::error::{DbError, DbResult};
use crate::expr::CmpOp;

/// Parses one SQL statement (an optional trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> DbResult<Statement> {
    parse_tokens(tokenize(sql)?)
}

/// Parses an already-lexed token stream — the entry point the plan
/// cache uses to parse a normalized template (whose literals have been
/// replaced by [`Token::Param`] placeholders).
pub(crate) fn parse_tokens(tokens: Vec<Token>) -> DbResult<Statement> {
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_if(&Token::Semi);
    if !p.at_end() {
        return Err(DbError::Parse(format!(
            "trailing tokens after statement: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> DbResult<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| DbError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes a keyword (case-insensitive identifier) if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DbError::Parse(format!("expected {kw:?}, found {:?}", self.peek())))
        }
    }

    fn expect(&mut self, t: &Token) -> DbResult<()> {
        if self.eat_if(t) {
            Ok(())
        } else {
            Err(DbError::Parse(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> DbResult<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(DbError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> DbResult<Statement> {
        if self.eat_kw("create") {
            self.expect_kw("table")?;
            let name = self.ident()?;
            if self.eat_if(&Token::LParen) {
                // Explicit column list: an empty table.
                let mut columns = Vec::new();
                loop {
                    let col = self.ident()?;
                    let mut ty = self.ident()?;
                    // Multi-word types: "double precision".
                    if ty == "double" && self.eat_kw("precision") {
                        ty = "double precision".into();
                    }
                    columns.push((col, ty));
                    if !self.eat_if(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                let distributed_by = self.distributed_by()?;
                return Ok(Statement::CreateTable { name, columns, distributed_by });
            }
            self.expect_kw("as")?;
            let query = self.query()?;
            let distributed_by = self.distributed_by()?;
            Ok(Statement::CreateTableAs { name, query, distributed_by })
        } else if self.eat_kw("insert") {
            self.expect_kw("into")?;
            let name = self.ident()?;
            self.expect_kw("values")?;
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                let mut row = Vec::new();
                if !self.eat_if(&Token::RParen) {
                    row.push(self.expr()?);
                    while self.eat_if(&Token::Comma) {
                        row.push(self.expr()?);
                    }
                    self.expect(&Token::RParen)?;
                }
                rows.push(row);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            Ok(Statement::Insert { name, rows })
        } else if self.eat_kw("drop") {
            self.expect_kw("table")?;
            let if_exists = if self.eat_kw("if") {
                self.expect_kw("exists")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            Ok(Statement::DropTable { name, if_exists })
        } else if self.eat_kw("alter") {
            self.expect_kw("table")?;
            let from = self.ident()?;
            self.expect_kw("rename")?;
            self.expect_kw("to")?;
            let to = self.ident()?;
            Ok(Statement::RenameTable { from, to })
        } else if self.eat_kw("explain") {
            let analyze = self.eat_kw("analyze");
            Ok(Statement::Explain { query: self.query()?, analyze })
        } else if matches!(self.peek(), Some(Token::Ident(s)) if s == "select") {
            Ok(Statement::Select(self.query()?))
        } else {
            Err(DbError::Parse(format!(
                "expected CREATE/DROP/ALTER/SELECT, found {:?}",
                self.peek()
            )))
        }
    }

    fn distributed_by(&mut self) -> DbResult<Option<String>> {
        if self.eat_kw("distributed") {
            self.expect_kw("by")?;
            self.expect(&Token::LParen)?;
            let col = self.ident()?;
            self.expect(&Token::RParen)?;
            Ok(Some(col))
        } else {
            Ok(None)
        }
    }

    fn query(&mut self) -> DbResult<Query> {
        let mut selects = vec![self.select_core()?];
        loop {
            // `UNION ALL` — look ahead so a bare `union` table name is
            // not swallowed.
            if matches!(self.peek(), Some(Token::Ident(s)) if s == "union")
                && matches!(self.peek2(), Some(Token::Ident(s)) if s == "all")
            {
                self.pos += 2;
                selects.push(self.select_core()?);
            } else {
                break;
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let col = self.ident()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((col, desc));
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as usize),
                other => {
                    return Err(DbError::Parse(format!(
                        "LIMIT needs a non-negative integer, got {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query { selects, order_by, limit })
    }

    fn select_core(&mut self) -> DbResult<SelectCore> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = vec![self.select_item()?];
        while self.eat_if(&Token::Comma) {
            items.push(self.select_item()?);
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            from.push(self.parse_from_item(JoinKind::Comma, false)?);
            loop {
                if self.eat_if(&Token::Comma) {
                    from.push(self.parse_from_item(JoinKind::Comma, false)?);
                } else if self.eat_kw("left") {
                    self.eat_kw("outer");
                    self.expect_kw("join")?;
                    from.push(self.parse_from_item(JoinKind::LeftOuter, true)?);
                } else if self.eat_kw("inner") {
                    self.expect_kw("join")?;
                    from.push(self.parse_from_item(JoinKind::Inner, true)?);
                } else if self.eat_kw("join") {
                    from.push(self.parse_from_item(JoinKind::Inner, true)?);
                } else {
                    break;
                }
            }
        }
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.expr()?);
            while self.eat_if(&Token::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw("having") { Some(self.expr()?) } else { None };
        Ok(SelectCore { distinct, items, from, where_clause, group_by, having })
    }

    fn select_item(&mut self) -> DbResult<SelectItem> {
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(s)) = self.peek() {
            // Bare-word alias, unless the word is a clause keyword.
            const CLAUSE_KEYWORDS: &[&str] = &[
                "from", "where", "group", "union", "distributed", "left", "inner",
                "join", "on", "as", "order", "limit", "having", "is",
            ];
            if CLAUSE_KEYWORDS.contains(&s.as_str()) {
                None
            } else {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            }
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn parse_from_item(&mut self, kind: JoinKind, with_on: bool) -> DbResult<FromItem> {
        let rel = if self.eat_if(&Token::LParen) {
            let q = self.query()?;
            self.expect(&Token::RParen)?;
            TableRel::Subquery(Box::new(q))
        } else {
            TableRel::Table(self.ident()?)
        };
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(s)) = self.peek() {
            const CLAUSE_KEYWORDS: &[&str] = &[
                "where", "group", "union", "distributed", "left", "inner", "join",
                "on", "order", "limit", "having", "is",
            ];
            if CLAUSE_KEYWORDS.contains(&s.as_str()) {
                None
            } else {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            }
        } else {
            None
        };
        let on = if with_on {
            self.expect_kw("on")?;
            Some(self.expr()?)
        } else {
            None
        };
        Ok(FromItem { rel, alias, kind, on })
    }

    /// expr := cmp (AND cmp)*
    fn expr(&mut self) -> DbResult<AstExpr> {
        let mut e = self.cmp()?;
        while self.eat_kw("and") {
            let r = self.cmp()?;
            e = AstExpr::And(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    /// cmp := primary [IS [NOT] NULL | (= | != | < | <= | > | >=) primary]
    fn cmp(&mut self) -> DbResult<AstExpr> {
        let left = self.primary()?;
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(AstExpr::IsNull { expr: Box::new(left), negated });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(CmpOp::Eq),
            Some(Token::Ne) => Some(CmpOp::Ne),
            Some(Token::Lt) => Some(CmpOp::Lt),
            Some(Token::Le) => Some(CmpOp::Le),
            Some(Token::Gt) => Some(CmpOp::Gt),
            Some(Token::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.primary()?;
            Ok(AstExpr::Cmp { op, left: Box::new(left), right: Box::new(right) })
        } else {
            Ok(left)
        }
    }

    fn primary(&mut self) -> DbResult<AstExpr> {
        match self.next()? {
            Token::Int(v) => Ok(AstExpr::Int(v)),
            Token::Float(v) => Ok(AstExpr::Float(v)),
            Token::Param { idx, float } => Ok(AstExpr::Param { idx, float }),
            Token::Minus => match self.next()? {
                Token::Int(v) => Ok(AstExpr::Int(-v)),
                Token::Float(v) => Ok(AstExpr::Float(-v)),
                other => {
                    Err(DbError::Parse(format!("expected number after '-', got {other:?}")))
                }
            },
            Token::Plus => self.primary(),
            Token::LParen => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Star => Ok(AstExpr::Star),
            Token::Ident(name) => {
                if name == "null" {
                    return Ok(AstExpr::Null);
                }
                if self.eat_if(&Token::LParen) {
                    // Function call.
                    let mut args = Vec::new();
                    if !self.eat_if(&Token::RParen) {
                        args.push(self.expr()?);
                        while self.eat_if(&Token::Comma) {
                            args.push(self.expr()?);
                        }
                        self.expect(&Token::RParen)?;
                    }
                    return Ok(AstExpr::Call { name, args });
                }
                if self.eat_if(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(AstExpr::Column { qualifier: Some(name), name: col });
                }
                Ok(AstExpr::Column { qualifier: None, name })
            }
            other => Err(DbError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_ccreps_query() {
        // The per-round representatives query from Appendix A.
        let sql = "create table ccreps1 as \
                   select v1 v, least(axplusb(3, v1, 5), min(axplusb(3, v2, 5))) rep \
                   from ccgraph group by v1 distributed by (v)";
        let Statement::CreateTableAs { name, query, distributed_by } =
            parse_statement(sql).unwrap()
        else {
            panic!("not CTAS")
        };
        assert_eq!(name, "ccreps1");
        assert_eq!(distributed_by.as_deref(), Some("v"));
        let core = &query.selects[0];
        assert_eq!(core.items.len(), 2);
        assert_eq!(core.items[0].alias.as_deref(), Some("v"));
        assert_eq!(core.items[1].alias.as_deref(), Some("rep"));
        assert_eq!(core.group_by.len(), 1);
        assert!(core.items[1].expr.contains_aggregate());
    }

    #[test]
    fn parses_paper_setup_union() {
        let sql = "create table ccgraph as \
                   select v1, v2 from edges union all select v2, v1 from edges \
                   distributed by (v1)";
        let Statement::CreateTableAs { query, .. } = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(query.selects.len(), 2);
    }

    #[test]
    fn parses_paper_contraction_join() {
        let sql = "create table ccgraph3 as \
                   select distinct v1, r2.rep as v2 \
                   from ccgraph2, ccreps as r2 \
                   where ccgraph2.v2 = r2.v and v1 != r2.rep \
                   distributed by (v1)";
        let Statement::CreateTableAs { query, .. } = parse_statement(sql).unwrap() else {
            panic!()
        };
        let core = &query.selects[0];
        assert!(core.distinct);
        assert_eq!(core.from.len(), 2);
        assert_eq!(core.from[1].alias.as_deref(), Some("r2"));
        let conj = core.where_clause.as_ref().unwrap().conjuncts();
        assert_eq!(conj.len(), 2);
    }

    #[test]
    fn parses_left_outer_join() {
        let sql = "select r1.v as v, coalesce(r2.rep, axplusb(1, r1.rep, 0)) as rep \
                   from reps1 as r1 left outer join reps2 as r2 on (r1.rep = r2.v)";
        let Statement::Select(q) = parse_statement(sql).unwrap() else { panic!() };
        let core = &q.selects[0];
        assert_eq!(core.from[1].kind, JoinKind::LeftOuter);
        assert!(core.from[1].on.is_some());
    }

    #[test]
    fn parses_ddl() {
        assert_eq!(
            parse_statement("drop table t;").unwrap(),
            Statement::DropTable { name: "t".into(), if_exists: false }
        );
        assert_eq!(
            parse_statement("drop table if exists t").unwrap(),
            Statement::DropTable { name: "t".into(), if_exists: true }
        );
        assert_eq!(
            parse_statement("alter table a rename to b").unwrap(),
            Statement::RenameTable { from: "a".into(), to: "b".into() }
        );
    }

    #[test]
    fn parses_count_star_and_subquery() {
        let sql = "select count(*) as n from (select distinct v1 as v from g) as verts";
        let Statement::Select(q) = parse_statement(sql).unwrap() else { panic!() };
        let core = &q.selects[0];
        assert!(matches!(core.from[0].rel, TableRel::Subquery(_)));
        assert_eq!(core.from[0].alias.as_deref(), Some("verts"));
    }

    #[test]
    fn parses_negative_literals() {
        let sql = "select axplusb(-42, v, -7) as r from t";
        let Statement::Select(q) = parse_statement(sql).unwrap() else { panic!() };
        let AstExpr::Call { args, .. } = &q.selects[0].items[0].expr else { panic!() };
        assert_eq!(args[0], AstExpr::Int(-42));
        assert_eq!(args[2], AstExpr::Int(-7));
    }

    #[test]
    fn parses_from_less_select() {
        let sql = "select 1 as a, 2.5 as b";
        let Statement::Select(q) = parse_statement(sql).unwrap() else { panic!() };
        assert!(q.selects[0].from.is_empty());
        assert_eq!(q.selects[0].items.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_statement("frobnicate the database").is_err());
        assert!(parse_statement("select").is_err());
        assert!(parse_statement("select 1 from t extra garbage !").is_err());
        assert!(parse_statement("create table t select 1").is_err());
        assert!(parse_statement("").is_err());
    }

    #[test]
    fn bare_word_aliases() {
        let sql = "select v1 v, v2 w from e";
        let Statement::Select(q) = parse_statement(sql).unwrap() else { panic!() };
        assert_eq!(q.selects[0].items[0].alias.as_deref(), Some("v"));
        assert_eq!(q.selects[0].items[1].alias.as_deref(), Some("w"));
    }

    #[test]
    fn group_by_qualified_column() {
        let sql = "select e.v, min(e.w) from e group by e.v";
        let Statement::Select(q) = parse_statement(sql).unwrap() else { panic!() };
        assert_eq!(
            q.selects[0].group_by[0],
            AstExpr::Column { qualifier: Some("e".into()), name: "v".into() }
        );
    }
}
