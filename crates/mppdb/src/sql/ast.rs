//! Abstract syntax for the supported SQL dialect.

use crate::expr::CmpOp;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name AS query [DISTRIBUTED BY (col)]`.
    CreateTableAs {
        /// New table name (lower-cased).
        name: String,
        /// The defining query.
        query: Query,
        /// Optional hash-distribution column.
        distributed_by: Option<String>,
    },
    /// A bare `SELECT`.
    Select(Query),
    /// `EXPLAIN [ANALYZE] <select>` — render the logical plan,
    /// optionally executing it with per-node row counts and timings.
    Explain {
        /// The query.
        query: Query,
        /// Whether to execute and annotate (`EXPLAIN ANALYZE`).
        analyze: bool,
    },
    /// `DROP TABLE [IF EXISTS] name`.
    DropTable {
        /// Table to drop.
        name: String,
        /// Whether a missing table is tolerated.
        if_exists: bool,
    },
    /// `CREATE TABLE name (col type, …) [DISTRIBUTED BY (col)]` — an
    /// empty table with an explicit schema.
    CreateTable {
        /// New table name.
        name: String,
        /// Column names and type names (`bigint`, `double precision`).
        columns: Vec<(String, String)>,
        /// Optional hash-distribution column.
        distributed_by: Option<String>,
    },
    /// `INSERT INTO name VALUES (…), (…)`.
    Insert {
        /// Target table.
        name: String,
        /// Literal rows.
        rows: Vec<Vec<AstExpr>>,
    },
    /// `ALTER TABLE from RENAME TO to`.
    RenameTable {
        /// Existing name.
        from: String,
        /// New name.
        to: String,
    },
}

/// A query: one or more select cores joined by `UNION ALL`, with an
/// optional final ordering and row limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The `UNION ALL` branches, at least one.
    pub selects: Vec<SelectCore>,
    /// `ORDER BY` keys: output column name + descending flag. Applied
    /// to the gathered result of a bare `SELECT` (a stored table has no
    /// order, as in any relational database).
    pub order_by: Vec<(String, bool)>,
    /// `LIMIT n`.
    pub limit: Option<usize>,
}

/// One `SELECT … FROM … WHERE … GROUP BY …` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectCore {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Output expressions.
    pub items: Vec<SelectItem>,
    /// `FROM` relations in order; empty for a FROM-less select.
    pub from: Vec<FromItem>,
    /// `WHERE` predicate.
    pub where_clause: Option<AstExpr>,
    /// `GROUP BY` column references.
    pub group_by: Vec<AstExpr>,
    /// `HAVING` predicate (aggregation context).
    pub having: Option<AstExpr>,
}

/// A select-list entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: AstExpr,
    /// `AS alias` (or implicit bare-word alias).
    pub alias: Option<String>,
}

/// How a relation enters the `FROM` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Comma-separated (inner join via `WHERE` equalities).
    Comma,
    /// `[INNER] JOIN … ON …`.
    Inner,
    /// `LEFT [OUTER] JOIN … ON …`.
    LeftOuter,
}

/// One relation in the `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// The relation.
    pub rel: TableRel,
    /// Alias (defaults to the table name for base tables).
    pub alias: Option<String>,
    /// How it joins what came before (`Comma` for the first item).
    pub kind: JoinKind,
    /// `ON` condition for explicit joins.
    pub on: Option<AstExpr>,
}

/// A base table or a parenthesised subquery.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRel {
    /// A stored table by name.
    Table(String),
    /// `( query )` — must carry an alias.
    Subquery(Box<Query>),
}

/// An unbound expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Column reference, optionally qualified (`e.v`).
    Column {
        /// Table alias qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// A plan-cache parameter standing in for a literal. Only appears
    /// when parsing a normalized token template (never from user SQL).
    Param {
        /// Position in the extracted parameter list.
        idx: usize,
        /// True when the original literal was a float.
        float: bool,
    },
    /// `NULL`.
    Null,
    /// `*` — only valid inside `count(*)`.
    Star,
    /// Function call: scalar builtin, UDF, or aggregate.
    Call {
        /// Lower-cased function name.
        name: String,
        /// Arguments.
        args: Vec<AstExpr>,
    },
    /// Comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<AstExpr>,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// Conjunction.
    And(Box<AstExpr>, Box<AstExpr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<AstExpr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl AstExpr {
    /// Flattens a conjunction tree into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&AstExpr> {
        match self {
            AstExpr::And(l, r) => {
                let mut out = l.conjuncts();
                out.extend(r.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// True when the expression contains an aggregate call
    /// (`min`, `max`, `count`, `sum`).
    pub fn contains_aggregate(&self) -> bool {
        match self {
            AstExpr::Call { name, args } => {
                is_aggregate_name(name) || args.iter().any(AstExpr::contains_aggregate)
            }
            AstExpr::Cmp { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            AstExpr::And(l, r) => l.contains_aggregate() || r.contains_aggregate(),
            AstExpr::IsNull { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }
}

/// Whether a function name denotes an aggregate.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(name, "min" | "max" | "count" | "sum")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(n: &str) -> AstExpr {
        AstExpr::Column { qualifier: None, name: n.into() }
    }

    #[test]
    fn conjunct_flattening() {
        let e = AstExpr::And(
            Box::new(AstExpr::And(Box::new(col("a")), Box::new(col("b")))),
            Box::new(col("c")),
        );
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
        assert_eq!(*parts[2], col("c"));
        assert_eq!(col("x").conjuncts().len(), 1);
    }

    #[test]
    fn aggregate_detection() {
        let agg = AstExpr::Call { name: "min".into(), args: vec![col("x")] };
        assert!(agg.contains_aggregate());
        let nested = AstExpr::Call { name: "least".into(), args: vec![col("x"), agg] };
        assert!(nested.contains_aggregate());
        let scalar = AstExpr::Call { name: "least".into(), args: vec![col("x")] };
        assert!(!scalar.contains_aggregate());
        assert!(is_aggregate_name("count"));
        assert!(!is_aggregate_name("coalesce"));
    }
}
