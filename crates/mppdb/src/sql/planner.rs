//! Binds parsed SQL to logical plans.
//!
//! Name resolution follows standard SQL scoping: `FROM` relations
//! contribute qualified columns (alias or table name); unqualified
//! names must be unambiguous. Comma-joined relations are combined
//! left-deep using the equality conjuncts of the `WHERE` clause as join
//! keys (the engine does not execute Cartesian products — the paper's
//! queries never need one). Aggregation splits each select item into a
//! pre-aggregation input expression and a post-aggregation projection.

use super::ast::{
    is_aggregate_name, AstExpr, FromItem, JoinKind, Query, SelectCore, TableRel,
};
use crate::error::{DbError, DbResult};
use crate::expr::{Expr, ScalarUdf};
use crate::ops::{AggExpr, AggFunc, JoinType};
use crate::plan::Plan;
use crate::schema::{Field, Schema};
use crate::value::DataType;
use std::sync::Arc;

/// What the planner needs to know about the outside world.
pub trait PlannerCatalog {
    /// Schema of a stored table.
    fn table_schema(&self, name: &str) -> DbResult<Schema>;
    /// A registered UDF by (lower-cased) name.
    fn udf(&self, name: &str) -> Option<Arc<dyn ScalarUdf>>;
    /// A fresh seed for each `random()` call site.
    fn next_random_seed(&self) -> u64;
}

/// Plans a query (a `UNION ALL` chain of select cores).
pub fn plan_query(q: &Query, cat: &dyn PlannerCatalog) -> DbResult<Plan> {
    Ok(plan_query_with_schema(q, cat)?.0)
}

/// Plans a query and also returns its output schema (needed by the
/// executor to resolve `ORDER BY` names against the result).
pub fn plan_query_with_schema(q: &Query, cat: &dyn PlannerCatalog) -> DbResult<(Plan, Schema)> {
    let mut plans = Vec::with_capacity(q.selects.len());
    let mut schema: Option<Schema> = None;
    for core in &q.selects {
        let (p, s) = plan_select(core, cat)?;
        if let Some(first) = &schema {
            if first.len() != s.len() {
                return Err(DbError::Plan(format!(
                    "UNION ALL branches have different arity: {} vs {}",
                    first.len(),
                    s.len()
                )));
            }
        } else {
            schema = Some(s);
        }
        plans.push(p);
    }
    let schema = schema.expect("parser guarantees at least one select");
    let plan = if plans.len() == 1 {
        plans.pop().expect("one plan")
    } else {
        Plan::UnionAll { inputs: plans }
    };
    Ok((plan, schema))
}

/// One column visible in a scope.
#[derive(Debug, Clone)]
struct ScopeCol {
    qualifier: String,
    field: Field,
}

/// The columns visible to expressions at some point of planning.
#[derive(Debug, Clone, Default)]
struct Scope {
    cols: Vec<ScopeCol>,
}

impl Scope {
    fn push_relation(&mut self, qualifier: &str, schema: &Schema, force_nullable: bool) {
        for f in schema.fields() {
            let field = if force_nullable { f.as_nullable() } else { f.clone() };
            self.cols.push(ScopeCol { qualifier: qualifier.to_string(), field });
        }
    }

    fn types(&self) -> Vec<DataType> {
        self.cols.iter().map(|c| c.field.dtype).collect()
    }

    fn nullables(&self) -> Vec<bool> {
        self.cols.iter().map(|c| c.field.nullable).collect()
    }

    /// Resolves a (possibly qualified) column name to its index, or
    /// `None` if absent. Errors on ambiguity.
    fn try_resolve(&self, qualifier: Option<&str>, name: &str) -> DbResult<Option<usize>> {
        let mut found = None;
        for (i, c) in self.cols.iter().enumerate() {
            if c.field.name != name {
                continue;
            }
            if let Some(q) = qualifier {
                if c.qualifier != q {
                    continue;
                }
            }
            if found.is_some() {
                return Err(DbError::Plan(format!(
                    "ambiguous column reference {:?}",
                    display_col(qualifier, name)
                )));
            }
            found = Some(i);
        }
        Ok(found)
    }

    fn resolve(&self, qualifier: Option<&str>, name: &str) -> DbResult<usize> {
        self.try_resolve(qualifier, name)?.ok_or_else(|| {
            DbError::Plan(format!("unknown column {:?}", display_col(qualifier, name)))
        })
    }
}

fn display_col(qualifier: Option<&str>, name: &str) -> String {
    match qualifier {
        Some(q) => format!("{q}.{name}"),
        None => name.to_string(),
    }
}

fn plan_select(core: &SelectCore, cat: &dyn PlannerCatalog) -> DbResult<(Plan, Schema)> {
    // 1. FROM clause -> join tree + scope.
    let (mut plan, scope, leftover_preds) = plan_from(core, cat)?;

    // 2. Residual WHERE conjuncts -> filter.
    if let Some(pred) = leftover_preds {
        plan = Plan::Filter { input: Box::new(plan), pred };
    }

    // 3. Aggregation or plain projection.
    let has_agg = !core.group_by.is_empty()
        || core.items.iter().any(|i| i.expr.contains_aggregate())
        || core.having.as_ref().is_some_and(AstExpr::contains_aggregate);
    if core.having.is_some() && !has_agg {
        return Err(DbError::Plan("HAVING requires GROUP BY or aggregates".into()));
    }
    let (mut plan, out_schema) = if has_agg {
        plan_aggregate_select(core, cat, plan, &scope)?
    } else {
        let mut exprs = Vec::with_capacity(core.items.len());
        let types = scope.types();
        let nullables = scope.nullables();
        for (i, item) in core.items.iter().enumerate() {
            let e = bind_scalar(&item.expr, &scope, cat)?;
            let field = output_field(&e, &item.expr, item.alias.as_deref(), i, &types, &nullables)?;
            exprs.push((e, field));
        }
        let schema =
            crate::ops::build_schema_allow_dups(exprs.iter().map(|(_, f)| f.clone()).collect());
        (Plan::Project { input: Box::new(plan), exprs }, schema)
    };

    // 4. DISTINCT.
    if core.distinct {
        plan = Plan::Distinct { input: Box::new(plan) };
    }
    Ok((plan, out_schema))
}

/// Plans the FROM clause: returns the join tree, the visible scope, and
/// any WHERE conjuncts not consumed as join conditions (bound as one
/// predicate), or `None` if all were consumed / absent.
fn plan_from(
    core: &SelectCore,
    cat: &dyn PlannerCatalog,
) -> DbResult<(Plan, Scope, Option<Expr>)> {
    if core.from.is_empty() {
        if core.where_clause.is_some() {
            return Err(DbError::Plan("WHERE without FROM is unsupported".into()));
        }
        return Ok((Plan::OneRow, Scope::default(), None));
    }

    let where_conjuncts: Vec<AstExpr> = core
        .where_clause
        .as_ref()
        .map(|w| w.conjuncts().into_iter().cloned().collect())
        .unwrap_or_default();
    let mut consumed = vec![false; where_conjuncts.len()];

    let mut plan: Option<Plan> = None;
    let mut scope = Scope::default();
    for item in &core.from {
        let (rel_plan, rel_scope) = plan_relation(item, cat)?;
        let Some(acc) = plan.take() else {
            plan = Some(rel_plan);
            scope = rel_scope;
            continue;
        };
        match item.kind {
            JoinKind::Comma | JoinKind::Inner => {
                // Join keys come from the ON clause (explicit JOIN) and
                // from usable WHERE equality conjuncts.
                let mut l_keys = Vec::new();
                let mut r_keys = Vec::new();
                let mut post_filters: Vec<AstExpr> = Vec::new();
                if let Some(on) = &item.on {
                    for c in on.conjuncts() {
                        match as_join_keys(c, &scope, &rel_scope)? {
                            Some((l, r)) => {
                                l_keys.push(l);
                                r_keys.push(r);
                            }
                            None => post_filters.push((*c).clone()),
                        }
                    }
                }
                for (ci, c) in where_conjuncts.iter().enumerate() {
                    if consumed[ci] {
                        continue;
                    }
                    if let Some((l, r)) = as_join_keys(c, &scope, &rel_scope)? {
                        l_keys.push(l);
                        r_keys.push(r);
                        consumed[ci] = true;
                    }
                }
                if l_keys.is_empty() {
                    return Err(DbError::Plan(format!(
                        "no equi-join condition links relation {:?}; \
                         Cartesian products are unsupported",
                        relation_name(item)
                    )));
                }
                let mut joined = Plan::Join {
                    left: Box::new(acc),
                    right: Box::new(rel_plan),
                    l_keys,
                    r_keys,
                    join_type: JoinType::Inner,
                };
                append_scope(&mut scope, &rel_scope, false);
                // Non-equi ON conjuncts become filters over the joined scope.
                if !post_filters.is_empty() {
                    let pred = bind_conjunction(&post_filters, &scope, cat)?;
                    joined = Plan::Filter { input: Box::new(joined), pred };
                }
                plan = Some(joined);
            }
            JoinKind::LeftOuter => {
                let on = item.on.as_ref().ok_or_else(|| {
                    DbError::Plan("LEFT OUTER JOIN requires an ON clause".into())
                })?;
                let mut l_keys = Vec::new();
                let mut r_keys = Vec::new();
                for c in on.conjuncts() {
                    match as_join_keys(c, &scope, &rel_scope)? {
                        Some((l, r)) => {
                            l_keys.push(l);
                            r_keys.push(r);
                        }
                        None => {
                            return Err(DbError::Plan(
                                "LEFT OUTER JOIN supports only equality conditions".into(),
                            ))
                        }
                    }
                }
                if l_keys.is_empty() {
                    return Err(DbError::Plan(
                        "LEFT OUTER JOIN requires at least one equality".into(),
                    ));
                }
                plan = Some(Plan::Join {
                    left: Box::new(acc),
                    right: Box::new(rel_plan),
                    l_keys,
                    r_keys,
                    join_type: JoinType::LeftOuter,
                });
                append_scope(&mut scope, &rel_scope, true);
            }
        }
    }

    // Any unconsumed WHERE conjunct binds against the final scope.
    let leftovers: Vec<AstExpr> = where_conjuncts
        .into_iter()
        .zip(&consumed)
        .filter(|(_, &used)| !used)
        .map(|(c, _)| c)
        .collect();
    let pred = if leftovers.is_empty() {
        None
    } else {
        Some(bind_conjunction(&leftovers, &scope, cat)?)
    };
    Ok((plan.expect("nonempty FROM"), scope, pred))
}

fn relation_name(item: &FromItem) -> String {
    match (&item.alias, &item.rel) {
        (Some(a), _) => a.clone(),
        (None, TableRel::Table(t)) => t.clone(),
        (None, TableRel::Subquery(_)) => "<subquery>".to_string(),
    }
}

fn append_scope(scope: &mut Scope, rel: &Scope, force_nullable: bool) {
    for c in &rel.cols {
        let field = if force_nullable { c.field.as_nullable() } else { c.field.clone() };
        scope.cols.push(ScopeCol { qualifier: c.qualifier.clone(), field });
    }
}

fn plan_relation(item: &FromItem, cat: &dyn PlannerCatalog) -> DbResult<(Plan, Scope)> {
    match &item.rel {
        TableRel::Table(name) => {
            let schema = cat.table_schema(name)?;
            let qualifier = item.alias.clone().unwrap_or_else(|| name.clone());
            let mut scope = Scope::default();
            scope.push_relation(&qualifier, &schema, false);
            Ok((Plan::Scan { table: name.clone() }, scope))
        }
        TableRel::Subquery(q) => {
            let alias = item.alias.clone().ok_or_else(|| {
                DbError::Plan("subquery in FROM requires an alias".into())
            })?;
            if !q.order_by.is_empty() || q.limit.is_some() {
                return Err(DbError::Plan(
                    "ORDER BY / LIMIT are not supported in FROM subqueries".into(),
                ));
            }
            let (plan, schema) = plan_query_with_schema(q, cat)?;
            let mut scope = Scope::default();
            scope.push_relation(&alias, &schema, false);
            Ok((plan, scope))
        }
    }
}

/// If the conjunct is `left_col = right_col` with one side in each
/// scope, returns the (left_index, right_index) pair.
fn as_join_keys(
    conjunct: &AstExpr,
    left: &Scope,
    right: &Scope,
) -> DbResult<Option<(usize, usize)>> {
    use crate::expr::CmpOp;
    let AstExpr::Cmp { op: CmpOp::Eq, left: a, right: b } = conjunct else {
        return Ok(None);
    };
    let (AstExpr::Column { qualifier: qa, name: na }, AstExpr::Column { qualifier: qb, name: nb }) =
        (a.as_ref(), b.as_ref())
    else {
        return Ok(None);
    };
    let a_left = left.try_resolve(qa.as_deref(), na)?;
    let a_right = right.try_resolve(qa.as_deref(), na)?;
    let b_left = left.try_resolve(qb.as_deref(), nb)?;
    let b_right = right.try_resolve(qb.as_deref(), nb)?;
    // Prefer the orientation where each side resolves on exactly one scope.
    match (a_left, a_right, b_left, b_right) {
        (Some(l), None, None, Some(r)) => Ok(Some((l, r))),
        (None, Some(r), Some(l), None) => Ok(Some((l, r))),
        // Ambiguous resolutions (column exists on both sides) are not
        // treated as join keys; they will bind as a filter if possible.
        _ => Ok(None),
    }
}

fn bind_conjunction(
    conjuncts: &[AstExpr],
    scope: &Scope,
    cat: &dyn PlannerCatalog,
) -> DbResult<Expr> {
    let mut bound: Option<Expr> = None;
    for c in conjuncts {
        let e = bind_predicate(c, scope, cat)?;
        bound = Some(match bound {
            None => e,
            Some(acc) => Expr::And(Box::new(acc), Box::new(e)),
        });
    }
    bound.ok_or_else(|| DbError::Plan("empty predicate".into()))
}

fn bind_predicate(ast: &AstExpr, scope: &Scope, cat: &dyn PlannerCatalog) -> DbResult<Expr> {
    match ast {
        AstExpr::And(l, r) => Ok(Expr::And(
            Box::new(bind_predicate(l, scope, cat)?),
            Box::new(bind_predicate(r, scope, cat)?),
        )),
        AstExpr::Cmp { op, left, right } => Ok(Expr::Cmp {
            op: *op,
            left: Box::new(bind_scalar(left, scope, cat)?),
            right: Box::new(bind_scalar(right, scope, cat)?),
        }),
        AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
            expr: Box::new(bind_scalar(expr, scope, cat)?),
            negated: *negated,
        }),
        other => Err(DbError::Plan(format!("expected a boolean condition, got {other:?}"))),
    }
}

fn bind_scalar(ast: &AstExpr, scope: &Scope, cat: &dyn PlannerCatalog) -> DbResult<Expr> {
    match ast {
        AstExpr::Column { qualifier, name } => {
            Ok(Expr::Column(scope.resolve(qualifier.as_deref(), name)?))
        }
        AstExpr::Int(v) => Ok(Expr::LitInt(*v)),
        AstExpr::Float(v) => Ok(Expr::LitDouble(*v)),
        AstExpr::Param { idx, float } => Ok(Expr::Param { idx: *idx, float: *float }),
        AstExpr::Null => Ok(Expr::Null),
        AstExpr::Star => Err(DbError::Plan("'*' is only valid inside count(*)".into())),
        AstExpr::Call { name, args } => {
            if is_aggregate_name(name) {
                return Err(DbError::Plan(format!(
                    "aggregate {name}() is not allowed in this context"
                )));
            }
            let bound: Vec<Expr> = args
                .iter()
                .map(|a| bind_scalar(a, scope, cat))
                .collect::<DbResult<_>>()?;
            match name.as_str() {
                "least" => {
                    require_args(name, &bound, 1)?;
                    Ok(Expr::Least(bound))
                }
                "greatest" => {
                    require_args(name, &bound, 1)?;
                    Ok(Expr::Greatest(bound))
                }
                "coalesce" => {
                    require_args(name, &bound, 1)?;
                    Ok(Expr::Coalesce(bound))
                }
                "random" => {
                    if !bound.is_empty() {
                        return Err(DbError::Plan("random() takes no arguments".into()));
                    }
                    Ok(Expr::Random { seed: cat.next_random_seed() })
                }
                other => match cat.udf(other) {
                    Some(func) => {
                        Ok(Expr::Udf { name: other.to_string(), func, args: bound })
                    }
                    None => Err(DbError::Plan(format!("unknown function {other}()"))),
                },
            }
        }
        AstExpr::Cmp { .. } | AstExpr::And(..) | AstExpr::IsNull { .. } => {
            Err(DbError::Plan("boolean expression used as a value".into()))
        }
    }
}

/// Checks a variadic function has at least `min` arguments.
fn require_args(name: &str, args: &[Expr], min: usize) -> DbResult<()> {
    if args.len() < min {
        Err(DbError::Plan(format!("{name}() needs at least {min} argument(s)")))
    } else {
        Ok(())
    }
}

/// Derives the output field for a bound select item.
fn output_field(
    bound: &Expr,
    ast: &AstExpr,
    alias: Option<&str>,
    index: usize,
    input_types: &[DataType],
    input_nullables: &[bool],
) -> DbResult<Field> {
    let name = match alias {
        Some(a) => a.to_string(),
        None => match ast {
            AstExpr::Column { name, .. } => name.clone(),
            _ => format!("col{index}"),
        },
    };
    let dtype = bound.output_type(input_types)?;
    let mut f = Field::new(name, dtype);
    f.nullable = infer_nullable(bound, input_nullables);
    Ok(f)
}

/// Conservative nullability inference for projection outputs.
fn infer_nullable(e: &Expr, input_nullables: &[bool]) -> bool {
    match e {
        Expr::Column(i) => input_nullables.get(*i).copied().unwrap_or(true),
        Expr::LitInt(_) | Expr::LitDouble(_) | Expr::Param { .. } | Expr::Random { .. } => {
            false
        }
        Expr::Null => true,
        // least/greatest/coalesce yield NULL only when all arguments do.
        Expr::Least(a) | Expr::Greatest(a) | Expr::Coalesce(a) => {
            a.iter().all(|e| infer_nullable(e, input_nullables))
        }
        Expr::Udf { args, .. } => args.iter().any(|e| infer_nullable(e, input_nullables)),
        Expr::Cmp { .. } | Expr::And(..) | Expr::IsNull { .. } => true,
    }
}

/// Plans a select core with aggregation: splits each item into
/// pre-aggregation inputs and a post-aggregation projection.
fn plan_aggregate_select(
    core: &SelectCore,
    cat: &dyn PlannerCatalog,
    input: Plan,
    scope: &Scope,
) -> DbResult<(Plan, Schema)> {
    // Group columns must be plain column references.
    let mut group_cols: Vec<usize> = Vec::with_capacity(core.group_by.len());
    for g in &core.group_by {
        let AstExpr::Column { qualifier, name } = g else {
            return Err(DbError::Plan(
                "GROUP BY supports only column references".into(),
            ));
        };
        group_cols.push(scope.resolve(qualifier.as_deref(), name)?);
    }

    let mut aggs: Vec<AggExpr> = Vec::new();
    let mut post_exprs: Vec<(Expr, Field)> = Vec::new();

    // Post-aggregation scope: group columns first, then agg outputs.
    let pre_types = scope.types();
    let pre_nullables = scope.nullables();
    let mut post_types: Vec<DataType> =
        group_cols.iter().map(|&c| pre_types[c]).collect();
    let mut post_nullables: Vec<bool> =
        group_cols.iter().map(|&c| pre_nullables[c]).collect();

    for (i, item) in core.items.iter().enumerate() {
        let bound = bind_agg_item(
            &item.expr,
            scope,
            cat,
            &group_cols,
            &mut aggs,
            &mut post_types,
            &mut post_nullables,
        )?;
        let name = match item.alias.as_deref() {
            Some(a) => a.to_string(),
            None => match &item.expr {
                AstExpr::Column { name, .. } => name.clone(),
                _ => format!("col{i}"),
            },
        };
        let dtype = bound.output_type(&post_types)?;
        let mut f = Field::new(name, dtype);
        f.nullable = infer_nullable(&bound, &post_nullables);
        post_exprs.push((bound, f));
    }

    // HAVING binds in the same post-aggregation space as the select
    // items (it may introduce additional aggregate computations).
    let having = match &core.having {
        Some(h) => Some(bind_agg_predicate(
            h,
            scope,
            cat,
            &group_cols,
            &mut aggs,
            &mut post_types,
            &mut post_nullables,
        )?),
        None => None,
    };
    let mut plan = Plan::Aggregate { input: Box::new(input), group_cols, aggs };
    if let Some(pred) = having {
        plan = Plan::Filter { input: Box::new(plan), pred };
    }
    let schema = crate::ops::build_schema_allow_dups(
        post_exprs.iter().map(|(_, f)| f.clone()).collect(),
    );
    Ok((Plan::Project { input: Box::new(plan), exprs: post_exprs }, schema))
}

/// Binds a HAVING predicate in the post-aggregation space.
#[allow(clippy::too_many_arguments)]
fn bind_agg_predicate(
    ast: &AstExpr,
    scope: &Scope,
    cat: &dyn PlannerCatalog,
    group_cols: &[usize],
    aggs: &mut Vec<AggExpr>,
    post_types: &mut Vec<DataType>,
    post_nullables: &mut Vec<bool>,
) -> DbResult<Expr> {
    match ast {
        AstExpr::And(l, r) => Ok(Expr::And(
            Box::new(bind_agg_predicate(l, scope, cat, group_cols, aggs, post_types, post_nullables)?),
            Box::new(bind_agg_predicate(r, scope, cat, group_cols, aggs, post_types, post_nullables)?),
        )),
        AstExpr::Cmp { op, left, right } => Ok(Expr::Cmp {
            op: *op,
            left: Box::new(bind_agg_item(left, scope, cat, group_cols, aggs, post_types, post_nullables)?),
            right: Box::new(bind_agg_item(right, scope, cat, group_cols, aggs, post_types, post_nullables)?),
        }),
        AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
            expr: Box::new(bind_agg_item(expr, scope, cat, group_cols, aggs, post_types, post_nullables)?),
            negated: *negated,
        }),
        other => Err(DbError::Plan(format!("expected a boolean HAVING condition, got {other:?}"))),
    }
}

/// Binds one select item in an aggregation context: aggregate calls map
/// to aggregate outputs; bare columns must be grouped.
#[allow(clippy::too_many_arguments)]
fn bind_agg_item(
    ast: &AstExpr,
    scope: &Scope,
    cat: &dyn PlannerCatalog,
    group_cols: &[usize],
    aggs: &mut Vec<AggExpr>,
    post_types: &mut Vec<DataType>,
    post_nullables: &mut Vec<bool>,
) -> DbResult<Expr> {
    match ast {
        AstExpr::Column { qualifier, name } => {
            let idx = scope.resolve(qualifier.as_deref(), name)?;
            match group_cols.iter().position(|&g| g == idx) {
                Some(pos) => Ok(Expr::Column(pos)),
                None => Err(DbError::Plan(format!(
                    "column {:?} must appear in GROUP BY or inside an aggregate",
                    display_col(qualifier.as_deref(), name)
                ))),
            }
        }
        AstExpr::Int(v) => Ok(Expr::LitInt(*v)),
        AstExpr::Float(v) => Ok(Expr::LitDouble(*v)),
        AstExpr::Param { idx, float } => Ok(Expr::Param { idx: *idx, float: *float }),
        AstExpr::Null => Ok(Expr::Null),
        AstExpr::Star => Err(DbError::Plan("'*' is only valid inside count(*)".into())),
        AstExpr::Call { name, args } if is_aggregate_name(name) => {
            let func = match name.as_str() {
                "min" => AggFunc::Min,
                "max" => AggFunc::Max,
                "count" => AggFunc::Count,
                "sum" => AggFunc::Sum,
                _ => unreachable!("is_aggregate_name"),
            };
            if args.iter().any(AstExpr::contains_aggregate) {
                return Err(DbError::Plan("nested aggregates are not allowed".into()));
            }
            let input = match (func, args.as_slice()) {
                (AggFunc::Count, [AstExpr::Star]) => Expr::LitInt(1),
                (_, [arg]) => bind_scalar(arg, scope, cat)?,
                _ => {
                    return Err(DbError::Plan(format!(
                        "{name}() takes exactly one argument"
                    )))
                }
            };
            let in_type = input.output_type(&scope.types())?;
            let out_type = func.output_type(in_type);
            let pos = group_cols.len() + aggs.len();
            aggs.push(AggExpr { func, input });
            post_types.push(out_type);
            post_nullables.push(!matches!(func, AggFunc::Count));
            Ok(Expr::Column(pos))
        }
        AstExpr::Call { name, args } => {
            let bound: Vec<Expr> = args
                .iter()
                .map(|a| {
                    bind_agg_item(a, scope, cat, group_cols, aggs, post_types, post_nullables)
                })
                .collect::<DbResult<_>>()?;
            match name.as_str() {
                "least" => Ok(Expr::Least(bound)),
                "greatest" => Ok(Expr::Greatest(bound)),
                "coalesce" => Ok(Expr::Coalesce(bound)),
                "random" => Err(DbError::Plan(
                    "random() is not allowed in an aggregated select list".into(),
                )),
                other => match cat.udf(other) {
                    Some(func) => {
                        Ok(Expr::Udf { name: other.to_string(), func, args: bound })
                    }
                    None => Err(DbError::Plan(format!("unknown function {other}()"))),
                },
            }
        }
        AstExpr::Cmp { .. } | AstExpr::And(..) | AstExpr::IsNull { .. } => {
            Err(DbError::Plan("boolean expression used as a value".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse_statement;
    use crate::sql::Statement;
    use crate::value::DataType;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct FakeCat {
        seed: AtomicU64,
    }

    impl PlannerCatalog for FakeCat {
        fn table_schema(&self, name: &str) -> DbResult<Schema> {
            match name {
                "e" => Ok(Schema::new(vec![
                    Field::new("v1", DataType::Int64),
                    Field::new("v2", DataType::Int64),
                ])),
                "r" => Ok(Schema::new(vec![
                    Field::new("v", DataType::Int64),
                    Field::new("rep", DataType::Int64),
                ])),
                _ => Err(DbError::Catalog(format!("no table {name}"))),
            }
        }

        fn udf(&self, name: &str) -> Option<Arc<dyn ScalarUdf>> {
            if name == "axplusb" {
                struct Ax;
                impl ScalarUdf for Ax {
                    fn eval(&self, _args: &[crate::value::Datum]) -> crate::value::Datum {
                        crate::value::Datum::Int(0)
                    }
                }
                Some(Arc::new(Ax))
            } else {
                None
            }
        }

        fn next_random_seed(&self) -> u64 {
            self.seed.fetch_add(1, Ordering::Relaxed)
        }
    }

    fn plan(sql: &str) -> DbResult<Plan> {
        let cat = FakeCat { seed: AtomicU64::new(0) };
        match parse_statement(sql).unwrap() {
            Statement::Select(q) => plan_query(&q, &cat),
            Statement::CreateTableAs { query, .. } => plan_query(&query, &cat),
            _ => panic!("not a query"),
        }
    }

    #[test]
    fn plans_group_by_with_nested_aggregate() {
        let p = plan(
            "select v1 v, least(axplusb(3, v1, 5), min(axplusb(3, v2, 5))) rep \
             from e group by v1",
        )
        .unwrap();
        // Project over Aggregate over Scan.
        let Plan::Project { input, exprs } = p else { panic!("expected project") };
        assert_eq!(exprs.len(), 2);
        let Plan::Aggregate { group_cols, aggs, .. } = *input else {
            panic!("expected aggregate")
        };
        assert_eq!(group_cols, vec![0]);
        assert_eq!(aggs.len(), 1);
    }

    #[test]
    fn plans_three_way_comma_join() {
        let p = plan(
            "select distinct av.rep as v1, aw.rep as v2 \
             from e, r as av, r as aw \
             where e.v1 = av.v and e.v2 = aw.v and av.rep != aw.rep",
        )
        .unwrap();
        // Distinct(Project(Filter(Join(Join(e, av), aw)))).
        let Plan::Distinct { input } = p else { panic!("expected distinct") };
        let Plan::Project { input, .. } = *input else { panic!("expected project") };
        let Plan::Filter { input, .. } = *input else { panic!("expected filter") };
        let Plan::Join { left, .. } = *input else { panic!("expected join") };
        assert!(matches!(*left, Plan::Join { .. }));
    }

    #[test]
    fn plans_left_outer_join() {
        let p = plan(
            "select l.v as v, coalesce(rr.rep, axplusb(1, l.rep, 0)) as rep \
             from r as l left outer join r as rr on (l.rep = rr.v)",
        )
        .unwrap();
        let Plan::Project { input, .. } = p else { panic!() };
        let Plan::Join { join_type, l_keys, r_keys, .. } = *input else { panic!() };
        assert_eq!(join_type, JoinType::LeftOuter);
        assert_eq!(l_keys, vec![1]);
        assert_eq!(r_keys, vec![0]);
    }

    #[test]
    fn rejects_cartesian_product() {
        let err = plan("select e.v1 from e, r as x").unwrap_err();
        assert!(err.to_string().contains("Cartesian"), "{err}");
    }

    #[test]
    fn rejects_unknown_column_and_function() {
        assert!(plan("select nosuch from e").is_err());
        assert!(plan("select frob(v1) from e").is_err());
    }

    #[test]
    fn rejects_ungrouped_column() {
        let err = plan("select v1, min(v2) from e group by v2").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn rejects_nested_aggregate() {
        assert!(plan("select min(min(v1)) from e").is_err());
    }

    #[test]
    fn count_star_binds() {
        let p = plan("select count(*) as n from e").unwrap();
        let Plan::Project { input, .. } = p else { panic!() };
        let Plan::Aggregate { aggs, group_cols, .. } = *input else { panic!() };
        assert!(group_cols.is_empty());
        assert_eq!(aggs.len(), 1);
        assert!(matches!(aggs[0].func, AggFunc::Count));
    }

    #[test]
    fn union_all_arity_checked() {
        assert!(plan("select v1 from e union all select v1, v2 from e").is_err());
        assert!(plan("select v1 from e union all select v2 from e").is_ok());
    }

    #[test]
    fn from_less_select_plans() {
        let p = plan("select 1 as a").unwrap();
        let Plan::Project { input, .. } = p else { panic!() };
        assert!(matches!(*input, Plan::OneRow));
    }

    #[test]
    fn subquery_requires_alias() {
        assert!(plan("select v from (select v1 as v from e)").is_err());
        assert!(plan("select s.v from (select v1 as v from e) as s").is_ok());
    }

    #[test]
    fn ambiguous_column_rejected() {
        // v appears in both r instances.
        let err =
            plan("select v from r as a, r as b where a.rep = b.v").unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
    }

    #[test]
    fn random_gets_distinct_seeds() {
        let cat = FakeCat { seed: AtomicU64::new(0) };
        let Statement::Select(q) =
            parse_statement("select random() as a, random() as b from e").unwrap()
        else {
            panic!()
        };
        let p = plan_query(&q, &cat).unwrap();
        let Plan::Project { exprs, .. } = p else { panic!() };
        let seeds: Vec<u64> = exprs
            .iter()
            .filter_map(|(e, _)| match e {
                Expr::Random { seed } => Some(*seed),
                _ => None,
            })
            .collect();
        assert_eq!(seeds.len(), 2);
        assert_ne!(seeds[0], seeds[1]);
    }
}
