//! SQL tokenizer.

use crate::error::{DbError, DbResult};

/// A lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword, lower-cased.
    Ident(String),
    /// Integer literal (sign handled by the parser).
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `-` (unary minus on literals)
    Minus,
    /// `+`
    Plus,
    /// `;`
    Semi,
    /// A normalized-out literal placeholder. Never produced by
    /// [`tokenize`]: the plan cache's normalizer substitutes these for
    /// `Int`/`Float` literals so that statements differing only in
    /// literal values share one parse + plan.
    Param {
        /// Position in the statement's extracted parameter list.
        idx: usize,
        /// True when the replaced literal was a float.
        float: bool,
    },
}

/// Tokenizes SQL text. Comments (`-- …`) run to end of line.
pub fn tokenize(input: &str) -> DbResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(DbError::Parse(format!("unexpected '!' at byte {i}")));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|e| DbError::Parse(format!("bad float {text:?}: {e}")))?;
                    out.push(Token::Float(v));
                } else {
                    let v: i64 = text.parse().map_err(|e| {
                        DbError::Parse(format!("bad integer {text:?}: {e}"))
                    })?;
                    out.push(Token::Int(v));
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_ascii_lowercase()));
            }
            other => {
                return Err(DbError::Parse(format!(
                    "unexpected character {other:?} at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("select v1, min(x) from T where a != 2;").unwrap();
        assert_eq!(toks[0], Token::Ident("select".into()));
        assert_eq!(toks[1], Token::Ident("v1".into()));
        assert_eq!(toks[2], Token::Comma);
        assert!(toks.contains(&Token::Ne));
        assert_eq!(*toks.last().unwrap(), Token::Semi);
        // Keywords lower-cased.
        assert!(toks.contains(&Token::Ident("t".into())));
    }

    #[test]
    fn numbers() {
        assert_eq!(
            tokenize("42 3.5 -7").unwrap(),
            vec![Token::Int(42), Token::Float(3.5), Token::Minus, Token::Int(7)]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            tokenize("< <= > >= = != <>").unwrap(),
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("select -- everything here is ignored != (\n 1").unwrap();
        assert_eq!(toks, vec![Token::Ident("select".into()), Token::Int(1)]);
    }

    #[test]
    fn qualified_names_and_star() {
        assert_eq!(
            tokenize("count(*) e.v").unwrap(),
            vec![
                Token::Ident("count".into()),
                Token::LParen,
                Token::Star,
                Token::RParen,
                Token::Ident("e".into()),
                Token::Dot,
                Token::Ident("v".into()),
            ]
        );
    }

    #[test]
    fn bad_characters_rejected() {
        assert!(tokenize("select 'x'").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("select 99999999999999999999").is_err());
    }

    #[test]
    fn empty_input() {
        assert_eq!(tokenize("   \n\t ").unwrap(), vec![]);
    }
}
