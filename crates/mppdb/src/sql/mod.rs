//! The SQL front end.
//!
//! Implements exactly the dialect the paper's implementation (Appendix
//! A) and the ported comparator algorithms need:
//!
//! ```sql
//! CREATE TABLE t AS SELECT ... [DISTRIBUTED BY (col)];
//! SELECT [DISTINCT] expr [AS name], ...
//!   FROM rel [AS alias] {, rel [AS alias]}        -- equi-joins via WHERE
//!        [LEFT [OUTER] JOIN rel [AS alias] ON cond]
//!   [WHERE conjunctions]
//!   [GROUP BY cols]
//!   [UNION ALL SELECT ...];
//! DROP TABLE [IF EXISTS] t;
//! ALTER TABLE t RENAME TO u;
//! ```
//!
//! Scalar functions: `least`, `greatest`, `coalesce`, `random()` and
//! any UDF registered on the cluster (`axplusb`, …). Aggregates:
//! `min`, `max`, `count` (incl. `count(*)`), `sum`. Relations may be
//! parenthesised subqueries with an alias.

mod ast;
mod lexer;
mod parser;
mod planner;

pub use ast::{AstExpr, FromItem, JoinKind, Query, SelectCore, SelectItem, Statement, TableRel};
pub use parser::parse_statement;
pub use planner::{plan_query, plan_query_with_schema, PlannerCatalog};

pub(crate) use lexer::{tokenize, Token};
pub(crate) use parser::parse_tokens;
