//! Scalar values and types.

use std::cmp::Ordering;
use std::fmt;

/// The column data types the engine supports.
///
/// The paper's workload is 64-bit integer vertex IDs throughout;
/// `Float64` exists for the *random reals* randomisation method, which
/// draws a uniform real per vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (vertex IDs, labels, counts).
    Int64,
    /// 64-bit IEEE float (random reals).
    Float64,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int64 => write!(f, "bigint"),
            DataType::Float64 => write!(f, "double precision"),
        }
    }
}

/// A single scalar value, possibly NULL.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Datum {
    /// SQL NULL.
    Null,
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Double(f64),
}

impl Datum {
    /// True for [`Datum::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// The value as an integer, or `None` if NULL or a float.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a float; integers widen losslessly enough for the
    /// engine's comparison purposes.
    #[inline]
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Datum::Double(v) => Some(*v),
            Datum::Int(v) => Some(*v as f64),
            Datum::Null => None,
        }
    }

    /// The type of a non-null datum.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Datum::Null => None,
            Datum::Int(_) => Some(DataType::Int64),
            Datum::Double(_) => Some(DataType::Float64),
        }
    }

    /// SQL comparison semantics: NULL compares as unknown (`None`);
    /// numerics compare cross-type through f64 widening.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        match (self, other) {
            (Datum::Null, _) | (_, Datum::Null) => None,
            (Datum::Int(a), Datum::Int(b)) => Some(a.cmp(b)),
            _ => self.as_double()?.partial_cmp(&other.as_double()?),
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Double(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int(v)
    }
}

impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Double(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_predicates() {
        assert!(Datum::Null.is_null());
        assert!(!Datum::Int(0).is_null());
        assert_eq!(Datum::Null.as_int(), None);
        assert_eq!(Datum::Int(5).as_int(), Some(5));
        assert_eq!(Datum::Double(2.5).as_int(), None);
    }

    #[test]
    fn comparisons() {
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Int(2)), Some(Ordering::Less));
        assert_eq!(Datum::Int(2).sql_cmp(&Datum::Double(2.0)), Some(Ordering::Equal));
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
        assert_eq!(Datum::Double(3.5).sql_cmp(&Datum::Int(3)), Some(Ordering::Greater));
    }

    #[test]
    fn display() {
        assert_eq!(Datum::Null.to_string(), "NULL");
        assert_eq!(Datum::Int(-7).to_string(), "-7");
        assert_eq!(DataType::Int64.to_string(), "bigint");
    }

    #[test]
    fn conversions() {
        assert_eq!(Datum::from(3i64), Datum::Int(3));
        assert_eq!(Datum::from(0.5f64), Datum::Double(0.5));
        assert_eq!(Datum::Int(4).data_type(), Some(DataType::Int64));
        assert_eq!(Datum::Null.data_type(), None);
    }
}
