//! An in-memory, hash-partitioned MPP relational engine.
//!
//! The paper evaluates Randomised Contraction inside Apache HAWQ, a
//! Massively Parallel Processing (MPP) SQL database: tables are
//! hash-distributed across segments, queries execute per segment in
//! parallel, and rows are *exchanged* (shuffled) over the network when
//! an operator needs a different distribution. This crate is a
//! from-scratch substrate reproducing exactly those mechanics:
//!
//! * **Columnar partitioned storage** — a table is a schema plus one
//!   [`Batch`] per segment, distributed by the hash of a column
//!   (`DISTRIBUTED BY`), round-robin, or replicated.
//! * **Parallel execution** — operators run per partition on scoped OS
//!   threads; an exchange repartitions rows and charges the moved bytes
//!   to the cluster's network counter, making the paper's
//!   communication-cost arguments (Section V-C) measurable.
//! * **Co-location** — joins and aggregations whose inputs are already
//!   hash-distributed on the key skip the exchange, as HAWQ does and as
//!   the `distributed by` clauses of the paper's Appendix A exploit.
//!   [`ExecutionProfile::External`] disables this short-circuit to model
//!   an external engine (Spark SQL) running the same queries.
//! * **Space accounting** — every table creation charges its logical
//!   size; drops credit it. The live-bytes high-water mark reproduces
//!   the paper's Table IV and the cumulative written-bytes counter its
//!   Table V, and an optional space limit turns runaway algorithms
//!   (Hash-to-Min on long paths) into clean "did not finish" errors.
//! * **A SQL front end** — a hand-written lexer, parser and planner for
//!   the dialect the paper's code uses: `CREATE TABLE … AS SELECT …
//!   DISTRIBUTED BY (col)`, multi-table `FROM` with `WHERE` equi-joins,
//!   `LEFT OUTER JOIN`, `GROUP BY`, `DISTINCT`, `UNION ALL`,
//!   `DROP TABLE`, `ALTER TABLE … RENAME TO`, scalar functions
//!   (`least`, `coalesce`, …) and registrable user-defined functions
//!   (the paper's `axplusb`).
//!
//! ```
//! use incc_mppdb::{Cluster, ClusterConfig, Datum};
//!
//! let cluster = Cluster::new(ClusterConfig::default());
//! cluster.run("create table t as select 1 as a union all select 2 as a").unwrap();
//! let rows = cluster.query("select min(a) as m from t").unwrap();
//! assert_eq!(rows, vec![vec![Datum::Int(1)]]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod cluster;
mod engine;
mod error;
mod exec;
mod expr;
pub mod fault;
pub mod kernels;
pub mod native;
mod operators;
mod ops;
pub mod optimizer;
mod pipeline;
mod plan;
mod plan_cache;
pub mod pool;
pub mod retry;
mod schema;
mod session;
pub mod span;
pub mod sql;
mod stats;
mod table;
pub mod trace;
mod value;

pub use batch::{Batch, Column, SelVec};
pub use cluster::{Cluster, ClusterConfig, ExecutionProfile, QueryOutput, ScalarUdf};
pub use engine::SqlEngine;
pub use error::{DbError, DbResult, ErrorClass};
pub use fault::{FaultContext, FaultInjector, FaultPlan};
pub use native::{CcOp, CcReport};
pub use expr::Expr;
pub use plan::QueryGuard;
pub use plan_cache::PlanCacheStats;
pub use pool::SegmentPool;
pub use retry::RetryPolicy;
pub use schema::{Field, Schema};
pub use session::Session;
pub use span::{ActiveTrace, FinishedTrace, PartClock, SpanGuard, SpanKind, SpanRec};
pub use stats::StatsSnapshot;
pub use stats::{OpKind, OpMetrics, OpStats};
pub use table::Distribution;
pub use trace::{HistogramSnapshot, LatencyHistogram, OpProfile, ProfileNode, QueryProfile};
pub use value::{DataType, Datum};
