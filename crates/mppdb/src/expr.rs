//! Scalar expressions and user-defined functions.

use crate::batch::{Batch, Column};
use crate::error::{DbError, DbResult};
use crate::value::{DataType, Datum};
use incc_ffield::strategy::mix64;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A scalar user-defined function, registrable on a [`crate::Cluster`].
///
/// This is the hook the paper relies on: finite-field arithmetic "is
/// awkward to implement in SQL, so we wrote a fast implementation in C
/// and loaded it as a user-defined function into the database". The
/// `incc-core` crate registers `axplusb` (GF(2^64)), `axb_p` (GF(p))
/// and per-round Blowfish closures through this trait.
pub trait ScalarUdf: Send + Sync {
    /// Evaluates the function on one row's argument values.
    fn eval(&self, args: &[Datum]) -> Datum;
    /// The function's return type (drives output schema inference).
    fn return_type(&self) -> DataType {
        DataType::Int64
    }
}

/// Comparison operators usable in `WHERE` and join conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to a comparison result; `None` (NULL
    /// involved) yields SQL three-valued "unknown", which filters treat
    /// as false.
    pub fn apply(self, ord: Option<Ordering>) -> bool {
        match ord {
            None => false,
            Some(o) => match self {
                CmpOp::Eq => o == Ordering::Equal,
                CmpOp::Ne => o != Ordering::Equal,
                CmpOp::Lt => o == Ordering::Less,
                CmpOp::Le => o != Ordering::Greater,
                CmpOp::Gt => o == Ordering::Greater,
                CmpOp::Ge => o != Ordering::Less,
            },
        }
    }
}

/// A bound scalar expression over a batch's columns (by index).
#[derive(Clone)]
pub enum Expr {
    /// Input column by position.
    Column(usize),
    /// Integer literal.
    LitInt(i64),
    /// Float literal.
    LitDouble(f64),
    /// A plan-cache parameter slot. Only present in cached template
    /// plans; the cache substitutes the statement's actual literal
    /// before execution, so the executor never sees one.
    Param {
        /// Position in the statement's extracted parameter list.
        idx: usize,
        /// True when the parameter binds a float literal.
        float: bool,
    },
    /// NULL literal.
    Null,
    /// `least(...)`: smallest non-NULL argument (PostgreSQL semantics).
    Least(Vec<Expr>),
    /// `greatest(...)`: largest non-NULL argument.
    Greatest(Vec<Expr>),
    /// `coalesce(...)`: first non-NULL argument.
    Coalesce(Vec<Expr>),
    /// A registered user-defined function call.
    Udf {
        /// Function name (for display).
        name: String,
        /// Implementation.
        func: Arc<dyn ScalarUdf>,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `random()`: uniform in `[0, 1)`, deterministic per
    /// (seed, partition, row) so runs are reproducible.
    Random {
        /// Per-query seed issued by the cluster.
        seed: u64,
    },
    /// Comparison (predicates only).
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Conjunction (predicates only).
    And(Box<Expr>, Box<Expr>),
    /// NULL test (predicates only).
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(i) => write!(f, "#{i}"),
            Expr::LitInt(v) => write!(f, "{v}"),
            Expr::LitDouble(v) => write!(f, "{v}"),
            Expr::Param { idx, .. } => write!(f, "${idx}"),
            Expr::Null => write!(f, "NULL"),
            Expr::Least(a) => write!(f, "least({a:?})"),
            Expr::Greatest(a) => write!(f, "greatest({a:?})"),
            Expr::Coalesce(a) => write!(f, "coalesce({a:?})"),
            Expr::Udf { name, args, .. } => write!(f, "{name}({args:?})"),
            Expr::Random { .. } => write!(f, "random()"),
            Expr::Cmp { op, left, right } => write!(f, "({left:?} {op:?} {right:?})"),
            Expr::And(l, r) => write!(f, "({l:?} AND {r:?})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr:?} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
        }
    }
}

impl Expr {
    /// The expression's output type given the input column types.
    pub fn output_type(&self, input: &[DataType]) -> DbResult<DataType> {
        match self {
            Expr::Column(i) => input
                .get(*i)
                .copied()
                .ok_or_else(|| DbError::Plan(format!("column index {i} out of range"))),
            Expr::LitInt(_) => Ok(DataType::Int64),
            Expr::LitDouble(_) | Expr::Random { .. } => Ok(DataType::Float64),
            Expr::Param { float, .. } => {
                Ok(if *float { DataType::Float64 } else { DataType::Int64 })
            }
            Expr::Null => Ok(DataType::Int64),
            Expr::Least(args) | Expr::Greatest(args) | Expr::Coalesce(args) => {
                let mut ty = None;
                for a in args {
                    let t = a.output_type(input)?;
                    match ty {
                        None => ty = Some(t),
                        Some(prev) if prev != t => {
                            // Mixed numeric args widen to float.
                            ty = Some(DataType::Float64);
                        }
                        _ => {}
                    }
                }
                ty.ok_or_else(|| DbError::Plan("variadic function with no arguments".into()))
            }
            Expr::Udf { func, .. } => Ok(func.return_type()),
            Expr::Cmp { .. } | Expr::And(..) | Expr::IsNull { .. } => {
                Err(DbError::Plan("boolean expression used as a value".into()))
            }
        }
    }

    /// Evaluates one row to a datum.
    pub fn eval_row(&self, batch: &Batch, row: usize, part: usize) -> DbResult<Datum> {
        self.eval_row_at(batch, row, part, 0)
    }

    /// Evaluates one row to a datum, treating the batch as starting at
    /// partition-row offset `base`. `random()` hashes `base + row`, so
    /// a partition evaluated as several morsels yields exactly the
    /// values a single whole-partition evaluation would.
    pub fn eval_row_at(
        &self,
        batch: &Batch,
        row: usize,
        part: usize,
        base: usize,
    ) -> DbResult<Datum> {
        Ok(match self {
            Expr::Column(i) => batch.column(*i).datum(row),
            Expr::LitInt(v) => Datum::Int(*v),
            Expr::LitDouble(v) => Datum::Double(*v),
            Expr::Param { idx, .. } => {
                return Err(DbError::Exec(format!(
                    "unbound plan parameter ${idx} reached execution"
                )))
            }
            Expr::Null => Datum::Null,
            Expr::Least(args) => fold_extreme(args, batch, row, part, base, Ordering::Less)?,
            Expr::Greatest(args) => {
                fold_extreme(args, batch, row, part, base, Ordering::Greater)?
            }
            Expr::Coalesce(args) => {
                let mut out = Datum::Null;
                for a in args {
                    let d = a.eval_row_at(batch, row, part, base)?;
                    if !d.is_null() {
                        out = d;
                        break;
                    }
                }
                out
            }
            Expr::Udf { func, args, .. } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval_row_at(batch, row, part, base)?);
                }
                func.eval(&vals)
            }
            Expr::Random { seed } => {
                let bits = mix64(seed ^ (part as u64).rotate_left(40) ^ (base + row) as u64);
                Datum::Double((bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64))
            }
            Expr::Cmp { .. } | Expr::And(..) | Expr::IsNull { .. } => {
                return Err(DbError::Exec("boolean expression evaluated as a value".into()))
            }
        })
    }

    /// Evaluates the expression over a whole batch into a column.
    pub fn eval(&self, batch: &Batch, part: usize) -> DbResult<Column> {
        self.eval_at(batch, part, 0)
    }

    /// Evaluates over a batch that starts at partition-row offset
    /// `base` (see [`Expr::eval_row_at`]).
    pub fn eval_at(&self, batch: &Batch, part: usize, base: usize) -> DbResult<Column> {
        // Fast path: bare column reference.
        if let Expr::Column(i) = self {
            return Ok(batch.column(*i).clone());
        }
        let types: Vec<DataType> = batch.columns().iter().map(Column::data_type).collect();
        let dtype = self.output_type(&types)?;
        let mut out = Column::empty(dtype);
        for row in 0..batch.rows() {
            let d = self.eval_row_at(batch, row, part, base)?;
            // NULLs of any type are fine; non-null values must match.
            match (dtype, d) {
                (DataType::Float64, Datum::Int(v)) => out.push(Datum::Double(v as f64)),
                _ => out.push(d),
            }
        }
        Ok(out)
    }

    /// Evaluates a predicate expression to a row-selection mask.
    pub fn eval_predicate(&self, batch: &Batch, part: usize) -> DbResult<Vec<bool>> {
        self.eval_predicate_at(batch, part, 0)
    }

    /// Evaluates a predicate over a batch that starts at partition-row
    /// offset `base` (see [`Expr::eval_row_at`]).
    pub fn eval_predicate_at(
        &self,
        batch: &Batch,
        part: usize,
        base: usize,
    ) -> DbResult<Vec<bool>> {
        match self {
            Expr::And(l, r) => {
                let mut a = l.eval_predicate_at(batch, part, base)?;
                let b = r.eval_predicate_at(batch, part, base)?;
                for (x, y) in a.iter_mut().zip(b) {
                    *x &= y;
                }
                Ok(a)
            }
            Expr::Cmp { op, left, right } => {
                let mut mask = Vec::with_capacity(batch.rows());
                for row in 0..batch.rows() {
                    let l = left.eval_row_at(batch, row, part, base)?;
                    let r = right.eval_row_at(batch, row, part, base)?;
                    mask.push(op.apply(l.sql_cmp(&r)));
                }
                Ok(mask)
            }
            Expr::IsNull { expr, negated } => {
                let mut mask = Vec::with_capacity(batch.rows());
                for row in 0..batch.rows() {
                    let is_null = expr.eval_row_at(batch, row, part, base)?.is_null();
                    mask.push(is_null != *negated);
                }
                Ok(mask)
            }
            _ => Err(DbError::Exec("non-boolean expression used as a predicate".into())),
        }
    }

    /// Rewrites column indices through `mapping` (old index -> new index),
    /// used when pushing expressions past projections.
    pub fn remap_columns(&self, mapping: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Column(i) => Expr::Column(mapping(*i)),
            Expr::LitInt(v) => Expr::LitInt(*v),
            Expr::LitDouble(v) => Expr::LitDouble(*v),
            Expr::Param { idx, float } => Expr::Param { idx: *idx, float: *float },
            Expr::Null => Expr::Null,
            Expr::Least(a) => Expr::Least(a.iter().map(|e| e.remap_columns(mapping)).collect()),
            Expr::Greatest(a) => {
                Expr::Greatest(a.iter().map(|e| e.remap_columns(mapping)).collect())
            }
            Expr::Coalesce(a) => {
                Expr::Coalesce(a.iter().map(|e| e.remap_columns(mapping)).collect())
            }
            Expr::Udf { name, func, args } => Expr::Udf {
                name: name.clone(),
                func: func.clone(),
                args: args.iter().map(|e| e.remap_columns(mapping)).collect(),
            },
            Expr::Random { seed } => Expr::Random { seed: *seed },
            Expr::Cmp { op, left, right } => Expr::Cmp {
                op: *op,
                left: Box::new(left.remap_columns(mapping)),
                right: Box::new(right.remap_columns(mapping)),
            },
            Expr::And(l, r) => Expr::And(
                Box::new(l.remap_columns(mapping)),
                Box::new(r.remap_columns(mapping)),
            ),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.remap_columns(mapping)),
                negated: *negated,
            },
        }
    }

    /// True if the expression never yields NULL given non-nullable inputs
    /// and is deterministic — conservative nullability inference.
    pub fn references(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Column(i) => out.push(*i),
            Expr::LitInt(_)
            | Expr::LitDouble(_)
            | Expr::Param { .. }
            | Expr::Null
            | Expr::Random { .. } => {}
            Expr::Least(a) | Expr::Greatest(a) | Expr::Coalesce(a) => {
                for e in a {
                    e.references(out);
                }
            }
            Expr::Udf { args, .. } => {
                for e in args {
                    e.references(out);
                }
            }
            Expr::Cmp { left, right, .. } => {
                left.references(out);
                right.references(out);
            }
            Expr::And(l, r) => {
                l.references(out);
                r.references(out);
            }
            Expr::IsNull { expr, .. } => expr.references(out),
        }
    }
}

fn fold_extreme(
    args: &[Expr],
    batch: &Batch,
    row: usize,
    part: usize,
    base: usize,
    keep: Ordering,
) -> DbResult<Datum> {
    // PostgreSQL least/greatest: NULL arguments are ignored; the result
    // is NULL only when every argument is NULL.
    let mut best = Datum::Null;
    for a in args {
        let d = a.eval_row_at(batch, row, part, base)?;
        if d.is_null() {
            continue;
        }
        if best.is_null() || d.sql_cmp(&best) == Some(keep) {
            best = d;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Column;

    fn batch() -> Batch {
        Batch::from_columns(vec![
            Column::from_ints(vec![10, 20, 30]),
            Column::from_datums(DataType::Int64, [Datum::Int(5), Datum::Null, Datum::Int(35)]),
        ])
    }

    #[test]
    fn least_ignores_nulls() {
        let e = Expr::Least(vec![Expr::Column(0), Expr::Column(1)]);
        let c = e.eval(&batch(), 0).unwrap();
        assert_eq!(c.datum(0), Datum::Int(5));
        assert_eq!(c.datum(1), Datum::Int(20)); // NULL ignored
        assert_eq!(c.datum(2), Datum::Int(30));
    }

    #[test]
    fn greatest_and_all_null() {
        let e = Expr::Greatest(vec![Expr::Column(1), Expr::Null]);
        let c = e.eval(&batch(), 0).unwrap();
        assert_eq!(c.datum(1), Datum::Null);
        assert_eq!(c.datum(2), Datum::Int(35));
    }

    #[test]
    fn coalesce_first_non_null() {
        let e = Expr::Coalesce(vec![Expr::Column(1), Expr::LitInt(-1)]);
        let c = e.eval(&batch(), 0).unwrap();
        assert_eq!(c.datum(0), Datum::Int(5));
        assert_eq!(c.datum(1), Datum::Int(-1));
    }

    #[test]
    fn predicate_three_valued_logic() {
        // col1 != 5 — the NULL row must NOT pass.
        let e = Expr::Cmp {
            op: CmpOp::Ne,
            left: Box::new(Expr::Column(1)),
            right: Box::new(Expr::LitInt(5)),
        };
        assert_eq!(e.eval_predicate(&batch(), 0).unwrap(), vec![false, false, true]);
    }

    #[test]
    fn and_conjunction() {
        let gt = |n| Expr::Cmp {
            op: CmpOp::Gt,
            left: Box::new(Expr::Column(0)),
            right: Box::new(Expr::LitInt(n)),
        };
        let e = Expr::And(Box::new(gt(10)), Box::new(gt(20)));
        assert_eq!(e.eval_predicate(&batch(), 0).unwrap(), vec![false, false, true]);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let e = Expr::Random { seed: 42 };
        let c1 = e.eval(&batch(), 3).unwrap();
        let c2 = e.eval(&batch(), 3).unwrap();
        assert_eq!(c1, c2);
        for i in 0..3 {
            let v = c1.datum(i).as_double().unwrap();
            assert!((0.0..1.0).contains(&v));
        }
        // Different partition -> different stream.
        let c3 = e.eval(&batch(), 4).unwrap();
        assert_ne!(c1, c3);
    }

    #[test]
    fn random_is_stable_under_morsel_offsets() {
        // Evaluating a partition as several offset morsels must yield
        // exactly the whole-partition values.
        let e = Expr::Random { seed: 42 };
        let whole = e.eval(&batch(), 3).unwrap();
        let head = Batch::from_columns(vec![Column::from_ints(vec![10])]);
        let tail = Batch::from_columns(vec![Column::from_ints(vec![20, 30])]);
        let h = e.eval_at(&head, 3, 0).unwrap();
        let t = e.eval_at(&tail, 3, 1).unwrap();
        assert_eq!(whole.datum(0), h.datum(0));
        assert_eq!(whole.datum(1), t.datum(0));
        assert_eq!(whole.datum(2), t.datum(1));
    }

    #[test]
    fn udf_evaluation() {
        struct PlusOne;
        impl ScalarUdf for PlusOne {
            fn eval(&self, args: &[Datum]) -> Datum {
                match args[0] {
                    Datum::Int(v) => Datum::Int(v + 1),
                    _ => Datum::Null,
                }
            }
        }
        let e = Expr::Udf {
            name: "plus_one".into(),
            func: Arc::new(PlusOne),
            args: vec![Expr::Column(0)],
        };
        let c = e.eval(&batch(), 0).unwrap();
        assert_eq!(c.datum(2), Datum::Int(31));
    }

    #[test]
    fn output_types() {
        let types = [DataType::Int64, DataType::Int64];
        assert_eq!(Expr::LitInt(1).output_type(&types).unwrap(), DataType::Int64);
        assert_eq!(Expr::Random { seed: 0 }.output_type(&types).unwrap(), DataType::Float64);
        let mixed = Expr::Least(vec![Expr::Column(0), Expr::LitDouble(0.5)]);
        assert_eq!(mixed.output_type(&types).unwrap(), DataType::Float64);
        assert!(Expr::Column(9).output_type(&types).is_err());
    }

    #[test]
    fn int_widens_to_float_in_mixed_column() {
        let e = Expr::Least(vec![Expr::Column(0), Expr::LitDouble(15.0)]);
        let c = e.eval(&batch(), 0).unwrap();
        assert_eq!(c.datum(0), Datum::Double(10.0));
        assert_eq!(c.datum(2), Datum::Double(15.0));
    }

    #[test]
    fn references_collects_columns() {
        let e = Expr::Least(vec![Expr::Column(2), Expr::Coalesce(vec![Expr::Column(0)])]);
        let mut refs = Vec::new();
        e.references(&mut refs);
        assert_eq!(refs, vec![2, 0]);
    }
}
