//! The cluster: catalog, UDF registry, SQL entry points, accounting.

use crate::batch::{Batch, Column};
use crate::error::{DbError, DbResult};
use crate::exec::hash_datum;
use crate::ops::PData;
use crate::plan::{execute, ExecContext, Plan, QueryGuard};
use crate::plan_cache::{
    self, CacheEntry, CacheKey, CachedShape, Normalized, PlanCache, PlanCacheStats, TableDep,
    PLAN_CACHE_CAPACITY,
};
use crate::pool::SegmentPool;
use crate::schema::{Field, Schema};
use crate::session::{Session, SessionCore};
use crate::span::{maybe_start, ActiveTrace, SpanKind};
use crate::sql::{self, PlannerCatalog, Statement};
use crate::stats::{Stats, StatsSnapshot};
use crate::table::{Distribution, Table};
use crate::trace::{HistogramSnapshot, LatencyHistogram, QueryProfile};
use crate::value::{DataType, Datum};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub use crate::expr::ScalarUdf;

/// How queries execute — the knob behind the paper's Section VII-C
/// comparison of in-database execution against Spark SQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionProfile {
    /// MPP database behaviour: joins and aggregations whose inputs are
    /// already hash-distributed on the key run co-located, skipping the
    /// exchange. This is what HAWQ's optimiser does with the
    /// `DISTRIBUTED BY` placement the paper's queries declare.
    #[default]
    Colocated,
    /// External-engine behaviour (Spark SQL executing the same SQL):
    /// stored distribution is invisible, so every join, aggregation and
    /// distinct pays a full shuffle.
    External,
}

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of segments (partitions). The paper's testbed had five
    /// nodes with 12 cores each; the default here is 8 worker segments.
    pub segments: usize,
    /// Execution profile.
    pub profile: ExecutionProfile,
    /// Seed for the `random()` SQL function's deterministic stream.
    pub seed: u64,
    /// Space guard in bytes (0 = unlimited); exceeded CTAS statements
    /// fail with [`DbError::SpaceLimitExceeded`].
    pub space_limit: u64,
    /// Run the logical optimizer (filter pushdown, constant folding)
    /// on every planned query. On by default; benchmarks can disable
    /// it to measure its contribution.
    pub optimize: bool,
    /// Allow the vectorized i64 operator kernels. On by default; the
    /// parity test suite disables it to force the generic
    /// row-at-a-time path as a correctness oracle.
    pub vectorized: bool,
    /// Use the push-based pipelined executor. On by default; disabling
    /// it falls back to the materializing executor, which the executor
    /// parity suite uses as its correctness oracle (the same pattern
    /// `vectorized: false` provides for the kernels).
    pub pipelined: bool,
    /// Deterministic fault injection plan (None = no faults, the
    /// default). See [`crate::fault::FaultPlan`]; the chaos harness and
    /// `INCC_FAULT_PLAN` drive this.
    pub faults: Option<crate::fault::FaultPlan>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            segments: 8,
            profile: ExecutionProfile::Colocated,
            seed: 0xC0FFEE,
            space_limit: 0,
            optimize: true,
            vectorized: true,
            pipelined: true,
            faults: None,
        }
    }
}

/// Result of [`Cluster::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// `CREATE TABLE … AS …` — number of rows materialised. The paper's
    /// driver uses this as its termination test (`rowcount = 0`).
    Created {
        /// The created table.
        table: String,
        /// Rows written.
        rows: usize,
    },
    /// Bare `SELECT` — the gathered rows.
    Rows(Vec<Vec<Datum>>),
    /// `DROP TABLE`.
    Dropped,
    /// `ALTER TABLE … RENAME TO …`.
    Renamed,
    /// `EXPLAIN` — the rendered logical plan.
    Explain(String),
    /// `INSERT INTO … VALUES` — rows appended.
    Inserted {
        /// Target table.
        table: String,
        /// Rows appended.
        rows: usize,
    },
}

impl QueryOutput {
    /// Rows affected/returned, when meaningful.
    pub fn row_count(&self) -> usize {
        match self {
            QueryOutput::Created { rows, .. } | QueryOutput::Inserted { rows, .. } => *rows,
            QueryOutput::Rows(r) => r.len(),
            _ => 0,
        }
    }
}

/// Outcome of statement preparation: either a bound plan straight from
/// the plan cache (parse and plan skipped entirely) or a freshly parsed
/// statement for the classic dispatch path.
enum Prepared {
    /// Plan-cache hit (or fresh template plan): parameters already
    /// bound, ready to execute.
    Cached {
        plan: Plan,
        schema: Schema,
        shape: CachedShape,
    },
    /// Uncacheable (or normalization declined): the parsed,
    /// session-rewritten statement.
    Fresh(Statement),
}

/// An MPP database cluster: segments, catalog, UDFs and counters.
///
/// All methods take `&self`; the catalog is internally synchronised, so
/// a cluster can be shared across threads.
pub struct Cluster {
    config: ClusterConfig,
    catalog: RwLock<HashMap<String, Table>>,
    udfs: RwLock<HashMap<String, Arc<dyn ScalarUdf>>>,
    stats: Arc<Stats>,
    /// One worker thread per segment, shared by every query on this
    /// cluster (and by `incc-service`'s job scheduler).
    pool: Arc<SegmentPool>,
    random_seq: AtomicU64,
    /// The built-in session behind [`Cluster::run`]: id 0, no name
    /// mangling, counters shared with the global instance.
    default_core: SessionCore,
    next_session_id: AtomicU64,
    /// Cluster-wide per-statement latency distribution (every session's
    /// statements land here, in addition to the session's own
    /// histogram).
    latency: LatencyHistogram,
    /// Normalized-SQL → optimized-plan cache (see [`crate::plan_cache`]).
    plan_cache: PlanCache,
    /// Generation counter for plan-relevant non-catalog state — bumped
    /// by UDF (un)registration. Cached plans embed resolved UDF
    /// implementations, so any registry change invalidates them
    /// wholesale; table DDL is handled per-entry by name/schema
    /// revalidation instead.
    catalog_epoch: AtomicU64,
    /// Fault injector built from `config.faults` (None = clean runs).
    faults: Option<Arc<crate::fault::FaultInjector>>,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new(config: ClusterConfig) -> Cluster {
        assert!(config.segments > 0, "cluster needs at least one segment");
        let stats = Arc::new(Stats::new());
        stats.set_space_limit(config.space_limit);
        let pool = Arc::new(SegmentPool::new(config.segments));
        let faults = config.faults.map(crate::fault::FaultInjector::new);
        Cluster {
            random_seq: AtomicU64::new(config.seed),
            faults,
            config,
            catalog: RwLock::new(HashMap::new()),
            udfs: RwLock::new(HashMap::new()),
            default_core: SessionCore::default_core(stats.clone()),
            stats,
            pool,
            next_session_id: AtomicU64::new(1),
            latency: LatencyHistogram::new(),
            plan_cache: PlanCache::new(PLAN_CACHE_CAPACITY),
            catalog_epoch: AtomicU64::new(0),
        }
    }

    /// The cluster's segment worker pool — one thread per segment,
    /// shared by every operator and (via `incc-service`) job execution.
    pub fn worker_pool(&self) -> &Arc<SegmentPool> {
        &self.pool
    }

    /// Runs one engine-native CC primitive (see [`crate::native`]) with
    /// global stat attribution and no cancellation — the bare-cluster
    /// counterpart of [`crate::session::Session::native_cc`].
    pub fn native_cc(&self, op: &crate::native::CcOp<'_>) -> DbResult<crate::native::CcReport> {
        crate::native::run_native_cc(self, &self.stats, QueryGuard::default(), op)
    }

    /// Per-operator execution counters (wall time, rows, kernel-tier
    /// partition counts) accumulated since the last counter reset.
    pub fn op_stats(&self) -> Vec<crate::stats::OpStats> {
        self.stats.op_stats()
    }

    /// Opens a new session on this cluster: an isolated temporary-table
    /// namespace with its own counters, transaction state and cancel
    /// flag. See [`Session`].
    pub fn session(self: &Arc<Self>) -> Session {
        let id = self.next_session_id.fetch_add(1, Ordering::Relaxed);
        Session::new(self.clone(), SessionCore::fresh(id, self.stats.clone()))
    }

    /// The fault injector, when the cluster was configured with a
    /// fault plan (exposes the injected-fault count for smoke checks).
    pub fn fault_injector(&self) -> Option<&Arc<crate::fault::FaultInjector>> {
        self.faults.as_ref()
    }

    /// Charges one statement retry and its backoff pause to the
    /// cluster-wide counters.
    pub fn note_retry(&self, backoff: std::time::Duration) {
        self.stats.count_retry(backoff);
    }

    /// The configuration this cluster was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Registers (or replaces) a scalar UDF callable from SQL.
    pub fn register_udf(&self, name: &str, udf: Arc<dyn ScalarUdf>) {
        self.udfs.write().insert(name.to_ascii_lowercase(), udf);
        self.catalog_epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Removes a UDF registration.
    pub fn unregister_udf(&self, name: &str) {
        self.udfs.write().remove(&name.to_ascii_lowercase());
        self.catalog_epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Plan-cache counters: hits, misses, evictions and live entries.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Empties the plan cache (counters are preserved) — the service's
    /// `\cache clear` verb. Harmless at any time: the next statement of
    /// each shape replans and repopulates.
    pub fn clear_plan_cache(&self) {
        self.plan_cache.clear();
    }

    /// Drops a closing session's plan-cache entries (its namespace
    /// cannot recur — ids are never reused).
    pub(crate) fn plan_cache_drop_session(&self, session: u64) {
        self.plan_cache.clear_session(session);
    }

    /// Current resource counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Enables or disables [`QueryProfile`] capture for statements run
    /// through [`Cluster::run`] (the default session). Off by default.
    pub fn set_profiling(&self, on: bool) {
        self.default_core.set_profiling(on);
    }

    /// The default session's most recently captured profile.
    pub fn last_profile(&self) -> Option<Arc<QueryProfile>> {
        self.default_core.last_profile()
    }

    /// All profiles retained by the default session, oldest first.
    pub fn profiles(&self) -> Vec<Arc<QueryProfile>> {
        self.default_core.profiles()
    }

    /// Cluster-wide per-statement latency distribution, across every
    /// session.
    pub fn latency_histogram(&self) -> HistogramSnapshot {
        self.latency.snapshot()
    }

    /// Installs a span trace on the default session (statements run
    /// via [`Cluster::run`] record into it) — the engine-level hook
    /// benches and tests use; services install per-[`Session`] traces
    /// via [`Session::install_trace`].
    pub fn install_trace(&self, trace: Arc<ActiveTrace>) -> Option<Arc<ActiveTrace>> {
        self.default_core.set_trace(Some(trace))
    }

    /// Removes and returns the default session's span trace.
    pub fn take_trace(&self) -> Option<Arc<ActiveTrace>> {
        self.default_core.set_trace(None)
    }

    /// Resets run-scoped counters (high-water mark, written bytes,
    /// network, statement count) while keeping live tables charged.
    pub fn reset_run_counters(&self) {
        self.stats.reset_run_counters();
    }

    /// Sets the space guard (0 disables).
    pub fn set_space_limit(&self, bytes: u64) {
        self.stats.set_space_limit(bytes);
    }

    /// Names of all stored tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Looks up a table (cheap clone — partitions are shared).
    pub fn table(&self, name: &str) -> DbResult<Table> {
        self.catalog
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| DbError::Catalog(format!("table {name:?} does not exist")))
    }

    /// Row count of a stored table.
    pub fn row_count(&self, name: &str) -> DbResult<usize> {
        Ok(self.table(name)?.row_count())
    }

    /// True when a table of exactly this (lowercased) name is stored.
    pub(crate) fn has_table(&self, name: &str) -> bool {
        self.catalog.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Executes one SQL statement in the default session.
    pub fn run(&self, sql_text: &str) -> DbResult<QueryOutput> {
        self.run_in(&self.default_core, sql_text)
    }

    /// Executes one SQL statement under a session's namespace, stats
    /// attribution and interrupt state. The entry point behind both
    /// [`Cluster::run`] and [`Session::run`].
    pub(crate) fn run_in(&self, core: &SessionCore, sql_text: &str) -> DbResult<QueryOutput> {
        let start = std::time::Instant::now();
        let spans = core.trace();
        let prepared = self.prepare(core, sql_text, &spans)?;
        core.stats.count_query();
        let guard = QueryGuard {
            cancel: Some(core.interrupt_handle()),
            deadline: core.timeout().map(|t| start + t),
        };
        // Each statement execution claims a fresh fault-plan ordinal —
        // a *retry* of a failed statement is a new execution, so its
        // fault sites re-key and the retry can succeed.
        let faults = self.faults.as_ref().map(|i| i.begin_statement());
        // Profile capture: on when the session asks for it, and always
        // for EXPLAIN ANALYZE. The stats snapshot taken here lets the
        // finished profile carry the statement's written/exchanged-byte
        // deltas.
        let is_explain_analyze = matches!(
            &prepared,
            Prepared::Fresh(Statement::Explain { analyze: true, .. })
        );
        let capture = core.profiling() || is_explain_analyze;
        let before = capture.then(|| core.stats.snapshot());
        let mut profile: Option<QueryProfile> = None;
        let mut result = match prepared {
            Prepared::Cached { plan, schema, shape } => self.dispatch_cached(
                core, plan, schema, shape, guard, faults, capture, &mut profile, &spans,
            ),
            Prepared::Fresh(stmt) => {
                self.dispatch(core, stmt, guard, faults, capture, &mut profile, &spans)
            }
        };
        let elapsed = start.elapsed();
        core.note_statement(elapsed);
        self.latency.record(elapsed.as_nanos() as u64);
        if let (Some(mut p), Some(before)) = (profile, before) {
            p.statement = sql_text.to_string();
            p.total_nanos = elapsed.as_nanos() as u64;
            p.apply_stats_delta(&core.stats.snapshot().delta_since(&before));
            if is_explain_analyze {
                if let Ok(QueryOutput::Explain(text)) = &mut result {
                    *text = p.render();
                }
            }
            core.push_profile(Arc::new(p));
        }
        result
    }

    /// Turns statement text into something executable, consulting the
    /// plan cache for SELECT/CTAS shapes. Cache hits skip parse and
    /// plan entirely (and open no Parse/Plan spans); misses plan the
    /// normalized template once, cache it, and bind. Statements the
    /// normalizer declines — and templates that fail to parse or plan —
    /// take the classic parse-every-time path, so error messages always
    /// reflect the user's actual statement.
    fn prepare(
        &self,
        core: &SessionCore,
        sql_text: &str,
        spans: &Option<Arc<ActiveTrace>>,
    ) -> DbResult<Prepared> {
        // The consult span closes before `plan_template` opens its
        // Parse/Plan spans — top-level spans tile wall time, so the
        // lookup and the (miss-only) planning must not overlap.
        let consult = maybe_start(spans, SpanKind::PlanCacheLookup, sql_text);
        if let Some(n) = plan_cache::normalize(sql_text) {
            let key = CacheKey { session: core.id, template: n.key.clone() };
            if let Some(entry) = self.plan_cache.get(&key) {
                if entry.param_count == n.params.len() && self.entry_valid(core, &entry) {
                    self.plan_cache.note_hit();
                    return Ok(Prepared::Cached {
                        plan: plan_cache::bind_plan(&entry.plan, &n.params),
                        schema: entry.schema.clone(),
                        shape: entry.shape.clone(),
                    });
                }
                // Stale (DDL changed a referenced table's identity or
                // schema, or the UDF registry moved): drop and replan.
                self.plan_cache.remove(&key);
            }
            drop(consult);
            if let Ok(entry) = self.plan_template(core, sql_text, &n, spans) {
                self.plan_cache.note_miss();
                let _bind = maybe_start(spans, SpanKind::PlanCacheLookup, sql_text);
                let prepared = Prepared::Cached {
                    plan: plan_cache::bind_plan(&entry.plan, &n.params),
                    schema: entry.schema.clone(),
                    shape: entry.shape.clone(),
                };
                self.plan_cache.insert(key, entry);
                return Ok(prepared);
            }
            // Template parse/plan failed — fall through so the classic
            // path produces the genuine error for this statement.
        } else {
            drop(consult);
        }
        let stmt = {
            let _parse = maybe_start(spans, SpanKind::Parse, sql_text);
            let mut stmt = sql::parse_statement(sql_text)?;
            core.rewrite(self, &mut stmt);
            stmt
        };
        Ok(Prepared::Fresh(stmt))
    }

    /// Parses, rewrites and plans a normalized template, producing the
    /// cache entry (with its revalidation data: referenced tables'
    /// raw → resolved names and schemas, and the catalog epoch).
    fn plan_template(
        &self,
        core: &SessionCore,
        sql_text: &str,
        n: &Normalized,
        spans: &Option<Arc<ActiveTrace>>,
    ) -> DbResult<Arc<CacheEntry>> {
        let epoch = self.catalog_epoch.load(Ordering::Acquire);
        let stmt = {
            let _parse = maybe_start(spans, SpanKind::Parse, sql_text);
            sql::parse_tokens(n.template.clone())?
        };
        // Dependency tracking and the CTAS target use *raw* names; the
        // session namespace is re-applied on every execution, so a hit
        // in a session that has since toggled `set_temp_namespace` (or
        // created a shadowing temp) still resolves correctly — or fails
        // validation and replans.
        let raw_tables = plan_cache::referenced_tables(&stmt);
        let raw_ctas = match &stmt {
            Statement::CreateTableAs { name, .. } => Some(name.clone()),
            _ => None,
        };
        let mut stmt = stmt;
        core.rewrite(self, &mut stmt);
        let (query, shape) = match stmt {
            Statement::Select(q) => {
                let shape =
                    CachedShape::Select { order_by: q.order_by.clone(), limit: q.limit };
                (q, shape)
            }
            Statement::CreateTableAs { query, distributed_by, .. } => {
                if !query.order_by.is_empty() || query.limit.is_some() {
                    // Uncacheable; the classic path raises the real
                    // "no ORDER BY / LIMIT in CTAS" error.
                    return Err(DbError::Plan("ORDER BY / LIMIT in CTAS".into()));
                }
                let shape = CachedShape::CreateTableAs {
                    raw_name: raw_ctas.unwrap_or_default(),
                    distributed_by,
                };
                (query, shape)
            }
            _ => return Err(DbError::Plan("statement shape is not cacheable".into())),
        };
        let (plan, schema) = {
            let _plan_span = maybe_start(spans, SpanKind::Plan, sql_text);
            let (plan, schema) = sql::plan_query_with_schema(&query, self)?;
            (self.maybe_optimize(plan), schema)
        };
        let tables = raw_tables
            .into_iter()
            .map(|raw| {
                let resolved = core.resolve(self, &raw);
                let schema = self.table(&resolved)?.schema;
                Ok(TableDep { raw, resolved, schema })
            })
            .collect::<DbResult<Vec<_>>>()?;
        Ok(Arc::new(CacheEntry {
            plan,
            schema,
            shape,
            param_count: n.params.len(),
            tables,
            epoch,
        }))
    }

    /// Whether a cached plan is still correct to execute: the catalog
    /// epoch (UDF registry) is unchanged and every referenced table
    /// still resolves to the same name with the same schema. Drop +
    /// recreate with an identical schema passes — the plan only encodes
    /// names and column positions, and execution reads current data.
    fn entry_valid(&self, core: &SessionCore, entry: &CacheEntry) -> bool {
        if self.catalog_epoch.load(Ordering::Acquire) != entry.epoch {
            return false;
        }
        entry.tables.iter().all(|dep| {
            core.resolve(self, &dep.raw) == dep.resolved
                && self
                    .table(&dep.resolved)
                    .map(|t| t.schema == dep.schema)
                    .unwrap_or(false)
        })
    }

    /// Executes a plan-cache hit. Mirrors the SELECT/CTAS arms of
    /// [`Cluster::dispatch`] minus parse and plan.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_cached(
        &self,
        core: &SessionCore,
        plan: Plan,
        schema: Schema,
        shape: CachedShape,
        guard: QueryGuard,
        faults: Option<crate::fault::FaultContext>,
        capture: bool,
        profile: &mut Option<QueryProfile>,
        spans: &Option<Arc<ActiveTrace>>,
    ) -> DbResult<QueryOutput> {
        guard.check()?;
        let stats = &core.stats;
        match shape {
            CachedShape::Select { order_by, limit } => {
                let _exec = maybe_start(spans, SpanKind::Exec, "select");
                let data =
                    self.execute_plan(&plan, stats, guard, faults, capture, profile, spans)?;
                finish_select(data, &schema, &order_by, limit)
            }
            CachedShape::CreateTableAs { raw_name, distributed_by } => {
                let name = core.create_name(&raw_name);
                let _exec = maybe_start(spans, SpanKind::Exec, "create table as");
                let data = self.execute_plan(
                    &plan,
                    stats,
                    guard,
                    faults.clone(),
                    capture,
                    profile,
                    spans,
                )?;
                self.finish_ctas(
                    stats,
                    name,
                    data,
                    distributed_by.as_deref(),
                    capture,
                    profile,
                    faults,
                    spans,
                )
            }
        }
    }

    /// Stores CTAS output and folds the store-side exchange into the
    /// profile — the tail shared by the classic and cached CTAS paths.
    #[allow(clippy::too_many_arguments)]
    fn finish_ctas(
        &self,
        stats: &Stats,
        name: String,
        data: PData,
        distributed_by: Option<&str>,
        capture: bool,
        profile: &mut Option<QueryProfile>,
        faults: Option<crate::fault::FaultContext>,
        spans: &Option<Arc<ActiveTrace>>,
    ) -> DbResult<QueryOutput> {
        let sink = capture.then(|| Arc::new(crate::trace::SpanSink::default()));
        let rows = self.store_traced(
            stats,
            &name,
            data,
            distributed_by,
            sink.clone(),
            faults,
            spans.clone(),
        )?;
        if let (Some(p), Some(sink)) = (profile.as_mut(), sink) {
            // The store-side exchange belongs to the root node.
            p.root.ops.extend(sink.take());
            p.rows_out = rows as u64;
        }
        Ok(QueryOutput::Created { table: name, rows })
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        core: &SessionCore,
        stmt: Statement,
        guard: QueryGuard,
        faults: Option<crate::fault::FaultContext>,
        capture: bool,
        profile: &mut Option<QueryProfile>,
        spans: &Option<Arc<ActiveTrace>>,
    ) -> DbResult<QueryOutput> {
        guard.check()?;
        let stats = &core.stats;
        match stmt {
            Statement::Select(q) => {
                let (plan, schema) = {
                    let _plan_span = maybe_start(spans, SpanKind::Plan, "select");
                    let (plan, schema) = sql::plan_query_with_schema(&q, self)?;
                    (self.maybe_optimize(plan), schema)
                };
                let _exec = maybe_start(spans, SpanKind::Exec, "select");
                let data =
                    self.execute_plan(&plan, stats, guard, faults, capture, profile, spans)?;
                finish_select(data, &schema, &q.order_by, q.limit)
            }
            Statement::Explain { query, analyze } => {
                let plan = {
                    let _plan_span = maybe_start(spans, SpanKind::Plan, "explain");
                    self.maybe_optimize(sql::plan_query(&query, self)?)
                };
                if analyze {
                    // Executes for real; `run_in` replaces the empty
                    // text with the finished profile's rendering once
                    // the statement-level deltas are folded in.
                    let _exec = maybe_start(spans, SpanKind::Exec, "explain analyze");
                    self.execute_plan(&plan, stats, guard, faults, true, profile, spans)?;
                    Ok(QueryOutput::Explain(String::new()))
                } else {
                    Ok(QueryOutput::Explain(crate::plan::explain(&plan)))
                }
            }
            Statement::CreateTableAs { name, query, distributed_by } => {
                if !query.order_by.is_empty() || query.limit.is_some() {
                    return Err(DbError::Plan(
                        "ORDER BY / LIMIT have no meaning in CREATE TABLE AS; \
                         stored tables are unordered"
                            .into(),
                    ));
                }
                let plan = {
                    let _plan_span = maybe_start(spans, SpanKind::Plan, "create table as");
                    self.maybe_optimize(sql::plan_query(&query, self)?)
                };
                let _exec = maybe_start(spans, SpanKind::Exec, "create table as");
                let data = self.execute_plan(
                    &plan,
                    stats,
                    guard,
                    faults.clone(),
                    capture,
                    profile,
                    spans,
                )?;
                self.finish_ctas(
                    stats,
                    name,
                    data,
                    distributed_by.as_deref(),
                    capture,
                    profile,
                    faults,
                    spans,
                )
            }
            Statement::CreateTable { name, columns, distributed_by } => {
                let fields: Vec<Field> = columns
                    .iter()
                    .map(|(col, ty)| {
                        let dtype = match ty.as_str() {
                            "bigint" | "int8" | "integer" | "int" => DataType::Int64,
                            "double precision" | "float8" | "double" => DataType::Float64,
                            other => {
                                return Err(DbError::Plan(format!(
                                    "unsupported column type {other:?} \
                                     (use bigint or double precision)"
                                )))
                            }
                        };
                        let mut f = Field::new(col.clone(), dtype);
                        f.nullable = true;
                        Ok(f)
                    })
                    .collect::<DbResult<_>>()?;
                for (i, f) in fields.iter().enumerate() {
                    if fields[..i].iter().any(|g| g.name == f.name) {
                        return Err(DbError::Plan(format!(
                            "duplicate column name {:?}",
                            f.name
                        )));
                    }
                }
                let schema = Schema::new(fields);
                let dist_idx = match &distributed_by {
                    Some(col) => Some(schema.index_of(&col.to_ascii_lowercase()).ok_or_else(
                        || DbError::Plan(format!("DISTRIBUTED BY column {col:?} not defined")),
                    )?),
                    None => None,
                };
                let parts: Vec<Batch> =
                    (0..self.config.segments).map(|_| Batch::empty(&schema)).collect();
                let dist = match dist_idx {
                    Some(i) => Distribution::Hash(vec![i]),
                    None => Distribution::Hash(vec![0]),
                };
                let data = PData { schema, parts, dist };
                self.store_with(stats, &name, data, None)?;
                Ok(QueryOutput::Created { table: name, rows: 0 })
            }
            Statement::Insert { name, rows } => {
                let rows_inserted = self.insert_rows_with(stats, &name, &rows)?;
                Ok(QueryOutput::Inserted { table: name, rows: rows_inserted })
            }
            Statement::DropTable { name, if_exists } => {
                match self.drop_table_with(stats, &name) {
                    Ok(()) => Ok(QueryOutput::Dropped),
                    Err(DbError::Catalog(_)) if if_exists => Ok(QueryOutput::Dropped),
                    Err(e) => Err(e),
                }
            }
            Statement::RenameTable { from, to } => {
                self.rename_table(&from, &to)?;
                Ok(QueryOutput::Renamed)
            }
        }
    }

    /// Executes a `SELECT` and returns its rows.
    pub fn query(&self, sql_text: &str) -> DbResult<Vec<Vec<Datum>>> {
        match self.run(sql_text)? {
            QueryOutput::Rows(rows) => Ok(rows),
            other => Err(DbError::Plan(format!("expected a SELECT, got {other:?}"))),
        }
    }

    /// Executes a `SELECT` expected to return one integer (e.g.
    /// `select count(*) …`).
    pub fn query_scalar_i64(&self, sql_text: &str) -> DbResult<i64> {
        let rows = self.query(sql_text)?;
        rows.first()
            .and_then(|r| r.first())
            .and_then(Datum::as_int)
            .ok_or_else(|| DbError::Exec("query did not return a scalar integer".into()))
    }

    fn maybe_optimize(&self, plan: crate::plan::Plan) -> crate::plan::Plan {
        if self.config.optimize {
            let width_of = |name: &str| self.table(name).ok().map(|t| t.schema.len());
            crate::optimizer::optimize(plan, &width_of)
        } else {
            plan
        }
    }

    /// Executes a plan; with `capture` set, runs the profiled executor
    /// and deposits the annotated tree into `profile`.
    #[allow(clippy::too_many_arguments)]
    fn execute_plan(
        &self,
        plan: &crate::plan::Plan,
        stats: &Stats,
        guard: QueryGuard,
        faults: Option<crate::fault::FaultContext>,
        capture: bool,
        profile: &mut Option<QueryProfile>,
        spans: &Option<Arc<ActiveTrace>>,
    ) -> DbResult<PData> {
        let lookup = |name: &str| self.table(name);
        let ctx = ExecContext {
            lookup: &lookup,
            allow_colocated: self.config.profile == ExecutionProfile::Colocated,
            stats,
            pool: &self.pool,
            segments: self.config.segments,
            guard,
            vectorized: self.config.vectorized,
            faults,
            spans: spans.clone(),
        };
        if capture {
            let (data, root) = if self.config.pipelined {
                crate::pipeline::execute_profiled(plan, &ctx)?
            } else {
                crate::plan::execute_profiled(plan, &ctx)?
            };
            *profile = Some(QueryProfile {
                rows_out: root.rows_out,
                root,
                ..QueryProfile::default()
            });
            Ok(data)
        } else if self.config.pipelined {
            crate::pipeline::execute(plan, &ctx)
        } else {
            execute(plan, &ctx)
        }
    }

    /// Materialises partitioned data as a stored table, applying the
    /// requested distribution and charging space accounting to `stats`
    /// (a session's counters, which roll up globally).
    ///
    /// The existence check, the space-limit check, the charge and the
    /// insert happen under one catalog write lock, so two concurrent
    /// CTAS statements on the same name cannot both succeed and the
    /// space guard cannot be oversubscribed by a racing pair.
    pub(crate) fn store_with(
        &self,
        stats: &Stats,
        name: &str,
        data: PData,
        distributed_by: Option<&str>,
    ) -> DbResult<usize> {
        self.store_traced(stats, name, data, distributed_by, None, None, None)
    }

    /// [`Cluster::store_with`] plus an optional profiling sink: a
    /// `DISTRIBUTED BY` clause can force a final exchange here, and a
    /// profiled CTAS must account for it like every other operator.
    #[allow(clippy::too_many_arguments)]
    fn store_traced(
        &self,
        stats: &Stats,
        name: &str,
        data: PData,
        distributed_by: Option<&str>,
        trace: Option<Arc<crate::trace::SpanSink>>,
        faults: Option<crate::fault::FaultContext>,
        spans: Option<Arc<ActiveTrace>>,
    ) -> DbResult<usize> {
        let name = name.to_ascii_lowercase();
        let data = match distributed_by {
            Some(col) => {
                let idx = data.schema.index_of(&col.to_ascii_lowercase()).ok_or_else(|| {
                    DbError::Plan(format!("DISTRIBUTED BY column {col:?} not in output"))
                })?;
                let octx = crate::ops::OpCtx {
                    stats,
                    pool: &self.pool,
                    segments: self.config.segments,
                    allow_colocated: self.config.profile == ExecutionProfile::Colocated,
                    guard: QueryGuard::default(),
                    vectorized: self.config.vectorized,
                    trace,
                    faults,
                    spans,
                };
                crate::ops::ensure_distribution(data, &[idx], &octx)?
            }
            None => data,
        };
        let table = Table::new(data.schema, data.parts, data.dist);
        let bytes = table.byte_size();
        let rows = table.row_count();
        let mut cat = self.catalog.write();
        if cat.contains_key(&name) {
            return Err(DbError::Catalog(format!("table {name:?} already exists")));
        }
        // The space guard is cluster-wide; the charge lands on the
        // session counters and rolls up.
        let limit = self.stats.space_limit();
        if limit > 0 && self.stats.live_bytes() + bytes > limit {
            return Err(DbError::SpaceLimitExceeded {
                needed: self.stats.live_bytes() + bytes,
                limit,
            });
        }
        stats.charge_create(bytes, rows as u64);
        cat.insert(name, table);
        Ok(rows)
    }

    /// Appends literal rows to an existing table, re-routing each row
    /// to its hash partition. Implements `INSERT INTO … VALUES`.
    fn insert_rows_with(
        &self,
        stats: &Stats,
        name: &str,
        rows: &[Vec<crate::sql::AstExpr>],
    ) -> DbResult<usize> {
        use crate::sql::AstExpr;
        let name = name.to_ascii_lowercase();
        let table = self.table(&name)?;
        let width = table.schema.len();
        // Evaluate the literal expressions.
        let mut datum_rows: Vec<Vec<Datum>> = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            if row.len() != width {
                return Err(DbError::Plan(format!(
                    "INSERT row {} has {} values; table {name:?} has {width} columns",
                    i + 1,
                    row.len()
                )));
            }
            let mut out = Vec::with_capacity(width);
            for (expr, field) in row.iter().zip(table.schema.fields()) {
                let d = match expr {
                    AstExpr::Int(v) => Datum::Int(*v),
                    AstExpr::Float(v) => Datum::Double(*v),
                    AstExpr::Null => Datum::Null,
                    other => {
                        return Err(DbError::Plan(format!(
                            "INSERT supports literal values only, got {other:?}"
                        )))
                    }
                };
                let d = match (field.dtype, d) {
                    (DataType::Float64, Datum::Int(v)) => Datum::Double(v as f64),
                    (DataType::Int64, Datum::Double(_)) => {
                        return Err(DbError::Plan(format!(
                            "cannot insert a float into bigint column {:?}",
                            field.name
                        )))
                    }
                    (_, d) => d,
                };
                out.push(d);
            }
            datum_rows.push(out);
        }
        // Rebuild the partitions with the new rows routed by the
        // distribution key (tables are immutable snapshots; an insert
        // replaces the stored table, charging only the delta). The
        // re-read, rebuild, charge and swap all happen under one write
        // lock so concurrent inserts cannot lose each other's rows.
        let mut cat = self.catalog.write();
        let table = cat
            .get(&name)
            .ok_or_else(|| DbError::Catalog(format!("table {name:?} does not exist")))?;
        if table.schema.len() != width {
            return Err(DbError::Exec(format!(
                "table {name:?} changed schema during INSERT"
            )));
        }
        let dist_col = match &table.distribution {
            Distribution::Hash(cols) => cols.first().copied().unwrap_or(0),
            Distribution::Arbitrary => 0,
        };
        let mut parts: Vec<Batch> = table.partitions.as_ref().clone();
        let n = parts.len().max(1);
        let old_bytes = table.byte_size();
        for row in &datum_rows {
            let dest = (hash_datum(&row[dist_col]) % n as u64) as usize;
            parts[dest].push_row(row);
        }
        let new_table = Table::new(table.schema.clone(), parts, table.distribution.clone());
        let delta = new_table.byte_size().saturating_sub(old_bytes);
        let limit = self.stats.space_limit();
        if limit > 0 && self.stats.live_bytes() + delta > limit {
            return Err(DbError::SpaceLimitExceeded {
                needed: self.stats.live_bytes() + delta,
                limit,
            });
        }
        stats.charge_create(delta, datum_rows.len() as u64);
        cat.insert(name, new_table);
        Ok(datum_rows.len())
    }

    /// Drops a table, crediting its space back to the default session.
    pub fn drop_table(&self, name: &str) -> DbResult<()> {
        self.drop_table_with(&self.stats, name)
    }

    /// Drops a table, crediting its space to the given (session)
    /// counters.
    pub(crate) fn drop_table_with(&self, stats: &Stats, name: &str) -> DbResult<()> {
        let name = name.to_ascii_lowercase();
        match self.catalog.write().remove(&name) {
            Some(t) => {
                stats.credit_drop(t.byte_size());
                Ok(())
            }
            None => Err(DbError::Catalog(format!("table {name:?} does not exist"))),
        }
    }

    /// Renames a table.
    pub fn rename_table(&self, from: &str, to: &str) -> DbResult<()> {
        let from = from.to_ascii_lowercase();
        let to = to.to_ascii_lowercase();
        let mut cat = self.catalog.write();
        if cat.contains_key(&to) {
            return Err(DbError::Catalog(format!("table {to:?} already exists")));
        }
        match cat.remove(&from) {
            Some(t) => {
                cat.insert(to, t);
                Ok(())
            }
            None => Err(DbError::Catalog(format!("table {from:?} does not exist"))),
        }
    }

    /// Atomically replaces table `to` with table `from`: `from` is
    /// renamed to `to`, and any previous `to` is dropped, all under one
    /// catalog lock. Readers therefore never observe a state where `to`
    /// is missing — the swap primitive the incremental-CC subsystem
    /// uses to publish a rebuilt label table under a live query load.
    pub fn replace_table(&self, from: &str, to: &str) -> DbResult<()> {
        self.replace_table_with(&self.stats, from, to)
    }

    /// [`Cluster::replace_table`] with explicit (session) stat
    /// attribution for the displaced table's space credit.
    pub(crate) fn replace_table_with(&self, stats: &Stats, from: &str, to: &str) -> DbResult<()> {
        let from = from.to_ascii_lowercase();
        let to = to.to_ascii_lowercase();
        let mut cat = self.catalog.write();
        let table = cat
            .remove(&from)
            .ok_or_else(|| DbError::Catalog(format!("table {from:?} does not exist")))?;
        if let Some(old) = cat.insert(to, table) {
            stats.credit_drop(old.byte_size());
        }
        Ok(())
    }

    /// Bulk-loads a two-column bigint table (the edge-list shape every
    /// algorithm consumes), hash-distributing on the first column.
    ///
    /// This is the fast path for loading generated graphs: values go
    /// straight into columnar partitions without per-row boxing.
    pub fn load_pairs(
        &self,
        name: &str,
        col_a: &str,
        col_b: &str,
        pairs: &[(i64, i64)],
    ) -> DbResult<()> {
        self.load_pairs_with(&self.stats, name, col_a, col_b, pairs)
    }

    /// [`Cluster::load_pairs`] with explicit (session) stat attribution.
    pub(crate) fn load_pairs_with(
        &self,
        stats: &Stats,
        name: &str,
        col_a: &str,
        col_b: &str,
        pairs: &[(i64, i64)],
    ) -> DbResult<()> {
        let n = self.config.segments;
        let mut parts_a: Vec<Vec<i64>> = vec![Vec::new(); n];
        let mut parts_b: Vec<Vec<i64>> = vec![Vec::new(); n];
        for &(a, b) in pairs {
            let dest = (hash_datum(&Datum::Int(a)) % n as u64) as usize;
            parts_a[dest].push(a);
            parts_b[dest].push(b);
        }
        let schema = Schema::new(vec![
            Field::new(col_a.to_ascii_lowercase(), DataType::Int64),
            Field::new(col_b.to_ascii_lowercase(), DataType::Int64),
        ]);
        let parts: Vec<Batch> = parts_a
            .into_iter()
            .zip(parts_b)
            .map(|(a, b)| Batch::from_columns(vec![Column::from_ints(a), Column::from_ints(b)]))
            .collect();
        let data = PData { schema, parts, dist: Distribution::Hash(vec![0]) };
        self.store_with(stats, name, data, None)?;
        Ok(())
    }

    /// Reads a two-integer-column table back as pairs (gathered to the
    /// driver), e.g. the algorithms' `(vertex, label)` results.
    pub fn scan_pairs(&self, name: &str) -> DbResult<Vec<(i64, i64)>> {
        let t = self.table(name)?;
        if t.schema.len() < 2 {
            return Err(DbError::Exec(format!(
                "table {name:?} has {} columns, need 2",
                t.schema.len()
            )));
        }
        let mut out = Vec::with_capacity(t.row_count());
        for b in t.partitions.iter() {
            for i in 0..b.rows() {
                let a = b.column(0).datum(i).as_int().ok_or_else(|| {
                    DbError::Exec("scan_pairs: non-integer or NULL value".into())
                })?;
                let c = b.column(1).datum(i).as_int().ok_or_else(|| {
                    DbError::Exec("scan_pairs: non-integer or NULL value".into())
                })?;
                out.push((a, c));
            }
        }
        Ok(out)
    }
}

impl Cluster {
    /// Enters transaction mode: dropped tables' space stays charged
    /// until [`Cluster::commit`] — modelling a database running the
    /// whole algorithm as one transaction, the setting under which the
    /// paper's Table V (total bytes written) is the binding space
    /// metric.
    ///
    /// This toggles the *default session's* (= global) counters, which
    /// every direct [`Cluster::run`] caller shares — a footgun under
    /// concurrency. New code should open a [`Session`] and use
    /// [`Session::begin_transaction`], which scopes deferral to that
    /// session alone.
    #[deprecated(note = "use Session::begin_transaction for session-scoped transactions")]
    pub fn begin_transaction(&self) {
        self.stats.set_transactional(true);
    }

    /// Leaves transaction mode and reclaims all deferred space.
    ///
    /// Deprecated alongside [`Cluster::begin_transaction`]; prefer
    /// [`Session::commit`].
    #[deprecated(note = "use Session::commit for session-scoped transactions")]
    pub fn commit(&self) {
        self.stats.set_transactional(false);
        self.stats.commit();
    }

    /// Exports a table as CSV (header row, `NULL` for nulls).
    pub fn copy_to_csv(&self, name: &str, path: &std::path::Path) -> DbResult<()> {
        use std::io::Write as _;
        let t = self.table(name)?;
        let file = std::fs::File::create(path)
            .map_err(|e| DbError::Exec(format!("create {}: {e}", path.display())))?;
        let mut w = std::io::BufWriter::new(file);
        let header: Vec<&str> =
            t.schema.fields().iter().map(|f| f.name.as_str()).collect();
        let io_err = |e: std::io::Error| DbError::Exec(format!("write csv: {e}"));
        writeln!(w, "{}", header.join(",")).map_err(io_err)?;
        for batch in t.partitions.iter() {
            for row in 0..batch.rows() {
                let cells: Vec<String> =
                    (0..batch.width()).map(|c| batch.column(c).datum(row).to_string()).collect();
                writeln!(w, "{}", cells.join(",")).map_err(io_err)?;
            }
        }
        w.flush().map_err(io_err)?;
        Ok(())
    }

    /// Imports a CSV (with header) written by [`Cluster::copy_to_csv`]
    /// as a new table of the given column types, hash-distributed on
    /// the first column.
    pub fn copy_from_csv(
        &self,
        name: &str,
        path: &std::path::Path,
        types: &[DataType],
    ) -> DbResult<()> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| DbError::Exec(format!("read {}: {e}", path.display())))?;
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| DbError::Exec("empty CSV".into()))?;
        let names: Vec<&str> = header.split(',').collect();
        if names.len() != types.len() {
            return Err(DbError::Exec(format!(
                "CSV has {} columns, {} types given",
                names.len(),
                types.len()
            )));
        }
        let schema = Schema::new(
            names
                .iter()
                .zip(types)
                .map(|(n, &t)| {
                    let mut f = Field::new(n.trim().to_ascii_lowercase(), t);
                    f.nullable = true;
                    f
                })
                .collect(),
        );
        let n = self.config.segments;
        let mut parts: Vec<Batch> = (0..n).map(|_| Batch::empty(&schema)).collect();
        for (lineno, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() != types.len() {
                return Err(DbError::Exec(format!(
                    "CSV line {}: {} cells, expected {}",
                    lineno + 2,
                    cells.len(),
                    types.len()
                )));
            }
            let mut row = Vec::with_capacity(cells.len());
            for (cell, &t) in cells.iter().zip(types) {
                let cell = cell.trim();
                let d = if cell == "NULL" {
                    Datum::Null
                } else {
                    match t {
                        DataType::Int64 => Datum::Int(cell.parse().map_err(|e| {
                            DbError::Exec(format!("CSV line {}: {e}", lineno + 2))
                        })?),
                        DataType::Float64 => Datum::Double(cell.parse().map_err(|e| {
                            DbError::Exec(format!("CSV line {}: {e}", lineno + 2))
                        })?),
                    }
                };
                row.push(d);
            }
            let dest = (hash_datum(&row[0]) % n as u64) as usize;
            parts[dest].push_row(&row);
        }
        let data = PData { schema, parts, dist: Distribution::Hash(vec![0]) };
        self.store_with(&self.stats, name, data, None)?;
        Ok(())
    }
}

impl PlannerCatalog for Cluster {
    fn table_schema(&self, name: &str) -> DbResult<Schema> {
        Ok(self.table(name)?.schema)
    }

    fn udf(&self, name: &str) -> Option<Arc<dyn ScalarUdf>> {
        self.udfs.read().get(&name.to_ascii_lowercase()).cloned()
    }

    fn next_random_seed(&self) -> u64 {
        self.random_seq.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
    }
}

/// Gathers SELECT output and applies ORDER BY / LIMIT — the tail shared
/// by the classic and cached SELECT paths.
fn finish_select(
    data: PData,
    schema: &Schema,
    order_by: &[(String, bool)],
    limit: Option<usize>,
) -> DbResult<QueryOutput> {
    let mut rows = gather(&data);
    if !order_by.is_empty() {
        let keys: Vec<(usize, bool)> = order_by
            .iter()
            .map(|(name, desc)| {
                schema
                    .index_of(&name.to_ascii_lowercase())
                    .map(|i| (i, *desc))
                    .ok_or_else(|| {
                        DbError::Plan(format!("ORDER BY column {name:?} not in output"))
                    })
            })
            .collect::<DbResult<_>>()?;
        rows.sort_by(|a, b| {
            for &(i, desc) in &keys {
                let ord = a[i].sql_cmp(&b[i]).unwrap_or(std::cmp::Ordering::Equal);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(n) = limit {
        rows.truncate(n);
    }
    Ok(QueryOutput::Rows(rows))
}

fn gather(data: &PData) -> Vec<Vec<Datum>> {
    let mut rows = Vec::with_capacity(data.row_count());
    for b in &data.parts {
        for i in 0..b.rows() {
            rows.push(b.row(i));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_scan_roundtrip() {
        let c = Cluster::new(ClusterConfig::default());
        c.load_pairs("e", "v", "w", &[(1, 2), (2, 3), (3, 1)]).unwrap();
        let mut pairs = c.scan_pairs("e").unwrap();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 2), (2, 3), (3, 1)]);
        assert_eq!(c.row_count("e").unwrap(), 3);
        assert!(c.table("e").unwrap().distribution.is_hash_on(&[0]));
    }

    #[test]
    fn duplicate_create_rejected() {
        let c = Cluster::new(ClusterConfig::default());
        c.load_pairs("t", "a", "b", &[(1, 1)]).unwrap();
        assert!(matches!(
            c.load_pairs("t", "a", "b", &[(2, 2)]),
            Err(DbError::Catalog(_))
        ));
    }

    #[test]
    fn drop_and_rename() {
        let c = Cluster::new(ClusterConfig::default());
        c.load_pairs("a", "x", "y", &[(1, 2)]).unwrap();
        c.rename_table("a", "b").unwrap();
        assert!(c.table("a").is_err());
        assert_eq!(c.row_count("b").unwrap(), 1);
        c.drop_table("b").unwrap();
        assert!(c.drop_table("b").is_err());
        assert_eq!(c.stats().live_bytes, 0);
    }

    #[test]
    fn rename_over_existing_rejected() {
        let c = Cluster::new(ClusterConfig::default());
        c.load_pairs("a", "x", "y", &[(1, 2)]).unwrap();
        c.load_pairs("b", "x", "y", &[(3, 4)]).unwrap();
        assert!(c.rename_table("a", "b").is_err());
    }

    #[test]
    fn space_limit_blocks_creation() {
        let c = Cluster::new(ClusterConfig { space_limit: 40, ..Default::default() });
        // 2 rows * 16 bytes = 32 bytes: fits.
        c.load_pairs("small", "a", "b", &[(1, 1), (2, 2)]).unwrap();
        // Another 32 would exceed 40.
        let err = c.load_pairs("big", "a", "b", &[(3, 3), (4, 4)]).unwrap_err();
        assert!(err.is_space_limit());
        assert!(c.table("big").is_err(), "failed CTAS must not be stored");
    }

    #[test]
    fn stats_track_creates_and_drops() {
        let c = Cluster::new(ClusterConfig::default());
        c.load_pairs("t", "a", "b", &[(1, 2), (3, 4)]).unwrap();
        let s = c.stats();
        assert_eq!(s.live_bytes, 32);
        assert_eq!(s.bytes_written, 32);
        assert_eq!(s.rows_written, 2);
        c.drop_table("t").unwrap();
        let s = c.stats();
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.max_live_bytes, 32);
        assert_eq!(s.bytes_written, 32);
    }

    #[test]
    fn catalog_case_insensitive() {
        let c = Cluster::new(ClusterConfig::default());
        c.load_pairs("MyTable", "a", "b", &[(1, 2)]).unwrap();
        assert!(c.table("mytable").is_ok());
        assert!(c.table("MYTABLE").is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_rejected() {
        Cluster::new(ClusterConfig { segments: 0, ..Default::default() });
    }

    #[test]
    fn plan_cache_hits_on_literal_variants() {
        let c = Cluster::new(ClusterConfig::default());
        c.load_pairs("e", "v1", "v2", &[(1, 10), (2, 20), (3, 30)]).unwrap();
        let q = |lit: i64| format!("select count(*) as n from e where v2 > {lit}");
        assert_eq!(c.query_scalar_i64(&q(0)).unwrap(), 3);
        assert_eq!(c.query_scalar_i64(&q(15)).unwrap(), 2);
        assert_eq!(c.query_scalar_i64(&q(25)).unwrap(), 1);
        let s = c.plan_cache_stats();
        assert_eq!(s.misses, 1, "one template plan");
        assert_eq!(s.hits, 2, "literal variants reuse it");
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn plan_cache_survives_same_schema_recreate_but_not_schema_change() {
        let c = Cluster::new(ClusterConfig::default());
        c.load_pairs("t", "a", "b", &[(1, 1), (2, 2)]).unwrap();
        assert_eq!(c.query_scalar_i64("select count(*) as n from t").unwrap(), 2);
        // Drop + recreate with the same two-column shape: the cached
        // plan only names columns by position, so it must still hit —
        // and read the *new* data.
        c.drop_table("t").unwrap();
        c.load_pairs("t", "a", "b", &[(5, 5)]).unwrap();
        assert_eq!(c.query_scalar_i64("select count(*) as n from t").unwrap(), 1);
        assert_eq!(c.plan_cache_stats().hits, 1);
        // Recreate with a different schema: the entry must be replanned.
        c.drop_table("t").unwrap();
        c.run("create table t as select 1 as a union all select 2 as a").unwrap();
        assert_eq!(c.query_scalar_i64("select count(*) as n from t").unwrap(), 2);
        // Three misses: the first SELECT plan, the CTAS (itself
        // cacheable), and the SELECT replan after the schema changed.
        assert_eq!(c.plan_cache_stats().misses, 3);
    }

    #[test]
    fn plan_cache_invalidates_on_udf_change() {
        use crate::expr::ScalarUdf;
        use crate::value::Datum;
        #[derive(Debug)]
        struct Plus(i64);
        impl ScalarUdf for Plus {
            fn eval(&self, args: &[Datum]) -> Datum {
                Datum::Int(args[0].as_int().unwrap_or(0) + self.0)
            }
        }
        let c = Cluster::new(ClusterConfig::default());
        c.load_pairs("t", "a", "b", &[(10, 0)]).unwrap();
        c.register_udf("bump", Arc::new(Plus(1)));
        let q = "select min(r) as m from (select bump(a) as r from t) as s";
        assert_eq!(c.query_scalar_i64(q).unwrap(), 11);
        assert_eq!(c.query_scalar_i64(q).unwrap(), 11);
        assert_eq!(c.plan_cache_stats().hits, 1);
        // Cached plans embed the UDF implementation; replacing it must
        // invalidate, not keep calling the old closure.
        c.register_udf("bump", Arc::new(Plus(100)));
        assert_eq!(c.query_scalar_i64(q).unwrap(), 110);
        assert_eq!(c.plan_cache_stats().misses, 2);
    }

    #[test]
    fn cached_ctas_recreates_after_drop() {
        let c = Cluster::new(ClusterConfig::default());
        c.load_pairs("e", "v1", "v2", &[(1, 2), (1, 3), (2, 3)]).unwrap();
        let ctas = "create table deg as select v1 as v, count(*) as d from e \
                    group by v1 distributed by (v)";
        for expect_rows in [2, 2, 2] {
            let out = c.run(ctas).unwrap();
            assert_eq!(out.row_count(), expect_rows);
            c.drop_table("deg").unwrap();
        }
        let s = c.plan_cache_stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn session_shadowing_invalidates_cached_resolution() {
        let c = Arc::new(Cluster::new(ClusterConfig::default()));
        c.load_pairs("g", "v", "w", &[(1, 1), (2, 2), (3, 3)]).unwrap();
        let s = c.session();
        assert_eq!(s.query_scalar_i64("select count(*) as n from g").unwrap(), 3);
        // Creating a session temp named `g` changes what `g` resolves
        // to; the cached plan (bound to the shared table) must replan.
        s.run("create table g as select 9 as v").unwrap();
        assert_eq!(s.query_scalar_i64("select count(*) as n from g").unwrap(), 1);
        // Dropping the shadow flips resolution back.
        s.drop_table("g").unwrap();
        assert_eq!(s.query_scalar_i64("select count(*) as n from g").unwrap(), 3);
    }

    #[test]
    fn clear_plan_cache_empties_entries() {
        let c = Cluster::new(ClusterConfig::default());
        c.load_pairs("t", "a", "b", &[(1, 1)]).unwrap();
        c.query_scalar_i64("select count(*) as n from t").unwrap();
        assert_eq!(c.plan_cache_stats().entries, 1);
        c.clear_plan_cache();
        assert_eq!(c.plan_cache_stats().entries, 0);
        // Still correct afterwards.
        assert_eq!(c.query_scalar_i64("select count(*) as n from t").unwrap(), 1);
    }

    #[test]
    fn cached_and_fresh_orderings_agree() {
        let c = Cluster::new(ClusterConfig::default());
        c.load_pairs("t", "a", "b", &[(3, 30), (1, 10), (2, 20)]).unwrap();
        let q = "select a, b from t where b > 5 order by a desc limit 2";
        let first = c.query(q).unwrap();
        let second = c.query(q).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            first,
            vec![
                vec![Datum::Int(3), Datum::Int(30)],
                vec![Datum::Int(2), Datum::Int(20)],
            ]
        );
        assert!(c.plan_cache_stats().hits >= 1);
    }
}
