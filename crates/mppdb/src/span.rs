//! End-to-end span tracing with wait-time attribution.
//!
//! [`crate::trace`] answers "where did *execution* time go" — operator
//! trees, per-segment rows. This module answers the question that the
//! 1→16-session tail-latency investigation actually needs: where did
//! the *wall clock* go, including all the time a statement spent not
//! executing — admission queues, pool queues, fuel-backpressure
//! parking, retry backoff. It records a per-statement (or per-job)
//! lifecycle as a flat list of typed [`SpanRec`]s against one anchor
//! instant, cheap enough to leave compiled in and sample at runtime.
//!
//! # Recording model
//!
//! An [`ActiveTrace`] is installed on a session (or threaded through a
//! job); every layer that wants to attribute time opens a
//! [`SpanGuard`] via [`maybe_start`] — a single `Option` branch when
//! tracing is off. The guard records its span on `Drop`, which makes
//! span closure *unconditional*: a panicking operator unwinds through
//! the guard inside the segment pool's `catch_unwind`, so even chaos
//! runs leave no orphan spans ([`ActiveTrace::open_spans`] returns to
//! zero once the statement resolves). Span storage is bounded
//! ([`MAX_SPANS`]); overflow increments a drop counter instead of
//! growing without bound.
//!
//! Span kinds split into *top-level* phases that tile a statement's
//! wall time — `parse`, `plan`, `admission_wait`, `pool_queue_wait`,
//! `exec`, `retry_backoff`, `rebuild` — and *nested* detail inside
//! `exec`: one `stage` span per operator/pipeline-stage invocation
//! (carrying exactly the nanoseconds charged to
//! [`crate::stats::Stats::charge_op`], so span trees reconcile with
//! `op_stats()` to the nanosecond) and `parked` spans for fuel-yield
//! gaps. [`FinishedTrace::attributed_nanos`] sums the top-level kinds;
//! the service's acceptance bar is ≥ 95 % of wall attributed.
//!
//! [`PartClock`] is the telescoping per-partition clock behind the
//! parked/running split: every slice entry/exit is stamped once, so
//! `running + parked == last_exit − first_enter` holds *exactly* (a
//! property test drives it with arbitrary monotone stamp sequences).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Hard cap on recorded spans per trace; the recorder drops (and
/// counts) spans past this rather than growing unboundedly under a
/// long job.
pub const MAX_SPANS: usize = 16_384;

/// The type of a recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// SQL text → AST (includes session-namespace rewriting).
    Parse,
    /// AST → optimized physical plan.
    Plan,
    /// Waiting on the service's concurrency gate for an admission
    /// permit.
    AdmissionWait,
    /// A job waiting in the worker-lane queue between submission and
    /// its first scheduled slice.
    PoolQueueWait,
    /// Plan execution (including result gather and CTAS store).
    Exec,
    /// One operator / pipeline-stage invocation (nested inside
    /// [`SpanKind::Exec`]; carries the exact nanos charged to
    /// `op_stats`).
    Stage,
    /// A partition parked by fuel backpressure (`PollPush::Pending`),
    /// waiting to be rescheduled (nested inside [`SpanKind::Exec`]).
    Parked,
    /// Plan-cache consultation: statement normalization, key lookup
    /// and revalidation, plus literal re-binding of the cached (or
    /// freshly planned) template. On a cache hit this is the *only*
    /// pre-exec span — no `Parse`/`Plan` spans open at all.
    PlanCacheLookup,
    /// Retry backoff sleep between statement attempts.
    RetryBackoff,
    /// An incremental-CC stream rebuild phase.
    Rebuild,
}

impl SpanKind {
    /// Stable lowercase name used in trace JSON and waterfalls.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Parse => "parse",
            SpanKind::Plan => "plan",
            SpanKind::AdmissionWait => "admission_wait",
            SpanKind::PoolQueueWait => "pool_queue_wait",
            SpanKind::Exec => "exec",
            SpanKind::Stage => "stage",
            SpanKind::Parked => "parked",
            SpanKind::PlanCacheLookup => "plan_cache",
            SpanKind::RetryBackoff => "retry_backoff",
            SpanKind::Rebuild => "rebuild",
        }
    }

    /// Whether spans of this kind tile a statement's wall time
    /// (nested kinds — `stage`, `parked` — live *inside* `exec` and
    /// must not be double-counted by attribution sums).
    pub fn is_top_level(self) -> bool {
        !matches!(self, SpanKind::Stage | SpanKind::Parked)
    }
}

/// One recorded span: kind, label, offset from the trace anchor, and
/// duration, all in nanoseconds. `lane` separates concurrent
/// timelines (partitions) in the Chrome trace rendering.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Span type.
    pub kind: SpanKind,
    /// Human label (operator name, pipeline label, statement phase).
    pub label: String,
    /// Start offset from the trace anchor, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Timeline lane (0 = statement lifecycle, `p + 1` = partition p).
    pub lane: u32,
}

/// A live trace collecting spans for one statement or job.
#[derive(Debug)]
pub struct ActiveTrace {
    id: u64,
    label: String,
    anchor: Instant,
    spans: Mutex<Vec<SpanRec>>,
    open: AtomicU64,
    dropped: AtomicU64,
}

impl ActiveTrace {
    /// Fresh trace anchored at "now".
    pub fn new(id: u64, label: impl Into<String>) -> ActiveTrace {
        ActiveTrace {
            id,
            label: label.into(),
            anchor: Instant::now(),
            spans: Mutex::new(Vec::new()),
            open: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// This trace's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Nanoseconds elapsed since the trace anchor.
    pub fn now_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }

    /// Records one finished span (bounded; overflow is counted, not
    /// stored).
    pub fn record(&self, kind: SpanKind, label: impl Into<String>, start_ns: u64, dur_ns: u64, lane: u32) {
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        if spans.len() >= MAX_SPANS {
            drop(spans);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(SpanRec { kind, label: label.into(), start_ns, dur_ns, lane });
    }

    /// Opens a span that records itself on drop — including during a
    /// panic unwind, which is what keeps chaos runs orphan-free.
    pub fn start(self: &Arc<Self>, kind: SpanKind, label: impl Into<String>) -> SpanGuard {
        self.open.fetch_add(1, Ordering::Relaxed);
        SpanGuard {
            trace: self.clone(),
            kind,
            label: label.into(),
            start_ns: self.now_ns(),
            lane: 0,
        }
    }

    /// Spans currently open (started, not yet dropped). Zero once a
    /// statement has fully resolved — asserted by the chaos suite.
    pub fn open_spans(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    /// Spans dropped past [`MAX_SPANS`].
    pub fn dropped_spans(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Seals the trace into an immutable [`FinishedTrace`].
    pub fn finish(&self, statement: impl Into<String>, wall_ns: u64) -> FinishedTrace {
        let mut spans = std::mem::take(&mut *self.spans.lock().unwrap_or_else(|e| e.into_inner()));
        spans.sort_by_key(|s| s.start_ns);
        FinishedTrace {
            id: self.id,
            label: self.label.clone(),
            statement: statement.into(),
            wall_ns,
            spans,
            dropped: self.dropped.load(Ordering::Relaxed),
            leaked: self.open.load(Ordering::Relaxed),
        }
    }
}

/// An open span; records itself into its trace on drop.
#[derive(Debug)]
pub struct SpanGuard {
    trace: Arc<ActiveTrace>,
    kind: SpanKind,
    label: String,
    start_ns: u64,
    lane: u32,
}

impl SpanGuard {
    /// Moves this span onto a different timeline lane.
    pub fn set_lane(&mut self, lane: u32) {
        self.lane = lane;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = self.trace.now_ns();
        self.trace.record(
            self.kind,
            std::mem::take(&mut self.label),
            self.start_ns,
            end.saturating_sub(self.start_ns),
            self.lane,
        );
        self.trace.open.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Opens a span when a trace is installed — one branch when not.
pub fn maybe_start(
    trace: &Option<Arc<ActiveTrace>>,
    kind: SpanKind,
    label: &str,
) -> Option<SpanGuard> {
    trace.as_ref().map(|t| t.start(kind, label))
}

/// A sealed trace: everything `\trace` renders.
#[derive(Debug, Clone)]
pub struct FinishedTrace {
    /// Trace id (the `\trace <id>` handle).
    pub id: u64,
    /// What was traced ("statement", "job rc", …).
    pub label: String,
    /// The statement text (or job spec rendering).
    pub statement: String,
    /// End-to-end wall time the trace covers, nanoseconds.
    pub wall_ns: u64,
    /// Recorded spans, sorted by start offset.
    pub spans: Vec<SpanRec>,
    /// Spans dropped past the [`MAX_SPANS`] bound.
    pub dropped: u64,
    /// Spans still open when the trace was sealed — nonzero means a
    /// guard leaked, which the chaos suite treats as a bug.
    pub leaked: u64,
}

impl FinishedTrace {
    /// Nanoseconds attributed by top-level spans (`stage`/`parked`
    /// nest inside `exec` and are excluded to avoid double counting).
    pub fn attributed_nanos(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.kind.is_top_level())
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Fraction of wall time the top-level spans attribute (1.0 when
    /// wall is zero and nothing could be attributed).
    pub fn attribution_fraction(&self) -> f64 {
        if self.wall_ns == 0 {
            return 1.0;
        }
        self.attributed_nanos() as f64 / self.wall_ns as f64
    }

    /// Total nanoseconds recorded for one span kind.
    pub fn kind_nanos(&self, kind: SpanKind) -> u64 {
        self.spans.iter().filter(|s| s.kind == kind).map(|s| s.dur_ns).sum()
    }

    /// The trace in Chrome trace-event JSON ("X" complete events, µs
    /// timestamps), loadable in `chrome://tracing` and Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 * (self.spans.len() + 2));
        out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
        let _ = write!(
            out,
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
             \"args\": {{\"name\": ",
        );
        push_json_str(&mut out, &format!("trace {} ({})", self.id, self.label));
        out.push_str("}}");
        for s in &self.spans {
            out.push_str(", ");
            out.push_str("{\"name\": ");
            push_json_str(&mut out, &format!("{}: {}", s.kind.name(), s.label));
            let _ = write!(
                out,
                ", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
                 \"pid\": 1, \"tid\": {}",
                s.kind.name(),
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
                s.lane,
            );
            out.push('}');
        }
        let _ = write!(
            out,
            "], \"otherData\": {{\"trace_id\": {}, \"label\": ",
            self.id
        );
        push_json_str(&mut out, &self.label);
        out.push_str(", \"statement\": ");
        push_json_str(&mut out, &self.statement);
        let _ = write!(
            out,
            ", \"wall_ns\": {}, \"attributed_ns\": {}, \"dropped_spans\": {}, \
             \"leaked_spans\": {}}}}}",
            self.wall_ns,
            self.attributed_nanos(),
            self.dropped,
            self.leaked,
        );
        out
    }

    /// A text waterfall: one bar per top-level span, nested detail
    /// summarised, attribution percentage at the end.
    pub fn render_waterfall(&self) -> String {
        const WIDTH: usize = 40;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {} ({}): {}  wall={:.3}ms",
            self.id,
            self.label,
            self.statement,
            self.wall_ns as f64 / 1e6
        );
        let scale = |ns: u64| -> usize {
            if self.wall_ns == 0 {
                0
            } else {
                ((ns as u128 * WIDTH as u128) / self.wall_ns as u128) as usize
            }
        };
        for s in self.spans.iter().filter(|s| s.kind.is_top_level()) {
            let lead = scale(s.start_ns).min(WIDTH);
            let bar = scale(s.dur_ns).clamp(1, WIDTH - lead.min(WIDTH - 1));
            let _ = writeln!(
                out,
                "  {:>15} |{}{}{}| {:>10.3}ms  {}",
                s.kind.name(),
                " ".repeat(lead),
                "#".repeat(bar),
                " ".repeat(WIDTH.saturating_sub(lead + bar)),
                s.dur_ns as f64 / 1e6,
                s.label,
            );
        }
        let stages = self.spans.iter().filter(|s| s.kind == SpanKind::Stage).count();
        let parked = self.spans.iter().filter(|s| s.kind == SpanKind::Parked).count();
        if stages + parked > 0 {
            let _ = writeln!(
                out,
                "  nested: {} stage spans ({:.3}ms), {} parked spans ({:.3}ms)",
                stages,
                self.kind_nanos(SpanKind::Stage) as f64 / 1e6,
                parked,
                self.kind_nanos(SpanKind::Parked) as f64 / 1e6,
            );
        }
        let _ = writeln!(
            out,
            "  attributed: {:.1}% of wall ({} spans, {} dropped, {} leaked)",
            self.attribution_fraction() * 100.0,
            self.spans.len(),
            self.dropped,
            self.leaked,
        );
        out
    }
}

/// JSON string escape (the workspace builds offline; `serde_json` is a
/// stub, so trace JSON is hand-rolled like the profile JSON).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Telescoping per-partition clock splitting a partition's lifetime
/// into *running* (inside a cooperative slice) and *parked* (between
/// slices) time.
///
/// Each slice stamps `enter` once and `exit` once. Because every
/// boundary instant is used exactly twice — once closing the running
/// interval, once opening the gap (or vice versa) — the sum telescopes:
/// `running_ns + parked_ns == last_exit − first_enter` holds exactly
/// for any monotone stamp sequence, not just approximately.
#[derive(Debug, Default, Clone)]
pub struct PartClock {
    first: Option<u64>,
    prev_exit: Option<u64>,
    running_ns: u64,
    parked_ns: u64,
}

impl PartClock {
    /// Fresh clock.
    pub fn new() -> PartClock {
        PartClock::default()
    }

    /// Stamps a slice entry at `now` (nanoseconds on any fixed
    /// monotone base). Returns the parked gap since the previous exit
    /// (0 for the first slice).
    pub fn enter(&mut self, now: u64) -> u64 {
        if self.first.is_none() {
            self.first = Some(now);
        }
        let gap = self.prev_exit.map_or(0, |e| now.saturating_sub(e));
        self.parked_ns += gap;
        gap
    }

    /// Stamps a slice exit: `entered` is the stamp passed to the
    /// matching [`PartClock::enter`].
    pub fn exit(&mut self, entered: u64, now: u64) {
        self.running_ns += now.saturating_sub(entered);
        self.prev_exit = Some(now.max(entered));
    }

    /// Total nanoseconds inside slices.
    pub fn running_ns(&self) -> u64 {
        self.running_ns
    }

    /// Total nanoseconds parked between slices.
    pub fn parked_ns(&self) -> u64 {
        self.parked_ns
    }

    /// Wall span from first entry to last exit (0 before the first
    /// completed slice).
    pub fn wall_ns(&self) -> u64 {
        match (self.first, self.prev_exit) {
            (Some(f), Some(e)) => e.saturating_sub(f),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_record_on_drop_and_close() {
        let t = Arc::new(ActiveTrace::new(7, "statement"));
        {
            let _g = t.start(SpanKind::Parse, "select 1");
            assert_eq!(t.open_spans(), 1);
        }
        assert_eq!(t.open_spans(), 0);
        let fin = t.finish("select 1", 1000);
        assert_eq!(fin.spans.len(), 1);
        assert_eq!(fin.spans[0].kind, SpanKind::Parse);
        assert_eq!(fin.leaked, 0);
    }

    #[test]
    fn guards_close_during_panic_unwind() {
        let t = Arc::new(ActiveTrace::new(1, "chaos"));
        let t2 = t.clone();
        let result = std::panic::catch_unwind(move || {
            let _g = t2.start(SpanKind::Exec, "boom");
            panic!("injected");
        });
        assert!(result.is_err());
        assert_eq!(t.open_spans(), 0, "unwind must close the span");
        assert_eq!(t.finish("boom", 0).spans.len(), 1);
    }

    #[test]
    fn span_storage_is_bounded() {
        let t = ActiveTrace::new(2, "big");
        for i in 0..(MAX_SPANS + 10) {
            t.record(SpanKind::Stage, "s", i as u64, 1, 0);
        }
        let fin = t.finish("big", 0);
        assert_eq!(fin.spans.len(), MAX_SPANS);
        assert_eq!(fin.dropped, 10);
    }

    #[test]
    fn attribution_excludes_nested_kinds() {
        let t = ActiveTrace::new(3, "statement");
        t.record(SpanKind::Parse, "p", 0, 100, 0);
        t.record(SpanKind::Exec, "e", 100, 900, 0);
        t.record(SpanKind::Stage, "join", 150, 700, 0);
        t.record(SpanKind::Parked, "pipeline", 200, 50, 1);
        let fin = t.finish("q", 1000);
        assert_eq!(fin.attributed_nanos(), 1000);
        assert!((fin.attribution_fraction() - 1.0).abs() < 1e-9);
        assert_eq!(fin.kind_nanos(SpanKind::Stage), 700);
    }

    #[test]
    fn chrome_json_shape() {
        let t = ActiveTrace::new(4, "statement");
        t.record(SpanKind::Exec, "select \"x\"", 1000, 2000, 0);
        let json = t.finish("select \"x\"", 3000).to_chrome_json();
        assert!(json.starts_with('{'));
        assert!(json.contains("\"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ts\": 1.000"));
        assert!(json.contains("\"dur\": 2.000"));
        assert!(json.contains("\\\"x\\\""), "labels must be JSON-escaped");
        assert!(json.contains("\"wall_ns\": 3000"));
    }

    #[test]
    fn waterfall_mentions_attribution() {
        let t = ActiveTrace::new(5, "statement");
        t.record(SpanKind::Exec, "e", 0, 800, 0);
        let text = t.finish("select 1", 1000).render_waterfall();
        assert!(text.contains("exec"));
        assert!(text.contains("attributed: 80.0%"), "{text}");
    }

    #[test]
    fn part_clock_telescopes_exactly() {
        let mut c = PartClock::new();
        // Slices [10,30], [50,55], [55,80]: running 50, parked 20.
        c.enter(10);
        c.exit(10, 30);
        assert_eq!(c.enter(50), 20);
        c.exit(50, 55);
        assert_eq!(c.enter(55), 0);
        c.exit(55, 80);
        assert_eq!(c.running_ns(), 50);
        assert_eq!(c.parked_ns(), 20);
        assert_eq!(c.running_ns() + c.parked_ns(), c.wall_ns());
    }
}
