//! Table schemas.

use crate::value::DataType;
use std::fmt;
use std::sync::Arc;

/// A named, typed column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (lower-cased by the SQL front end).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
    /// Whether NULLs may appear (left outer joins introduce them).
    pub nullable: bool,
}

impl Field {
    /// A non-nullable field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field { name: name.into(), dtype, nullable: false }
    }

    /// A nullable copy of this field.
    pub fn as_nullable(&self) -> Field {
        Field { nullable: true, ..self.clone() }
    }
}

/// An ordered list of fields. Cheap to clone (Arc-backed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
}

impl Schema {
    /// Builds a schema from fields.
    ///
    /// # Panics
    /// Panics if two fields share a name — ambiguous output schemas are
    /// a planner bug, not a user error.
    pub fn new(fields: Vec<Field>) -> Self {
        for (i, f) in fields.iter().enumerate() {
            for g in &fields[..i] {
                assert_ne!(f.name, g.name, "duplicate column name {:?}", f.name);
            }
        }
        Schema { fields: Arc::new(fields) }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a column by name, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// A new schema concatenating `self` and `other` — the shape of a
    /// join output. The right side is marked nullable when `right_nullable`
    /// (left outer join).
    pub fn join(&self, other: &Schema, right_nullable: bool) -> Schema {
        let mut fields: Vec<Field> = self.fields.to_vec();
        for f in other.fields() {
            fields.push(if right_nullable { f.as_nullable() } else { f.clone() });
        }
        Schema { fields: Arc::new(fields) }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", fld.name, fld.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vw() -> Schema {
        Schema::new(vec![Field::new("v", DataType::Int64), Field::new("w", DataType::Int64)])
    }

    #[test]
    fn lookup() {
        let s = vw();
        assert_eq!(s.index_of("v"), Some(0));
        assert_eq!(s.index_of("w"), Some(1));
        assert_eq!(s.index_of("x"), None);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_rejected() {
        Schema::new(vec![Field::new("v", DataType::Int64), Field::new("v", DataType::Int64)]);
    }

    #[test]
    fn join_schema_marks_nullable() {
        let s = vw();
        let r = Schema::new(vec![Field::new("r", DataType::Int64)]);
        let j = s.join(&r, true);
        assert_eq!(j.len(), 3);
        assert!(j.field(2).nullable);
        assert!(!j.field(0).nullable);
        let j2 = s.join(&r, false);
        assert!(!j2.field(2).nullable);
    }

    #[test]
    fn display() {
        assert_eq!(vw().to_string(), "(v bigint, w bigint)");
    }
}
