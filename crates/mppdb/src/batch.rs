//! Columnar row batches — the unit of storage and execution.

use crate::schema::Schema;
use crate::value::{DataType, Datum};

/// A selection vector: row indices into a batch, `u32` so the common
/// gather paths move half the bytes of `usize` indices. Partitions are
/// capped below `u32::MAX` rows before any kernel builds one.
pub type SelVec = Vec<u32>;

/// A single column of values plus an optional validity mask.
///
/// `validity == None` means all values are valid (the common case for
/// this workload; NULLs only appear through left outer joins).
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int64 {
        /// Values; entries at invalid positions are unspecified.
        values: Vec<i64>,
        /// Per-row validity, or `None` for all-valid.
        validity: Option<Vec<bool>>,
    },
    /// 64-bit floats.
    Float64 {
        /// Values; entries at invalid positions are unspecified.
        values: Vec<f64>,
        /// Per-row validity, or `None` for all-valid.
        validity: Option<Vec<bool>>,
    },
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(dtype: DataType) -> Column {
        match dtype {
            DataType::Int64 => Column::Int64 { values: Vec::new(), validity: None },
            DataType::Float64 => Column::Float64 { values: Vec::new(), validity: None },
        }
    }

    /// A column from non-null integers.
    pub fn from_ints(values: Vec<i64>) -> Column {
        Column::Int64 { values, validity: None }
    }

    /// A column from non-null floats.
    pub fn from_doubles(values: Vec<f64>) -> Column {
        Column::Float64 { values, validity: None }
    }

    /// Builds a column of `dtype` from datums.
    ///
    /// # Panics
    /// Panics if a non-null datum does not match `dtype`.
    pub fn from_datums(dtype: DataType, datums: impl IntoIterator<Item = Datum>) -> Column {
        let mut col = Column::empty(dtype);
        for d in datums {
            col.push(d);
        }
        col
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64 { values, .. } => values.len(),
            Column::Float64 { values, .. } => values.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64 { .. } => DataType::Int64,
            Column::Float64 { .. } => DataType::Float64,
        }
    }

    /// Whether the row at `i` holds a valid (non-NULL) value.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match self {
            Column::Int64 { validity, .. } | Column::Float64 { validity, .. } => {
                validity.as_ref().map_or(true, |v| v[i])
            }
        }
    }

    /// The datum at row `i`.
    #[inline]
    pub fn datum(&self, i: usize) -> Datum {
        if !self.is_valid(i) {
            return Datum::Null;
        }
        match self {
            Column::Int64 { values, .. } => Datum::Int(values[i]),
            Column::Float64 { values, .. } => Datum::Double(values[i]),
        }
    }

    /// The raw integer at row `i`, ignoring validity.
    ///
    /// # Panics
    /// Panics if the column is not `Int64`.
    #[inline]
    pub fn int_unchecked(&self, i: usize) -> i64 {
        match self {
            Column::Int64 { values, .. } => values[i],
            Column::Float64 { .. } => panic!("int_unchecked on Float64 column"),
        }
    }

    /// Appends a datum.
    ///
    /// # Panics
    /// Panics on a type mismatch.
    pub fn push(&mut self, d: Datum) {
        match (self, d) {
            (Column::Int64 { values, validity }, Datum::Int(v)) => {
                values.push(v);
                if let Some(mask) = validity {
                    mask.push(true);
                }
            }
            (Column::Float64 { values, validity }, Datum::Double(v)) => {
                values.push(v);
                if let Some(mask) = validity {
                    mask.push(true);
                }
            }
            (Column::Int64 { values, validity }, Datum::Null) => {
                let n = values.len();
                values.push(0);
                validity.get_or_insert_with(|| vec![true; n]).push(false);
            }
            (Column::Float64 { values, validity }, Datum::Null) => {
                let n = values.len();
                values.push(0.0);
                validity.get_or_insert_with(|| vec![true; n]).push(false);
            }
            (col, d) => panic!("type mismatch pushing {d:?} into {:?} column", col.data_type()),
        }
    }

    /// Appends row `i` of `other` (same type) to `self`.
    pub fn push_from(&mut self, other: &Column, i: usize) {
        self.push(other.datum(i));
    }

    /// The raw `i64` slice when this is an all-valid integer column —
    /// the operators' fast-path precondition.
    #[inline]
    pub fn as_plain_ints(&self) -> Option<&[i64]> {
        match self {
            Column::Int64 { values, validity: None } => Some(values),
            _ => None,
        }
    }

    /// The raw `i64` slice plus its validity mask for any integer
    /// column — the null-tolerant variant of [`Column::as_plain_ints`]
    /// used by the vectorized kernels.
    #[inline]
    pub fn as_int_parts(&self) -> Option<(&[i64], Option<&[bool]>)> {
        match self {
            Column::Int64 { values, validity } => Some((values, validity.as_deref())),
            Column::Float64 { .. } => None,
        }
    }

    /// Gathers the rows at `indices` by direct slice access (no per-row
    /// `Datum` round trip). An all-valid result carries no mask, so
    /// byte accounting matches [`Column::take`].
    pub fn take_u32(&self, indices: &[u32]) -> Column {
        fn gather<T: Copy>(
            values: &[T],
            validity: Option<&Vec<bool>>,
            indices: &[u32],
        ) -> (Vec<T>, Option<Vec<bool>>) {
            let out = indices.iter().map(|&i| values[i as usize]).collect();
            let mask = validity.and_then(|m| {
                let mask: Vec<bool> = indices.iter().map(|&i| m[i as usize]).collect();
                mask.iter().any(|v| !v).then_some(mask)
            });
            (out, mask)
        }
        match self {
            Column::Int64 { values, validity } => {
                let (values, validity) = gather(values, validity.as_ref(), indices);
                Column::Int64 { values, validity }
            }
            Column::Float64 { values, validity } => {
                let (values, validity) = gather(values, validity.as_ref(), indices);
                Column::Float64 { values, validity }
            }
        }
    }

    /// Like [`Column::take_u32`], but an index of `u32::MAX` yields a
    /// NULL — the left-outer-join pad for the unmatched side.
    pub fn take_u32_padded(&self, indices: &[u32]) -> Column {
        fn gather<T: Copy + Default>(
            values: &[T],
            validity: Option<&Vec<bool>>,
            indices: &[u32],
        ) -> (Vec<T>, Option<Vec<bool>>) {
            let mut out = Vec::with_capacity(indices.len());
            let mut mask = Vec::with_capacity(indices.len());
            let mut any_null = false;
            for &i in indices {
                if i == u32::MAX {
                    out.push(T::default());
                    mask.push(false);
                    any_null = true;
                } else {
                    out.push(values[i as usize]);
                    let ok = validity.map_or(true, |m| m[i as usize]);
                    mask.push(ok);
                    any_null |= !ok;
                }
            }
            (out, any_null.then_some(mask))
        }
        match self {
            Column::Int64 { values, validity } => {
                let (values, validity) = gather(values, validity.as_ref(), indices);
                Column::Int64 { values, validity }
            }
            Column::Float64 { values, validity } => {
                let (values, validity) = gather(values, validity.as_ref(), indices);
                Column::Float64 { values, validity }
            }
        }
    }

    /// Appends all of `other`, consuming it. An empty `self` of the
    /// same type takes `other`'s buffers wholesale; a type mismatch
    /// falls back to per-datum pushes, which tolerate NULLs crossing
    /// types (UNION ALL branches may type an all-NULL column
    /// differently).
    ///
    /// # Panics
    /// Panics when a non-NULL value meets a column of the other type.
    pub fn append(&mut self, other: Column) {
        fn merge<T>(
            values: &mut Vec<T>,
            validity: &mut Option<Vec<bool>>,
            mut other_values: Vec<T>,
            other_validity: Option<Vec<bool>>,
        ) {
            if values.is_empty() {
                *values = other_values;
                *validity = other_validity;
                return;
            }
            let n = values.len();
            values.append(&mut other_values);
            match (validity.as_mut(), other_validity) {
                (None, None) => {}
                (Some(mask), None) => mask.resize(values.len(), true),
                (None, Some(mut other_mask)) => {
                    let mut mask = vec![true; n];
                    mask.append(&mut other_mask);
                    *validity = Some(mask);
                }
                (Some(mask), Some(mut other_mask)) => mask.append(&mut other_mask),
            }
        }
        match (self, other) {
            (
                Column::Int64 { values, validity },
                Column::Int64 { values: ov, validity: om },
            ) => merge(values, validity, ov, om),
            (
                Column::Float64 { values, validity },
                Column::Float64 { values: ov, validity: om },
            ) => merge(values, validity, ov, om),
            (col, other) => {
                for i in 0..other.len() {
                    col.push(other.datum(i));
                }
            }
        }
    }

    /// Logical size in bytes: 8 per value plus 1 per validity entry.
    /// This is the unit the cluster's space accounting uses.
    pub fn byte_size(&self) -> u64 {
        let validity_bytes = match self {
            Column::Int64 { validity, .. } | Column::Float64 { validity, .. } => {
                validity.as_ref().map_or(0, |v| v.len() as u64)
            }
        };
        8 * self.len() as u64 + validity_bytes
    }

    /// Takes the subset of rows at the given indices, in order.
    pub fn take(&self, indices: &[usize]) -> Column {
        let mut out = Column::empty(self.data_type());
        for &i in indices {
            out.push_from(self, i);
        }
        out
    }
}

/// A batch of rows: one [`Column`] per schema field, all equal length.
/// One batch per table partition.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Batch {
    columns: Vec<Column>,
    rows: usize,
}

impl Batch {
    /// An empty batch shaped like `schema`.
    pub fn empty(schema: &Schema) -> Batch {
        Batch {
            columns: schema.fields().iter().map(|f| Column::empty(f.dtype)).collect(),
            rows: 0,
        }
    }

    /// Builds a batch from columns.
    ///
    /// # Panics
    /// Panics if columns disagree on length.
    pub fn from_columns(columns: Vec<Column>) -> Batch {
        let rows = columns.first().map_or(0, Column::len);
        for c in &columns {
            assert_eq!(c.len(), rows, "ragged batch");
        }
        Batch { columns, rows }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// The full row at `i` as datums.
    pub fn row(&self, i: usize) -> Vec<Datum> {
        self.columns.iter().map(|c| c.datum(i)).collect()
    }

    /// Appends the row at `i` of `other` (same shape).
    pub fn push_row_from(&mut self, other: &Batch, i: usize) {
        for (dst, src) in self.columns.iter_mut().zip(&other.columns) {
            dst.push_from(src, i);
        }
        self.rows += 1;
    }

    /// Appends a row of datums.
    pub fn push_row(&mut self, row: &[Datum]) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (col, d) in self.columns.iter_mut().zip(row) {
            col.push(*d);
        }
        self.rows += 1;
    }

    /// Logical size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.columns.iter().map(Column::byte_size).sum()
    }

    /// The subset of rows at `indices`, in order.
    pub fn take(&self, indices: &[usize]) -> Batch {
        Batch {
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            rows: indices.len(),
        }
    }

    /// The subset of rows at `indices` via direct slice gathers.
    pub fn take_u32(&self, indices: &[u32]) -> Batch {
        Batch {
            columns: self.columns.iter().map(|c| c.take_u32(indices)).collect(),
            rows: indices.len(),
        }
    }

    /// Appends all of `other` (same shape), consuming it.
    pub fn append(&mut self, other: Batch) {
        if self.columns.is_empty() {
            *self = other;
            return;
        }
        assert_eq!(self.width(), other.width(), "batch shape mismatch");
        self.rows += other.rows;
        for (dst, src) in self.columns.iter_mut().zip(other.columns) {
            dst.append(src);
        }
    }

    /// Concatenates by consuming the inputs — buffer moves instead of
    /// the per-row copies of [`Batch::concat`].
    pub fn concat_owned(batches: Vec<Batch>) -> Batch {
        let mut iter = batches.into_iter();
        let Some(mut out) = iter.next() else {
            return Batch::default();
        };
        for b in iter {
            out.append(b);
        }
        out
    }

    /// Concatenates batches of identical shape.
    pub fn concat(batches: &[Batch]) -> Batch {
        let Some(first) = batches.first() else {
            return Batch::default();
        };
        let mut out = Batch {
            columns: first.columns.iter().map(|c| Column::empty(c.data_type())).collect(),
            rows: 0,
        };
        for b in batches {
            for i in 0..b.rows {
                out.push_row_from(b, i);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    #[test]
    fn column_roundtrip() {
        let mut c = Column::empty(DataType::Int64);
        c.push(Datum::Int(1));
        c.push(Datum::Null);
        c.push(Datum::Int(3));
        assert_eq!(c.len(), 3);
        assert_eq!(c.datum(0), Datum::Int(1));
        assert_eq!(c.datum(1), Datum::Null);
        assert!(!c.is_valid(1));
        assert!(c.is_valid(2));
        // 3 values * 8 bytes + 3 validity bytes.
        assert_eq!(c.byte_size(), 27);
    }

    #[test]
    fn column_without_nulls_has_no_mask_cost() {
        let c = Column::from_ints(vec![1, 2, 3, 4]);
        assert_eq!(c.byte_size(), 32);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn push_wrong_type_panics() {
        let mut c = Column::empty(DataType::Int64);
        c.push(Datum::Double(1.0));
    }

    #[test]
    fn take_preserves_nulls() {
        let c = Column::from_datums(
            DataType::Int64,
            [Datum::Int(10), Datum::Null, Datum::Int(30)],
        );
        let t = c.take(&[2, 1]);
        assert_eq!(t.datum(0), Datum::Int(30));
        assert_eq!(t.datum(1), Datum::Null);
    }

    #[test]
    fn batch_basics() {
        let schema = Schema::new(vec![
            Field::new("v", DataType::Int64),
            Field::new("h", DataType::Float64),
        ]);
        let mut b = Batch::empty(&schema);
        b.push_row(&[Datum::Int(1), Datum::Double(0.5)]);
        b.push_row(&[Datum::Int(2), Datum::Null]);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.width(), 2);
        assert_eq!(b.row(1), vec![Datum::Int(2), Datum::Null]);
        assert_eq!(b.byte_size(), 16 + 16 + 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_batch_rejected() {
        Batch::from_columns(vec![Column::from_ints(vec![1]), Column::from_ints(vec![1, 2])]);
    }

    #[test]
    fn take_u32_matches_take_and_normalises_masks() {
        let c = Column::from_datums(
            DataType::Int64,
            [Datum::Int(10), Datum::Null, Datum::Int(30)],
        );
        let t = c.take_u32(&[2, 1, 0]);
        assert_eq!(t.datum(0), Datum::Int(30));
        assert_eq!(t.datum(1), Datum::Null);
        assert_eq!(t.datum(2), Datum::Int(10));
        // Selecting only valid rows drops the mask entirely, matching
        // take()'s byte accounting.
        let all_valid = c.take_u32(&[0, 2]);
        assert!(all_valid.as_plain_ints().is_some());
        assert_eq!(all_valid.byte_size(), c.take(&[0, 2]).byte_size());
    }

    #[test]
    fn take_u32_padded_inserts_nulls() {
        let c = Column::from_ints(vec![10, 20]);
        let t = c.take_u32_padded(&[1, u32::MAX, 0]);
        assert_eq!(t.datum(0), Datum::Int(20));
        assert_eq!(t.datum(1), Datum::Null);
        assert_eq!(t.datum(2), Datum::Int(10));
    }

    #[test]
    fn append_mixes_validity_masks() {
        let mut a = Column::from_ints(vec![1, 2]);
        a.append(Column::from_datums(DataType::Int64, [Datum::Null, Datum::Int(4)]));
        assert_eq!(a.len(), 4);
        assert_eq!(a.datum(1), Datum::Int(2));
        assert_eq!(a.datum(2), Datum::Null);
        assert_eq!(a.datum(3), Datum::Int(4));

        let mut b = Column::from_datums(DataType::Int64, [Datum::Null]);
        b.append(Column::from_ints(vec![7]));
        assert_eq!(b.datum(0), Datum::Null);
        assert_eq!(b.datum(1), Datum::Int(7));

        // Empty self takes the other buffers wholesale, mask and all.
        let mut c = Column::empty(DataType::Int64);
        c.append(Column::from_ints(vec![5]));
        assert!(c.as_plain_ints().is_some());
    }

    #[test]
    fn concat_owned_matches_concat() {
        let a = Batch::from_columns(vec![Column::from_ints(vec![1, 2])]);
        let b = Batch::from_columns(vec![Column::from_datums(
            DataType::Int64,
            [Datum::Null],
        )]);
        let by_copy = Batch::concat(&[a.clone(), b.clone()]);
        let by_move = Batch::concat_owned(vec![a, b]);
        assert_eq!(by_move.rows(), 3);
        for i in 0..3 {
            assert_eq!(by_move.row(i), by_copy.row(i));
        }
        assert_eq!(Batch::concat_owned(Vec::new()).rows(), 0);
    }

    #[test]
    fn concat_batches() {
        let a = Batch::from_columns(vec![Column::from_ints(vec![1, 2])]);
        let b = Batch::from_columns(vec![Column::from_ints(vec![3])]);
        let c = Batch::concat(&[a, b]);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.column(0).int_unchecked(2), 3);
        assert_eq!(Batch::concat(&[]).rows(), 0);
    }
}
