//! Stored tables: schema + partitioned data + distribution policy.

use crate::batch::Batch;
use crate::schema::Schema;
use std::sync::Arc;

/// How a table's rows are spread across the cluster's segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Distribution {
    /// Hash-partitioned on the given column indices — the MPP default
    /// and what `DISTRIBUTED BY (col)` produces. Rows with equal key
    /// values land on the same segment, which is what makes co-located
    /// joins and aggregations possible.
    Hash(Vec<usize>),
    /// No guaranteed placement (round-robin load balancing).
    Arbitrary,
}

impl Distribution {
    /// True when the table is hash-distributed on exactly `cols`.
    pub fn is_hash_on(&self, cols: &[usize]) -> bool {
        matches!(self, Distribution::Hash(c) if c == cols)
    }
}

/// An immutable stored table. Cloning is cheap; partitions are shared.
#[derive(Debug, Clone)]
pub struct Table {
    /// Output schema.
    pub schema: Schema,
    /// One batch per segment.
    pub partitions: Arc<Vec<Batch>>,
    /// Placement policy the partitions satisfy.
    pub distribution: Distribution,
}

impl Table {
    /// Builds a table from parts.
    pub fn new(schema: Schema, partitions: Vec<Batch>, distribution: Distribution) -> Table {
        Table { schema, partitions: Arc::new(partitions), distribution }
    }

    /// Total rows across partitions.
    pub fn row_count(&self) -> usize {
        self.partitions.iter().map(Batch::rows).sum()
    }

    /// Logical size in bytes across partitions.
    pub fn byte_size(&self) -> u64 {
        self.partitions.iter().map(Batch::byte_size).sum()
    }

    /// Number of partitions (segments).
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Column;
    use crate::schema::Field;
    use crate::value::DataType;

    #[test]
    fn table_accounting() {
        let schema = Schema::new(vec![Field::new("v", DataType::Int64)]);
        let parts = vec![
            Batch::from_columns(vec![Column::from_ints(vec![1, 2])]),
            Batch::from_columns(vec![Column::from_ints(vec![3])]),
        ];
        let t = Table::new(schema, parts, Distribution::Hash(vec![0]));
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.byte_size(), 24);
        assert_eq!(t.partition_count(), 2);
        assert!(t.distribution.is_hash_on(&[0]));
        assert!(!t.distribution.is_hash_on(&[1]));
        assert!(!Distribution::Arbitrary.is_hash_on(&[0]));
    }
}
