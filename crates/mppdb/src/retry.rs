//! Capped-exponential-backoff retry for retryable statement failures.
//!
//! The taxonomy in [`crate::error`] marks segment panics and injected
//! transient faults as [`crate::ErrorClass::Retryable`]: catalog
//! mutations are atomic under one write lock, so a failed statement
//! leaves no partial state and re-running it is always safe. This
//! module supplies the policy — how many times, how long to wait — and
//! a driver loop; the service layer applies it around every statement.
//!
//! Jitter is deterministic (a splitmix64 hash of the caller's salt and
//! the attempt number), keeping retried chaos runs reproducible while
//! still decorrelating concurrent sessions' backoff schedules.

use crate::error::DbResult;
use std::time::Duration;

/// Retry policy: attempts and backoff shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (0 disables retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base: Duration,
    /// Upper bound on any single backoff pause.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    /// Three retries, 2 ms base, 100 ms cap — bounded well under a
    /// statement timeout while riding out a burst of injected faults.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(100),
        }
    }
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn disabled() -> RetryPolicy {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default() }
    }

    /// The pause before retry `attempt` (1-based): capped exponential
    /// with deterministic jitter in the upper half of the window.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        let exp = self.base.saturating_mul(1u32 << shift).min(self.cap);
        // Jitter in [exp/2, exp]: halve, then add a hashed fraction.
        let half = exp / 2;
        let nanos = half.as_nanos() as u64;
        let jitter = if nanos == 0 {
            0
        } else {
            mix(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(attempt as u64)) % nanos
        };
        half + Duration::from_nanos(jitter)
    }

    /// Runs `f`, retrying retryable failures up to `max_retries` times
    /// with backoff. `note` observes each pause *before* sleeping (the
    /// hook the service uses to charge retry counters). Fatal,
    /// cancelled and timeout errors return immediately.
    pub fn run<T>(
        &self,
        salt: u64,
        mut note: impl FnMut(Duration),
        mut f: impl FnMut() -> DbResult<T>,
    ) -> DbResult<T> {
        let mut attempt = 0u32;
        loop {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < self.max_retries => {
                    attempt += 1;
                    let pause = self.backoff(attempt, salt);
                    note(pause);
                    std::thread::sleep(pause);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DbError;
    use std::cell::Cell;

    #[test]
    fn succeeds_after_transient_failures() {
        let policy = RetryPolicy { base: Duration::from_micros(10), ..RetryPolicy::default() };
        let attempts = Cell::new(0);
        let pauses = Cell::new(0);
        let out = policy.run(
            1,
            |_| pauses.set(pauses.get() + 1),
            || {
                attempts.set(attempts.get() + 1);
                if attempts.get() < 3 {
                    Err(DbError::TransientFailure("flaky".into()))
                } else {
                    Ok(attempts.get())
                }
            },
        );
        assert_eq!(out.unwrap(), 3);
        assert_eq!(pauses.get(), 2);
    }

    #[test]
    fn gives_up_after_max_retries() {
        let policy = RetryPolicy {
            max_retries: 2,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
        };
        let attempts = Cell::new(0);
        let out: DbResult<()> = policy.run(0, |_| {}, || {
            attempts.set(attempts.get() + 1);
            Err(DbError::TransientFailure("always".into()))
        });
        assert!(out.unwrap_err().is_retryable());
        assert_eq!(attempts.get(), 3); // 1 try + 2 retries
    }

    #[test]
    fn fatal_and_cancelled_never_retry() {
        let policy = RetryPolicy::default();
        for err in [DbError::Plan("bad".into()), DbError::Cancelled("stop".into())] {
            let attempts = Cell::new(0);
            let e = err.clone();
            let out: DbResult<()> = policy.run(0, |_| {}, || {
                attempts.set(attempts.get() + 1);
                Err(e.clone())
            });
            assert_eq!(out.unwrap_err(), err);
            assert_eq!(attempts.get(), 1);
        }
    }

    #[test]
    fn backoff_is_capped_deterministic_and_jittered() {
        let policy = RetryPolicy {
            max_retries: 10,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(16),
        };
        for attempt in 1..=10 {
            let a = policy.backoff(attempt, 7);
            assert_eq!(a, policy.backoff(attempt, 7), "deterministic for one salt");
            assert!(a <= policy.cap);
            assert!(a >= policy.base / 2, "attempt {attempt} pause {a:?}");
        }
        // Different salts decorrelate.
        assert_ne!(policy.backoff(3, 1), policy.backoff(3, 2));
    }

    #[test]
    fn disabled_policy_fails_fast() {
        let out: DbResult<()> = RetryPolicy::disabled().run(0, |_| {}, || {
            Err(DbError::TransientFailure("x".into()))
        });
        assert!(out.is_err());
    }
}
