//! Engine error type and the structured failure taxonomy.
//!
//! Every error classifies into one of four [`ErrorClass`]es, which is
//! what retry/recovery layers act on: the service retries `Retryable`
//! statements with backoff, surfaces `Fatal` ones immediately, and
//! treats `Cancelled`/`Timeout` as deliberate interruption (never
//! retried — the user or the deadline asked for it).

use std::fmt;

/// Result alias for all engine operations.
pub type DbResult<T> = Result<T, DbError>;

/// How a failure should be handled by layers above the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// Transient: the same statement may succeed if re-run (a segment
    /// worker panicked, an injected transient fault fired). Catalog
    /// mutations are atomic under one write lock, so a failed statement
    /// leaves no partial state and re-running is safe.
    Retryable,
    /// Deterministic: re-running the identical statement will fail the
    /// same way (parse/plan/catalog errors, space limit).
    Fatal,
    /// The session's cancel flag was raised; stop, don't retry.
    Cancelled,
    /// The statement deadline passed; stop, don't retry.
    Timeout,
}

impl ErrorClass {
    /// Short lowercase name, used in job status lines and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorClass::Retryable => "retryable",
            ErrorClass::Fatal => "fatal",
            ErrorClass::Cancelled => "cancelled",
            ErrorClass::Timeout => "timeout",
        }
    }
}

/// Errors produced by the catalog, SQL front end, planner or executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A referenced table does not exist, or a created one already does.
    Catalog(String),
    /// The SQL text failed to tokenise or parse.
    Parse(String),
    /// The query is syntactically valid but cannot be planned
    /// (unknown column, unsupported construct, type mismatch).
    Plan(String),
    /// A runtime execution failure.
    Exec(String),
    /// The cluster's configured space limit was exceeded. Benchmarks
    /// report this condition as "did not finish", as the paper does for
    /// Hash-to-Min on its larger datasets.
    SpaceLimitExceeded {
        /// Live bytes the operation would have reached.
        needed: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The statement was interrupted: its session was cancelled. The
    /// executor checks between operators and between partitions, so a
    /// long multi-join round stops promptly without corrupting the
    /// catalog (no partial table is ever stored).
    Cancelled(String),
    /// The statement's deadline passed. Classified separately from
    /// [`DbError::Cancelled`] so the service can report timeouts
    /// distinctly, but [`DbError::is_cancelled`] covers both — to the
    /// executor they are the same interrupt.
    Timeout(String),
    /// A partition task panicked on a segment worker. The pool catches
    /// the unwind, converts it into this error, and stays usable — a
    /// worker panic never deadlocks `run_parts` or poisons the queue.
    SegmentPanic {
        /// The partition (segment) whose task panicked.
        segment: usize,
        /// The operator kind that was executing (e.g. `"hash_join"`).
        op: &'static str,
        /// The panic payload, downcast to a string when possible.
        payload: String,
    },
    /// A transient failure injected by the cluster's fault plan (or any
    /// future source of genuinely transient faults). Retryable.
    TransientFailure(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Catalog(m) => write!(f, "catalog error: {m}"),
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Plan(m) => write!(f, "plan error: {m}"),
            DbError::Exec(m) => write!(f, "execution error: {m}"),
            DbError::SpaceLimitExceeded { needed, limit } => write!(
                f,
                "space limit exceeded: needed {needed} bytes, limit {limit} bytes"
            ),
            DbError::Cancelled(m) => write!(f, "cancelled: {m}"),
            DbError::Timeout(m) => write!(f, "timeout: {m}"),
            DbError::SegmentPanic { segment, op, payload } => write!(
                f,
                "segment panic: segment {segment} panicked in {op}: {payload}"
            ),
            DbError::TransientFailure(m) => write!(f, "transient failure: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl DbError {
    /// True when the error is the space guard tripping — the condition
    /// experiments report as "did not finish".
    pub fn is_space_limit(&self) -> bool {
        matches!(self, DbError::SpaceLimitExceeded { .. })
    }

    /// True when the error is a cancellation or timeout interrupt.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, DbError::Cancelled(_) | DbError::Timeout(_))
    }

    /// This error's failure class — what a recovery layer should do.
    pub fn class(&self) -> ErrorClass {
        match self {
            DbError::SegmentPanic { .. } | DbError::TransientFailure(_) => ErrorClass::Retryable,
            DbError::Cancelled(_) => ErrorClass::Cancelled,
            DbError::Timeout(_) => ErrorClass::Timeout,
            DbError::Catalog(_)
            | DbError::Parse(_)
            | DbError::Plan(_)
            | DbError::Exec(_)
            | DbError::SpaceLimitExceeded { .. } => ErrorClass::Fatal,
        }
    }

    /// True when a re-run of the same statement may succeed.
    pub fn is_retryable(&self) -> bool {
        self.class() == ErrorClass::Retryable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(DbError::Catalog("no t".into()).to_string().contains("no t"));
        assert!(DbError::Parse("bad".into()).to_string().starts_with("parse"));
        let e = DbError::SpaceLimitExceeded { needed: 10, limit: 5 };
        assert!(e.to_string().contains("10"));
        assert!(e.is_space_limit());
        assert!(!DbError::Exec("x".into()).is_space_limit());
        let p = DbError::SegmentPanic {
            segment: 3,
            op: "hash_join",
            payload: "boom".into(),
        };
        assert!(p.to_string().contains("segment 3"));
        assert!(p.to_string().contains("hash_join"));
    }

    #[test]
    fn taxonomy_classifies_every_variant() {
        assert_eq!(DbError::Catalog("x".into()).class(), ErrorClass::Fatal);
        assert_eq!(DbError::Parse("x".into()).class(), ErrorClass::Fatal);
        assert_eq!(DbError::Plan("x".into()).class(), ErrorClass::Fatal);
        assert_eq!(DbError::Exec("x".into()).class(), ErrorClass::Fatal);
        assert_eq!(
            DbError::SpaceLimitExceeded { needed: 1, limit: 0 }.class(),
            ErrorClass::Fatal
        );
        assert_eq!(DbError::Cancelled("x".into()).class(), ErrorClass::Cancelled);
        assert_eq!(DbError::Timeout("x".into()).class(), ErrorClass::Timeout);
        let panic = DbError::SegmentPanic {
            segment: 0,
            op: "filter",
            payload: "p".into(),
        };
        assert_eq!(panic.class(), ErrorClass::Retryable);
        assert!(panic.is_retryable());
        assert!(DbError::TransientFailure("x".into()).is_retryable());
    }

    #[test]
    fn timeout_still_counts_as_cancelled_interrupt() {
        // Back-compat: the executor and session treat a deadline trip
        // as a cancellation interrupt even though its class differs.
        assert!(DbError::Timeout("deadline".into()).is_cancelled());
        assert!(DbError::Cancelled("flag".into()).is_cancelled());
        assert!(!DbError::Timeout("deadline".into()).is_retryable());
    }
}
