//! Engine error type.

use std::fmt;

/// Result alias for all engine operations.
pub type DbResult<T> = Result<T, DbError>;

/// Errors produced by the catalog, SQL front end, planner or executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A referenced table does not exist, or a created one already does.
    Catalog(String),
    /// The SQL text failed to tokenise or parse.
    Parse(String),
    /// The query is syntactically valid but cannot be planned
    /// (unknown column, unsupported construct, type mismatch).
    Plan(String),
    /// A runtime execution failure.
    Exec(String),
    /// The cluster's configured space limit was exceeded. Benchmarks
    /// report this condition as "did not finish", as the paper does for
    /// Hash-to-Min on its larger datasets.
    SpaceLimitExceeded {
        /// Live bytes the operation would have reached.
        needed: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The statement was interrupted: its session was cancelled or its
    /// deadline passed. The executor checks between operators, so a
    /// long multi-join round stops promptly without corrupting the
    /// catalog (no partial table is ever stored).
    Cancelled(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Catalog(m) => write!(f, "catalog error: {m}"),
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Plan(m) => write!(f, "plan error: {m}"),
            DbError::Exec(m) => write!(f, "execution error: {m}"),
            DbError::SpaceLimitExceeded { needed, limit } => write!(
                f,
                "space limit exceeded: needed {needed} bytes, limit {limit} bytes"
            ),
            DbError::Cancelled(m) => write!(f, "cancelled: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl DbError {
    /// True when the error is the space guard tripping — the condition
    /// experiments report as "did not finish".
    pub fn is_space_limit(&self) -> bool {
        matches!(self, DbError::SpaceLimitExceeded { .. })
    }

    /// True when the error is a cancellation or timeout interrupt.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, DbError::Cancelled(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(DbError::Catalog("no t".into()).to_string().contains("no t"));
        assert!(DbError::Parse("bad".into()).to_string().starts_with("parse"));
        let e = DbError::SpaceLimitExceeded { needed: 10, limit: 5 };
        assert!(e.to_string().contains("10"));
        assert!(e.is_space_limit());
        assert!(!DbError::Exec("x".into()).is_space_limit());
    }
}
