//! Plan cache: normalized-statement → optimized-plan memoization.
//!
//! The paper's CC algorithms drive every round through a small, highly
//! repetitive statement mix — the same `CREATE TABLE … AS SELECT` and
//! `SELECT` shapes differing only in literal values. Under concurrency
//! the service re-parses and re-plans those shapes thousands of times;
//! span traces attribute a measurable slice of the p95 tail to exactly
//! that. This module removes parse+plan from the hot path:
//!
//! 1. **Normalization** ([`normalize`]) lexes the statement and
//!    replaces `Int`/`Float` literals with [`Token::Param`]
//!    placeholders, extracting the literal values. The rendered
//!    template is the cache key (per session namespace). Rules:
//!    * The integer following `LIMIT` stays verbatim — the parser
//!      consumes it structurally, and a row limit is part of the
//!      plan's shape, not a bindable value.
//!    * A unary minus folds into its literal (`-7` → one negative
//!      parameter); the dialect has no binary arithmetic, so `-` in
//!      expression position is always a sign.
//!    * Statements mentioning `random` are uncacheable — the planner
//!      embeds a fresh seed per call site, so their plans are
//!      intentionally never reused.
//!    * Only `SELECT …` and `CREATE TABLE … AS …` are cacheable;
//!      DDL, `INSERT` and `EXPLAIN` take the ordinary path.
//!    * Int and float parameters render distinctly (`?i` vs `?f`), so
//!      `x > 5` and `x > 5.0` never share a plan.
//! 2. **Template planning** — on a miss, the template token stream is
//!    parsed (placeholders become [`crate::Expr::Param`] slots),
//!    session-rewritten, planned and optimized once, then cached.
//! 3. **Binding** ([`bind_plan`]) — each execution clones the cached
//!    plan substituting the statement's actual literals for the
//!    parameter slots. The executor never sees a `Param`.
//!
//! **Invalidation** is by revalidation, not broadcast: an entry
//! remembers, for every referenced table, the raw (pre-rewrite) name,
//! the name it resolved to, and the schema it was planned against,
//! plus the cluster's catalog epoch (bumped by UDF registry changes).
//! A hit re-resolves every raw name through the session and compares
//! name + live schema; any DDL that would make the plan wrong —
//! drop/recreate with a different shape, a session temp now shadowing
//! a shared table, a replaced UDF — fails the check and forces a
//! replan. DDL that preserves name and schema (the per-round
//! drop/recreate churn of the CC mix) keeps the entry valid, which is
//! what makes the cache effective at all under that workload.

use crate::expr::Expr;
use crate::ops::AggExpr;
use crate::plan::Plan;
use crate::schema::Schema;
use crate::sql::{Statement, TableRel, Token};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How many plans a cluster retains (least-recently-used eviction).
pub(crate) const PLAN_CACHE_CAPACITY: usize = 256;

/// A literal extracted during normalization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ParamValue {
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
}

/// A normalized statement: the template token stream, its rendered
/// cache key, and the extracted literal values in slot order.
#[derive(Debug)]
pub(crate) struct Normalized {
    pub(crate) template: Vec<Token>,
    pub(crate) key: String,
    pub(crate) params: Vec<ParamValue>,
}

/// Normalizes a statement for caching, or `None` when the statement is
/// uncacheable (not SELECT/CTAS, contains `random`, or fails to lex).
pub(crate) fn normalize(sql_text: &str) -> Option<Normalized> {
    let tokens = crate::sql::tokenize(sql_text).ok()?;
    if !cacheable_shape(&tokens) {
        return None;
    }
    if tokens.iter().any(|t| matches!(t, Token::Ident(s) if s == "random")) {
        return None;
    }
    let mut template = Vec::with_capacity(tokens.len());
    let mut params = Vec::new();
    let mut keep_next_int = false;
    let mut it = tokens.into_iter().peekable();
    while let Some(t) = it.next() {
        match t {
            Token::Int(v) if !keep_next_int => {
                template.push(Token::Param { idx: params.len(), float: false });
                params.push(ParamValue::Int(v));
            }
            Token::Float(v) => {
                template.push(Token::Param { idx: params.len(), float: true });
                params.push(ParamValue::Float(v));
            }
            Token::Minus => match it.peek() {
                Some(Token::Int(v)) if !keep_next_int => {
                    let v = *v;
                    it.next();
                    template.push(Token::Param { idx: params.len(), float: false });
                    params.push(ParamValue::Int(-v));
                }
                Some(Token::Float(v)) => {
                    let v = *v;
                    it.next();
                    template.push(Token::Param { idx: params.len(), float: true });
                    params.push(ParamValue::Float(-v));
                }
                _ => template.push(Token::Minus),
            },
            other => {
                keep_next_int = matches!(&other, Token::Ident(s) if s == "limit");
                template.push(other);
                continue;
            }
        }
        keep_next_int = false;
    }
    let key = render(&template);
    Some(Normalized { template, key, params })
}

/// Whether the token stream is a cacheable statement shape: `SELECT …`
/// or `CREATE TABLE <name> AS …`.
fn cacheable_shape(tokens: &[Token]) -> bool {
    match tokens.first() {
        Some(Token::Ident(s)) if s == "select" => true,
        Some(Token::Ident(s)) if s == "create" => {
            matches!(tokens.get(1), Some(Token::Ident(t)) if t == "table")
                && matches!(tokens.get(2), Some(Token::Ident(_)))
                && matches!(tokens.get(3), Some(Token::Ident(a)) if a == "as")
        }
        _ => false,
    }
}

/// Renders a template token stream as the canonical cache-key string.
fn render(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        if !out.is_empty() {
            out.push(' ');
        }
        match t {
            Token::Ident(s) => out.push_str(s),
            Token::Int(v) => out.push_str(&v.to_string()),
            Token::Float(v) => out.push_str(&v.to_string()),
            Token::Param { float: false, .. } => out.push_str("?i"),
            Token::Param { float: true, .. } => out.push_str("?f"),
            Token::LParen => out.push('('),
            Token::RParen => out.push(')'),
            Token::Comma => out.push(','),
            Token::Dot => out.push('.'),
            Token::Star => out.push('*'),
            Token::Eq => out.push('='),
            Token::Ne => out.push_str("!="),
            Token::Lt => out.push('<'),
            Token::Le => out.push_str("<="),
            Token::Gt => out.push('>'),
            Token::Ge => out.push_str(">="),
            Token::Minus => out.push('-'),
            Token::Plus => out.push('+'),
            Token::Semi => out.push(';'),
        }
    }
    out
}

/// Raw (pre-session-rewrite) table names a template statement reads,
/// in first-mention order, deduplicated.
pub(crate) fn referenced_tables(stmt: &Statement) -> Vec<String> {
    fn walk_query(q: &crate::sql::Query, out: &mut Vec<String>) {
        for core in &q.selects {
            for item in &core.from {
                match &item.rel {
                    TableRel::Table(name) => {
                        if !out.iter().any(|n| n == name) {
                            out.push(name.clone());
                        }
                    }
                    TableRel::Subquery(sub) => walk_query(sub, out),
                }
            }
        }
    }
    let mut out = Vec::new();
    match stmt {
        Statement::Select(q) => walk_query(q, &mut out),
        Statement::CreateTableAs { query, .. } => walk_query(query, &mut out),
        _ => {}
    }
    out
}

/// What a cached plan needs from the statement besides the plan itself.
#[derive(Debug, Clone)]
pub(crate) enum CachedShape {
    /// A bare `SELECT`, with its post-execution ordering and limit.
    Select {
        order_by: Vec<(String, bool)>,
        limit: Option<usize>,
    },
    /// `CREATE TABLE … AS …`. The target keeps its *raw* name; the
    /// session namespace is applied at execution time, so a session
    /// toggling `set_temp_namespace` between executions still creates
    /// in the right place.
    CreateTableAs {
        raw_name: String,
        distributed_by: Option<String>,
    },
}

/// One table a cached plan depends on: the raw name the statement
/// wrote, what it resolved to at plan time, and the schema the plan
/// was bound against. A hit revalidates all three.
#[derive(Debug, Clone)]
pub(crate) struct TableDep {
    pub(crate) raw: String,
    pub(crate) resolved: String,
    pub(crate) schema: Schema,
}

/// A cached, parameterized, optimized plan.
#[derive(Debug)]
pub(crate) struct CacheEntry {
    pub(crate) plan: Plan,
    pub(crate) schema: Schema,
    pub(crate) shape: CachedShape,
    pub(crate) param_count: usize,
    pub(crate) tables: Vec<TableDep>,
    /// Catalog epoch (UDF registry generation) at plan time.
    pub(crate) epoch: u64,
}

/// Cache key: the session namespace the template was planned in plus
/// the rendered template. Name resolution is per-session, so plans are
/// not shared across sessions (each session warms its own handful of
/// entries — the statement mix is tiny).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub(crate) session: u64,
    pub(crate) template: String,
}

struct Slot {
    entry: Arc<CacheEntry>,
    last_used: u64,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<CacheKey, Slot>,
    tick: u64,
}

/// Counter snapshot of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache (parse+plan skipped).
    pub hits: u64,
    /// Lookups that had to parse and plan (includes first sight and
    /// entries invalidated by catalog changes).
    pub misses: u64,
    /// Entries displaced by the LRU capacity bound.
    pub evictions: u64,
    /// Plans currently cached.
    pub entries: usize,
}

/// A bounded LRU of parameterized plans, keyed on normalized SQL.
pub(crate) struct PlanCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    pub(crate) fn new(capacity: usize) -> PlanCache {
        PlanCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks an entry up, refreshing its recency. Counters are *not*
    /// touched — the caller records a hit only after validation.
    pub(crate) fn get(&self, key: &CacheKey) -> Option<Arc<CacheEntry>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(key).map(|slot| {
            slot.last_used = tick;
            slot.entry.clone()
        })
    }

    /// Inserts (or replaces) an entry, evicting the least-recently-used
    /// one past capacity.
    pub(crate) fn insert(&self, key: CacheKey, entry: Arc<CacheEntry>) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, Slot { entry, last_used: tick });
        while inner.map.len() > self.capacity {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                break;
            }
        }
    }

    /// Removes a stale entry (failed revalidation).
    pub(crate) fn remove(&self, key: &CacheKey) {
        self.inner.lock().map.remove(key);
    }

    /// Drops every cached plan. Counters are preserved.
    pub(crate) fn clear(&self) {
        self.inner.lock().map.clear();
    }

    /// Drops every entry planned under the given session namespace —
    /// called when a session closes so its keys do not linger until
    /// eviction.
    pub(crate) fn clear_session(&self, session: u64) {
        self.inner.lock().map.retain(|k, _| k.session != session);
    }

    pub(crate) fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().map.len(),
        }
    }
}

/// Clones a cached plan with its parameter slots bound to the
/// statement's actual literals.
pub(crate) fn bind_plan(plan: &Plan, params: &[ParamValue]) -> Plan {
    if params.is_empty() {
        return plan.clone();
    }
    match plan {
        Plan::Scan { .. } | Plan::OneRow => plan.clone(),
        Plan::Project { input, exprs } => Plan::Project {
            input: Box::new(bind_plan(input, params)),
            exprs: exprs
                .iter()
                .map(|(e, f)| (bind_expr(e, params), f.clone()))
                .collect(),
        },
        Plan::Filter { input, pred } => Plan::Filter {
            input: Box::new(bind_plan(input, params)),
            pred: bind_expr(pred, params),
        },
        Plan::Join { left, right, l_keys, r_keys, join_type } => Plan::Join {
            left: Box::new(bind_plan(left, params)),
            right: Box::new(bind_plan(right, params)),
            l_keys: l_keys.clone(),
            r_keys: r_keys.clone(),
            join_type: *join_type,
        },
        Plan::Aggregate { input, group_cols, aggs } => Plan::Aggregate {
            input: Box::new(bind_plan(input, params)),
            group_cols: group_cols.clone(),
            aggs: aggs
                .iter()
                .map(|a| AggExpr { func: a.func, input: bind_expr(&a.input, params) })
                .collect(),
        },
        Plan::Distinct { input } => Plan::Distinct { input: Box::new(bind_plan(input, params)) },
        Plan::UnionAll { inputs } => Plan::UnionAll {
            inputs: inputs.iter().map(|p| bind_plan(p, params)).collect(),
        },
    }
}

fn bind_expr(e: &Expr, params: &[ParamValue]) -> Expr {
    match e {
        Expr::Param { idx, float } => match params.get(*idx) {
            Some(ParamValue::Int(v)) => Expr::LitInt(*v),
            Some(ParamValue::Float(v)) => Expr::LitDouble(*v),
            // Unreachable when the caller checks param_count; keep the
            // slot so execution reports it instead of silently lying.
            None => Expr::Param { idx: *idx, float: *float },
        },
        Expr::Column(_) | Expr::LitInt(_) | Expr::LitDouble(_) | Expr::Null => e.clone(),
        Expr::Least(a) => Expr::Least(a.iter().map(|x| bind_expr(x, params)).collect()),
        Expr::Greatest(a) => Expr::Greatest(a.iter().map(|x| bind_expr(x, params)).collect()),
        Expr::Coalesce(a) => Expr::Coalesce(a.iter().map(|x| bind_expr(x, params)).collect()),
        Expr::Udf { name, func, args } => Expr::Udf {
            name: name.clone(),
            func: func.clone(),
            args: args.iter().map(|x| bind_expr(x, params)).collect(),
        },
        Expr::Random { seed } => Expr::Random { seed: *seed },
        Expr::Cmp { op, left, right } => Expr::Cmp {
            op: *op,
            left: Box::new(bind_expr(left, params)),
            right: Box::new(bind_expr(right, params)),
        },
        Expr::And(l, r) => {
            Expr::And(Box::new(bind_expr(l, params)), Box::new(bind_expr(r, params)))
        }
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(bind_expr(expr, params)),
            negated: *negated,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_parameterize_and_templates_match() {
        let a = normalize("select v1 from e where v1 > 5 and v2 < 3.5").unwrap();
        let b = normalize("select v1 from e where v1 > 99 and v2 < 0.25").unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.params, vec![ParamValue::Int(5), ParamValue::Float(3.5)]);
        assert_eq!(b.params, vec![ParamValue::Int(99), ParamValue::Float(0.25)]);
    }

    #[test]
    fn int_and_float_literals_get_distinct_templates() {
        let a = normalize("select v1 from e where v1 > 5").unwrap();
        let b = normalize("select v1 from e where v1 > 5.0").unwrap();
        assert_ne!(a.key, b.key);
    }

    #[test]
    fn limit_count_stays_verbatim() {
        let n = normalize("select v1 from e where v1 > 7 order by v1 limit 10").unwrap();
        assert_eq!(n.params, vec![ParamValue::Int(7)]);
        assert!(n.key.contains("limit 10"), "{}", n.key);
        // Different limits are different templates (a limit is plan
        // shape, not a bindable literal).
        let m = normalize("select v1 from e where v1 > 7 order by v1 limit 20").unwrap();
        assert_ne!(n.key, m.key);
    }

    #[test]
    fn unary_minus_folds_into_the_parameter() {
        let n = normalize("select axplusb(-42, v, -7.5) as r from t").unwrap();
        assert_eq!(n.params, vec![ParamValue::Int(-42), ParamValue::Float(-7.5)]);
        // Same template as the positive-literal spelling.
        let p = normalize("select axplusb(42, v, 7.5) as r from t").unwrap();
        assert_eq!(n.key, p.key);
    }

    #[test]
    fn random_and_non_query_statements_are_uncacheable() {
        assert!(normalize("select random() as r from t").is_none());
        assert!(normalize("drop table t").is_none());
        assert!(normalize("insert into t values (1)").is_none());
        assert!(normalize("explain select 1 as x").is_none());
        assert!(normalize("create table t (a bigint)").is_none());
        assert!(normalize("alter table a rename to b").is_none());
        assert!(normalize("select 'bad lex'").is_none());
    }

    #[test]
    fn ctas_is_cacheable() {
        let n = normalize(
            "create table reps as select v1 v, min(v2) rep from g \
             where v2 != 4 group by v1 distributed by (v)",
        )
        .unwrap();
        assert_eq!(n.params, vec![ParamValue::Int(4)]);
    }

    #[test]
    fn referenced_tables_walks_subqueries_and_unions() {
        let stmt = crate::sql::parse_statement(
            "select count(*) as n from (select v1 as v from g union all \
             select v from h) as u, r where u.v = r.v",
        )
        .unwrap();
        assert_eq!(referenced_tables(&stmt), vec!["g", "h", "r"]);
    }

    #[test]
    fn lru_evicts_oldest_and_counts() {
        let cache = PlanCache::new(2);
        let entry = || {
            Arc::new(CacheEntry {
                plan: Plan::OneRow,
                schema: Schema::new(vec![]),
                shape: CachedShape::Select { order_by: vec![], limit: None },
                param_count: 0,
                tables: vec![],
                epoch: 0,
            })
        };
        let key = |s: &str| CacheKey { session: 0, template: s.to_string() };
        cache.insert(key("a"), entry());
        cache.insert(key("b"), entry());
        assert!(cache.get(&key("a")).is_some()); // refresh a
        cache.insert(key("c"), entry()); // evicts b
        assert!(cache.get(&key("b")).is_none());
        assert!(cache.get(&key("a")).is_some());
        assert!(cache.get(&key("c")).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn clear_session_drops_only_that_namespace() {
        let cache = PlanCache::new(8);
        let entry = Arc::new(CacheEntry {
            plan: Plan::OneRow,
            schema: Schema::new(vec![]),
            shape: CachedShape::Select { order_by: vec![], limit: None },
            param_count: 0,
            tables: vec![],
            epoch: 0,
        });
        cache.insert(CacheKey { session: 1, template: "t".into() }, entry.clone());
        cache.insert(CacheKey { session: 2, template: "t".into() }, entry);
        cache.clear_session(1);
        assert!(cache.get(&CacheKey { session: 1, template: "t".into() }).is_none());
        assert!(cache.get(&CacheKey { session: 2, template: "t".into() }).is_some());
    }

    #[test]
    fn bind_substitutes_every_slot() {
        let plan = Plan::Filter {
            input: Box::new(Plan::Scan { table: "t".into() }),
            pred: Expr::Cmp {
                op: crate::expr::CmpOp::Gt,
                left: Box::new(Expr::Column(0)),
                right: Box::new(Expr::Param { idx: 0, float: false }),
            },
        };
        let bound = bind_plan(&plan, &[ParamValue::Int(9)]);
        let Plan::Filter { pred, .. } = bound else { panic!() };
        let Expr::Cmp { right, .. } = pred else { panic!() };
        assert!(matches!(*right, Expr::LitInt(9)));
    }
}
