//! Query profiling and latency telemetry.
//!
//! The paper's evaluation is an observability exercise — wall time
//! (Table III), peak space (Table IV), written bytes (Table V), and
//! per-round convergence (Fig. 9). This module supplies the per-query
//! lens those tables need: a [`QueryProfile`] tree annotating every
//! plan node with operator measurements, and a mergeable log-bucketed
//! [`LatencyHistogram`] for the service layer's per-statement p50/p95/
//! p99.
//!
//! # Recording model
//!
//! Profiling is pay-for-what-you-use. Each operator already owns an
//! `OpTimer` that charges [`crate::OpKind`] counters into
//! [`crate::stats::Stats`]; when a [`SpanSink`] is present on the
//! operator context, `OpTimer::finish` *additionally* pushes one
//! [`OpProfile`] record into it — when absent (the default), the cost
//! is a single `Option` branch. Worker threads do not write to the
//! sink directly: they bump the same `Arc<AtomicU64>` partition-tier
//! counters they always have, and the operator's coordinating thread
//! flushes one consolidated record per invocation. Per-*segment* rows
//! are captured from the operator's output partitions by the plan
//! executor ([`ProfileNode::seg_rows`]), which is what makes partition
//! skew visible without instrumenting every worker closure.
//!
//! The tree shape is statement → plan node ([`ProfileNode`]) →
//! operator invocation ([`OpProfile`]) → partition tier counts
//! (`vectorized_parts`/`generic_parts`, plus `seg_rows` at the node).
//! A node can carry several operator records: a hash join whose inputs
//! need redistribution records its internal repartition exchanges in
//! the same node's sink, mirroring how `Stats::op_stats()` attributes
//! them.

use crate::stats::{OpKind, StatsSnapshot};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One operator invocation's measurements inside a profiled query.
///
/// The same numbers an operator charges to [`crate::stats::Stats`] via
/// `charge_op`, plus the exchange volume for repartitions — kept
/// per-invocation here instead of accumulated per-family.
#[derive(Debug, Clone)]
pub struct OpProfile {
    /// Operator family (names via [`OpKind::name`]).
    pub kind: OpKind,
    /// Partitions handled by a vectorized kernel.
    pub vectorized_parts: u64,
    /// Partitions handled by the generic row-at-a-time path.
    pub generic_parts: u64,
    /// Input rows across all partitions.
    pub rows_in: u64,
    /// Output rows across all partitions.
    pub rows_out: u64,
    /// Operator wall time in nanoseconds.
    pub nanos: u64,
    /// Bytes moved between segments (repartition exchanges only).
    pub exchange_bytes: u64,
}

/// Collection point for the operator records of one plan node.
///
/// Shared between the plan executor (which owns the node) and the
/// operators it runs; a `Mutex<Vec<_>>` is fine here because it is
/// locked once per operator *invocation*, not per row or partition.
#[derive(Debug, Default)]
pub struct SpanSink {
    records: Mutex<Vec<OpProfile>>,
}

impl SpanSink {
    /// Appends one operator record.
    pub fn record(&self, op: OpProfile) {
        self.records.lock().unwrap().push(op);
    }

    /// Drains the collected records (executor-side, after the node ran).
    pub fn take(&self) -> Vec<OpProfile> {
        std::mem::take(&mut *self.records.lock().unwrap())
    }
}

/// One plan node's annotations in a [`QueryProfile`] tree.
#[derive(Debug, Clone, Default)]
pub struct ProfileNode {
    /// Plan-node label, e.g. `Join(a.v1 = b.v1)`.
    pub label: String,
    /// Rows this node produced.
    pub rows_out: u64,
    /// Output rows per segment, in segment order — partition skew is
    /// visible as imbalance here.
    pub seg_rows: Vec<u64>,
    /// Inclusive wall time for this node and its inputs, nanoseconds.
    pub nanos: u64,
    /// Operator invocations recorded while this node executed.
    pub ops: Vec<OpProfile>,
    /// Input plan nodes.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Sums `f` over every operator record in this subtree.
    pub fn fold_ops(&self, f: &mut impl FnMut(&OpProfile)) {
        for op in &self.ops {
            f(op);
        }
        for child in &self.children {
            child.fold_ops(f);
        }
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let _ = writeln!(
            out,
            "{pad}-> {}  (rows={} time={:.3}ms segs={})",
            self.label,
            self.rows_out,
            self.nanos as f64 / 1e6,
            render_seg_rows(&self.seg_rows),
        );
        for op in &self.ops {
            let _ = write!(
                out,
                "{pad}     {}: rows_in={} rows_out={} time={:.3}ms parts={}v/{}g",
                op.kind.name(),
                op.rows_in,
                op.rows_out,
                op.nanos as f64 / 1e6,
                op.vectorized_parts,
                op.generic_parts,
            );
            if op.exchange_bytes > 0 {
                let _ = write!(out, " exchange={}B", op.exchange_bytes);
            }
            out.push('\n');
        }
        for child in &self.children {
            child.render_into(depth + 1, out);
        }
    }

    fn json_into(&self, out: &mut String) {
        out.push_str("{\"label\": ");
        push_json_str(out, &self.label);
        let _ = write!(out, ", \"rows_out\": {}, \"nanos\": {}, \"seg_rows\": [", self.rows_out, self.nanos);
        for (i, r) in self.seg_rows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{r}");
        }
        out.push_str("], \"ops\": [");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"op\": \"{}\", \"rows_in\": {}, \"rows_out\": {}, \"nanos\": {}, \
                 \"vectorized_parts\": {}, \"generic_parts\": {}, \"exchange_bytes\": {}}}",
                op.kind.name(),
                op.rows_in,
                op.rows_out,
                op.nanos,
                op.vectorized_parts,
                op.generic_parts,
                op.exchange_bytes,
            );
        }
        out.push_str("], \"children\": [");
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            child.json_into(out);
        }
        out.push_str("]}");
    }
}

fn render_seg_rows(seg_rows: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, r) in seg_rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{r}");
    }
    s.push(']');
    s
}

/// JSON string escape for labels and statement text (hand-rolled:
/// the workspace builds offline, `serde_json` is a stub).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The profile of one executed statement: the annotated plan tree plus
/// statement-level resource deltas.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    /// The SQL text as executed (after session rewriting).
    pub statement: String,
    /// End-to-end statement wall time, nanoseconds.
    pub total_nanos: u64,
    /// Rows the statement returned or wrote.
    pub rows_out: u64,
    /// Bytes written by the statement (storage layer delta).
    pub bytes_written: u64,
    /// Rows written by the statement.
    pub rows_written: u64,
    /// Bytes exchanged between segments by the statement.
    pub network_bytes: u64,
    /// Root of the annotated plan tree.
    pub root: ProfileNode,
}

impl QueryProfile {
    /// Folds the statement-level stats delta into the profile header.
    pub fn apply_stats_delta(&mut self, delta: &StatsSnapshot) {
        self.bytes_written = delta.bytes_written;
        self.rows_written = delta.rows_written;
        self.network_bytes = delta.network_bytes;
    }

    /// The `EXPLAIN ANALYZE` text rendering: one line per plan node,
    /// indented by depth, followed by its operator measurements.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Statement: {}  (total={:.3}ms rows={} written={}B/{}rows exchanged={}B)",
            self.statement,
            self.total_nanos as f64 / 1e6,
            self.rows_out,
            self.bytes_written,
            self.rows_written,
            self.network_bytes,
        );
        self.root.render_into(0, &mut out);
        out
    }

    /// The structured form as a JSON object string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"statement\": ");
        push_json_str(&mut out, &self.statement);
        let _ = write!(
            out,
            ", \"total_nanos\": {}, \"rows_out\": {}, \"bytes_written\": {}, \
             \"rows_written\": {}, \"network_bytes\": {}, \"plan\": ",
            self.total_nanos, self.rows_out, self.bytes_written, self.rows_written, self.network_bytes,
        );
        self.root.json_into(&mut out);
        out.push('}');
        out
    }
}

/// Number of buckets in a [`LatencyHistogram`]: one per power of two
/// of nanoseconds, so bucket 30 ≈ 1.07s and bucket 63 covers u64::MAX.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log2-bucketed latency histogram with atomic buckets.
///
/// Bucket `i` counts observations with `floor(log2(nanos)) == i`
/// (zero maps to bucket 0), i.e. values in `[2^i, 2^(i+1))`. Buckets
/// are powers of two, so quantile estimates are exact to within one
/// bucket — a factor-of-two latency resolution, which is the usual
/// trade for mergeable constant-space histograms.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Fresh, empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one observation.
    pub fn record(&self, nanos: u64) {
        let bucket = 63 - nanos.max(1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// A point-in-time copy for quantiles, merging, and rendering.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`LatencyHistogram`]'s state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`buckets[i]` covers
    /// `[2^i, 2^(i+1))` nanoseconds).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, nanoseconds.
    pub sum_nanos: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum_nanos: 0 }
    }
}

impl HistogramSnapshot {
    /// Upper bound of bucket `i` in nanoseconds (inclusive end of its
    /// value range, saturating at `u64::MAX`).
    pub fn bucket_upper(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Merges another snapshot into this one. Merging two histograms
    /// is exactly equivalent to having recorded both streams into one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the
    /// bucket containing that rank, in nanoseconds. Within one bucket
    /// (a factor of two) of the exact order statistic; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return HistogramSnapshot::bucket_upper(i);
            }
        }
        u64::MAX
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket_of(nanos: u64) -> usize {
        63 - nanos.max(1).leading_zeros() as usize
    }

    #[test]
    fn histogram_quantiles_within_one_bucket() {
        // Known distribution: 1..=1000 microseconds, uniform.
        let h = LatencyHistogram::new();
        let values: Vec<u64> = (1..=1000).map(|us| us * 1_000).collect();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum_nanos, values.iter().sum::<u64>());
        for &(q, exact_idx) in &[(0.5, 499usize), (0.95, 949), (0.99, 989)] {
            let est = snap.quantile(q);
            let exact = values[exact_idx];
            // The estimate must land in the same power-of-two bucket as
            // the exact order statistic ("within one bucket").
            assert_eq!(
                bucket_of(est),
                bucket_of(exact),
                "q={q}: est {est} vs exact {exact}"
            );
            // And must never under-report (it is the bucket's upper bound).
            assert!(est >= exact, "q={q}: est {est} < exact {exact}");
        }
    }

    #[test]
    fn histogram_quantiles_on_skewed_distribution() {
        let h = LatencyHistogram::new();
        // 90 fast (≈10µs), 9 medium (≈1ms), 1 slow (≈1s).
        for _ in 0..90 {
            h.record(10_000);
        }
        for _ in 0..9 {
            h.record(1_000_000);
        }
        h.record(1_000_000_000);
        let snap = h.snapshot();
        assert_eq!(bucket_of(snap.quantile(0.5)), bucket_of(10_000));
        assert_eq!(bucket_of(snap.quantile(0.95)), bucket_of(1_000_000));
        assert_eq!(bucket_of(snap.quantile(0.999)), bucket_of(1_000_000_000));
    }

    #[test]
    fn histogram_merge_equals_combined_stream() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let combined = LatencyHistogram::new();
        let stream_a: Vec<u64> = (1..500).map(|i| i * 977).collect();
        let stream_b: Vec<u64> = (1..300).map(|i| i * 13_331).collect();
        for &v in &stream_a {
            a.record(v);
            combined.record(v);
        }
        for &v in &stream_b {
            b.record(v);
            combined.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let want = combined.snapshot();
        assert_eq!(merged.buckets, want.buckets);
        assert_eq!(merged.count, want.count);
        assert_eq!(merged.sum_nanos, want.sum_nanos);
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), want.quantile(q));
        }
    }

    #[test]
    fn histogram_edge_values() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot().quantile(0.5), 0); // empty
        h.record(0); // zero maps to bucket 0
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[63], 1);
        assert_eq!(snap.quantile(1.0), u64::MAX);
    }

    #[test]
    fn profile_json_is_escaped_and_nested() {
        let profile = QueryProfile {
            statement: "select \"x\"\nfrom t".into(),
            total_nanos: 42,
            rows_out: 3,
            bytes_written: 100,
            rows_written: 3,
            network_bytes: 8,
            root: ProfileNode {
                label: "Project".into(),
                rows_out: 3,
                seg_rows: vec![2, 1],
                nanos: 40,
                ops: vec![OpProfile {
                    kind: OpKind::Project,
                    vectorized_parts: 2,
                    generic_parts: 0,
                    rows_in: 3,
                    rows_out: 3,
                    nanos: 40,
                    exchange_bytes: 0,
                }],
                children: vec![ProfileNode { label: "Scan t".into(), ..Default::default() }],
            },
        };
        let json = profile.to_json();
        assert!(json.contains("\\\"x\\\"\\nfrom t"));
        assert!(json.contains("\"seg_rows\": [2, 1]"));
        assert!(json.contains("\"op\": \"project\""));
        assert!(json.contains("\"label\": \"Scan t\""));
        let text = profile.render();
        assert!(text.contains("-> Project"));
        assert!(text.contains("segs=[2,1]"));
    }

    #[test]
    fn fold_ops_visits_whole_tree() {
        let leaf_op = OpProfile {
            kind: OpKind::Filter,
            vectorized_parts: 0,
            generic_parts: 1,
            rows_in: 10,
            rows_out: 5,
            nanos: 1,
            exchange_bytes: 0,
        };
        let root = ProfileNode {
            ops: vec![leaf_op.clone()],
            children: vec![ProfileNode { ops: vec![leaf_op.clone(), leaf_op], ..Default::default() }],
            ..Default::default()
        };
        let mut rows = 0;
        root.fold_ops(&mut |op| rows += op.rows_in);
        assert_eq!(rows, 30);
    }
}
